#!/usr/bin/env bash
# Offline tier-1 gate for the moca workspace.
#
# Runs entirely without network access: the workspace has zero external
# dependencies, so every step below must succeed with the registry
# unreachable. CARGO_NET_OFFLINE makes any accidental dependency on the
# network a hard failure rather than a silent download.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (workspace, offline) =="
cargo test -q --offline

echo "== bench smoke (1 iteration per target, offline) =="
cargo bench -p moca-bench --offline -- --smoke

echo "== ci.sh: all gates passed =="
