#!/usr/bin/env bash
# Offline tier-1 gate for the moca workspace.
#
# Runs entirely without network access: the workspace has zero external
# dependencies, so every step below must succeed with the registry
# unreachable. CARGO_NET_OFFLINE makes any accidental dependency on the
# network a hard failure rather than a silent download.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (workspace, offline) =="
cargo test -q --offline --workspace

echo "== bench smoke (1 iteration per target, offline) =="
cargo bench -p moca-bench --offline -- --smoke

echo "== bench regression guard (micro vs BENCH_micro.json) =="
# Full 5-iteration run: the guard compares min_ns, and the fastest of 5
# iterations is stable on a busy host where a single --smoke iteration
# is not.
mkdir -p target
cargo bench -p moca-bench --offline --bench micro | tee target/bench_micro_current.txt
# The fan-out and arena benches must be present in the run (bench_guard
# fails on baseline benches missing from the current run, but only if
# they are in the baseline — keep this check in sync with BENCH_micro.json).
for bench in "sweep-fanout/8-designs-100k" "chunk-arena/hit-rate"; do
  grep -q "\"bench\":\"$bench\"" target/bench_micro_current.txt \
    || { echo "missing micro bench: $bench"; exit 1; }
done
cargo run -q --release -p moca-bench --offline --bin bench_guard -- \
  BENCH_micro.json target/bench_micro_current.txt --max-regression 0.30

echo "== ci.sh: all gates passed =="
