#!/usr/bin/env bash
# Offline tier-1 gate for the moca workspace.
#
# Runs entirely without network access: the workspace has zero external
# dependencies, so every step below must succeed with the registry
# unreachable. CARGO_NET_OFFLINE makes any accidental dependency on the
# network a hard failure rather than a silent download.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== build (release, offline) =="
# --workspace: the root manifest is a real package, so a bare `cargo
# build` would build only the facade crate and leave the moca-sim
# binaries (repro/tracegen/trace_corpus) that the smoke tests below
# exercise stale or missing.
cargo build --release --offline --workspace

echo "== tests (workspace, offline) =="
cargo test -q --offline --workspace

echo "== lint (clippy, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== fault-tolerance suite (panic isolation, checkpoint, i/o errors) =="
cargo test -q --offline -p moca-sim --test fault_tolerance

echo "== cross-engine differential suite (scalar vs broadcast vs lock-step) =="
cargo test -q --offline -p moca-sim --test lockstep_differential
cargo test -q --offline -p moca-sim --test lockstep_props

echo "== kill/resume smoke (repro --checkpoint, SIGKILL, --resume) =="
REPRO=target/release/repro
SMOKE_IDS=(F3 F5 A2)
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
# Reference: an uninterrupted run. The footer after the --- separator
# (wall time, arena stats) is run-local by design, so the comparison
# stops there. Capture fully before trimming: repro treats a closed
# pipe as a real I/O error (by design), so sed must not cut it short.
"$REPRO" --quick "${SMOKE_IDS[@]}" > "$SMOKE_DIR/uninterrupted_full.txt"
sed -n '/^---$/q;p' "$SMOKE_DIR/uninterrupted_full.txt" > "$SMOKE_DIR/uninterrupted.txt"
# Checkpointed run, killed mid-flight (if it finishes first, the resume
# below simply replays everything — both paths must produce the same
# bytes).
"$REPRO" --quick --checkpoint "$SMOKE_DIR/ckpt" "${SMOKE_IDS[@]}" > /dev/null 2>&1 &
REPRO_PID=$!
sleep 1
kill -9 "$REPRO_PID" 2>/dev/null || true
wait "$REPRO_PID" 2>/dev/null || true
test -f "$SMOKE_DIR/ckpt/journal.csv" || { echo "checkpoint journal was not created"; exit 1; }
# Resume and require byte-identical output up to the footer.
"$REPRO" --quick --resume "$SMOKE_DIR/ckpt" "${SMOKE_IDS[@]}" > "$SMOKE_DIR/resumed_full.txt"
sed -n '/^---$/q;p' "$SMOKE_DIR/resumed_full.txt" > "$SMOKE_DIR/resumed.txt"
diff -u "$SMOKE_DIR/uninterrupted.txt" "$SMOKE_DIR/resumed.txt" \
  || { echo "kill/resume output diverged from the uninterrupted run"; exit 1; }
# Unknown flags must be rejected loudly, not silently dropped.
if "$REPRO" --no-such-flag > /dev/null 2>&1; then
  echo "repro accepted an unknown flag"; exit 1
fi
echo "kill/resume smoke passed"

echo "== telemetry smoke (repro --telemetry + --progress, stream validates) =="
TELEM="$SMOKE_DIR/telemetry.jsonl"
"$REPRO" --quick --progress --telemetry "$TELEM" F3 A2 \
  > "$SMOKE_DIR/telemetry_stdout.txt" 2> "$SMOKE_DIR/telemetry_stderr.txt"
grep -q '^\[progress\] F3 (1/2)' "$SMOKE_DIR/telemetry_stderr.txt" \
  || { echo "missing --progress heartbeat on stderr"; exit 1; }
test -s "$TELEM" || { echo "telemetry stream is empty"; exit 1; }
# telemetry_report parses every line (exit 2 on the first malformed one)
# and must find the sweep points in its aggregate.
target/release/telemetry_report "$TELEM" > "$SMOKE_DIR/telemetry_report.txt"
grep -q 'per-scope profile' "$SMOKE_DIR/telemetry_report.txt" \
  || { echo "telemetry_report produced no profile"; exit 1; }
echo "telemetry smoke passed"

echo "== trace replay smoke (tracegen --emit, trace_corpus, repro --trace) =="
TRACEGEN=target/release/tracegen
CORPUS_TOOL=target/release/trace_corpus
# Compile one trace, validate it, and round-trip its identity.
"$TRACEGEN" browser 100000 "$SMOKE_DIR/browser.mtrc" --emit --seed 7 \
  2> "$SMOKE_DIR/tracegen_emit.txt"
grep -q 'compiled .* chunk(s)' "$SMOKE_DIR/tracegen_emit.txt" \
  || { echo "tracegen --emit reported no compile summary"; exit 1; }
"$CORPUS_TOOL" validate "$SMOKE_DIR/browser.mtrc" \
  || { echo "trace_corpus validate rejected a fresh file"; exit 1; }
"$CORPUS_TOOL" stat "$SMOKE_DIR/browser.mtrc" > "$SMOKE_DIR/corpus_stat.txt"
grep -q 'kernel share' "$SMOKE_DIR/corpus_stat.txt" \
  || { echo "trace_corpus stat produced no summary"; exit 1; }
# Record the quick-scale sweep corpus (default apps/refs/seed match the
# F3 search sweep) and validate the whole directory.
"$CORPUS_TOOL" record "$SMOKE_DIR/corpus" > /dev/null
"$CORPUS_TOOL" validate "$SMOKE_DIR/corpus" > /dev/null \
  || { echo "recorded corpus failed validation"; exit 1; }
# The same experiment replayed from the corpus must emit the same bytes
# up to the run-local footer, and must actually decode from the files.
"$REPRO" --quick F3 > "$SMOKE_DIR/f3_inprocess_full.txt"
sed -n '/^---$/q;p' "$SMOKE_DIR/f3_inprocess_full.txt" > "$SMOKE_DIR/f3_inprocess.txt"
"$REPRO" --quick F3 --trace "$SMOKE_DIR/corpus" > "$SMOKE_DIR/f3_replay_full.txt"
sed -n '/^---$/q;p' "$SMOKE_DIR/f3_replay_full.txt" > "$SMOKE_DIR/f3_replay.txt"
diff -u "$SMOKE_DIR/f3_inprocess.txt" "$SMOKE_DIR/f3_replay.txt" \
  || { echo "corpus replay diverged from in-process generation"; exit 1; }
grep -q '^trace corpus: 4 file(s), ' "$SMOKE_DIR/f3_replay_full.txt" \
  || { echo "missing trace-corpus footer line"; exit 1; }
grep -q '^trace corpus: .* 0 chunk(s) decoded' "$SMOKE_DIR/f3_replay_full.txt" \
  && { echo "corpus was registered but nothing was decoded from it"; exit 1; }
echo "trace replay smoke passed"

echo "== bench smoke (1 iteration per target, offline) =="
cargo bench -p moca-bench --offline -- --smoke

echo "== bench regression guard (micro vs BENCH_micro.json) =="
# Full 5-iteration run: the guard compares min_ns, and the fastest of 5
# iterations is stable on a busy host where a single --smoke iteration
# is not.
mkdir -p target
cargo bench -p moca-bench --offline --bench micro | tee target/bench_micro_current.txt
# The sweep-engine and arena benches must be present in the run (bench_guard
# fails on baseline benches missing from the current run, but only if
# they are in the baseline — keep this check in sync with BENCH_micro.json).
for bench in "sweep-fanout/8-designs-100k" "sweep-lockstep/8-designs-100k" \
             "lockstep/lane-group-width" "chunk-arena/hit-rate" \
             "trace-gen/100k-refs" "trace-decode/100k-refs" \
             "trace-file/replay-100k"; do
  grep -q "\"bench\":\"$bench\"" target/bench_micro_current.txt \
    || { echo "missing micro bench: $bench"; exit 1; }
done
cargo run -q --release -p moca-bench --offline --bin bench_guard -- \
  BENCH_micro.json target/bench_micro_current.txt --max-regression 0.30

echo "== ci.sh: all gates passed =="
