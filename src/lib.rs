//! # moca — energy-efficient mobile L2 cache design
//!
//! Facade crate re-exporting the `moca` workspace: a reproduction of
//! *"Energy-efficient cache design in emerging mobile platforms"*
//! (DATE'15) and its TODAES'17 extension. See `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! ```
//! use moca::trace::{AppProfile, TraceGenerator};
//!
//! let gen = TraceGenerator::new(&AppProfile::browser(), 42);
//! assert!(gen.take(1000).count() == 1000);
//! ```

/// Workload and trace synthesis (re-export of `moca-trace`).
pub use moca_trace as trace;

/// Cache substrate (re-export of `moca-cache`).
pub use moca_cache as cache;

/// SRAM / STT-RAM technology models (re-export of `moca-energy`).
pub use moca_energy as energy;

/// The paper's L2 designs (re-export of `moca-core`).
pub use moca_core as core;

/// System model and experiment harness (re-export of `moca-sim`).
pub use moca_sim as sim;

use std::fmt;

/// The workspace-wide error taxonomy: one variant per layer.
///
/// Every fallible path in the workspace surfaces a structured,
/// layer-specific error; `MocaError` unifies them for callers driving
/// the stack end to end (CLI front-ends, services, batch drivers), so a
/// single `Result<_, MocaError>` can carry a bad cache geometry, a
/// rejected design, a corrupt trace file, a failed sweep point, or a
/// plain I/O failure without erasing which layer refused.
///
/// # Examples
///
/// ```
/// use moca::MocaError;
/// use moca::cache::CacheGeometry;
///
/// fn build() -> Result<CacheGeometry, MocaError> {
///     Ok(CacheGeometry::try_new(2 << 20, 16, 64)?)
/// }
/// assert!(build().is_ok());
///
/// let err: MocaError = CacheGeometry::try_new(0, 16, 64).unwrap_err().into();
/// assert!(err.to_string().contains("geometry"));
/// ```
#[derive(Debug)]
pub enum MocaError {
    /// An [`L2Design`](moca_core::L2Design) failed validation.
    Design(moca_core::DesignError),
    /// A cache geometry, way mask, or partition spec was inconsistent.
    Geometry(moca_cache::GeometryError),
    /// A trace file could not be read (I/O, bad magic, corrupt record).
    Trace(moca_trace::io::ReadTraceError),
    /// A full [`System`](moca_sim::System) could not be assembled.
    Build(moca_sim::BuildSystemError),
    /// One point of a sweep failed (build rejection or caught panic).
    SweepPoint(moca_sim::SweepPointError),
    /// An underlying I/O operation failed (report/CSV/checkpoint
    /// writers, journal files).
    Io(std::io::Error),
}

impl fmt::Display for MocaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MocaError::Design(e) => write!(f, "invalid design: {e}"),
            MocaError::Geometry(e) => write!(f, "invalid geometry: {e}"),
            MocaError::Trace(e) => write!(f, "trace error: {e}"),
            MocaError::Build(e) => write!(f, "system build error: {e}"),
            MocaError::SweepPoint(e) => write!(f, "sweep point failure: {e}"),
            MocaError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for MocaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MocaError::Design(e) => Some(e),
            MocaError::Geometry(e) => Some(e),
            MocaError::Trace(e) => Some(e),
            MocaError::Build(e) => Some(e),
            MocaError::SweepPoint(e) => Some(e),
            MocaError::Io(e) => Some(e),
        }
    }
}

impl From<moca_core::DesignError> for MocaError {
    fn from(e: moca_core::DesignError) -> Self {
        MocaError::Design(e)
    }
}

impl From<moca_cache::GeometryError> for MocaError {
    fn from(e: moca_cache::GeometryError) -> Self {
        MocaError::Geometry(e)
    }
}

impl From<moca_trace::io::ReadTraceError> for MocaError {
    fn from(e: moca_trace::io::ReadTraceError) -> Self {
        MocaError::Trace(e)
    }
}

impl From<moca_sim::BuildSystemError> for MocaError {
    fn from(e: moca_sim::BuildSystemError) -> Self {
        MocaError::Build(e)
    }
}

impl From<moca_sim::SweepPointError> for MocaError {
    fn from(e: moca_sim::SweepPointError) -> Self {
        MocaError::SweepPoint(e)
    }
}

impl From<std::io::Error> for MocaError {
    fn from(e: std::io::Error) -> Self {
        MocaError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn every_layer_converts_and_chains() {
        let geo: MocaError = moca_cache::CacheGeometry::new(0, 8, 64).unwrap_err().into();
        assert!(geo.source().is_some());
        assert!(geo.to_string().contains("geometry"));

        let design: MocaError = moca_core::L2Design::SharedSram { ways: 0 }
            .validate()
            .unwrap_err()
            .into();
        assert!(design.to_string().contains("invalid design"));

        let io: MocaError = std::io::Error::other("disk full").into();
        assert!(io.to_string().contains("disk full"));

        let trace: MocaError =
            moca_trace::io::ReadTraceError::Corrupt("truncated record").into();
        assert!(trace.to_string().contains("trace error"));
    }

    #[test]
    fn replay_container_errors_keep_their_chunk_index() {
        // The chunked-container variants flow through unchanged, so a
        // failed corpus replay still names the failing chunk at the
        // top-level error boundary.
        let e: MocaError = moca_trace::io::ReadTraceError::ChunkChecksum { chunk: 3 }.into();
        assert!(e.to_string().contains("chunk 3"), "got: {e}");
        let e: MocaError = moca_trace::io::ReadTraceError::ChunkTruncated { chunk: 7 }.into();
        assert!(e.to_string().contains("chunk 7"), "got: {e}");
    }
}
