//! # moca — energy-efficient mobile L2 cache design
//!
//! Facade crate re-exporting the `moca` workspace: a reproduction of
//! *"Energy-efficient cache design in emerging mobile platforms"*
//! (DATE'15) and its TODAES'17 extension. See `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! ```
//! use moca::trace::{AppProfile, TraceGenerator};
//!
//! let gen = TraceGenerator::new(&AppProfile::browser(), 42);
//! assert!(gen.take(1000).count() == 1000);
//! ```

/// Workload and trace synthesis (re-export of `moca-trace`).
pub use moca_trace as trace;

/// Cache substrate (re-export of `moca-cache`).
pub use moca_cache as cache;

/// SRAM / STT-RAM technology models (re-export of `moca-energy`).
pub use moca_energy as energy;

/// The paper's L2 designs (re-export of `moca-core`).
pub use moca_core as core;

/// System model and experiment harness (re-export of `moca-sim`).
pub use moca_sim as sim;
