//! Quickstart: simulate one app on the baseline L2 and on the paper's
//! dynamic design, and compare energy and performance.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use moca::core::L2Design;
use moca::sim::{System, SystemConfig};
use moca::trace::{AppProfile, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = AppProfile::browser();
    let refs = 2_000_000;

    // 1. Baseline: 2 MiB 16-way shared SRAM L2.
    let mut baseline = System::new(app.name, L2Design::baseline(), SystemConfig::default())?;
    baseline.run(TraceGenerator::new(&app, 42).take(refs));
    let baseline = baseline.finish();

    // 2. The paper's dynamic short-retention STT-RAM design.
    let mut dynamic = System::new(app.name, L2Design::dynamic_default(), SystemConfig::default())?;
    dynamic.run(TraceGenerator::new(&app, 42).take(refs));
    let dynamic = dynamic.finish();

    println!("app: {} ({} references)", app.name, refs);
    println!();
    for r in [&baseline, &dynamic] {
        println!("{}", r.design);
        println!("  L2 miss rate      {:.3}", r.l2_miss_rate());
        println!("  kernel L2 share   {:.1}%", r.l2_kernel_share() * 100.0);
        println!("  L2 energy         {}", r.l2_energy.total());
        println!("  mean active ways  {:.1}", r.mean_active_ways);
        println!("  cycles/reference  {:.3}", r.cpr());
        println!();
    }
    println!(
        "dynamic design: {:.1}% of baseline L2 energy at {:.1}% slowdown",
        dynamic.energy_ratio_vs(&baseline) * 100.0,
        (dynamic.slowdown_vs(&baseline) - 1.0) * 100.0
    );
    Ok(())
}
