//! App study: characterize one smartphone workload end-to-end — raw trace
//! statistics, L2-level kernel share, per-segment behaviour, and the
//! STT-RAM retention class the analyzer recommends for each segment.
//!
//! ```text
//! cargo run --release --example app_study [app-name]
//! ```
//!
//! `app-name` is one of the ten suite apps (default `maps`); run with an
//! unknown name to get the list.

use moca::core::{recommend_retention, L2Design};
use moca::sim::{System, SystemConfig};
use moca::trace::{AppProfile, Mode, TraceGenerator, TraceStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "maps".to_string());
    let Some(app) = AppProfile::by_name(&name) else {
        eprintln!("unknown app '{name}'; available:");
        for p in AppProfile::suite() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(2);
    };
    let refs = 2_000_000;

    // Trace-level statistics (no cache involved).
    let stats = TraceStats::collect(TraceGenerator::new(&app, 7).take(refs), 64);
    println!("== {} — trace level ==", app.name);
    println!("kernel share of references: {:.1}%", stats.kernel_share() * 100.0);
    for mode in Mode::ALL {
        let m = stats.mode(mode);
        println!(
            "  {mode:6} footprint {:6.1} KiB, median reuse interval {:?} refs",
            m.footprint_bytes(64) as f64 / 1024.0,
            m.median_reuse_interval()
        );
    }

    // System-level run on the static partition, with behaviour probing.
    let design = L2Design::StaticSram {
        user_ways: 6,
        kernel_ways: 4,
    };
    let mut sys = System::new(app.name, design, SystemConfig::default())?.with_behavior_probe();
    sys.run(TraceGenerator::new(&app, 7).take(refs));
    let report = sys.finish();

    println!();
    println!("== {} — partitioned L2 ({}) ==", app.name, report.design);
    println!("kernel share of L2 accesses: {:.1}%", report.l2_kernel_share() * 100.0);
    println!("L2 miss rate: {:.3}", report.l2_miss_rate());
    for mode in Mode::ALL {
        let b = report.behavior(mode);
        let rec = recommend_retention(&b.lifetime, report.clock_ghz, 0.95);
        println!(
            "  {mode:6} segment: p95 lifetime {:8.2} ms, dead blocks {:4.1}%, recommended retention {}",
            b.lifetime.quantile(0.95).unwrap_or(0) as f64 / 1e6,
            b.dead_fraction() * 100.0,
            rec
        );
    }
    Ok(())
}
