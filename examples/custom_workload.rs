//! Build a custom workload and study it with the sweep utilities.
//!
//! Demonstrates the composition APIs beyond the built-in suite:
//! * a phased app-switching session ([`PhasedWorkload`]),
//! * an adversarial pointer-chase stream ([`ChaseStream`]) spliced into
//!   the trace,
//! * a design sweep with CSV export.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use moca::core::L2Design;
use moca::sim::{comparison_table, write_csv, System, SystemConfig};
use moca::trace::chase::ChaseStream;
use moca::trace::locality::Region;
use moca::trace::rng::Xoshiro256;
use moca::trace::{AccessKind, AppProfile, MemoryAccess, Mode, PhasedWorkload};

/// A session: music → browser → game, with a pointer-chasing "GC pause"
/// spliced in every 50k references.
fn custom_trace(refs: usize) -> Vec<MemoryAccess> {
    let session = PhasedWorkload::new(
        vec![
            (AppProfile::music(), 60_000),
            (AppProfile::browser(), 80_000),
            (AppProfile::game(), 60_000),
        ],
        2026,
    )
    .cycle();

    let mut rng = Xoshiro256::seed_from_u64(99);
    let heap = Region::new(0x2000_0000, 16_384, 64);
    let mut chase = ChaseStream::new(heap, 8_192, &mut rng);

    let mut out = Vec::with_capacity(refs);
    for (i, access) in session.take(refs).enumerate() {
        if i % 50_000 < 2_000 {
            // 2k-reference GC-like dependent walk over a 512 KiB object
            // graph, in user mode.
            let addr = chase.next_addr(&mut rng);
            out.push(MemoryAccess::new(addr, 0x400, AccessKind::Load, Mode::User));
        } else {
            out.push(access);
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = custom_trace(1_000_000);
    println!("custom session: {} references", trace.len());

    let designs = [
        L2Design::baseline(),
        L2Design::static_default(),
        L2Design::dynamic_default(),
    ];
    let mut reports = Vec::new();
    let mut walls = Vec::new();
    for design in designs {
        let mut sys = System::new("custom-session", design, SystemConfig::default())?;
        let start = std::time::Instant::now();
        sys.run(trace.iter().copied());
        reports.push(sys.finish());
        walls.push(start.elapsed().as_nanos() as u64);
    }

    println!();
    println!("{}", comparison_table(&reports).render());

    // Export the raw numbers for plotting.
    let path = std::env::temp_dir().join("moca_custom_workload.csv");
    let file = std::fs::File::create(&path)?;
    write_csv(
        std::io::BufWriter::new(file),
        reports.iter().zip(walls.iter().copied()),
    )?;
    println!("wrote {}", path.display());
    Ok(())
}
