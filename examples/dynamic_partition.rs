//! Dynamic partitioning in action: run the adaptive short-retention
//! STT-RAM L2 and print the allocation timeline as an ASCII strip chart,
//! plus the resulting energy/performance versus the baseline.
//!
//! ```text
//! cargo run --release --example dynamic_partition [app-name]
//! ```

use moca::core::L2Design;
use moca::sim::{System, SystemConfig};
use moca::trace::{AppProfile, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "camera".to_string());
    let app = AppProfile::by_name(&name).ok_or("unknown app (try: camera, browser, music)")?;
    let refs = 4_000_000;

    let mut base = System::new(app.name, L2Design::baseline(), SystemConfig::default())?;
    base.run(TraceGenerator::new(&app, 99).take(refs));
    let base = base.finish();

    let mut dynamic = System::new(app.name, L2Design::dynamic_default(), SystemConfig::default())?;
    dynamic.run(TraceGenerator::new(&app, 99).take(refs));
    let report = dynamic.finish();

    println!("{} on {}", app.name, report.design);
    println!();
    println!("time(ms)  user ways        kernel ways      total");
    for s in &report.timeline {
        let t = s.cycle as f64 / (report.clock_ghz * 1e6);
        println!(
            "{t:7.2}   {:16} {:16} {:2}",
            "#".repeat(s.user_ways as usize),
            "#".repeat(s.kernel_ways as usize),
            s.user_ways + s.kernel_ways,
        );
    }
    println!();
    println!(
        "time-weighted mean: {:.1} of 16 ways powered ({:.0}% gated)",
        report.mean_active_ways,
        (1.0 - report.mean_active_ways / 16.0) * 100.0
    );
    println!(
        "energy: {:.1}% of baseline; slowdown {:.1}%; expiries {}, expiry writebacks {}",
        report.energy_ratio_vs(&base) * 100.0,
        (report.slowdown_vs(&base) - 1.0) * 100.0,
        report.expiry.expired,
        report.expiry.expiry_writebacks,
    );
    Ok(())
}
