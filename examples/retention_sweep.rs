//! Retention design-space exploration: sweep the STT-RAM retention class
//! of the static partition's segments and print the energy/performance
//! trade-off — the analysis behind the paper's multi-retention choice.
//!
//! ```text
//! cargo run --release --example retention_sweep
//! ```

use moca::core::{L2Design, RefreshPolicy};
use moca::energy::RetentionClass;
use moca::sim::{System, SystemConfig};
use moca::trace::{AppProfile, TraceGenerator};

fn run(app: &AppProfile, design: L2Design, refs: usize) -> moca::sim::SimReport {
    let mut sys = System::new(app.name, design, SystemConfig::default())
        .expect("designs in this sweep are valid");
    sys.run(TraceGenerator::new(app, 5).take(refs));
    sys.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = AppProfile::video();
    let refs = 2_000_000;
    let base = run(&app, L2Design::baseline(), refs);

    println!("{}: sweeping retention of a 6u+4k STT-RAM partition", app.name);
    println!();
    println!("retention  policy                 normE   slowdown  expired  refreshes");
    for rc in RetentionClass::SWEEP {
        for policy in [RefreshPolicy::InvalidateOnExpiry, RefreshPolicy::Refresh] {
            if !rc.is_volatile() && policy == RefreshPolicy::Refresh {
                continue;
            }
            let design = L2Design::StaticMultiRetention {
                user_ways: 6,
                kernel_ways: 4,
                user_retention: rc,
                kernel_retention: rc,
                refresh: policy,
            };
            let r = run(&app, design, refs);
            println!(
                "{:9}  {:21}  {:.3}   {:.3}     {:7}  {:8}",
                rc.label(),
                policy.to_string(),
                r.energy_ratio_vs(&base),
                r.slowdown_vs(&base),
                r.expiry.expired,
                r.expiry.refreshes,
            );
        }
    }
    println!();
    println!(
        "Lower retention = cheaper writes but more expiry handling; the paper picks \
         per-segment classes from the lifetime analysis (see example `app_study`)."
    );
    Ok(())
}
