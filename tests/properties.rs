//! Property-based tests (moca-testkit) on the core data structures and
//! cross-crate invariants.

use moca_testkit::{check, check_shrink, shrink_vec, Config, TestRng};
use moca_testkit::{require, require_eq, require_ne};

use moca::cache::{CacheGeometry, ReplacementPolicy, SetAssocCache, WayMask};
use moca::trace::io::{read_binary, read_text, write_binary, write_text};
use moca::trace::{AccessKind, MemoryAccess, Mode};

fn arb_mode(rng: &mut TestRng) -> Mode {
    *rng.pick(&[Mode::User, Mode::Kernel])
}

fn arb_kind(rng: &mut TestRng) -> AccessKind {
    *rng.pick(&[AccessKind::InstrFetch, AccessKind::Load, AccessKind::Store])
}

fn arb_access(rng: &mut TestRng) -> MemoryAccess {
    let (addr, pc) = (rng.next_u64(), rng.next_u64());
    let (kind, mode) = (arb_kind(rng), arb_mode(rng));
    MemoryAccess::new(addr, pc, kind, mode)
}

/// Binary trace serialization round-trips arbitrary records exactly.
#[test]
fn binary_trace_roundtrip() {
    check_shrink(
        Config::cases(64),
        |rng| rng.vec(0, 300, arb_access),
        |v| shrink_vec(v),
        |trace| {
            let mut buf = Vec::new();
            write_binary(&mut buf, trace.iter().copied()).expect("write");
            let back = read_binary(buf.as_slice()).expect("read");
            require_eq!(&back, trace);
            Ok(())
        },
    );
}

/// Text trace serialization round-trips arbitrary records exactly.
#[test]
fn text_trace_roundtrip() {
    check_shrink(
        Config::cases(64),
        |rng| rng.vec(0, 200, arb_access),
        |v| shrink_vec(v),
        |trace| {
            let mut buf = Vec::new();
            write_text(&mut buf, trace.iter().copied()).expect("write");
            let back = read_text(buf.as_slice()).expect("read");
            require_eq!(&back, trace);
            Ok(())
        },
    );
}

/// WayMask set algebra: union/intersection/difference behave like sets
/// over 0..64.
#[test]
fn waymask_set_algebra() {
    check(
        Config::cases(64),
        |rng| (rng.next_u64(), rng.next_u64()),
        |&(a, b)| {
            let (ma, mb) = (WayMask::from_bits(a), WayMask::from_bits(b));
            require_eq!(ma.union(mb).bits(), a | b);
            require_eq!(ma.intersection(mb).bits(), a & b);
            require_eq!(ma.difference(mb).bits(), a & !b);
            require_eq!(ma.union(mb).count(), (a | b).count_ones());
            require_eq!(ma.is_disjoint(mb), a & b == 0);
            // Iteration visits exactly the set bits, in order.
            let ways: Vec<u32> = ma.iter().collect();
            require_eq!(ways.len() as u32, ma.count());
            for w in &ways {
                require!(ma.contains(*w));
            }
            require!(ways.windows(2).all(|w| w[0] < w[1]));
            Ok(())
        },
    );
}

/// Cache bookkeeping invariants hold for arbitrary access sequences
/// under every replacement policy: accesses = hits + misses, occupancy
/// never exceeds the mask capacity, and a line that just hit or filled
/// is resident.
#[test]
fn cache_bookkeeping_invariants() {
    let policies = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random { seed: 1 },
        ReplacementPolicy::Nru,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Srrip,
    ];
    check(
        Config::cases(64),
        |rng| {
            let lines = rng.vec(1, 500, |r| (r.range_u64(0, 4096), r.bool(), arb_mode(r)));
            (lines, rng.range_usize(0, 6), rng.range_u32(1, 9))
        },
        |(lines, policy_idx, mask_ways)| {
            let policy = policies[*policy_idx];
            let geom = CacheGeometry::new(16 * 8 * 64, 8, 64).expect("valid"); // 16 sets, 8 ways
            let mut cache = SetAssocCache::new(geom, policy);
            let mask = WayMask::first(*mask_ways);
            for (i, (line, write, mode)) in lines.iter().enumerate() {
                let res = cache.access(*line, *write, *mode, i as u64, mask);
                let view = cache.probe(*line, mask).expect("line resident after access");
                require_eq!(view.line, *line);
                require!(mask.contains(res.way));
                if let Some(v) = res.victim {
                    require!(!res.hit, "victims only on misses");
                    require_ne!(v.line, *line);
                }
            }
            let stats = cache.stats();
            require_eq!(stats.accesses(), lines.len() as u64);
            require_eq!(stats.hits() + stats.misses(), lines.len() as u64);
            let capacity = geom.sets() * u64::from(*mask_ways);
            require!(cache.occupancy(mask) <= capacity);
            require_eq!(cache.occupancy(WayMask::first(8).difference(mask)), 0);
            // Fills = misses (write-allocate, every miss fills).
            let fills: u64 = Mode::ALL.iter().map(|m| stats.mode(*m).fills).sum();
            require_eq!(fills, stats.misses());
            Ok(())
        },
    );
}

/// Strict partition isolation: two disjoint masks never share lines, and
/// per-mask stats are independent of the other mask's traffic.
#[test]
fn partition_isolation() {
    check_shrink(
        Config::cases(64),
        |rng| rng.vec(1, 400, |r| (r.range_u64(0, 2048), r.bool(), r.bool())),
        |v| shrink_vec(v).into_iter().filter(|c| !c.is_empty()).collect(),
        |ops| {
            let geom = CacheGeometry::new(16 * 8 * 64, 8, 64).expect("valid");
            let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
            let left = WayMask::range(0, 4);
            let right = WayMask::range(4, 8);
            for (i, (line, write, use_left)) in ops.iter().enumerate() {
                let (mask, mode) = if *use_left {
                    (left, Mode::User)
                } else {
                    (right, Mode::Kernel)
                };
                let res = cache.access(*line, *write, mode, i as u64, mask);
                require!(mask.contains(res.way), "fill escaped its mask");
            }
            // No block in the left mask is owned by Kernel and vice versa.
            for (_set, way, view) in cache.iter_valid() {
                if left.contains(way) {
                    require_eq!(view.owner, Mode::User);
                } else {
                    require_eq!(view.owner, Mode::Kernel);
                }
            }
            // Cross-mode evictions are impossible under disjoint masks.
            require_eq!(cache.stats().cross_evictions, [0, 0]);
            Ok(())
        },
    );
}

/// The binary trace decoder never panics on arbitrary input: it either
/// parses records or returns a structured error.
#[test]
fn binary_decoder_is_panic_free() {
    check_shrink(
        Config::cases(128),
        |rng| rng.vec(0, 600, |r| r.next_u64() as u8),
        |v| shrink_vec(v),
        |bytes| {
            let _ = read_binary(bytes.as_slice());
            Ok(())
        },
    );
}

/// Same for the text decoder on arbitrary (possibly non-UTF-8-clean)
/// line input.
#[test]
fn text_decoder_is_panic_free() {
    check(
        Config::cases(128),
        |rng| {
            // Arbitrary unicode scalar values, newlines included.
            rng.vec(0, 300, |r| loop {
                if let Some(c) = char::from_u32(r.next_u64() as u32 % 0x11_0000) {
                    return c;
                }
            })
            .into_iter()
            .collect::<String>()
        },
        |s| {
            let _ = read_text(s.as_bytes());
            Ok(())
        },
    );
}

/// A valid header followed by garbage still never panics, and a
/// truncated valid stream yields a prefix or an error, never junk
/// records beyond the written count.
#[test]
fn truncated_streams_are_safe() {
    check(
        Config::cases(128),
        |rng| (rng.vec(1, 50, arb_access), rng.range_usize(0, 400)),
        |(trace, cut)| {
            let mut buf = Vec::new();
            write_binary(&mut buf, trace.iter().copied()).expect("write");
            let cut = (*cut).min(buf.len());
            if let Ok(records) = read_binary(&buf[..cut]) {
                require!(records.len() <= trace.len());
                require_eq!(&records[..], &trace[..records.len()]);
            }
            Ok(())
        },
    );
}
