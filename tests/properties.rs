//! Property-based tests (proptest) on the core data structures and
//! cross-crate invariants.

use proptest::prelude::*;

use moca::cache::{CacheGeometry, ReplacementPolicy, SetAssocCache, WayMask};
use moca::trace::io::{read_binary, read_text, write_binary, write_text};
use moca::trace::{AccessKind, MemoryAccess, Mode};

fn arb_mode() -> impl Strategy<Value = Mode> {
    prop_oneof![Just(Mode::User), Just(Mode::Kernel)]
}

fn arb_kind() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::InstrFetch),
        Just(AccessKind::Load),
        Just(AccessKind::Store),
    ]
}

fn arb_access() -> impl Strategy<Value = MemoryAccess> {
    (any::<u64>(), any::<u64>(), arb_kind(), arb_mode())
        .prop_map(|(addr, pc, kind, mode)| MemoryAccess::new(addr, pc, kind, mode))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary trace serialization round-trips arbitrary records exactly.
    #[test]
    fn binary_trace_roundtrip(trace in prop::collection::vec(arb_access(), 0..300)) {
        let mut buf = Vec::new();
        write_binary(&mut buf, trace.iter().copied()).expect("write");
        let back = read_binary(buf.as_slice()).expect("read");
        prop_assert_eq!(back, trace);
    }

    /// Text trace serialization round-trips arbitrary records exactly.
    #[test]
    fn text_trace_roundtrip(trace in prop::collection::vec(arb_access(), 0..200)) {
        let mut buf = Vec::new();
        write_text(&mut buf, trace.iter().copied()).expect("write");
        let back = read_text(buf.as_slice()).expect("read");
        prop_assert_eq!(back, trace);
    }

    /// WayMask set algebra: union/intersection/difference behave like
    /// sets over 0..64.
    #[test]
    fn waymask_set_algebra(a in any::<u64>(), b in any::<u64>()) {
        let (ma, mb) = (WayMask::from_bits(a), WayMask::from_bits(b));
        prop_assert_eq!(ma.union(mb).bits(), a | b);
        prop_assert_eq!(ma.intersection(mb).bits(), a & b);
        prop_assert_eq!(ma.difference(mb).bits(), a & !b);
        prop_assert_eq!(ma.union(mb).count(), (a | b).count_ones());
        prop_assert_eq!(ma.is_disjoint(mb), a & b == 0);
        // Iteration visits exactly the set bits, in order.
        let ways: Vec<u32> = ma.iter().collect();
        prop_assert_eq!(ways.len() as u32, ma.count());
        for w in &ways {
            prop_assert!(ma.contains(*w));
        }
        prop_assert!(ways.windows(2).all(|w| w[0] < w[1]));
    }

    /// Cache bookkeeping invariants hold for arbitrary access sequences
    /// under every replacement policy: accesses = hits + misses,
    /// occupancy never exceeds the mask capacity, and a line that just
    /// hit or filled is resident.
    #[test]
    fn cache_bookkeeping_invariants(
        lines in prop::collection::vec((0u64..4096, any::<bool>(), arb_mode()), 1..500),
        policy_idx in 0usize..6,
        mask_ways in 1u32..=8,
    ) {
        let policy = [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random { seed: 1 },
            ReplacementPolicy::Nru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Srrip,
        ][policy_idx];
        let geom = CacheGeometry::new(16 * 8 * 64, 8, 64).expect("valid"); // 16 sets, 8 ways
        let mut cache = SetAssocCache::new(geom, policy);
        let mask = WayMask::first(mask_ways);
        for (i, (line, write, mode)) in lines.iter().enumerate() {
            let res = cache.access(*line, *write, *mode, i as u64, mask);
            let view = cache.probe(*line, mask).expect("line resident after access");
            prop_assert_eq!(view.line, *line);
            prop_assert!(mask.contains(res.way));
            if let Some(v) = res.victim {
                prop_assert!(!res.hit, "victims only on misses");
                prop_assert_ne!(v.line, *line);
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses(), lines.len() as u64);
        prop_assert_eq!(stats.hits() + stats.misses(), lines.len() as u64);
        let capacity = geom.sets() * u64::from(mask_ways);
        prop_assert!(cache.occupancy(mask) <= capacity);
        prop_assert_eq!(cache.occupancy(WayMask::first(8).difference(mask)), 0);
        // Fills = misses (write-allocate, every miss fills).
        let fills: u64 = Mode::ALL.iter().map(|m| stats.mode(*m).fills).sum();
        prop_assert_eq!(fills, stats.misses());
    }

    /// Strict partition isolation: two disjoint masks never share lines,
    /// and per-mask stats are independent of the other mask's traffic.
    #[test]
    fn partition_isolation(
        ops in prop::collection::vec((0u64..2048, any::<bool>(), any::<bool>()), 1..400),
    ) {
        let geom = CacheGeometry::new(16 * 8 * 64, 8, 64).expect("valid");
        let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        let left = WayMask::range(0, 4);
        let right = WayMask::range(4, 8);
        for (i, (line, write, use_left)) in ops.iter().enumerate() {
            let (mask, mode) = if *use_left {
                (left, Mode::User)
            } else {
                (right, Mode::Kernel)
            };
            let res = cache.access(*line, *write, mode, i as u64, mask);
            prop_assert!(mask.contains(res.way), "fill escaped its mask");
        }
        // No block in the left mask is owned by Kernel and vice versa.
        for (_set, way, view) in cache.iter_valid() {
            if left.contains(way) {
                prop_assert_eq!(view.owner, Mode::User);
            } else {
                prop_assert_eq!(view.owner, Mode::Kernel);
            }
        }
        // Cross-mode evictions are impossible under disjoint masks.
        prop_assert_eq!(cache.stats().cross_evictions, [0, 0]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The binary trace decoder never panics on arbitrary input: it
    /// either parses records or returns a structured error.
    #[test]
    fn binary_decoder_is_panic_free(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = read_binary(bytes.as_slice());
    }

    /// Same for the text decoder on arbitrary (possibly non-UTF-8-clean)
    /// line input.
    #[test]
    fn text_decoder_is_panic_free(s in ".{0,300}") {
        let _ = read_text(s.as_bytes());
    }

    /// A valid header followed by garbage still never panics, and a
    /// truncated valid stream yields a prefix or an error, never junk
    /// records beyond the written count.
    #[test]
    fn truncated_streams_are_safe(
        trace in prop::collection::vec(arb_access(), 1..50),
        cut in 0usize..400,
    ) {
        let mut buf = Vec::new();
        write_binary(&mut buf, trace.iter().copied()).expect("write");
        let cut = cut.min(buf.len());
        if let Ok(records) = read_binary(&buf[..cut]) {
            prop_assert!(records.len() <= trace.len());
            prop_assert_eq!(&records[..], &trace[..records.len()]);
        }
    }
}
