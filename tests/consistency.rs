//! Cross-crate accounting consistency: the same events must add up the
//! same way wherever they are counted.

use moca::cache::{L1Pair, L2Request};
use moca::core::{L2Design, MobileL2, L2BaseParams};
use moca::sim::{System, SystemConfig};
use moca::trace::{AppProfile, Mode, TraceGenerator};

fn report(design: L2Design, refs: usize) -> moca::sim::SimReport {
    let app = AppProfile::pdf();
    let mut sys = System::new(app.name, design, SystemConfig::default()).expect("valid");
    sys.run(TraceGenerator::new(&app, 13).take(refs));
    sys.finish()
}

#[test]
fn l2_misses_equal_dram_reads() {
    let r = report(L2Design::baseline(), 200_000);
    assert_eq!(r.l2_stats.misses(), r.traffic.dram_reads);
}

#[test]
fn dram_writes_cover_writebacks_and_expiry() {
    let r = report(L2Design::static_default(), 1_000_000);
    // Every dirty eviction writeback plus expiry writeback reaches DRAM;
    // the traffic counter must be at least the L2-observed writebacks.
    assert!(
        r.traffic.dram_writes >= r.l2_stats.writebacks(),
        "dram writes {} < writebacks {}",
        r.traffic.dram_writes,
        r.l2_stats.writebacks()
    );
    assert!(
        r.traffic.dram_writes
            <= r.l2_stats.writebacks() + r.expiry.expiry_writebacks + r.l2_stats.invalidations,
        "dram writes overcounted"
    );
}

#[test]
fn l1_misses_bound_l2_accesses() {
    let r = report(L2Design::baseline(), 200_000);
    let l1_misses = r.l1_stats.misses();
    // L2 demand accesses = L1 misses; writebacks add more, at most one
    // per L1 miss (a fill can evict at most one dirty block).
    assert!(r.l2_stats.accesses() >= l1_misses);
    assert!(r.l2_stats.accesses() <= 2 * l1_misses);
}

#[test]
fn segment_energies_sum_to_total() {
    let params = L2BaseParams::default();
    let mut l2 = MobileL2::new(L2Design::static_default(), params).expect("valid");
    let app = AppProfile::video();
    let mut l1 = L1Pair::mobile_default();
    let mut now = 0u64;
    for a in TraceGenerator::new(&app, 3).take(150_000) {
        now += 2;
        let o = l1.filter(&a, now);
        for req in [o.demand, o.writeback].into_iter().flatten() {
            l2.request(&req, now);
        }
    }
    l2.finalize(now);
    let total = l2.energy().total().pj();
    let parts = l2.segment_energy(Mode::User).total().pj()
        + l2.segment_energy(Mode::Kernel).total().pj();
    assert!((total - parts).abs() < 1e-6, "total {total} != parts {parts}");
}

#[test]
fn leakage_grows_linearly_with_idle_time() {
    let params = L2BaseParams::default();
    let mk = |end: u64| {
        let mut l2 = MobileL2::new(L2Design::baseline(), params).expect("valid");
        let req = L2Request {
            line: 1,
            write: false,
            mode: Mode::User,
            cause: moca::cache::L2Cause::Demand(moca::trace::AccessKind::Load),
        };
        l2.request(&req, 0);
        l2.finalize(end);
        l2.energy().leakage.pj()
    };
    let one = mk(1_000_000);
    let two = mk(2_000_000);
    assert!((two / one - 2.0).abs() < 0.01, "leakage ratio {}", two / one);
}

#[test]
fn mean_active_ways_matches_timeline_bounds() {
    let r = report(L2Design::dynamic_default(), 1_500_000);
    let min = r
        .timeline
        .iter()
        .map(|s| s.user_ways + s.kernel_ways)
        .min()
        .expect("non-empty") as f64;
    let max = r
        .timeline
        .iter()
        .map(|s| s.user_ways + s.kernel_ways)
        .max()
        .expect("non-empty") as f64;
    assert!(
        r.mean_active_ways >= min - 1e-9 && r.mean_active_ways <= max + 1e-9,
        "mean {} outside [{min}, {max}]",
        r.mean_active_ways
    );
}

#[test]
fn expiry_only_on_volatile_designs() {
    let sram = report(L2Design::baseline(), 400_000);
    assert_eq!(sram.expiry.expired, 0);
    assert_eq!(sram.expiry.refreshes, 0);
    assert_eq!(sram.l2_energy.refresh.pj(), 0.0);
}

#[test]
fn cycle_accounting_matches_stall_model() {
    // Cycles = base (1.5/ref) + stalls; with zero L1 misses impossible,
    // but cycles must stay within [1.5x, 1.5x + worst-stall x refs].
    let r = report(L2Design::baseline(), 100_000);
    let base = (r.refs as f64 * 1.5) as u64;
    assert!(r.cycles >= base);
    let worst = r.refs * (12 + 120) + base; // L2 latency + DRAM per ref
    assert!(r.cycles < worst);
}
