//! Golden-claim regression tests.
//!
//! Each test pins one abstract-level claim of the reproduced paper
//! (C1–C4 in `DESIGN.md`) directly against the simulation — not against
//! the experiment modules' own claim checks — so a regression in the
//! trace generator, the cache substrate, or the system model that would
//! silently change the reproduction's conclusions fails CI loudly.
//!
//! The tests run at `Scale::Quick`; the claims hold with margin there
//! (the full-scale numbers live in `EXPERIMENTS.md`).

use moca::core::{find_min_partition, recommend_retention, L2Design};
use moca::sim::parallel::{parallel_map, Jobs};
use moca::sim::workloads::{
    run_app, run_app_with_behavior, run_suite_parallel, Scale, EXPERIMENT_SEED,
};
use moca::trace::{AppProfile, Mode};

/// C1 — in interactive mobile apps, the OS kernel contributes more than
/// 40 % of all L2 cache accesses (suite mean, shared baseline).
#[test]
fn c1_kernel_share_of_l2_accesses_exceeds_40_percent() {
    let reports = run_suite_parallel(
        L2Design::baseline(),
        Scale::Quick.refs(),
        EXPERIMENT_SEED,
        Jobs::available(),
    );
    let shares: Vec<f64> = reports.iter().map(|r| r.l2_kernel_share()).collect();
    let mean = shares.iter().sum::<f64>() / shares.len() as f64;
    assert!(
        mean > 0.40,
        "C1 regressed: suite-mean kernel share of L2 accesses = {mean:.3} (claim: > 0.40; \
         per-app {shares:?})"
    );
}

/// C2 — user and kernel blocks interfere in a shared L2: giving each
/// mode its own full-size segment lowers the miss rate (positive gap).
#[test]
fn c2_shared_vs_isolated_miss_rate_gap_is_positive() {
    let isolated = L2Design::StaticSram {
        user_ways: 16,
        kernel_ways: 16,
    };
    let deltas = parallel_map(Jobs::available(), AppProfile::suite(), |app| {
        let shared = run_app(&app, L2Design::baseline(), Scale::Quick.refs(), EXPERIMENT_SEED);
        let iso = run_app(&app, isolated, Scale::Quick.refs(), EXPERIMENT_SEED);
        shared.l2_miss_rate() - iso.l2_miss_rate()
    });
    let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
    assert!(
        mean > 0.0,
        "C2 regressed: removing user/kernel interference no longer helps \
         (mean miss-rate delta = {mean:+.4}, per-app {deltas:?})"
    );
}

/// C3 — after partitioning, the L2 can be shrunk: a static partition of
/// at most 12 of 16 ways stays within 2 % absolute miss rate of the
/// full-size shared baseline.
#[test]
fn c3_shrunk_static_partition_stays_within_two_percent_miss_of_shared() {
    let refs = Scale::Quick.sweep_refs();
    let apps = ["browser", "music"];
    let choices = parallel_map(Jobs::available(), apps.to_vec(), |name| {
        let app = AppProfile::by_name(name).expect("known app");
        let baseline = run_app(&app, L2Design::baseline(), refs, EXPERIMENT_SEED);
        find_min_partition(12, 8, baseline.l2_miss_rate(), 0.02, |u, k| {
            run_app(
                &app,
                L2Design::StaticSram {
                    user_ways: u,
                    kernel_ways: k,
                },
                refs,
                EXPERIMENT_SEED,
            )
            .l2_miss_rate()
        })
    });
    for (name, choice) in apps.iter().zip(&choices) {
        assert!(
            choice.total_ways() <= 12,
            "C3 regressed for {name}: no in-budget partition at <= 12 ways \
             (search settled on {} ways)",
            choice.total_ways()
        );
        let gap = choice.miss_rate - choice.baseline_miss_rate;
        assert!(
            gap <= 0.02 + 1e-12,
            "C3 regressed for {name}: chosen partition misses {gap:+.4} above the shared \
             baseline (budget 0.02)"
        );
    }
}

/// Total variation distance between two bucketed distributions
/// (0 = identical, 1 = disjoint support).
fn tv_distance(a: &[u64], b: &[u64]) -> f64 {
    let (ta, tb) = (
        a.iter().sum::<u64>() as f64,
        b.iter().sum::<u64>() as f64,
    );
    if ta == 0.0 || tb == 0.0 {
        return 1.0;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x as f64 / ta - y as f64 / tb).abs())
        .sum::<f64>()
        / 2.0
}

/// C4 — once partitioned, the user and kernel segments show distinct
/// access behaviour: their reuse/lifetime distributions differ
/// materially, and the retention class recommended for the kernel
/// segment is never longer than the user segment's in a majority of
/// apps (the basis for per-segment retention classes).
#[test]
fn c4_kernel_and_user_reuse_lifetime_distributions_are_distinct() {
    let design = L2Design::StaticSram {
        user_ways: 6,
        kernel_ways: 4,
    };
    let stats = parallel_map(Jobs::available(), AppProfile::suite(), |app| {
        let r = run_app_with_behavior(&app, design, Scale::Quick.refs(), EXPERIMENT_SEED);
        let user = r.behavior(Mode::User);
        let kernel = r.behavior(Mode::Kernel);
        let reuse_tv = tv_distance(user.reuse.buckets(), kernel.reuse.buckets());
        let lifetime_tv = tv_distance(user.lifetime.buckets(), kernel.lifetime.buckets());
        let user_rec = recommend_retention(&user.lifetime, r.clock_ghz, 0.95);
        let kernel_rec = recommend_retention(&kernel.lifetime, r.clock_ghz, 0.95);
        (app.name, reuse_tv, lifetime_tv, user_rec, kernel_rec)
    });
    let distinct = stats
        .iter()
        .filter(|(_, reuse_tv, lifetime_tv, _, _)| reuse_tv.max(*lifetime_tv) > 0.10)
        .count();
    let kernel_no_longer = stats
        .iter()
        .filter(|(_, _, _, u, k)| k.duration().secs() <= u.duration().secs())
        .count();
    assert!(
        distinct >= 8,
        "C4 regressed: user/kernel reuse/lifetime distributions are materially distinct \
         (TV distance > 0.10) in only {distinct}/10 apps: {stats:?}"
    );
    assert!(
        kernel_no_longer >= 6,
        "C4 regressed: the kernel segment's recommended retention exceeds the user's in \
         {}/10 apps: {stats:?}",
        10 - kernel_no_longer
    );
}
