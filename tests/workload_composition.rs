//! Integration tests for the workload-composition APIs (builder, phased
//! sessions, co-scheduling) driven through the full system.

use moca::core::L2Design;
use moca::sim::{System, SystemConfig};
use moca::trace::{
    AppProfile, AppProfileBuilder, Mode, MultiProgrammed, PhasedWorkload, Service,
};

fn system(design: L2Design) -> System {
    System::new("composed", design, SystemConfig::default()).expect("valid design")
}

#[test]
fn custom_profile_runs_through_the_system() {
    let profile = AppProfileBuilder::new("io-stress")
        .heap(131_072, 2_048, 0.95)
        .streaming(0.5, 32.0)
        .syscalls(vec![(Service::FileRead, 3.0), (Service::FileWrite, 1.0)])
        .kernel_entry_every(400.0)
        .build();
    let mut sys = system(L2Design::baseline());
    sys.run(moca::trace::TraceGenerator::new(&profile, 7).take(200_000));
    let r = sys.finish();
    assert_eq!(r.refs, 200_000);
    // An IO-stress profile with frequent kernel entries is kernel-heavy.
    assert!(
        r.l2_kernel_share() > 0.45,
        "kernel share {:.3}",
        r.l2_kernel_share()
    );
}

#[test]
fn phased_session_changes_dynamic_allocation() {
    // music (small) then maps (large): the dynamic controller must move.
    let session = PhasedWorkload::new(
        vec![
            (AppProfile::music(), 600_000),
            (AppProfile::maps(), 600_000),
        ],
        21,
    );
    let mut sys = system(L2Design::dynamic_default());
    sys.run(session);
    let r = sys.finish();
    assert!(r.timeline.len() > 3, "controller must react to the phase change");
    let totals: Vec<u32> = r
        .timeline
        .iter()
        .map(|s| s.user_ways + s.kernel_ways)
        .collect();
    let min = *totals.iter().min().expect("non-empty");
    let max = *totals.iter().max().expect("non-empty");
    assert!(max > min, "allocation must vary across phases ({totals:?})");
}

#[test]
fn coscheduled_pair_exercises_both_windows() {
    let apps = vec![AppProfile::music(), AppProfile::office()];
    let mut sys = system(L2Design::baseline());
    sys.run(MultiProgrammed::new(&apps, 10_000, 3).take(300_000));
    let r = sys.finish();
    // Both modes active, interference measurable.
    assert!(r.l2_stats.mode(Mode::User).accesses() > 0);
    assert!(r.l2_stats.mode(Mode::Kernel).accesses() > 0);
    assert!(r.l2_stats.cross_eviction_share() > 0.0);
}

#[test]
fn coscheduling_is_harder_on_the_cache_than_solo() {
    let refs = 300_000;
    let solo = {
        let mut sys = system(L2Design::baseline());
        sys.run(moca::trace::TraceGenerator::new(&AppProfile::music(), 5).take(refs));
        sys.finish()
    };
    let multi = {
        let apps = vec![AppProfile::music(), AppProfile::game()];
        let mut sys = system(L2Design::baseline());
        sys.run(MultiProgrammed::new(&apps, 10_000, 5).take(refs));
        sys.finish()
    };
    assert!(
        multi.l2_miss_rate() > solo.l2_miss_rate() - 0.02,
        "two footprints should not make the L2's life easier ({:.3} vs {:.3})",
        multi.l2_miss_rate(),
        solo.l2_miss_rate()
    );
}

#[test]
fn mixed_session_runs_on_every_headline_design() {
    for design in [
        L2Design::baseline(),
        L2Design::static_default(),
        L2Design::dynamic_default(),
    ] {
        let mut sys = system(design);
        sys.run(PhasedWorkload::mixed_session(20_000, 9));
        let r = sys.finish();
        assert_eq!(r.refs, 200_000);
        assert!(r.l2_energy.total().nj() > 0.0);
    }
}
