//! End-to-end integration: trace generation → L1 filtering → each L2
//! design → reports, across the public facade crate.

use moca::core::{L2Design, RefreshPolicy};
use moca::energy::RetentionClass;
use moca::sim::{System, SystemConfig};
use moca::trace::{AppProfile, Mode, TraceGenerator};

fn run(app: &AppProfile, design: L2Design, refs: usize, seed: u64) -> moca::sim::SimReport {
    let mut sys =
        System::new(app.name, design, SystemConfig::default()).expect("valid design");
    sys.run(TraceGenerator::new(app, seed).take(refs));
    sys.finish()
}

#[test]
fn every_app_runs_on_every_design() {
    let designs = [
        L2Design::baseline(),
        L2Design::StaticSram {
            user_ways: 6,
            kernel_ways: 4,
        },
        L2Design::static_default(),
        L2Design::dynamic_default(),
    ];
    for app in AppProfile::suite() {
        for design in designs {
            let r = run(&app, design, 60_000, 3);
            assert_eq!(r.refs, 60_000, "{}/{}", app.name, r.design);
            assert!(r.cycles > r.refs, "{}/{}", app.name, r.design);
            assert!(r.l2_miss_rate() > 0.0 && r.l2_miss_rate() < 1.0);
            assert!(r.l2_energy.total().nj() > 0.0);
        }
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let app = AppProfile::social();
    let a = run(&app, L2Design::dynamic_default(), 150_000, 11);
    let b = run(&app, L2Design::dynamic_default(), 150_000, 11);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.l2_stats, b.l2_stats);
    assert_eq!(a.timeline, b.timeline);
    assert_eq!(a.expiry, b.expiry);
    assert!((a.l2_energy.total().pj() - b.l2_energy.total().pj()).abs() < 1e-6);
}

#[test]
fn kernel_share_claim_holds_at_small_scale() {
    // C1 at reduced scale: mean L2 kernel share must already be large.
    let mut shares = Vec::new();
    for app in AppProfile::suite() {
        let r = run(&app, L2Design::baseline(), 150_000, 9);
        shares.push(r.l2_kernel_share());
    }
    let mean = shares.iter().sum::<f64>() / shares.len() as f64;
    assert!(mean > 0.35, "mean kernel L2 share {mean:.3}");
}

#[test]
fn partitioning_removes_cross_mode_evictions() {
    let app = AppProfile::email();
    let shared = run(&app, L2Design::baseline(), 200_000, 5);
    let partitioned = run(
        &app,
        L2Design::StaticSram {
            user_ways: 6,
            kernel_ways: 4,
        },
        200_000,
        5,
    );
    assert!(shared.l2_stats.cross_eviction_share() > 0.05);
    assert_eq!(partitioned.l2_stats.cross_eviction_share(), 0.0);
}

#[test]
fn sttram_designs_save_most_of_the_energy() {
    let app = AppProfile::office();
    let base = run(&app, L2Design::baseline(), 400_000, 2);
    let stt = run(&app, L2Design::static_default(), 400_000, 2);
    let ratio = stt.energy_ratio_vs(&base);
    assert!(ratio < 0.35, "static MR-STT norm energy {ratio:.3}");
    // And the performance cost stays bounded.
    let slow = stt.slowdown_vs(&base);
    assert!(slow < 1.15, "slowdown {slow:.3}");
}

#[test]
fn refresh_policy_eliminates_expiry_losses() {
    let app = AppProfile::music();
    let mk = |refresh| L2Design::StaticMultiRetention {
        user_ways: 6,
        kernel_ways: 4,
        user_retention: RetentionClass::TenMillis,
        kernel_retention: RetentionClass::TenMillis,
        refresh,
    };
    // Long enough that 10 ms (10 M cycles) retention expires repeatedly.
    let refs = 3_000_000;
    let invalidate = run(&app, mk(RefreshPolicy::InvalidateOnExpiry), refs, 4);
    let refresh = run(&app, mk(RefreshPolicy::Refresh), refs, 4);
    assert!(invalidate.expiry.expired > 0, "expiry must occur");
    assert_eq!(refresh.expiry.expired, 0, "refresh must prevent expiry");
    assert!(refresh.expiry.refreshes > 0);
    assert!(refresh.l2_energy.refresh.nj() > 0.0);
}

#[test]
fn dynamic_design_gates_ways_on_long_runs() {
    let app = AppProfile::music();
    let r = run(&app, L2Design::dynamic_default(), 2_000_000, 8);
    assert!(
        r.mean_active_ways < 15.0,
        "expected gating, mean ways {:.1}",
        r.mean_active_ways
    );
    assert!(r.timeline.len() > 2, "controller must repartition");
}

#[test]
fn isolation_is_strict_between_segments() {
    // A kernel line never hits in the user segment and vice versa, by
    // construction of the generated addresses and mode routing.
    let app = AppProfile::game();
    let r = run(
        &app,
        L2Design::StaticSram {
            user_ways: 2,
            kernel_ways: 2,
        },
        100_000,
        6,
    );
    // Per-mode accesses add up and the two modes were actually exercised.
    let u = r.l2_stats.mode(Mode::User).accesses();
    let k = r.l2_stats.mode(Mode::Kernel).accesses();
    assert_eq!(u + k, r.l2_stats.accesses());
    assert!(u > 0 && k > 0);
}
