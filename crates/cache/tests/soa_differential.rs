//! Differential property suite: the structure-of-arrays cache engine
//! against a retained array-of-structs reference model.
//!
//! The production [`SetAssocCache`] stores block state split into hot
//! (tags, signatures, valid/dirty bitmasks) and cold (metadata records)
//! arrays with fused policy dispatch and SWAR scans. This suite keeps a
//! deliberately naive one-struct-per-block model with straightforward
//! per-way loops and checks — over randomized geometries, policies, way
//! masks, and operation sequences — that the two produce the identical
//! [`AccessResult`] / [`EvictedBlock`] stream, the identical probe
//! answers, and the identical final [`CacheStats`] and occupancy.

use moca_cache::{
    AccessResult, BlockView, CacheGeometry, CacheStats, EvictedBlock, ReplacementPolicy,
    SetAssocCache, WayMask,
};
use moca_testkit::{check, require, require_eq, Config, TestRng};
use moca_trace::Mode;

// ---------------------------------------------------------------------------
// Reference replacement policies: per-block flat arrays, plain loops.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum RefPolicy {
    /// LRU and FIFO share timestamp storage; only LRU refreshes on hits.
    Stamped { lru: bool, stamps: Vec<u64>, clock: u64 },
    Random { state: u64 },
    Nru { referenced: Vec<bool> },
    /// Tree PLRU, one boolean per tree node per set. `true` means "the
    /// LRU side is the left subtree".
    Plru { nodes: Vec<bool>, ways: u32 },
    Srrip { rrpv: Vec<u8> },
}

impl RefPolicy {
    fn new(policy: ReplacementPolicy, sets: u64, ways: u32) -> Self {
        let n = sets as usize * ways as usize;
        match policy {
            ReplacementPolicy::Lru => RefPolicy::Stamped {
                lru: true,
                stamps: vec![0; n],
                clock: 0,
            },
            ReplacementPolicy::Fifo => RefPolicy::Stamped {
                lru: false,
                stamps: vec![0; n],
                clock: 0,
            },
            ReplacementPolicy::Random { seed } => RefPolicy::Random { state: seed | 1 },
            ReplacementPolicy::Nru => RefPolicy::Nru {
                referenced: vec![false; n],
            },
            ReplacementPolicy::TreePlru => RefPolicy::Plru {
                nodes: vec![false; sets as usize * ways as usize],
                ways,
            },
            ReplacementPolicy::Srrip => RefPolicy::Srrip { rrpv: vec![3; n] },
        }
    }

    fn on_hit(&mut self, set: u64, ways: u32, way: u32) {
        let i = set as usize * ways as usize + way as usize;
        match self {
            RefPolicy::Stamped { lru, stamps, clock } => {
                if *lru {
                    *clock += 1;
                    stamps[i] = *clock;
                }
            }
            RefPolicy::Random { .. } => {}
            RefPolicy::Nru { referenced } => referenced[i] = true,
            RefPolicy::Plru { nodes, ways } => {
                let w = *ways;
                plru_touch(set_nodes(nodes, set, w), w, way);
            }
            RefPolicy::Srrip { rrpv } => rrpv[i] = 0,
        }
    }

    fn on_fill(&mut self, set: u64, ways: u32, way: u32) {
        let i = set as usize * ways as usize + way as usize;
        match self {
            RefPolicy::Stamped { stamps, clock, .. } => {
                *clock += 1;
                stamps[i] = *clock;
            }
            RefPolicy::Random { .. } => {}
            RefPolicy::Nru { referenced } => referenced[i] = true,
            RefPolicy::Plru { nodes, ways } => {
                let w = *ways;
                plru_touch(set_nodes(nodes, set, w), w, way);
            }
            RefPolicy::Srrip { rrpv } => rrpv[i] = 2,
        }
    }

    fn victim(&mut self, set: u64, ways: u32, allowed: WayMask) -> u32 {
        let base = set as usize * ways as usize;
        match self {
            RefPolicy::Stamped { stamps, .. } => allowed
                .iter()
                .min_by_key(|&w| stamps[base + w as usize])
                .expect("non-empty mask"),
            RefPolicy::Random { state } => {
                let mut x = *state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *state = x;
                let nth = (x % u64::from(allowed.count())) as usize;
                allowed.iter().nth(nth).expect("nth < count")
            }
            RefPolicy::Nru { referenced } => {
                if let Some(w) = allowed.iter().find(|&w| !referenced[base + w as usize]) {
                    return w;
                }
                for w in allowed.iter() {
                    referenced[base + w as usize] = false;
                }
                allowed.lowest().expect("non-empty mask")
            }
            RefPolicy::Plru { nodes, ways } => {
                let w = *ways;
                plru_victim(set_nodes(nodes, set, w), w, allowed)
            }
            RefPolicy::Srrip { rrpv } => loop {
                if let Some(w) = allowed.iter().find(|&w| rrpv[base + w as usize] >= 3) {
                    return w;
                }
                for w in allowed.iter() {
                    rrpv[base + w as usize] += 1;
                }
            },
        }
    }
}

fn set_nodes(nodes: &mut [bool], set: u64, ways: u32) -> &mut [bool] {
    let base = set as usize * ways as usize;
    &mut nodes[base..base + ways as usize]
}

fn plru_touch(nodes: &mut [bool], ways: u32, way: u32) {
    let mut node = 0usize;
    let mut lo = 0u32;
    let mut size = ways;
    while size > 1 {
        let half = size / 2;
        let go_right = way >= lo + half;
        nodes[node] = go_right;
        if go_right {
            lo += half;
            node = 2 * node + 2;
        } else {
            node = 2 * node + 1;
        }
        size = half;
    }
}

fn plru_victim(nodes: &mut [bool], ways: u32, allowed: WayMask) -> u32 {
    if ways < 2 {
        return 0;
    }
    let mut node = 0usize;
    let mut lo = 0u32;
    let mut size = ways;
    while size > 1 {
        let half = size / 2;
        let left = WayMask::range(lo, lo + half).intersection(allowed);
        let right = WayMask::range(lo + half, lo + size).intersection(allowed);
        let prefer_left = nodes[node];
        let go_right = if prefer_left {
            left.is_empty()
        } else {
            !right.is_empty()
        };
        node = 2 * node + if go_right { 2 } else { 1 };
        if go_right {
            lo += half;
        }
        size = half;
    }
    lo
}

// ---------------------------------------------------------------------------
// Reference cache: one struct per block.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, Default)]
struct RefBlock {
    valid: bool,
    dirty: bool,
    tag: u64,
    owner_kernel: bool,
    inserted_at: u64,
    last_touch: u64,
    last_write: u64,
    access_count: u64,
}

#[derive(Debug, Clone)]
struct RefCache {
    sets: u64,
    ways: u32,
    set_mask: u64,
    tag_shift: u32,
    blocks: Vec<RefBlock>,
    policy: RefPolicy,
    stats: CacheStats,
}

impl RefCache {
    fn new(sets: u64, ways: u32, policy: ReplacementPolicy) -> Self {
        RefCache {
            sets,
            ways,
            set_mask: sets - 1,
            tag_shift: sets.trailing_zeros(),
            blocks: vec![RefBlock::default(); sets as usize * ways as usize],
            policy: RefPolicy::new(policy, sets, ways),
            stats: CacheStats::new(),
        }
    }

    fn idx(&self, set: u64, way: u32) -> usize {
        set as usize * self.ways as usize + way as usize
    }

    fn owner(b: &RefBlock) -> Mode {
        if b.owner_kernel {
            Mode::Kernel
        } else {
            Mode::User
        }
    }

    fn evicted(&self, set: u64, way: u32) -> EvictedBlock {
        let b = &self.blocks[self.idx(set, way)];
        EvictedBlock {
            line: (b.tag << self.tag_shift) | set,
            dirty: b.dirty,
            owner: Self::owner(b),
            inserted_at: b.inserted_at,
            last_touch: b.last_touch,
            last_write: b.last_write,
            access_count: b.access_count,
        }
    }

    fn access(&mut self, line: u64, write: bool, mode: Mode, now: u64, mask: WayMask) -> AccessResult {
        let set = line & self.set_mask;
        let tag = line >> self.tag_shift;
        for way in mask.iter() {
            let i = self.idx(set, way);
            if self.blocks[i].valid && self.blocks[i].tag == tag {
                let b = &mut self.blocks[i];
                if write {
                    b.dirty = true;
                    b.last_write = now;
                }
                b.last_touch = now;
                b.access_count += 1;
                self.policy.on_hit(set, self.ways, way);
                self.stats.by_mode[mode.index()].hits += 1;
                self.stats.by_mode[mode.index()].writes += u64::from(write);
                return AccessResult {
                    hit: true,
                    way,
                    victim: None,
                };
            }
        }

        let empty = mask.iter().find(|&w| !self.blocks[self.idx(set, w)].valid);
        let (way, victim) = match empty {
            Some(w) => (w, None),
            None => {
                let w = self.policy.victim(set, self.ways, mask);
                let ev = self.evicted(set, w);
                if ev.owner == mode {
                    self.stats.same_evictions[ev.owner.index()] += 1;
                } else {
                    self.stats.cross_evictions[ev.owner.index()] += 1;
                }
                (w, Some(ev))
            }
        };
        self.policy.on_fill(set, self.ways, way);
        let i = self.idx(set, way);
        self.blocks[i] = RefBlock {
            valid: true,
            dirty: write,
            tag,
            owner_kernel: mode == Mode::Kernel,
            inserted_at: now,
            last_touch: now,
            last_write: now,
            access_count: 1,
        };
        let c = &mut self.stats.by_mode[mode.index()];
        c.misses += 1;
        c.fills += 1;
        c.writes += u64::from(write);
        c.writebacks += u64::from(victim.is_some_and(|v| v.dirty));
        AccessResult {
            hit: false,
            way,
            victim,
        }
    }

    fn probe(&self, line: u64, mask: WayMask) -> Option<BlockView> {
        let set = line & self.set_mask;
        let tag = line >> self.tag_shift;
        for way in mask.iter() {
            let b = &self.blocks[self.idx(set, way)];
            if b.valid && b.tag == tag {
                return Some(BlockView {
                    line: (b.tag << self.tag_shift) | set,
                    dirty: b.dirty,
                    owner: Self::owner(b),
                    inserted_at: b.inserted_at,
                    last_touch: b.last_touch,
                    last_write: b.last_write,
                    access_count: b.access_count,
                });
            }
        }
        None
    }

    fn invalidate_line(&mut self, line: u64, mask: WayMask) -> Option<EvictedBlock> {
        let set = line & self.set_mask;
        let tag = line >> self.tag_shift;
        for way in mask.iter() {
            let i = self.idx(set, way);
            if self.blocks[i].valid && self.blocks[i].tag == tag {
                let ev = self.evicted(set, way);
                self.blocks[i].valid = false;
                self.stats.invalidations += 1;
                return Some(ev);
            }
        }
        None
    }

    fn occupancy(&self, mask: WayMask) -> u64 {
        (0..self.sets)
            .flat_map(|set| mask.iter().map(move |w| (set, w)))
            .filter(|&(set, w)| w < self.ways && self.blocks[self.idx(set, w)].valid)
            .count() as u64
    }
}

// ---------------------------------------------------------------------------
// Case generation.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Op {
    Access {
        line: u64,
        write: bool,
        kernel: bool,
        mask_pick: u8,
    },
    Probe {
        line: u64,
        mask_pick: u8,
    },
    InvalidateLine {
        line: u64,
        mask_pick: u8,
    },
}

#[derive(Debug, Clone)]
struct Case {
    sets: u64,
    ways: u32,
    policy: ReplacementPolicy,
    /// Three reusable non-empty masks the ops pick from; mixing masks in
    /// one run exercises partition-style overlapping footprints.
    masks: [WayMask; 3],
    ops: Vec<Op>,
}

fn arb_policy(rng: &mut TestRng) -> ReplacementPolicy {
    match rng.range_usize(0, 6) {
        0 => ReplacementPolicy::Lru,
        1 => ReplacementPolicy::Fifo,
        2 => ReplacementPolicy::Random {
            seed: rng.range_u64(1, 1 << 20),
        },
        3 => ReplacementPolicy::Nru,
        4 => ReplacementPolicy::TreePlru,
        _ => ReplacementPolicy::Srrip,
    }
}

fn arb_mask(rng: &mut TestRng, ways: u32) -> WayMask {
    let full = WayMask::first(ways);
    if ways == 1 || rng.range_usize(0, 3) == 0 {
        return full;
    }
    // A random non-empty subset of the legal ways.
    let bits = rng.range_u64(1, 1 << ways);
    let m = WayMask::from_bits(bits).intersection(full);
    if m.is_empty() {
        full
    } else {
        m
    }
}

fn arb_case(rng: &mut TestRng) -> Case {
    let sets = 1u64 << rng.range_u32(1, 5); // 2..16 sets
    let ways = 1u32 << rng.range_u32(0, 4); // 1..8 ways (pow2 for PLRU)
    let policy = arb_policy(rng);
    let masks = [
        arb_mask(rng, ways),
        arb_mask(rng, ways),
        arb_mask(rng, ways),
    ];
    // A small line universe (a few times the capacity) forces conflicts
    // and evictions without making every access a cold miss.
    let universe = sets * u64::from(ways) * 3;
    let ops = rng.vec(50, 400, |r| {
        let line = r.range_u64(0, universe);
        let mask_pick = r.range_u64(0, 3) as u8;
        match r.range_usize(0, 10) {
            0 => Op::Probe { line, mask_pick },
            1 => Op::InvalidateLine { line, mask_pick },
            _ => Op::Access {
                line,
                write: r.bool(),
                kernel: r.bool(),
                mask_pick,
            },
        }
    });
    Case {
        sets,
        ways,
        policy,
        masks,
        ops,
    }
}

// ---------------------------------------------------------------------------
// The differential property.
// ---------------------------------------------------------------------------

#[test]
fn soa_engine_matches_reference_model() {
    check(Config::cases(96), arb_case, |case| {
        let geom = CacheGeometry::new(case.sets * u64::from(case.ways) * 64, case.ways, 64)
            .expect("generated geometry is valid");
        let mut soa = SetAssocCache::new(geom, case.policy);
        let mut reference = RefCache::new(case.sets, case.ways, case.policy);

        for (i, op) in case.ops.iter().enumerate() {
            let now = i as u64;
            match *op {
                Op::Access {
                    line,
                    write,
                    kernel,
                    mask_pick,
                } => {
                    let mode = if kernel { Mode::Kernel } else { Mode::User };
                    let mask = case.masks[mask_pick as usize];
                    let got = soa.access(line, write, mode, now, mask);
                    let want = reference.access(line, write, mode, now, mask);
                    require_eq!(got, want, "access #{i} diverged ({:?})", case.policy);
                }
                Op::Probe { line, mask_pick } => {
                    let mask = case.masks[mask_pick as usize];
                    require_eq!(
                        soa.probe(line, mask),
                        reference.probe(line, mask),
                        "probe #{i} diverged"
                    );
                }
                Op::InvalidateLine { line, mask_pick } => {
                    let mask = case.masks[mask_pick as usize];
                    require_eq!(
                        soa.invalidate_line(line, mask),
                        reference.invalidate_line(line, mask),
                        "invalidate #{i} diverged"
                    );
                }
            }
        }

        require_eq!(*soa.stats(), reference.stats, "final stats diverged");
        for mask in case.masks {
            require_eq!(soa.occupancy(mask), reference.occupancy(mask));
        }
        // Every resident block agrees in both directions: the SoA view of
        // each valid slot matches the reference's, and the counts match,
        // so neither holds blocks the other lacks.
        let mut soa_valid = 0u64;
        for (set, way, view) in soa.iter_valid() {
            soa_valid += 1;
            let i = reference.idx(set, way);
            let b = &reference.blocks[i];
            require!(b.valid, "slot ({set},{way}) valid only in the SoA engine");
            let want = BlockView {
                line: (b.tag << reference.tag_shift) | set,
                dirty: b.dirty,
                owner: RefCache::owner(b),
                inserted_at: b.inserted_at,
                last_touch: b.last_touch,
                last_write: b.last_write,
                access_count: b.access_count,
            };
            require_eq!(view, want, "slot ({set},{way}) metadata diverged");
        }
        require_eq!(soa_valid, reference.occupancy(WayMask::first(case.ways)));
        Ok(())
    });
}

/// The same differential run driven with a single fixed mask per case,
/// shaped like the paper's partitioned workloads: two disjoint segment
/// masks with each mode confined to its own segment.
#[test]
fn soa_engine_matches_reference_under_partitioning() {
    check(
        Config::cases(48),
        |rng| {
            let sets = 1u64 << rng.range_u32(1, 4);
            let ways = 4u32 * (1 << rng.range_u32(0, 2)); // 4 or 8
            let split = rng.range_u32(1, ways);
            let policy = arb_policy(rng);
            let universe = sets * u64::from(ways) * 3;
            let accesses = rng.vec(100, 400, |r| {
                (r.range_u64(0, universe), r.bool(), r.bool())
            });
            (sets, ways, split, policy, accesses)
        },
        |&(sets, ways, split, policy, ref accesses)| {
            let geom = CacheGeometry::new(sets * u64::from(ways) * 64, ways, 64)
                .expect("generated geometry is valid");
            let user = WayMask::range(0, split);
            let kernel = WayMask::range(split, ways);
            let mut soa = SetAssocCache::new(geom, policy);
            let mut reference = RefCache::new(sets, ways, policy);
            for (i, &(line, write, is_kernel)) in accesses.iter().enumerate() {
                let (mode, mask) = if is_kernel {
                    (Mode::Kernel, kernel)
                } else {
                    (Mode::User, user)
                };
                let got = soa.access(line, write, mode, i as u64, mask);
                let want = reference.access(line, write, mode, i as u64, mask);
                require_eq!(got, want, "access #{i} diverged ({policy:?})");
            }
            require_eq!(*soa.stats(), reference.stats);
            // Partitioned segments never cross-evict.
            require_eq!(soa.stats().cross_evictions, [0, 0]);
            Ok(())
        },
    );
}
