//! Property-based tests (moca-testkit) of the replacement policies
//! through the public cache API: every policy must preserve the cache's
//! structural invariants under arbitrary access interleavings and mask
//! shapes.

use moca_testkit::{check, check_shrink, shrink_vec, Config, TestRng};
use moca_testkit::{require, require_eq, require_ne};

use moca_cache::{CacheGeometry, ReplacementPolicy, SetAssocCache, WayMask};
use moca_trace::Mode;

fn arb_policy(rng: &mut TestRng) -> ReplacementPolicy {
    match rng.range_usize(0, 6) {
        0 => ReplacementPolicy::Lru,
        1 => ReplacementPolicy::Fifo,
        2 => ReplacementPolicy::Random {
            seed: rng.range_u64(1, 1000),
        },
        3 => ReplacementPolicy::Nru,
        4 => ReplacementPolicy::TreePlru,
        _ => ReplacementPolicy::Srrip,
    }
}

/// A non-empty mask over 8 ways.
fn arb_mask(rng: &mut TestRng) -> WayMask {
    WayMask::from_bits(rng.range_u64(1, 256))
}

/// Under any policy and mask, an immediate re-access of the line just
/// accessed is a hit (no policy may evict the block it just touched for
/// an access to the same line).
#[test]
fn reaccess_is_always_hit() {
    check(
        Config::cases(48),
        |rng| {
            (
                arb_policy(rng),
                arb_mask(rng),
                rng.vec(1, 200, |r| r.range_u64(0, 10_000)),
            )
        },
        |(policy, mask, lines)| {
            let geom = CacheGeometry::new(32 * 8 * 64, 8, 64).expect("valid");
            let mut cache = SetAssocCache::new(geom, *policy);
            for (i, line) in lines.iter().enumerate() {
                cache.access(*line, false, Mode::User, i as u64, *mask);
                let again = cache.access(*line, false, Mode::User, i as u64 + 1, *mask);
                require!(again.hit, "immediate re-access must hit ({policy:?})");
            }
            Ok(())
        },
    );
}

/// A victim is never the line being inserted, is always previously
/// valid, and vacating it leaves the set within capacity.
#[test]
fn victims_are_sane() {
    check(
        Config::cases(48),
        |rng| {
            (
                arb_policy(rng),
                rng.vec(32, 300, |r| r.range_u64(0, 64)), // few sets → evictions
            )
        },
        |(policy, lines)| {
            let geom = CacheGeometry::new(4 * 4 * 64, 4, 64).expect("valid"); // 4 sets
            let mut cache = SetAssocCache::new(geom, *policy);
            let mask = WayMask::first(4);
            for (i, line) in lines.iter().enumerate() {
                let res = cache.access(*line, i % 3 == 0, Mode::User, i as u64, mask);
                if let Some(v) = res.victim {
                    require_ne!(v.line, *line);
                    require!(v.access_count >= 1);
                    require!(v.last_touch >= v.inserted_at);
                    require!(v.last_write >= v.inserted_at);
                }
            }
            require!(cache.occupancy(mask) <= 16);
            Ok(())
        },
    );
}

/// Statistics are conserved: every miss either filled an empty way or
/// produced exactly one eviction.
#[test]
fn eviction_conservation() {
    check(
        Config::cases(48),
        |rng| (arb_policy(rng), rng.vec(1, 400, |r| r.range_u64(0, 128))),
        |(policy, lines)| {
            let geom = CacheGeometry::new(8 * 4 * 64, 4, 64).expect("valid"); // 8 sets
            let mut cache = SetAssocCache::new(geom, *policy);
            let mask = WayMask::first(4);
            let mut evictions = 0u64;
            for (i, line) in lines.iter().enumerate() {
                if cache
                    .access(*line, false, Mode::User, i as u64, mask)
                    .victim
                    .is_some()
                {
                    evictions += 1;
                }
            }
            let stats = cache.stats();
            require_eq!(stats.evictions(), evictions);
            require_eq!(
                stats.misses(),
                evictions + cache.occupancy(mask),
                "misses = evictions + resident blocks (fills into empty ways)"
            );
            Ok(())
        },
    );
}

/// Drain + re-access: draining a way invalidates exactly its blocks and
/// the drained lines subsequently miss.
#[test]
fn drain_way_consistency() {
    check_shrink(
        Config::cases(48),
        |rng| {
            (
                arb_policy(rng),
                rng.vec(16, 200, |r| r.range_u64(0, 256)),
                rng.range_u32(0, 4),
            )
        },
        |(policy, lines, way)| {
            // Shrink only the access sequence; keep policy and way fixed.
            shrink_vec(lines)
                .into_iter()
                .map(|c| (*policy, c, *way))
                .collect()
        },
        |(policy, lines, way)| {
            let geom = CacheGeometry::new(8 * 4 * 64, 4, 64).expect("valid");
            let mut cache = SetAssocCache::new(geom, *policy);
            let mask = WayMask::first(4);
            for (i, line) in lines.iter().enumerate() {
                cache.access(*line, false, Mode::User, i as u64, mask);
            }
            let before = cache.occupancy(mask);
            let drained = cache.drain_way(*way);
            require_eq!(cache.occupancy(mask), before - drained.len() as u64);
            for ev in &drained {
                require!(
                    cache.probe(ev.line, mask).is_none(),
                    "drained line still probes"
                );
            }
            Ok(())
        },
    );
}
