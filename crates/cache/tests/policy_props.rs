//! Property-based tests of the replacement policies through the public
//! cache API: every policy must preserve the cache's structural
//! invariants under arbitrary access interleavings and mask shapes.

use proptest::prelude::*;

use moca_cache::{CacheGeometry, ReplacementPolicy, SetAssocCache, WayMask};
use moca_trace::Mode;

fn arb_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::Fifo),
        (1u64..1000).prop_map(|seed| ReplacementPolicy::Random { seed }),
        Just(ReplacementPolicy::Nru),
        Just(ReplacementPolicy::TreePlru),
        Just(ReplacementPolicy::Srrip),
    ]
}

/// A non-empty mask over 8 ways.
fn arb_mask() -> impl Strategy<Value = WayMask> {
    (1u64..256).prop_map(WayMask::from_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any policy and mask, an immediate re-access of the line just
    /// accessed is a hit (no policy may evict the block it just touched
    /// for an access to the same line).
    #[test]
    fn reaccess_is_always_hit(
        policy in arb_policy(),
        mask in arb_mask(),
        lines in prop::collection::vec(0u64..10_000, 1..200),
    ) {
        let geom = CacheGeometry::new(32 * 8 * 64, 8, 64).expect("valid");
        let mut cache = SetAssocCache::new(geom, policy);
        for (i, line) in lines.iter().enumerate() {
            cache.access(*line, false, Mode::User, i as u64, mask);
            let again = cache.access(*line, false, Mode::User, i as u64 + 1, mask);
            prop_assert!(again.hit, "immediate re-access must hit ({policy:?})");
        }
    }

    /// A victim is never the line being inserted, is always previously
    /// valid, and vacating it leaves the set within capacity.
    #[test]
    fn victims_are_sane(
        policy in arb_policy(),
        lines in prop::collection::vec(0u64..64, 32..300), // few sets → evictions
    ) {
        let geom = CacheGeometry::new(4 * 4 * 64, 4, 64).expect("valid"); // 4 sets
        let mut cache = SetAssocCache::new(geom, policy);
        let mask = WayMask::first(4);
        for (i, line) in lines.iter().enumerate() {
            let res = cache.access(*line, i % 3 == 0, Mode::User, i as u64, mask);
            if let Some(v) = res.victim {
                prop_assert_ne!(v.line, *line);
                prop_assert!(v.access_count >= 1);
                prop_assert!(v.last_touch >= v.inserted_at);
                prop_assert!(v.last_write >= v.inserted_at);
            }
        }
        prop_assert!(cache.occupancy(mask) <= 16);
    }

    /// Statistics are conserved: every miss either filled an empty way or
    /// produced exactly one eviction.
    #[test]
    fn eviction_conservation(
        policy in arb_policy(),
        lines in prop::collection::vec(0u64..128, 1..400),
    ) {
        let geom = CacheGeometry::new(8 * 4 * 64, 4, 64).expect("valid"); // 8 sets
        let mut cache = SetAssocCache::new(geom, policy);
        let mask = WayMask::first(4);
        let mut evictions = 0u64;
        for (i, line) in lines.iter().enumerate() {
            if cache.access(*line, false, Mode::User, i as u64, mask).victim.is_some() {
                evictions += 1;
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.evictions(), evictions);
        prop_assert_eq!(
            stats.misses(),
            evictions + cache.occupancy(mask),
            "misses = evictions + resident blocks (fills into empty ways)"
        );
    }

    /// Drain + re-access: draining a way invalidates exactly its blocks
    /// and the drained lines subsequently miss.
    #[test]
    fn drain_way_consistency(
        policy in arb_policy(),
        lines in prop::collection::vec(0u64..256, 16..200),
        way in 0u32..4,
    ) {
        let geom = CacheGeometry::new(8 * 4 * 64, 4, 64).expect("valid");
        let mut cache = SetAssocCache::new(geom, policy);
        let mask = WayMask::first(4);
        for (i, line) in lines.iter().enumerate() {
            cache.access(*line, false, Mode::User, i as u64, mask);
        }
        let before = cache.occupancy(mask);
        let drained = cache.drain_way(way);
        prop_assert_eq!(cache.occupancy(mask), before - drained.len() as u64);
        for ev in &drained {
            prop_assert!(cache.probe(ev.line, mask).is_none(), "drained line still probes");
        }
    }
}
