//! First-level cache pair (L1I + L1D) filtering traffic toward the L2.
//!
//! The paper's designs operate on the L2; the L1s matter because they
//! *shape* the L2 request mix. User code has tight loops that the L1s
//! absorb well, while kernel bursts sweep larger, colder structures —
//! which is why the kernel's share of traffic grows from the raw trace to
//! the L2 (claim C1).

use moca_trace::{AccessKind, MemoryAccess, Mode};

use crate::cache::SetAssocCache;
use crate::config::{CacheGeometry, WayMask};
use crate::replacement::ReplacementPolicy;

/// Why an L2 request was generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Cause {
    /// Demand fetch caused by an L1 miss.
    Demand(AccessKind),
    /// Writeback of a dirty L1 victim.
    Writeback,
}

/// A request sent from the L1 level to the L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Request {
    /// Line address (byte address / line size).
    pub line: u64,
    /// `true` if the L2 copy must be marked dirty (writebacks).
    pub write: bool,
    /// Privilege mode attributed to the request. Demand requests carry the
    /// requesting mode; writebacks carry the mode that owned the L1 block.
    pub mode: Mode,
    /// What produced the request.
    pub cause: L2Cause,
}

/// Result of filtering one access through the L1 pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Outcome {
    /// Whether the access hit in its L1.
    pub hit: bool,
    /// Demand request toward the L2 (present iff `!hit`).
    pub demand: Option<L2Request>,
    /// Writeback toward the L2 (dirty L1 victim), if any.
    pub writeback: Option<L2Request>,
}

/// An L1 instruction + data cache pair with a shared line size.
///
/// Write-back, write-allocate; both caches always use their full way mask
/// (partitioning applies only at the L2 in this system).
#[derive(Debug, Clone)]
pub struct L1Pair {
    icache: SetAssocCache,
    dcache: SetAssocCache,
    imask: WayMask,
    dmask: WayMask,
}

impl L1Pair {
    /// Creates the pair.
    ///
    /// # Panics
    ///
    /// Panics if the two geometries have different line sizes.
    pub fn new(igeom: CacheGeometry, dgeom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        assert_eq!(
            igeom.line_bytes(),
            dgeom.line_bytes(),
            "L1I and L1D must share a line size"
        );
        Self {
            imask: WayMask::first(igeom.ways()),
            dmask: WayMask::first(dgeom.ways()),
            icache: SetAssocCache::new(igeom, policy),
            dcache: SetAssocCache::new(dgeom, policy),
        }
    }

    /// Typical mobile L1s: 32 KiB, 2-way, 64 B lines, LRU.
    pub fn mobile_default() -> Self {
        let geom = CacheGeometry::new(32 << 10, 2, 64).expect("static geometry is valid");
        Self::new(geom, geom, ReplacementPolicy::Lru)
    }

    /// Line size shared by both caches.
    pub fn line_bytes(&self) -> u64 {
        self.icache.geometry().line_bytes()
    }

    /// The instruction cache.
    pub fn icache(&self) -> &SetAssocCache {
        &self.icache
    }

    /// The data cache.
    pub fn dcache(&self) -> &SetAssocCache {
        &self.dcache
    }

    /// Resets both caches' statistics.
    pub fn reset_stats(&mut self) {
        self.icache.reset_stats();
        self.dcache.reset_stats();
    }

    /// Filters one access; returns the L2 traffic it generates.
    pub fn filter(&mut self, access: &MemoryAccess, now: u64) -> L1Outcome {
        let line = access.line(self.line_bytes());
        let (cache, mask) = if access.kind.is_ifetch() {
            (&mut self.icache, self.imask)
        } else {
            (&mut self.dcache, self.dmask)
        };
        let res = cache.access(line, access.kind.is_write(), access.mode, now, mask);
        if res.hit {
            return L1Outcome {
                hit: true,
                demand: None,
                writeback: None,
            };
        }
        let demand = Some(L2Request {
            line,
            write: false,
            mode: access.mode,
            cause: L2Cause::Demand(access.kind),
        });
        let writeback = res.victim.filter(|v| v.dirty).map(|v| L2Request {
            line: v.line,
            write: true,
            mode: v.owner,
            cause: L2Cause::Writeback,
        });
        L1Outcome {
            hit: false,
            demand,
            writeback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_trace::{AppProfile, TraceGenerator};

    fn acc(addr: u64, kind: AccessKind, mode: Mode) -> MemoryAccess {
        MemoryAccess::new(addr, 0x400, kind, mode)
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut l1 = L1Pair::mobile_default();
        let a = acc(0x1000, AccessKind::Load, Mode::User);
        let o1 = l1.filter(&a, 0);
        assert!(!o1.hit);
        let d = o1.demand.expect("demand on miss");
        assert_eq!(d.line, 0x1000 / 64);
        assert_eq!(d.cause, L2Cause::Demand(AccessKind::Load));
        assert!(!d.write);
        let o2 = l1.filter(&a, 1);
        assert!(o2.hit);
        assert!(o2.demand.is_none() && o2.writeback.is_none());
    }

    #[test]
    fn ifetch_and_data_use_separate_caches() {
        let mut l1 = L1Pair::mobile_default();
        let load = acc(0x2000, AccessKind::Load, Mode::User);
        let fetch = acc(0x2000, AccessKind::InstrFetch, Mode::User);
        assert!(!l1.filter(&load, 0).hit);
        // Same address as an ifetch still misses: different cache.
        assert!(!l1.filter(&fetch, 1).hit);
        assert_eq!(l1.icache().stats().misses(), 1);
        assert_eq!(l1.dcache().stats().misses(), 1);
    }

    #[test]
    fn dirty_victim_produces_writeback() {
        // 32 KiB 2-way 64 B: 256 sets. Lines that conflict: step by 256.
        let mut l1 = L1Pair::mobile_default();
        let store = acc(0, AccessKind::Store, Mode::User);
        l1.filter(&store, 0);
        // Two more loads to the same set evict the dirty line.
        let mut wb = None;
        for i in 1..=2u64 {
            let a = acc(i * 256 * 64, AccessKind::Load, Mode::User);
            let o = l1.filter(&a, i);
            if o.writeback.is_some() {
                wb = o.writeback;
            }
        }
        let wb = wb.expect("dirty line must be written back");
        assert!(wb.write);
        assert_eq!(wb.line, 0);
        assert_eq!(wb.cause, L2Cause::Writeback);
        assert_eq!(wb.mode, Mode::User);
    }

    #[test]
    fn writeback_carries_owner_mode() {
        let mut l1 = L1Pair::mobile_default();
        // Kernel dirties a line; user traffic evicts it.
        let kstore = acc(0, AccessKind::Store, Mode::Kernel);
        l1.filter(&kstore, 0);
        let mut wb = None;
        for i in 1..=2u64 {
            let a = acc(i * 256 * 64, AccessKind::Load, Mode::User);
            let o = l1.filter(&a, i);
            if o.writeback.is_some() {
                wb = o.writeback;
            }
        }
        assert_eq!(wb.expect("writeback").mode, Mode::Kernel);
    }

    #[test]
    fn l1_filters_user_traffic_harder_than_kernel() {
        // The kernel-share amplification effect (claim C1): the post-L1
        // kernel share must exceed the raw-trace kernel share.
        let mut l1 = L1Pair::mobile_default();
        let trace: Vec<_> = TraceGenerator::new(&AppProfile::browser(), 5)
            .take(400_000)
            .collect();
        let raw_kernel = trace.iter().filter(|a| a.mode == Mode::Kernel).count() as f64
            / trace.len() as f64;
        let mut l2_total = 0u64;
        let mut l2_kernel = 0u64;
        for (i, a) in trace.iter().enumerate() {
            let o = l1.filter(a, i as u64);
            for req in [o.demand, o.writeback].into_iter().flatten() {
                l2_total += 1;
                if req.mode == Mode::Kernel {
                    l2_kernel += 1;
                }
            }
        }
        let l2_share = l2_kernel as f64 / l2_total as f64;
        assert!(
            l2_share > raw_kernel,
            "L1 filtering should amplify kernel share ({l2_share:.3} vs raw {raw_kernel:.3})"
        );
    }

    #[test]
    #[should_panic(expected = "share a line size")]
    fn mismatched_line_sizes_rejected() {
        let a = CacheGeometry::new(32 << 10, 2, 64).expect("valid");
        let b = CacheGeometry::new(32 << 10, 2, 32).expect("valid");
        L1Pair::new(a, b, ReplacementPolicy::Lru);
    }
}
