//! Cache geometry and way masks.

use std::fmt;

/// Errors from constructing a [`CacheGeometry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// A size parameter was zero.
    Zero(&'static str),
    /// A parameter that must be a power of two was not.
    NotPowerOfTwo(&'static str, u64),
    /// Capacity is not divisible into `ways * line_bytes` sets.
    Indivisible {
        /// Total capacity in bytes.
        capacity: u64,
        /// Requested associativity.
        ways: u32,
        /// Requested line size.
        line_bytes: u64,
    },
    /// More ways than [`WayMask`] can represent (64).
    TooManyWays(u32),
    /// A single way index beyond the representable range.
    WayOutOfRange(u32),
    /// A way range with `lo > hi` or `hi > 64`.
    InvalidWayRange {
        /// Inclusive lower bound of the requested range.
        lo: u32,
        /// Exclusive upper bound of the requested range.
        hi: u32,
    },
    /// A user/kernel partition requesting more ways than the cache has.
    PartitionOverflow {
        /// Requested user ways.
        user: u32,
        /// Requested kernel ways.
        kernel: u32,
        /// Physical ways available.
        ways: u32,
    },
    /// User and kernel partitions claiming the same way.
    PartitionOverlap {
        /// The user partition's mask bits.
        user: u64,
        /// The kernel partition's mask bits.
        kernel: u64,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::Zero(what) => write!(f, "{what} must be non-zero"),
            GeometryError::NotPowerOfTwo(what, v) => {
                write!(f, "{what} must be a power of two, got {v}")
            }
            GeometryError::Indivisible {
                capacity,
                ways,
                line_bytes,
            } => write!(
                f,
                "capacity {capacity} B does not divide into {ways}-way sets of {line_bytes} B lines"
            ),
            GeometryError::TooManyWays(w) => {
                write!(f, "at most 64 ways are supported, got {w}")
            }
            GeometryError::WayOutOfRange(w) => {
                write!(f, "way index {w} is out of range (ways are 0..64)")
            }
            GeometryError::InvalidWayRange { lo, hi } => {
                write!(f, "invalid way range {lo}..{hi}")
            }
            GeometryError::PartitionOverflow { user, kernel, ways } => write!(
                f,
                "partition {user} user + {kernel} kernel ways exceeds the {ways} physical ways"
            ),
            GeometryError::PartitionOverlap { user, kernel } => write!(
                f,
                "user ({user:#x}) and kernel ({kernel:#x}) partitions overlap"
            ),
        }
    }
}

impl std::error::Error for GeometryError {}

/// Shape of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    sets: u64,
    ways: u32,
    line_bytes: u64,
}

impl CacheGeometry {
    /// Builds a geometry from total capacity, associativity, and line size.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if any parameter is zero, the line size
    /// or resulting set count is not a power of two, the capacity is not
    /// divisible, or `ways > 64`.
    ///
    /// # Examples
    ///
    /// ```
    /// use moca_cache::CacheGeometry;
    ///
    /// let l2 = CacheGeometry::new(2 << 20, 16, 64)?;
    /// assert_eq!(l2.sets(), 2048);
    /// assert_eq!(l2.capacity_bytes(), 2 << 20);
    /// # Ok::<(), moca_cache::GeometryError>(())
    /// ```
    pub fn new(capacity_bytes: u64, ways: u32, line_bytes: u64) -> Result<Self, GeometryError> {
        if capacity_bytes == 0 {
            return Err(GeometryError::Zero("capacity"));
        }
        if ways == 0 {
            return Err(GeometryError::Zero("ways"));
        }
        if line_bytes == 0 {
            return Err(GeometryError::Zero("line size"));
        }
        if ways > 64 {
            return Err(GeometryError::TooManyWays(ways));
        }
        if !line_bytes.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo("line size", line_bytes));
        }
        let row = u64::from(ways) * line_bytes;
        if !capacity_bytes.is_multiple_of(row) {
            return Err(GeometryError::Indivisible {
                capacity: capacity_bytes,
                ways,
                line_bytes,
            });
        }
        let sets = capacity_bytes / row;
        if !sets.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo("set count", sets));
        }
        Ok(Self {
            sets,
            ways,
            line_bytes,
        })
    }

    /// Explicitly-named alias of [`CacheGeometry::new`], for call sites
    /// that want the fallibility visible in the name (workspace
    /// convention: every layer exposes a `try_*` constructor path).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CacheGeometry::new`].
    pub fn try_new(
        capacity_bytes: u64,
        ways: u32,
        line_bytes: u64,
    ) -> Result<Self, GeometryError> {
        Self::new(capacity_bytes, ways, line_bytes)
    }

    /// Builds a geometry directly from a set count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CacheGeometry::new`].
    pub fn from_sets(sets: u64, ways: u32, line_bytes: u64) -> Result<Self, GeometryError> {
        if sets == 0 {
            return Err(GeometryError::Zero("sets"));
        }
        Self::new(sets * u64::from(ways) * line_bytes, ways, line_bytes)
    }

    /// Explicitly-named alias of [`CacheGeometry::from_sets`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`CacheGeometry::new`].
    pub fn try_from_sets(sets: u64, ways: u32, line_bytes: u64) -> Result<Self, GeometryError> {
        Self::from_sets(sets, ways, line_bytes)
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets * u64::from(self.ways) * self.line_bytes
    }

    /// Maps a byte address to its line address (address / line size).
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_bytes.trailing_zeros()
    }

    /// Maps a line address to its set index.
    pub fn set_of_line(&self, line: u64) -> u64 {
        line & (self.sets - 1)
    }

    /// Maps a line address to its tag.
    pub fn tag_of_line(&self, line: u64) -> u64 {
        line >> self.sets.trailing_zeros()
    }

    /// Reconstructs a line address from a tag and set index.
    pub fn line_from_parts(&self, tag: u64, set: u64) -> u64 {
        (tag << self.sets.trailing_zeros()) | set
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cap = self.capacity_bytes();
        if cap >= 1 << 20 && cap.is_multiple_of(1 << 20) {
            write!(f, "{} MiB {}-way/{} B", cap >> 20, self.ways, self.line_bytes)
        } else {
            write!(f, "{} KiB {}-way/{} B", cap >> 10, self.ways, self.line_bytes)
        }
    }
}

/// A subset of a cache's ways, used for partitioning and power-gating.
///
/// Bit `i` set means way `i` is a member. Supports up to 64 ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WayMask(u64);

impl WayMask {
    /// The empty mask.
    pub const EMPTY: WayMask = WayMask(0);

    /// A mask containing ways `0..ways`.
    ///
    /// # Panics
    ///
    /// Panics if `ways > 64`; see [`WayMask::try_first`] for the
    /// fallible path this delegates to.
    #[inline]
    pub fn first(ways: u32) -> Self {
        Self::try_first(ways).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`WayMask::first`].
    ///
    /// # Errors
    ///
    /// [`GeometryError::TooManyWays`] if `ways > 64`.
    #[inline]
    pub fn try_first(ways: u32) -> Result<Self, GeometryError> {
        if ways > 64 {
            return Err(GeometryError::TooManyWays(ways));
        }
        Ok(if ways == 64 {
            WayMask(u64::MAX)
        } else {
            WayMask((1u64 << ways) - 1)
        })
    }

    /// A mask containing ways `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > 64`; see [`WayMask::try_range`] for
    /// the fallible path this delegates to.
    #[inline]
    pub fn range(lo: u32, hi: u32) -> Self {
        Self::try_range(lo, hi).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`WayMask::range`].
    ///
    /// # Errors
    ///
    /// [`GeometryError::InvalidWayRange`] if `lo > hi` or `hi > 64`.
    #[inline]
    pub fn try_range(lo: u32, hi: u32) -> Result<Self, GeometryError> {
        if lo > hi || hi > 64 {
            return Err(GeometryError::InvalidWayRange { lo, hi });
        }
        Ok(Self::try_first(hi)?.difference(Self::try_first(lo)?))
    }

    /// A mask from raw bits.
    pub fn from_bits(bits: u64) -> Self {
        WayMask(bits)
    }

    /// The raw bits.
    pub fn bits(&self) -> u64 {
        self.0
    }

    /// Number of member ways.
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// Returns `true` if no ways are members.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    pub fn contains(&self, way: u32) -> bool {
        way < 64 && self.0 & (1u64 << way) != 0
    }

    /// Returns the mask with `way` added.
    ///
    /// # Panics
    ///
    /// Panics if `way >= 64`; see [`WayMask::try_with`] for the
    /// fallible path this delegates to.
    #[inline]
    pub fn with(&self, way: u32) -> Self {
        self.try_with(way).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`WayMask::with`].
    ///
    /// # Errors
    ///
    /// [`GeometryError::WayOutOfRange`] if `way >= 64`.
    #[inline]
    pub fn try_with(&self, way: u32) -> Result<Self, GeometryError> {
        if way >= 64 {
            return Err(GeometryError::WayOutOfRange(way));
        }
        Ok(WayMask(self.0 | (1u64 << way)))
    }

    /// Returns the mask with `way` removed.
    pub fn without(&self, way: u32) -> Self {
        if way >= 64 {
            *self
        } else {
            WayMask(self.0 & !(1u64 << way))
        }
    }

    /// Set union.
    pub fn union(&self, other: WayMask) -> Self {
        WayMask(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(&self, other: WayMask) -> Self {
        WayMask(self.0 & other.0)
    }

    /// Ways in `self` but not `other`.
    pub fn difference(&self, other: WayMask) -> Self {
        WayMask(self.0 & !other.0)
    }

    /// Returns `true` if the two masks share no ways.
    pub fn is_disjoint(&self, other: WayMask) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates member way indices in increasing order.
    pub fn iter(&self) -> WayMaskIter {
        WayMaskIter(self.0)
    }

    /// Lowest member way, if any.
    pub fn lowest(&self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros())
        }
    }
}

impl fmt::Display for WayMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ways{{")?;
        let mut first = true;
        for w in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{w}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl IntoIterator for WayMask {
    type Item = u32;
    type IntoIter = WayMaskIter;

    fn into_iter(self) -> WayMaskIter {
        self.iter()
    }
}

/// Iterator over member way indices of a [`WayMask`].
#[derive(Debug, Clone)]
pub struct WayMaskIter(u64);

impl Iterator for WayMaskIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            let w = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(w)
        }
    }
}

/// A validated user/kernel way partition of a set-associative cache.
///
/// The partitioned L2 designs of the paper split the physical ways into
/// a user region and a kernel region. `PartitionSpec` centralizes the
/// invariants every such split must satisfy — both regions fit in the
/// physical ways, and they are disjoint — so design construction gets
/// one fallible path instead of scattered asserts.
///
/// # Examples
///
/// ```
/// use moca_cache::{GeometryError, PartitionSpec};
///
/// let p = PartitionSpec::split(6, 4, 16)?;
/// assert_eq!(p.user().count(), 6);
/// assert_eq!(p.kernel().count(), 4);
/// assert!(p.user().is_disjoint(p.kernel()));
///
/// // 10 + 8 ways cannot fit a 16-way cache.
/// assert!(matches!(
///     PartitionSpec::split(10, 8, 16),
///     Err(GeometryError::PartitionOverflow { .. })
/// ));
/// # Ok::<(), GeometryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionSpec {
    user: WayMask,
    kernel: WayMask,
}

impl PartitionSpec {
    /// Splits `ways` physical ways into the first `user_ways` for user
    /// lines and the next `kernel_ways` for kernel lines (the layout
    /// used by all static and dynamic partitioned designs).
    ///
    /// # Errors
    ///
    /// [`GeometryError::PartitionOverflow`] if `user_ways + kernel_ways`
    /// exceeds `ways` (or overflows), and any error of
    /// [`WayMask::try_range`] if `ways > 64`.
    pub fn split(user_ways: u32, kernel_ways: u32, ways: u32) -> Result<Self, GeometryError> {
        let total = user_ways
            .checked_add(kernel_ways)
            .ok_or(GeometryError::PartitionOverflow {
                user: user_ways,
                kernel: kernel_ways,
                ways,
            })?;
        if total > ways {
            return Err(GeometryError::PartitionOverflow {
                user: user_ways,
                kernel: kernel_ways,
                ways,
            });
        }
        Self::from_masks(
            WayMask::try_first(user_ways)?,
            WayMask::try_range(user_ways, total)?,
        )
    }

    /// Builds a partition from explicit masks.
    ///
    /// # Errors
    ///
    /// [`GeometryError::PartitionOverlap`] if the masks share a way.
    pub fn from_masks(user: WayMask, kernel: WayMask) -> Result<Self, GeometryError> {
        if !user.is_disjoint(kernel) {
            return Err(GeometryError::PartitionOverlap {
                user: user.bits(),
                kernel: kernel.bits(),
            });
        }
        Ok(Self { user, kernel })
    }

    /// The user region's way mask.
    pub fn user(&self) -> WayMask {
        self.user
    }

    /// The kernel region's way mask.
    pub fn kernel(&self) -> WayMask {
        self.kernel
    }

    /// Union of both regions.
    pub fn all(&self) -> WayMask {
        self.user.union(self.kernel)
    }

    /// Total partitioned ways (user + kernel).
    pub fn total_ways(&self) -> u32 {
        self.all().count()
    }
}

impl fmt::Display for PartitionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user {} | kernel {}", self.user, self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_basic() {
        let g = CacheGeometry::new(2 << 20, 16, 64).expect("valid");
        assert_eq!(g.sets(), 2048);
        assert_eq!(g.ways(), 16);
        assert_eq!(g.line_bytes(), 64);
        assert_eq!(g.capacity_bytes(), 2 << 20);
        assert_eq!(g.to_string(), "2 MiB 16-way/64 B");
    }

    #[test]
    fn geometry_address_mapping_roundtrip() {
        let g = CacheGeometry::new(1 << 20, 8, 64).expect("valid");
        for addr in [0u64, 64, 0xDEAD_BE40, !63] {
            let line = g.line_of(addr);
            let set = g.set_of_line(line);
            let tag = g.tag_of_line(line);
            assert_eq!(g.line_from_parts(tag, set), line);
            assert!(set < g.sets());
        }
    }

    #[test]
    fn geometry_rejects_bad_params() {
        assert!(matches!(
            CacheGeometry::new(0, 8, 64),
            Err(GeometryError::Zero("capacity"))
        ));
        assert!(matches!(
            CacheGeometry::new(1 << 20, 0, 64),
            Err(GeometryError::Zero("ways"))
        ));
        assert!(matches!(
            CacheGeometry::new(1 << 20, 8, 0),
            Err(GeometryError::Zero("line size"))
        ));
        assert!(matches!(
            CacheGeometry::new(1 << 20, 8, 48),
            Err(GeometryError::NotPowerOfTwo("line size", 48))
        ));
        assert!(matches!(
            CacheGeometry::new(1 << 20, 65, 64),
            Err(GeometryError::TooManyWays(65))
        ));
        assert!(matches!(
            CacheGeometry::new((1 << 20) + 64, 8, 64),
            Err(GeometryError::Indivisible { .. })
        ));
        // 3-way, 3*64=192 divides 192*4=768 but sets=4 ok... craft non-pow2 sets:
        assert!(matches!(
            CacheGeometry::new(192 * 3, 3, 64),
            Err(GeometryError::NotPowerOfTwo("set count", 3))
        ));
    }

    #[test]
    fn geometry_from_sets() {
        let g = CacheGeometry::from_sets(512, 4, 64).expect("valid");
        assert_eq!(g.capacity_bytes(), 512 * 4 * 64);
        assert!(CacheGeometry::from_sets(0, 4, 64).is_err());
    }

    #[test]
    fn error_display() {
        let e = CacheGeometry::new(1 << 20, 8, 48).unwrap_err();
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn waymask_first_and_range() {
        assert_eq!(WayMask::first(0), WayMask::EMPTY);
        assert_eq!(WayMask::first(4).bits(), 0b1111);
        assert_eq!(WayMask::first(64).bits(), u64::MAX);
        assert_eq!(WayMask::range(2, 5).bits(), 0b11100);
        assert_eq!(WayMask::range(3, 3), WayMask::EMPTY);
    }

    #[test]
    fn waymask_set_ops() {
        let a = WayMask::range(0, 4);
        let b = WayMask::range(2, 6);
        assert_eq!(a.union(b), WayMask::range(0, 6));
        assert_eq!(a.intersection(b), WayMask::range(2, 4));
        assert_eq!(a.difference(b), WayMask::range(0, 2));
        assert!(!a.is_disjoint(b));
        assert!(a.is_disjoint(WayMask::range(4, 8)));
    }

    #[test]
    fn waymask_with_without_contains() {
        let m = WayMask::EMPTY.with(3).with(7);
        assert!(m.contains(3) && m.contains(7));
        assert!(!m.contains(4));
        assert_eq!(m.count(), 2);
        assert_eq!(m.without(3).count(), 1);
        assert_eq!(m.without(63).count(), 2);
        assert_eq!(m.without(100), m);
        assert!(!m.contains(100));
    }

    #[test]
    fn waymask_iter_order() {
        let m = WayMask::EMPTY.with(5).with(1).with(9);
        let ways: Vec<u32> = m.iter().collect();
        assert_eq!(ways, vec![1, 5, 9]);
        assert_eq!(m.lowest(), Some(1));
        assert_eq!(WayMask::EMPTY.lowest(), None);
    }

    #[test]
    fn waymask_display() {
        let m = WayMask::EMPTY.with(0).with(2);
        assert_eq!(m.to_string(), "ways{0,2}");
    }

    #[test]
    fn try_new_aliases_match_fallible_constructors() {
        assert_eq!(
            CacheGeometry::try_new(2 << 20, 16, 64),
            CacheGeometry::new(2 << 20, 16, 64)
        );
        assert_eq!(
            CacheGeometry::try_new(0, 16, 64),
            Err(GeometryError::Zero("capacity"))
        );
        assert_eq!(
            CacheGeometry::try_from_sets(512, 4, 64),
            CacheGeometry::from_sets(512, 4, 64)
        );
        assert_eq!(
            CacheGeometry::try_from_sets(0, 4, 64),
            Err(GeometryError::Zero("sets"))
        );
    }

    #[test]
    fn try_waymask_constructors_reject_each_invalid_class() {
        // Too many ways for a first-N mask.
        assert_eq!(WayMask::try_first(64), Ok(WayMask(u64::MAX)));
        assert_eq!(WayMask::try_first(65), Err(GeometryError::TooManyWays(65)));
        // Inverted or out-of-bounds ranges.
        assert_eq!(WayMask::try_range(2, 5), Ok(WayMask::range(2, 5)));
        assert_eq!(
            WayMask::try_range(5, 2),
            Err(GeometryError::InvalidWayRange { lo: 5, hi: 2 })
        );
        assert_eq!(
            WayMask::try_range(0, 65),
            Err(GeometryError::InvalidWayRange { lo: 0, hi: 65 })
        );
        // Single-way index out of range.
        assert_eq!(WayMask::EMPTY.try_with(63), Ok(WayMask::EMPTY.with(63)));
        assert_eq!(
            WayMask::EMPTY.try_with(64),
            Err(GeometryError::WayOutOfRange(64))
        );
    }

    #[test]
    #[should_panic(expected = "at most 64 ways")]
    fn asserting_first_delegates_to_fallible_path() {
        let _ = WayMask::first(65);
    }

    #[test]
    #[should_panic(expected = "invalid way range")]
    fn asserting_range_delegates_to_fallible_path() {
        let _ = WayMask::range(5, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn asserting_with_delegates_to_fallible_path() {
        let _ = WayMask::EMPTY.with(64);
    }

    #[test]
    fn partition_split_lays_out_user_then_kernel() {
        let p = PartitionSpec::split(6, 4, 16).expect("valid");
        assert_eq!(p.user(), WayMask::first(6));
        assert_eq!(p.kernel(), WayMask::range(6, 10));
        assert_eq!(p.all(), WayMask::first(10));
        assert_eq!(p.total_ways(), 10);
        assert_eq!(p.to_string(), format!("user {} | kernel {}", p.user(), p.kernel()));
    }

    #[test]
    fn partition_rejects_overflow_and_overlap() {
        assert_eq!(
            PartitionSpec::split(10, 8, 16),
            Err(GeometryError::PartitionOverflow {
                user: 10,
                kernel: 8,
                ways: 16
            })
        );
        assert_eq!(
            PartitionSpec::split(u32::MAX, 2, 16),
            Err(GeometryError::PartitionOverflow {
                user: u32::MAX,
                kernel: 2,
                ways: 16
            })
        );
        assert!(matches!(
            PartitionSpec::split(70, 0, 80),
            Err(GeometryError::TooManyWays(70))
        ));
        let err = PartitionSpec::from_masks(WayMask::first(4), WayMask::range(3, 6));
        assert_eq!(
            err,
            Err(GeometryError::PartitionOverlap {
                user: 0b1111,
                kernel: 0b111000
            })
        );
        let e = err.unwrap_err();
        assert!(e.to_string().contains("overlap"), "{e}");
    }

    #[test]
    fn partition_edge_splits() {
        // Zero-way regions are representable (a fully user or fully
        // kernel cache) and full-width splits are exact.
        let all_user = PartitionSpec::split(16, 0, 16).expect("valid");
        assert!(all_user.kernel().is_empty());
        let exact = PartitionSpec::split(8, 8, 16).expect("valid");
        assert_eq!(exact.total_ways(), 16);
    }
}
