//! # moca-cache — set-associative cache substrate
//!
//! Functional (timing-free) cache models for the `moca` project. The key
//! design decision is that **every operation takes a [`WayMask`]**: the
//! paper's static partitioning, dynamic repartitioning, and way
//! power-gating all reduce to choosing masks, so the substrate supports
//! them uniformly.
//!
//! ## Quick start
//!
//! ```
//! use moca_cache::{CacheGeometry, ReplacementPolicy, SetAssocCache, WayMask};
//! use moca_trace::Mode;
//!
//! // A 2 MiB 16-way L2, way-partitioned 12 user / 4 kernel.
//! let geom = CacheGeometry::new(2 << 20, 16, 64)?;
//! let mut l2 = SetAssocCache::new(geom, ReplacementPolicy::Lru);
//! let user = WayMask::range(0, 12);
//! let kernel = WayMask::range(12, 16);
//!
//! l2.access(0x10, false, Mode::User, 0, user);
//! l2.access(0x10, false, Mode::Kernel, 1, kernel); // isolated: misses
//! assert_eq!(l2.stats().misses(), 2);
//! # Ok::<(), moca_cache::GeometryError>(())
//! ```
//!
//! ## Module map
//!
//! * [`config`] — [`CacheGeometry`], [`WayMask`].
//! * [`replacement`] — LRU / PLRU / FIFO / random / NRU / SRRIP policies.
//! * [`cache`] — [`SetAssocCache`] engine with eviction metadata.
//! * [`stats`] — per-mode counters including cross-mode interference.
//! * [`hierarchy`] — [`L1Pair`] filter in front of the L2.
//! * [`shadow`] — [`UtilityMonitor`] (UMON) for dynamic partitioning.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod replacement;
pub mod shadow;
pub mod stats;

pub use cache::{AccessResult, BlockView, EvictedBlock, SetAssocCache};
pub use config::{CacheGeometry, GeometryError, PartitionSpec, WayMask};
pub use hierarchy::{L1Outcome, L1Pair, L2Cause, L2Request};
pub use replacement::ReplacementPolicy;
pub use shadow::UtilityMonitor;
pub use stats::{CacheStats, ModeCounters};
