//! Replacement policies.
//!
//! All policies operate under a [`WayMask`]: the victim is always chosen
//! among *allowed* ways only, which is what makes way-partitioning and
//! way power-gating composable with any policy.

use crate::config::WayMask;

/// Replacement policy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used (per-way timestamps).
    #[default]
    Lru,
    /// First-in first-out (fill-time timestamps).
    Fifo,
    /// Pseudo-random (xorshift), deterministic per seed.
    Random {
        /// Seed of the internal xorshift generator.
        seed: u64,
    },
    /// Not-recently-used (single reference bit per way).
    Nru,
    /// Tree pseudo-LRU. Requires power-of-two associativity.
    TreePlru,
    /// Static re-reference interval prediction (2-bit RRPV).
    Srrip,
}


/// Runtime replacement state for a whole cache.
#[derive(Debug, Clone)]
pub(crate) enum ReplacementState {
    Lru {
        stamps: Vec<u64>,
        clock: u64,
    },
    Fifo {
        stamps: Vec<u64>,
        clock: u64,
    },
    Random {
        state: u64,
    },
    Nru {
        referenced: Vec<bool>,
    },
    TreePlru {
        /// One word per set holding the `ways - 1` tree-node bits (node
        /// `i` is bit `i`), so a whole tree walk runs on a register with
        /// a single load and store.
        words: Vec<u64>,
        ways: u32,
    },
    Srrip {
        rrpv: Vec<u8>,
    },
}

/// Maximum RRPV value for the 2-bit SRRIP implementation.
const RRPV_MAX: u8 = 3;
/// Insertion RRPV ("long re-reference" prediction).
const RRPV_INSERT: u8 = 2;

impl ReplacementState {
    /// Builds state for a cache of `sets * ways` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `TreePlru` is requested with non-power-of-two `ways`.
    pub(crate) fn new(policy: ReplacementPolicy, sets: u64, ways: u32) -> Self {
        let n = (sets as usize) * (ways as usize);
        match policy {
            ReplacementPolicy::Lru => ReplacementState::Lru {
                stamps: vec![0; n],
                clock: 0,
            },
            ReplacementPolicy::Fifo => ReplacementState::Fifo {
                stamps: vec![0; n],
                clock: 0,
            },
            ReplacementPolicy::Random { seed } => ReplacementState::Random {
                state: seed | 1, // xorshift must not start at zero
            },
            ReplacementPolicy::Nru => ReplacementState::Nru {
                referenced: vec![false; n],
            },
            ReplacementPolicy::TreePlru => {
                assert!(
                    ways.is_power_of_two(),
                    "tree PLRU requires power-of-two associativity, got {ways}"
                );
                ReplacementState::TreePlru {
                    words: vec![0; sets as usize],
                    ways,
                }
            }
            ReplacementPolicy::Srrip => ReplacementState::Srrip {
                rrpv: vec![RRPV_MAX; n],
            },
        }
    }

    #[inline]
    fn idx(set: u64, ways: u32, way: u32) -> usize {
        set as usize * ways as usize + way as usize
    }

    /// Records a hit on `(set, way)`.
    #[inline]
    pub(crate) fn on_hit(&mut self, set: u64, ways: u32, way: u32) {
        match self {
            ReplacementState::Lru { stamps, clock } => {
                *clock += 1;
                stamps[Self::idx(set, ways, way)] = *clock;
            }
            ReplacementState::Fifo { .. } | ReplacementState::Random { .. } => {}
            ReplacementState::Nru { referenced } => {
                referenced[Self::idx(set, ways, way)] = true;
            }
            ReplacementState::TreePlru {
                words,
                ways: tree_ways,
            } => {
                plru_touch(&mut words[set as usize], *tree_ways, way);
            }
            ReplacementState::Srrip { rrpv } => {
                rrpv[Self::idx(set, ways, way)] = 0;
            }
        }
    }

    /// Records a fill into `(set, way)`.
    #[inline]
    pub(crate) fn on_fill(&mut self, set: u64, ways: u32, way: u32) {
        match self {
            ReplacementState::Lru { stamps, clock } | ReplacementState::Fifo { stamps, clock } => {
                *clock += 1;
                stamps[Self::idx(set, ways, way)] = *clock;
            }
            ReplacementState::Random { .. } => {}
            ReplacementState::Nru { referenced } => {
                referenced[Self::idx(set, ways, way)] = true;
            }
            ReplacementState::TreePlru {
                words,
                ways: tree_ways,
            } => {
                plru_touch(&mut words[set as usize], *tree_ways, way);
            }
            ReplacementState::Srrip { rrpv } => {
                rrpv[Self::idx(set, ways, way)] = RRPV_INSERT;
            }
        }
    }

    /// Chooses a victim among `allowed` ways of `set`, all of which are
    /// assumed valid.
    ///
    /// The hot path uses [`ReplacementState::evict_and_fill`] instead;
    /// this split form is kept as the reference the fused version is
    /// tested against.
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn victim(&mut self, set: u64, ways: u32, allowed: WayMask) -> u32 {
        assert!(!allowed.is_empty(), "cannot choose a victim from no ways");
        match self {
            ReplacementState::Lru { stamps, .. } | ReplacementState::Fifo { stamps, .. } => {
                allowed
                    .iter()
                    .min_by_key(|&w| stamps[Self::idx(set, ways, w)])
                    .expect("allowed is non-empty")
            }
            ReplacementState::Random { state } => {
                // xorshift64
                let mut x = *state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *state = x;
                let nth = (x % u64::from(allowed.count())) as u32;
                allowed.iter().nth(nth as usize).expect("nth < count")
            }
            ReplacementState::Nru { referenced } => {
                if let Some(w) = allowed
                    .iter()
                    .find(|&w| !referenced[Self::idx(set, ways, w)])
                {
                    return w;
                }
                // All referenced: clear and take the lowest.
                for w in allowed.iter() {
                    referenced[Self::idx(set, ways, w)] = false;
                }
                allowed.lowest().expect("non-empty")
            }
            ReplacementState::TreePlru {
                words,
                ways: tree_ways,
            } => plru_victim(words[set as usize], *tree_ways, allowed),
            ReplacementState::Srrip { rrpv } => loop {
                if let Some(w) = allowed
                    .iter()
                    .find(|&w| rrpv[Self::idx(set, ways, w)] >= RRPV_MAX)
                {
                    return w;
                }
                for w in allowed.iter() {
                    rrpv[Self::idx(set, ways, w)] += 1;
                }
            },
        }
    }

    /// Chooses a victim and records the replacing fill in one dispatch —
    /// the eviction path of [`SetAssocCache::access`] resolves the policy
    /// `match` once instead of twice per miss.
    ///
    /// Behaviourally identical to `victim` followed by `on_fill` on the
    /// returned way.
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty.
    ///
    /// [`SetAssocCache::access`]: crate::SetAssocCache::access
    #[inline]
    pub(crate) fn evict_and_fill(&mut self, set: u64, ways: u32, allowed: WayMask) -> u32 {
        assert!(!allowed.is_empty(), "cannot choose a victim from no ways");
        let base = set as usize * ways as usize;
        match self {
            ReplacementState::Lru { stamps, clock } | ReplacementState::Fifo { stamps, clock } => {
                let stamps = &mut stamps[base..base + ways as usize];
                let mut best = u64::MAX;
                let mut w = 0u32;
                // Strict `<` keeps the lowest way on stamp ties in both
                // loops, matching `min_by_key` in the reference `victim`.
                let abits = allowed.bits();
                let full = if ways >= 64 { u64::MAX } else { (1 << ways) - 1 };
                if abits & full == full {
                    // Unrestricted mask: a linear min-reduction the
                    // compiler can vectorize.
                    for (i, &s) in stamps.iter().enumerate() {
                        if s < best {
                            best = s;
                            w = i as u32;
                        }
                    }
                } else {
                    let mut bits = abits;
                    while bits != 0 {
                        let i = bits.trailing_zeros();
                        let s = stamps[i as usize];
                        if s < best {
                            best = s;
                            w = i;
                        }
                        bits &= bits - 1;
                    }
                }
                *clock += 1;
                stamps[w as usize] = *clock;
                w
            }
            ReplacementState::Random { state } => {
                let mut x = *state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *state = x;
                let nth = (x % u64::from(allowed.count())) as u32;
                allowed.iter().nth(nth as usize).expect("nth < count")
            }
            ReplacementState::Nru { referenced } => {
                let referenced = &mut referenced[base..base + ways as usize];
                let mut bits = allowed.bits();
                let w = loop {
                    if bits == 0 {
                        // All referenced: clear and take the lowest.
                        for w in allowed.iter() {
                            referenced[w as usize] = false;
                        }
                        break allowed.lowest().expect("non-empty");
                    }
                    let i = bits.trailing_zeros();
                    if !referenced[i as usize] {
                        break i;
                    }
                    bits &= bits - 1;
                };
                referenced[w as usize] = true;
                w
            }
            ReplacementState::TreePlru {
                words,
                ways: tree_ways,
            } => {
                let ways = *tree_ways;
                let full = if ways >= 64 { u64::MAX } else { (1 << ways) - 1 };
                let word = &mut words[set as usize];
                if ways >= 2 && allowed.bits() & full == full {
                    // Unrestricted mask: the touch path is the victim
                    // path, so one combined register walk flips each node
                    // as it descends instead of walking the tree twice.
                    let mut x = *word;
                    let mut node = 0u32;
                    let mut lo = 0u32;
                    let mut size = ways;
                    while size > 1 {
                        let half = size / 2;
                        let go_right = x & (1 << node) == 0;
                        if go_right {
                            x |= 1 << node;
                            lo += half;
                            node = 2 * node + 2;
                        } else {
                            x &= !(1 << node);
                            node = 2 * node + 1;
                        }
                        size = half;
                    }
                    *word = x;
                    lo
                } else {
                    let w = plru_victim(*word, ways, allowed);
                    plru_touch(word, ways, w);
                    w
                }
            }
            ReplacementState::Srrip { rrpv } => {
                let rrpv = &mut rrpv[base..base + ways as usize];
                let abits = allowed.bits();
                let full = if ways >= 64 { u64::MAX } else { (1 << ways) - 1 };
                let w = if abits & full == full {
                    srrip_victim_full(rrpv)
                } else {
                    'found: loop {
                        let mut bits = abits;
                        while bits != 0 {
                            let i = bits.trailing_zeros();
                            if rrpv[i as usize] >= RRPV_MAX {
                                break 'found i;
                            }
                            bits &= bits - 1;
                        }
                        let mut bits = abits;
                        while bits != 0 {
                            let i = bits.trailing_zeros();
                            rrpv[i as usize] += 1;
                            bits &= bits - 1;
                        }
                    }
                };
                rrpv[w as usize] = RRPV_INSERT;
                w
            }
        }
    }
}

/// SRRIP victim search over a whole set's RRPV lanes (unrestricted way
/// mask): returns the lowest way whose RRPV is `RRPV_MAX`, ageing every
/// lane until one reaches it.
///
/// Lanes are always in `0..=RRPV_MAX` (ageing only runs while no lane is
/// at the maximum), so "≥ max" is "== 3" and a SWAR scan over 8-byte
/// chunks — both low bits of a byte set — finds the victim without a
/// per-way branch.
fn srrip_victim_full(rrpv: &mut [u8]) -> u32 {
    loop {
        let mut found = None;
        for (ci, chunk) in rrpv.chunks(8).enumerate() {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            let x = u64::from_le_bytes(word);
            // Byte == 3 exactly when bits 0 and 1 of the byte are set;
            // padding bytes in a short tail are 0 and never match.
            let three = x & (x >> 1) & 0x0101_0101_0101_0101;
            if three != 0 {
                found = Some(ci as u32 * 8 + three.trailing_zeros() / 8);
                break;
            }
        }
        if let Some(w) = found {
            return w;
        }
        for v in rrpv.iter_mut() {
            *v += 1;
        }
    }
}

/// Updates one set's PLRU tree word so the path to `way` points *away*
/// from it.
fn plru_touch(word: &mut u64, ways: u32, way: u32) {
    if ways < 2 {
        return;
    }
    // Implicit binary tree: node 0 is the root; the subtree of node i at
    // depth d covers a contiguous way range of size ways >> d.
    let mut x = *word;
    let mut node = 0u32;
    let mut lo = 0u32;
    let mut size = ways;
    while size > 1 {
        let half = size / 2;
        // Bit semantics: set means "the LRU side is the left". Touching
        // the right subtree makes the left side LRU, and vice versa.
        let go_right = way >= lo + half;
        if go_right {
            x |= 1 << node;
            lo += half;
            node = 2 * node + 2;
        } else {
            x &= !(1 << node);
            node = 2 * node + 1;
        }
        size = half;
    }
    *word = x;
}

/// Walks one set's PLRU tree word towards the LRU side, constrained to
/// `allowed`.
fn plru_victim(word: u64, ways: u32, allowed: WayMask) -> u32 {
    if ways < 2 {
        return 0;
    }
    let mut node = 0u32;
    let mut lo = 0u32;
    let mut size = ways;
    while size > 1 {
        let half = size / 2;
        let left = WayMask::range(lo, lo + half).intersection(allowed);
        let right = WayMask::range(lo + half, lo + size).intersection(allowed);
        // Prefer the tree's indicated LRU side, but only descend into a
        // subtree that still contains an allowed way.
        let prefer_left = word & (1 << node) != 0;
        let go_right = if prefer_left {
            left.is_empty()
        } else {
            !right.is_empty()
        };
        node = 2 * node + if go_right { 2 } else { 1 };
        if go_right {
            lo += half;
        }
        size = half;
    }
    debug_assert!(allowed.contains(lo), "PLRU walk left the allowed mask");
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    const WAYS: u32 = 8;

    fn full() -> WayMask {
        WayMask::first(WAYS)
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 4, WAYS);
        for w in 0..WAYS {
            st.on_fill(1, WAYS, w);
        }
        st.on_hit(1, WAYS, 0); // way 0 becomes MRU; way 1 is now LRU
        assert_eq!(st.victim(1, WAYS, full()), 1);
    }

    #[test]
    fn lru_respects_mask() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 4, WAYS);
        for w in 0..WAYS {
            st.on_fill(0, WAYS, w);
        }
        // Way 0 is globally LRU but excluded by the mask.
        let allowed = WayMask::range(4, 8);
        assert_eq!(st.victim(0, WAYS, allowed), 4);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut st = ReplacementState::new(ReplacementPolicy::Fifo, 4, WAYS);
        for w in 0..WAYS {
            st.on_fill(0, WAYS, w);
        }
        st.on_hit(0, WAYS, 0);
        // Way 0 was filled first; hits must not rescue it.
        assert_eq!(st.victim(0, WAYS, full()), 0);
    }

    #[test]
    fn random_is_deterministic_and_in_mask() {
        let run = |seed| {
            let mut st = ReplacementState::new(ReplacementPolicy::Random { seed }, 4, WAYS);
            (0..100)
                .map(|_| st.victim(0, WAYS, WayMask::range(2, 6)))
                .collect::<Vec<_>>()
        };
        let a = run(9);
        assert_eq!(a, run(9));
        assert!(a.iter().all(|&w| (2..6).contains(&w)));
        // Should hit more than one way over 100 draws.
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 1);
    }

    #[test]
    fn nru_prefers_unreferenced() {
        let mut st = ReplacementState::new(ReplacementPolicy::Nru, 1, WAYS);
        for w in 0..WAYS {
            st.on_fill(0, WAYS, w);
        }
        // All referenced: first victim clears bits and evicts way 0.
        assert_eq!(st.victim(0, WAYS, full()), 0);
        // Now touch way 1; ways 2.. are unreferenced.
        st.on_hit(0, WAYS, 1);
        assert_eq!(st.victim(0, WAYS, full()), 0);
    }

    #[test]
    fn plru_cycles_through_ways() {
        let mut st = ReplacementState::new(ReplacementPolicy::TreePlru, 1, 4);
        let mask = WayMask::first(4);
        let mut seen = [false; 4];
        for _ in 0..4 {
            let v = st.victim(0, 4, mask);
            seen[v as usize] = true;
            st.on_fill(0, 4, v);
        }
        assert!(seen.iter().all(|&s| s), "PLRU should rotate victims: {seen:?}");
    }

    #[test]
    fn plru_respects_mask() {
        let mut st = ReplacementState::new(ReplacementPolicy::TreePlru, 1, 8);
        let allowed = WayMask::range(5, 8);
        for _ in 0..32 {
            let v = st.victim(0, 8, allowed);
            assert!(allowed.contains(v));
            st.on_fill(0, 8, v);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_odd_ways() {
        ReplacementState::new(ReplacementPolicy::TreePlru, 1, 6);
    }

    #[test]
    fn srrip_evicts_distant_first() {
        let mut st = ReplacementState::new(ReplacementPolicy::Srrip, 1, 4);
        let mask = WayMask::first(4);
        for w in 0..4 {
            st.on_fill(0, 4, w);
        }
        st.on_hit(0, 4, 2); // way 2 becomes near-immediate
        let v = st.victim(0, 4, mask);
        assert_ne!(v, 2, "recently hit way must not be the victim");
    }

    #[test]
    fn srrip_terminates_when_all_near() {
        let mut st = ReplacementState::new(ReplacementPolicy::Srrip, 1, 4);
        let mask = WayMask::first(4);
        for w in 0..4 {
            st.on_fill(0, 4, w);
            st.on_hit(0, 4, w);
        }
        // All rrpv == 0: victim search must age and terminate.
        let v = st.victim(0, 4, mask);
        assert!(v < 4);
    }

    #[test]
    #[should_panic(expected = "no ways")]
    fn victim_from_empty_mask_panics() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 1, 4);
        st.victim(0, 4, WayMask::EMPTY);
    }

    #[test]
    fn evict_and_fill_matches_victim_then_on_fill() {
        let policies = [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random { seed: 77 },
            ReplacementPolicy::Nru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Srrip,
        ];
        for policy in policies {
            let mut split = ReplacementState::new(policy, 2, WAYS);
            for set in 0..2u64 {
                for w in 0..WAYS {
                    split.on_fill(set, WAYS, w);
                }
            }
            split.on_hit(0, WAYS, 3);
            split.on_hit(1, WAYS, 6);
            let mut fused = split.clone();
            for round in 0..64u64 {
                let set = round % 2;
                let allowed = if round % 3 == 0 {
                    WayMask::range(2, 7)
                } else {
                    full()
                };
                let vs = split.victim(set, WAYS, allowed);
                split.on_fill(set, WAYS, vs);
                let vf = fused.evict_and_fill(set, WAYS, allowed);
                assert_eq!(vs, vf, "{policy:?} diverged at round {round}");
            }
        }
    }

    #[test]
    fn policies_independent_across_sets() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 2, 2);
        st.on_fill(0, 2, 0);
        st.on_fill(0, 2, 1);
        st.on_fill(1, 2, 1);
        st.on_fill(1, 2, 0);
        assert_eq!(st.victim(0, 2, WayMask::first(2)), 0);
        assert_eq!(st.victim(1, 2, WayMask::first(2)), 1);
    }
}
