//! Utility monitoring via sampled auxiliary tag directories.
//!
//! A [`UtilityMonitor`] answers the question at the heart of dynamic cache
//! partitioning: *how many extra hits would this request stream get for
//! each additional way?* It keeps a full-associativity LRU tag stack for a
//! sampled subset of sets (Qureshi & Patt's UMON-DSS structure) and counts
//! hits per LRU stack position. `hits_with_ways(w)` then estimates the
//! hits the stream would enjoy in a `w`-way cache.

use crate::config::CacheGeometry;

/// Sampled-set utility monitor (UMON).
#[derive(Debug, Clone)]
pub struct UtilityMonitor {
    sets: u64,
    ways: u32,
    sample_period: u64,
    /// Flattened LRU stacks: `ways` tag slots per sampled set, laid out
    /// contiguously (stack `s` occupies `s*ways..(s+1)*ways`),
    /// most-recent first. Only the first `lens[s]` slots of a stack are
    /// live; rotations are `copy_within` on the flat buffer, so an
    /// observe touches one cache line instead of chasing a `Vec<Vec<_>>`
    /// double indirection.
    tags: Vec<u64>,
    /// Live depth of each sampled set's stack.
    lens: Vec<u32>,
    /// `position_hits[p]`: hits found at LRU stack depth `p`.
    position_hits: Vec<u64>,
    misses: u64,
    accesses: u64,
}

impl UtilityMonitor {
    /// Creates a monitor mirroring `geom`, sampling one in
    /// `2^sample_shift` sets.
    ///
    /// # Panics
    ///
    /// Panics if `2^sample_shift` exceeds the set count.
    pub fn new(geom: CacheGeometry, sample_shift: u32) -> Self {
        let period = 1u64 << sample_shift;
        assert!(
            period <= geom.sets(),
            "sample period {period} exceeds {} sets",
            geom.sets()
        );
        let sampled = (geom.sets() / period) as usize;
        Self {
            sets: geom.sets(),
            ways: geom.ways(),
            sample_period: period,
            tags: vec![0; sampled * geom.ways() as usize],
            lens: vec![0; sampled],
            position_hits: vec![0; geom.ways() as usize],
            misses: 0,
            accesses: 0,
        }
    }

    /// Number of monitored (sampled) sets.
    pub fn sampled_sets(&self) -> usize {
        self.lens.len()
    }

    /// Total observations that fell on sampled sets.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Observations that missed even with full associativity.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Feeds one line address through the monitor.
    pub fn observe(&mut self, line: u64) {
        let set = line & (self.sets - 1);
        if !set.is_multiple_of(self.sample_period) {
            return;
        }
        let s = (set / self.sample_period) as usize;
        let tag = line >> self.sets.trailing_zeros();
        self.accesses += 1;
        let ways = self.ways as usize;
        let base = s * ways;
        let len = self.lens[s] as usize;
        let stack = &mut self.tags[base..base + len];
        match stack.iter().position(|&t| t == tag) {
            Some(pos) => {
                self.position_hits[pos] += 1;
                stack.copy_within(..pos, 1);
                stack[0] = tag;
            }
            None => {
                self.misses += 1;
                // Growing by one (up to the associativity) and shifting
                // everything down is the old insert-then-truncate: a
                // full stack simply drops its LRU tail.
                let len = (len + 1).min(ways);
                self.lens[s] = len as u32;
                let stack = &mut self.tags[base..base + len];
                stack.copy_within(..len - 1, 1);
                stack[0] = tag;
            }
        }
    }

    /// Estimated hits (on sampled sets) if the stream ran in a cache with
    /// `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` exceeds the monitored associativity.
    pub fn hits_with_ways(&self, ways: u32) -> u64 {
        assert!(ways <= self.ways, "monitor only tracks {} ways", self.ways);
        self.position_hits[..ways as usize].iter().sum()
    }

    /// Marginal utility of each way: `marginal()[w]` is the extra hits the
    /// `(w+1)`-th way provides.
    pub fn marginal(&self) -> &[u64] {
        &self.position_hits
    }

    /// Clears all counters and stacks (start of a new epoch).
    pub fn reset(&mut self) {
        self.lens.iter_mut().for_each(|l| *l = 0);
        self.position_hits.iter_mut().for_each(|h| *h = 0);
        self.misses = 0;
        self.accesses = 0;
    }

    /// Clears counters but keeps the tag stacks warm (epoch boundary that
    /// should not re-pay cold misses).
    pub fn reset_counters(&mut self) {
        self.position_hits.iter_mut().for_each(|h| *h = 0);
        self.misses = 0;
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(64 * 1024, 8, 64).expect("valid") // 128 sets
    }

    #[test]
    fn sampling_counts_only_sampled_sets() {
        let mut m = UtilityMonitor::new(geom(), 5); // every 32nd set
        assert_eq!(m.sampled_sets(), 4);
        // Set 0 is sampled, set 1 is not.
        m.observe(0); // set 0
        m.observe(1); // set 1 — ignored
        assert_eq!(m.accesses(), 1);
    }

    #[test]
    fn stack_position_hits() {
        let mut m = UtilityMonitor::new(geom(), 7); // only set 0 sampled
        let line = |tag: u64| tag * 128; // all map to set 0
        m.observe(line(1)); // miss
        m.observe(line(2)); // miss
        m.observe(line(2)); // hit at MRU (pos 0)
        m.observe(line(1)); // hit at pos 1
        assert_eq!(m.misses(), 2);
        assert_eq!(m.marginal()[0], 1);
        assert_eq!(m.marginal()[1], 1);
        assert_eq!(m.hits_with_ways(1), 1);
        assert_eq!(m.hits_with_ways(2), 2);
        assert_eq!(m.hits_with_ways(8), 2);
    }

    #[test]
    fn stack_capacity_bounded_by_ways() {
        let mut m = UtilityMonitor::new(geom(), 7);
        let line = |tag: u64| tag * 128;
        // 10 distinct tags into an 8-way monitor; then re-touch the first.
        for t in 0..10 {
            m.observe(line(t));
        }
        m.observe(line(0)); // fell off the stack → miss
        assert_eq!(m.misses(), 11);
    }

    #[test]
    fn hits_with_ways_monotone() {
        let mut m = UtilityMonitor::new(geom(), 5);
        // Pseudo-random-ish touches on sampled sets.
        for i in 0..10_000u64 {
            m.observe((i * 37) % 4096);
        }
        let mut prev = 0;
        for w in 1..=8 {
            let h = m.hits_with_ways(w);
            assert!(h >= prev, "utility must be monotone in ways");
            prev = h;
        }
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = UtilityMonitor::new(geom(), 7);
        m.observe(0);
        m.observe(0);
        m.reset();
        assert_eq!(m.accesses(), 0);
        assert_eq!(m.misses(), 0);
        assert_eq!(m.hits_with_ways(8), 0);
        // After reset the first touch is a miss again.
        m.observe(0);
        assert_eq!(m.misses(), 1);
    }

    #[test]
    fn reset_counters_keeps_stacks_warm() {
        let mut m = UtilityMonitor::new(geom(), 7);
        m.observe(0);
        m.reset_counters();
        m.observe(0); // warm stack: a hit, not a miss
        assert_eq!(m.misses(), 0);
        assert_eq!(m.hits_with_ways(8), 1);
    }

    #[test]
    #[should_panic(expected = "sample period")]
    fn oversampling_panics() {
        UtilityMonitor::new(geom(), 8); // 256 > 128 sets
    }

    #[test]
    #[should_panic(expected = "only tracks")]
    fn too_many_ways_query_panics() {
        let m = UtilityMonitor::new(geom(), 5);
        m.hits_with_ways(9);
    }
}
