//! Cache statistics with per-privilege-mode resolution.
//!
//! Beyond the usual hit/miss counters, the stats track **cross-mode
//! evictions** — user blocks thrown out by kernel fills and vice versa.
//! That counter is the direct measurement of the interference the paper's
//! partitioning removes (claim C2 in `DESIGN.md`).

use moca_trace::Mode;

/// Counters attributed to one requester mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeCounters {
    /// Hits by this mode's requests.
    pub hits: u64,
    /// Misses by this mode's requests.
    pub misses: u64,
    /// Write requests (subset of hits + misses).
    pub writes: u64,
    /// Fills performed on behalf of this mode.
    pub fills: u64,
    /// Dirty victims written back due to this mode's fills.
    pub writebacks: u64,
}

impl ModeCounters {
    /// Total requests.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate (`0.0` when no accesses occurred).
    pub fn miss_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }
}

/// Full statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Per-requester-mode counters, indexed by [`Mode::index`].
    pub by_mode: [ModeCounters; 2],
    /// `cross_evictions[victim_mode]`: valid blocks owned by `victim_mode`
    /// evicted by a fill from the *other* mode.
    pub cross_evictions: [u64; 2],
    /// `same_evictions[victim_mode]`: valid blocks evicted by a fill from
    /// the *same* mode.
    pub same_evictions: [u64; 2],
    /// Blocks invalidated externally (drains, expiry), not by fills.
    pub invalidations: u64,
}

impl CacheStats {
    /// Fresh zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters for one requester mode.
    pub fn mode(&self, mode: Mode) -> &ModeCounters {
        &self.by_mode[mode.index()]
    }

    /// Mutable counters for one requester mode. The access hot path
    /// writes `by_mode` directly (one counter-block write per access);
    /// this accessor remains for tests and cold paths.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn mode_mut(&mut self, mode: Mode) -> &mut ModeCounters {
        &mut self.by_mode[mode.index()]
    }

    /// Total requests across both modes.
    pub fn accesses(&self) -> u64 {
        self.by_mode.iter().map(|m| m.accesses()).sum()
    }

    /// Total hits across both modes.
    pub fn hits(&self) -> u64 {
        self.by_mode.iter().map(|m| m.hits).sum()
    }

    /// Total misses across both modes.
    pub fn misses(&self) -> u64 {
        self.by_mode.iter().map(|m| m.misses).sum()
    }

    /// Total writebacks.
    pub fn writebacks(&self) -> u64 {
        self.by_mode.iter().map(|m| m.writebacks).sum()
    }

    /// Overall miss rate (`0.0` when no accesses occurred).
    pub fn miss_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses() as f64 / a as f64
        }
    }

    /// Fraction of requests issued by the kernel (`0.0` when empty).
    pub fn kernel_share(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.mode(Mode::Kernel).accesses() as f64 / a as f64
        }
    }

    /// Total evictions of valid blocks caused by fills.
    pub fn evictions(&self) -> u64 {
        self.cross_evictions.iter().sum::<u64>() + self.same_evictions.iter().sum::<u64>()
    }

    /// Fraction of fill-caused evictions where victim and requester were in
    /// different modes — the interference metric of claim C2.
    pub fn cross_eviction_share(&self) -> f64 {
        let e = self.evictions();
        if e == 0 {
            0.0
        } else {
            self.cross_evictions.iter().sum::<u64>() as f64 / e as f64
        }
    }

    /// Accumulates `other` into `self` (for aggregating epochs or apps).
    pub fn merge(&mut self, other: &CacheStats) {
        for i in 0..2 {
            self.by_mode[i].hits += other.by_mode[i].hits;
            self.by_mode[i].misses += other.by_mode[i].misses;
            self.by_mode[i].writes += other.by_mode[i].writes;
            self.by_mode[i].fills += other.by_mode[i].fills;
            self.by_mode[i].writebacks += other.by_mode[i].writebacks;
            self.cross_evictions[i] += other.cross_evictions[i];
            self.same_evictions[i] += other.same_evictions[i];
        }
        self.invalidations += other.invalidations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = CacheStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.kernel_share(), 0.0);
        assert_eq!(s.cross_eviction_share(), 0.0);
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn rates_compute() {
        let mut s = CacheStats::new();
        s.mode_mut(Mode::User).hits = 6;
        s.mode_mut(Mode::User).misses = 2;
        s.mode_mut(Mode::Kernel).hits = 1;
        s.mode_mut(Mode::Kernel).misses = 1;
        assert_eq!(s.accesses(), 10);
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
        assert!((s.kernel_share() - 0.2).abs() < 1e-12);
        assert!((s.mode(Mode::User).miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cross_eviction_share() {
        let mut s = CacheStats::new();
        s.cross_evictions[Mode::User.index()] = 3;
        s.same_evictions[Mode::User.index()] = 1;
        assert_eq!(s.evictions(), 4);
        assert!((s.cross_eviction_share() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = CacheStats::new();
        a.mode_mut(Mode::User).hits = 1;
        a.cross_evictions[0] = 2;
        a.invalidations = 5;
        let mut b = CacheStats::new();
        b.mode_mut(Mode::User).hits = 3;
        b.mode_mut(Mode::Kernel).writebacks = 7;
        b.same_evictions[1] = 4;
        b.invalidations = 1;
        a.merge(&b);
        assert_eq!(a.mode(Mode::User).hits, 4);
        assert_eq!(a.mode(Mode::Kernel).writebacks, 7);
        assert_eq!(a.cross_evictions[0], 2);
        assert_eq!(a.same_evictions[1], 4);
        assert_eq!(a.invalidations, 6);
    }
}
