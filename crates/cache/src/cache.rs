//! The set-associative cache engine.
//!
//! [`SetAssocCache`] is a timing-free functional cache model: callers
//! supply a logical timestamp (`now`) with each access and get back hit /
//! miss / eviction information. Every operation takes a [`WayMask`]
//! restricting both lookup and fill, which is the primitive the paper's
//! way-partitioned and power-gated designs are built on.

use moca_trace::Mode;

use crate::config::{CacheGeometry, WayMask};
use crate::replacement::{ReplacementPolicy, ReplacementState};
use crate::stats::CacheStats;

/// One cache block's metadata.
#[derive(Debug, Clone, Copy)]
struct Block {
    tag: u64,
    valid: bool,
    dirty: bool,
    owner: Mode,
    inserted_at: u64,
    last_touch: u64,
    last_write: u64,
    access_count: u64,
}

impl Block {
    fn empty() -> Self {
        Block {
            tag: 0,
            valid: false,
            dirty: false,
            owner: Mode::User,
            inserted_at: 0,
            last_touch: 0,
            last_write: 0,
            access_count: 0,
        }
    }
}

/// Read-only view of a resident block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockView {
    /// Line address of the block.
    pub line: u64,
    /// Whether the block is dirty.
    pub dirty: bool,
    /// Mode that owns (last filled) the block.
    pub owner: Mode,
    /// Timestamp at fill.
    pub inserted_at: u64,
    /// Timestamp of the most recent touch.
    pub last_touch: u64,
    /// Timestamp of the most recent *cell write* (fill, store hit, or
    /// refresh) — the event that resets an STT-RAM retention clock.
    pub last_write: u64,
    /// Number of touches since fill (including the fill).
    pub access_count: u64,
}

/// A block removed from the cache (by eviction, drain, or invalidation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedBlock {
    /// Line address of the removed block.
    pub line: u64,
    /// Whether it was dirty (requires writeback).
    pub dirty: bool,
    /// Mode that owned it.
    pub owner: Mode,
    /// Timestamp at fill.
    pub inserted_at: u64,
    /// Timestamp of its last touch.
    pub last_touch: u64,
    /// Timestamp of its last cell write.
    pub last_write: u64,
    /// Touches it received while resident.
    pub access_count: u64,
}

/// Outcome of [`SetAssocCache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the request hit.
    pub hit: bool,
    /// The way that now holds the line.
    pub way: u32,
    /// A valid block displaced by the fill, if any.
    pub victim: Option<EvictedBlock>,
}

/// A set-associative, write-back, write-allocate cache model.
///
/// # Examples
///
/// ```
/// use moca_cache::{CacheGeometry, ReplacementPolicy, SetAssocCache, WayMask};
/// use moca_trace::Mode;
///
/// let geom = CacheGeometry::new(64 * 1024, 8, 64)?;
/// let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
/// let mask = WayMask::first(8);
///
/// let first = cache.access(0x1000 / 64, false, Mode::User, 0, mask);
/// assert!(!first.hit);
/// let second = cache.access(0x1000 / 64, false, Mode::User, 1, mask);
/// assert!(second.hit);
/// # Ok::<(), moca_cache::GeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geom: CacheGeometry,
    blocks: Vec<Block>,
    repl: ReplacementState,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache.
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let n = (geom.sets() as usize) * (geom.ways() as usize);
        Self {
            geom,
            blocks: vec![Block::empty(); n],
            repl: ReplacementState::new(policy, geom.sets(), geom.ways()),
            stats: CacheStats::new(),
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics to zero (contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    #[inline]
    fn idx(&self, set: u64, way: u32) -> usize {
        set as usize * self.geom.ways() as usize + way as usize
    }

    /// Performs an access to `line` (a line address, i.e. byte address
    /// divided by the line size) restricted to `mask`.
    ///
    /// On a miss the line is filled into `mask`; a displaced valid block is
    /// returned in [`AccessResult::victim`].
    ///
    /// # Panics
    ///
    /// Panics if `mask` is empty or references ways beyond the geometry.
    pub fn access(
        &mut self,
        line: u64,
        write: bool,
        mode: Mode,
        now: u64,
        mask: WayMask,
    ) -> AccessResult {
        self.check_mask(mask);
        let set = self.geom.set_of_line(line);
        let tag = self.geom.tag_of_line(line);
        let ways = self.geom.ways();

        let counters = self.stats.mode_mut(mode);
        if write {
            counters.writes += 1;
        }

        // Lookup restricted to the mask: partitioned segments are fully
        // isolated, so a line resident in foreign ways is *not* a hit.
        for way in mask.iter() {
            let i = self.idx(set, way);
            if self.blocks[i].valid && self.blocks[i].tag == tag {
                let b = &mut self.blocks[i];
                b.dirty |= write;
                b.last_touch = now;
                if write {
                    b.last_write = now;
                }
                b.access_count += 1;
                self.repl.on_hit(set, ways, way);
                self.stats.mode_mut(mode).hits += 1;
                return AccessResult {
                    hit: true,
                    way,
                    victim: None,
                };
            }
        }

        // Miss: pick an invalid way in the mask, else a policy victim.
        self.stats.mode_mut(mode).misses += 1;
        let (way, victim) = match mask.iter().find(|&w| !self.blocks[self.idx(set, w)].valid) {
            Some(w) => (w, None),
            None => {
                let w = self.repl.victim(set, ways, mask);
                let i = self.idx(set, w);
                let old = self.blocks[i];
                debug_assert!(old.valid);
                let ev = EvictedBlock {
                    line: self.geom.line_from_parts(old.tag, set),
                    dirty: old.dirty,
                    owner: old.owner,
                    inserted_at: old.inserted_at,
                    last_touch: old.last_touch,
                    last_write: old.last_write,
                    access_count: old.access_count,
                };
                if ev.owner == mode {
                    self.stats.same_evictions[ev.owner.index()] += 1;
                } else {
                    self.stats.cross_evictions[ev.owner.index()] += 1;
                }
                if ev.dirty {
                    self.stats.mode_mut(mode).writebacks += 1;
                }
                (w, Some(ev))
            }
        };

        let i = self.idx(set, way);
        self.blocks[i] = Block {
            tag,
            valid: true,
            dirty: write,
            owner: mode,
            inserted_at: now,
            last_touch: now,
            last_write: now,
            access_count: 1,
        };
        self.repl.on_fill(set, ways, way);
        self.stats.mode_mut(mode).fills += 1;
        AccessResult {
            hit: false,
            way,
            victim,
        }
    }

    /// Looks a line up without changing any state.
    pub fn probe(&self, line: u64, mask: WayMask) -> Option<BlockView> {
        let set = self.geom.set_of_line(line);
        let tag = self.geom.tag_of_line(line);
        for way in mask.iter().filter(|&w| w < self.geom.ways()) {
            let b = &self.blocks[self.idx(set, way)];
            if b.valid && b.tag == tag {
                return Some(self.view(set, b));
            }
        }
        None
    }

    fn view(&self, set: u64, b: &Block) -> BlockView {
        BlockView {
            line: self.geom.line_from_parts(b.tag, set),
            dirty: b.dirty,
            owner: b.owner,
            inserted_at: b.inserted_at,
            last_touch: b.last_touch,
            last_write: b.last_write,
            access_count: b.access_count,
        }
    }

    /// Returns a view of the block at `(set, way)` if valid.
    ///
    /// # Panics
    ///
    /// Panics if `set` or `way` is out of range.
    pub fn block_at(&self, set: u64, way: u32) -> Option<BlockView> {
        assert!(set < self.geom.sets() && way < self.geom.ways());
        let b = &self.blocks[self.idx(set, way)];
        if b.valid {
            Some(self.view(set, b))
        } else {
            None
        }
    }

    /// Invalidates the block at `(set, way)`, returning it if it was valid.
    ///
    /// Used by retention expiry and external coherence events.
    ///
    /// # Panics
    ///
    /// Panics if `set` or `way` is out of range.
    pub fn invalidate_at(&mut self, set: u64, way: u32) -> Option<EvictedBlock> {
        assert!(set < self.geom.sets() && way < self.geom.ways());
        let i = self.idx(set, way);
        let b = self.blocks[i];
        if !b.valid {
            return None;
        }
        self.blocks[i].valid = false;
        self.stats.invalidations += 1;
        Some(EvictedBlock {
            line: self.geom.line_from_parts(b.tag, set),
            dirty: b.dirty,
            owner: b.owner,
            inserted_at: b.inserted_at,
            last_touch: b.last_touch,
            last_write: b.last_write,
            access_count: b.access_count,
        })
    }

    /// Records a refresh rewrite of the block at `(set, way)`: resets the
    /// cell-write clock without changing dirtiness or recency.
    ///
    /// Returns `false` if the slot is invalid.
    ///
    /// # Panics
    ///
    /// Panics if `set` or `way` is out of range.
    pub fn refresh_write(&mut self, set: u64, way: u32, now: u64) -> bool {
        assert!(set < self.geom.sets() && way < self.geom.ways());
        let i = self.idx(set, way);
        if !self.blocks[i].valid {
            return false;
        }
        self.blocks[i].last_write = now;
        true
    }

    /// Marks the block at `(set, way)` clean (after an early writeback,
    /// e.g. ahead of STT-RAM retention expiry). Returns `true` if the
    /// block was valid and dirty.
    ///
    /// # Panics
    ///
    /// Panics if `set` or `way` is out of range.
    pub fn clear_dirty(&mut self, set: u64, way: u32) -> bool {
        assert!(set < self.geom.sets() && way < self.geom.ways());
        let i = self.idx(set, way);
        if self.blocks[i].valid && self.blocks[i].dirty {
            self.blocks[i].dirty = false;
            true
        } else {
            false
        }
    }

    /// Invalidates a line wherever it resides within `mask`.
    pub fn invalidate_line(&mut self, line: u64, mask: WayMask) -> Option<EvictedBlock> {
        let set = self.geom.set_of_line(line);
        let tag = self.geom.tag_of_line(line);
        for way in mask.iter().filter(|&w| w < self.geom.ways()) {
            let i = self.idx(set, way);
            if self.blocks[i].valid && self.blocks[i].tag == tag {
                return self.invalidate_at(set, way);
            }
        }
        None
    }

    /// Evicts every valid block in `way` across all sets (used when a way
    /// is removed from a partition or power-gated). Dirty blocks are
    /// returned so the caller can write them back.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn drain_way(&mut self, way: u32) -> Vec<EvictedBlock> {
        assert!(way < self.geom.ways(), "way {way} out of range");
        let mut out = Vec::new();
        for set in 0..self.geom.sets() {
            if let Some(ev) = self.invalidate_at(set, way) {
                out.push(ev);
            }
        }
        out
    }

    /// Number of valid blocks currently resident in `mask`.
    pub fn occupancy(&self, mask: WayMask) -> u64 {
        let mut n = 0;
        for set in 0..self.geom.sets() {
            for way in mask.iter().filter(|&w| w < self.geom.ways()) {
                if self.blocks[self.idx(set, way)].valid {
                    n += 1;
                }
            }
        }
        n
    }

    /// Iterates views of all valid blocks (set-major order).
    pub fn iter_valid(&self) -> impl Iterator<Item = (u64, u32, BlockView)> + '_ {
        (0..self.geom.sets()).flat_map(move |set| {
            (0..self.geom.ways()).filter_map(move |way| {
                let b = &self.blocks[self.idx(set, way)];
                if b.valid {
                    Some((set, way, self.view(set, b)))
                } else {
                    None
                }
            })
        })
    }

    fn check_mask(&self, mask: WayMask) {
        assert!(!mask.is_empty(), "access with empty way mask");
        let legal = WayMask::first(self.geom.ways());
        assert!(
            mask.difference(legal).is_empty(),
            "mask {mask} references ways beyond {}-way geometry",
            self.geom.ways()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 4 ways x 64B = 1 KiB
        let geom = CacheGeometry::new(1024, 4, 64).expect("valid");
        SetAssocCache::new(geom, ReplacementPolicy::Lru)
    }

    fn full() -> WayMask {
        WayMask::first(4)
    }

    /// Line addresses that all map to set 0 of the 4-set cache.
    fn set0_line(i: u64) -> u64 {
        i * 4
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let r = c.access(10, false, Mode::User, 0, full());
        assert!(!r.hit);
        assert!(r.victim.is_none());
        let r = c.access(10, false, Mode::User, 1, full());
        assert!(r.hit);
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn write_marks_dirty_and_writeback_on_eviction() {
        let mut c = small();
        c.access(set0_line(0), true, Mode::User, 0, full());
        // Fill the set, then one more to evict the dirty line.
        for i in 1..=4 {
            c.access(set0_line(i), false, Mode::User, i, full());
        }
        let evicted_dirty = c.stats().writebacks();
        assert_eq!(evicted_dirty, 1, "dirty LRU line must be written back");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        for i in 0..4 {
            c.access(set0_line(i), false, Mode::User, i, full());
        }
        // Touch line 0 so line 1 becomes LRU.
        c.access(set0_line(0), false, Mode::User, 10, full());
        let r = c.access(set0_line(9), false, Mode::User, 11, full());
        let v = r.victim.expect("set was full");
        assert_eq!(v.line, set0_line(1));
    }

    #[test]
    fn cross_mode_eviction_counted() {
        let mut c = small();
        for i in 0..4 {
            c.access(set0_line(i), false, Mode::User, i, full());
        }
        let r = c.access(0xC000_0000 / 64 * 4, false, Mode::Kernel, 5, full());
        // Kernel fill evicted a user block.
        assert!(r.victim.is_some());
        assert_eq!(c.stats().cross_evictions[Mode::User.index()], 1);
        assert_eq!(c.stats().same_evictions[Mode::User.index()], 0);
        assert!((c.stats().cross_eviction_share() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mask_isolation_no_foreign_hits() {
        let mut c = small();
        let left = WayMask::range(0, 2);
        let right = WayMask::range(2, 4);
        c.access(20, false, Mode::User, 0, left);
        // Same line through the disjoint mask must MISS (strict isolation).
        let r = c.access(20, false, Mode::Kernel, 1, right);
        assert!(!r.hit);
        // And both copies may coexist in different ways.
        assert!(c.probe(20, left).is_some());
        assert!(c.probe(20, right).is_some());
    }

    #[test]
    fn fills_stay_inside_mask() {
        let mut c = small();
        let right = WayMask::range(2, 4);
        for i in 0..16 {
            let r = c.access(set0_line(i), false, Mode::Kernel, i, right);
            assert!(right.contains(r.way));
        }
        assert_eq!(c.occupancy(WayMask::range(0, 2)), 0);
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = small();
        c.access(7, true, Mode::User, 3, full());
        let before = *c.stats();
        let view = c.probe(7, full()).expect("resident");
        assert_eq!(view.line, 7);
        assert!(view.dirty);
        assert_eq!(view.owner, Mode::User);
        assert_eq!(before, *c.stats());
        assert!(c.probe(8, full()).is_none());
    }

    #[test]
    fn invalidate_line_returns_block() {
        let mut c = small();
        c.access(7, true, Mode::Kernel, 3, full());
        let ev = c.invalidate_line(7, full()).expect("was resident");
        assert!(ev.dirty);
        assert_eq!(ev.owner, Mode::Kernel);
        assert!(c.probe(7, full()).is_none());
        assert_eq!(c.stats().invalidations, 1);
        assert!(c.invalidate_line(7, full()).is_none());
    }

    #[test]
    fn drain_way_empties_exactly_that_way() {
        let mut c = small();
        // Fill all 4 ways of every set.
        for set in 0..4u64 {
            for i in 0..4u64 {
                c.access(i * 4 + set, false, Mode::User, i, full());
            }
        }
        assert_eq!(c.occupancy(full()), 16);
        let drained = c.drain_way(2);
        assert_eq!(drained.len(), 4);
        assert_eq!(c.occupancy(full()), 12);
        assert_eq!(c.occupancy(WayMask::EMPTY.with(2)), 0);
    }

    #[test]
    fn block_metadata_tracks_touches() {
        let mut c = small();
        c.access(5, false, Mode::User, 100, full());
        c.access(5, true, Mode::User, 200, full());
        c.access(5, false, Mode::User, 300, full());
        let v = c.probe(5, full()).expect("resident");
        assert_eq!(v.inserted_at, 100);
        assert_eq!(v.last_touch, 300);
        assert_eq!(v.access_count, 3);
        assert!(v.dirty);
    }

    #[test]
    fn evicted_block_carries_lifetime() {
        let mut c = small();
        c.access(set0_line(0), false, Mode::User, 10, full());
        c.access(set0_line(0), false, Mode::User, 20, full());
        for i in 1..=4 {
            c.access(set0_line(i), false, Mode::User, 100 + i, full());
        }
        // line 0 was LRU after the loop ran (it was touched last at 20).
        let mut evicted_line0 = None;
        let mut c2 = small();
        c2.access(set0_line(0), false, Mode::User, 10, full());
        c2.access(set0_line(0), false, Mode::User, 20, full());
        for i in 1..=4 {
            let r = c2.access(set0_line(i), false, Mode::User, 100 + i, full());
            if let Some(v) = r.victim {
                if v.line == set0_line(0) {
                    evicted_line0 = Some(v);
                }
            }
        }
        let v = evicted_line0.expect("line 0 evicted");
        assert_eq!(v.inserted_at, 10);
        assert_eq!(v.last_touch, 20);
        assert_eq!(v.access_count, 2);
        // Silence unused warning on first cache.
        let _ = c.stats();
    }

    #[test]
    fn iter_valid_counts() {
        let mut c = small();
        c.access(1, false, Mode::User, 0, full());
        c.access(2, false, Mode::Kernel, 0, full());
        let blocks: Vec<_> = c.iter_valid().collect();
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small();
        c.access(1, false, Mode::User, 0, full());
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(1, false, Mode::User, 1, full()).hit);
    }

    #[test]
    #[should_panic(expected = "empty way mask")]
    fn empty_mask_panics() {
        let mut c = small();
        c.access(1, false, Mode::User, 0, WayMask::EMPTY);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn oversized_mask_panics() {
        let mut c = small();
        c.access(1, false, Mode::User, 0, WayMask::first(8));
    }
}
