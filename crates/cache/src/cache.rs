//! The set-associative cache engine.
//!
//! [`SetAssocCache`] is a timing-free functional cache model: callers
//! supply a logical timestamp (`now`) with each access and get back hit /
//! miss / eviction information. Every operation takes a [`WayMask`]
//! restricting both lookup and fill, which is the primitive the paper's
//! way-partitioned and power-gated designs are built on.
//!
//! # Memory layout (structure-of-arrays)
//!
//! Block state is split by access temperature rather than stored as an
//! array of per-block structs:
//!
//! * **Hot**: a packed per-block tag array (`Vec<u64>`, set-major) plus
//!   one valid and one dirty **bitmask word per set**. A lookup touches
//!   only the set's valid word and the tags of candidate ways
//!   (`valid & mask` scanned with `trailing_zeros`), so the common path
//!   reads a few cache lines instead of one 64-byte struct per way.
//! * **Cold**: `owner`, `inserted_at`, `last_touch`, `last_write`, and
//!   `access_count` live in a separate parallel per-block record array
//!   and are touched only on a hit, fill, or eviction — never during the
//!   tag scan. Keeping the cold fields together (rather than one array
//!   per field) means a fill dirties one cache line of metadata instead
//!   of five.
//!
//! Scans iterate ways in increasing order exactly like the previous
//! array-of-structs engine, so results (including victim choice and every
//! statistic) are bit-identical to it.
//!
//! # Mask validation
//!
//! [`SetAssocCache::access`], [`SetAssocCache::probe`], and
//! [`SetAssocCache::invalidate_line`] all validate masks the same way:
//! a mask referencing ways at or beyond [`CacheGeometry::ways`] panics
//! (historically `probe` silently ignored such ways while `access`
//! panicked). `access` additionally rejects the empty mask, because a fill
//! must land somewhere; `probe` and `invalidate_line` accept it as a
//! trivially empty search.

use moca_trace::Mode;

use crate::config::{CacheGeometry, WayMask};
use crate::replacement::{ReplacementPolicy, ReplacementState};
use crate::stats::CacheStats;

/// Read-only view of a resident block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockView {
    /// Line address of the block.
    pub line: u64,
    /// Whether the block is dirty.
    pub dirty: bool,
    /// Mode that owns (last filled) the block.
    pub owner: Mode,
    /// Timestamp at fill.
    pub inserted_at: u64,
    /// Timestamp of the most recent touch.
    pub last_touch: u64,
    /// Timestamp of the most recent *cell write* (fill, store hit, or
    /// refresh) — the event that resets an STT-RAM retention clock.
    pub last_write: u64,
    /// Number of touches since fill (including the fill).
    pub access_count: u64,
}

/// A block removed from the cache (by eviction, drain, or invalidation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedBlock {
    /// Line address of the removed block.
    pub line: u64,
    /// Whether it was dirty (requires writeback).
    pub dirty: bool,
    /// Mode that owned it.
    pub owner: Mode,
    /// Timestamp at fill.
    pub inserted_at: u64,
    /// Timestamp of its last touch.
    pub last_touch: u64,
    /// Timestamp of its last cell write.
    pub last_write: u64,
    /// Touches it received while resident.
    pub access_count: u64,
}

/// Cold per-block metadata, read and written only on hits, fills,
/// evictions, and maintenance operations — never by the tag scan.
///
/// The owner mode is packed into the top bit of the access-count word so
/// the record is exactly 32 bytes: two records per cache line, none
/// straddling a line boundary.
#[derive(Debug, Clone, Copy)]
struct ColdMeta {
    inserted_at: u64,
    last_touch: u64,
    last_write: u64,
    /// Access count in the low 63 bits, owner mode in the top bit.
    count_owner: u64,
}

impl ColdMeta {
    const OWNER_BIT: u64 = 1 << 63;

    const EMPTY: ColdMeta = ColdMeta {
        inserted_at: 0,
        last_touch: 0,
        last_write: 0,
        count_owner: 0,
    };

    fn filled(mode: Mode, now: u64) -> ColdMeta {
        ColdMeta {
            inserted_at: now,
            last_touch: now,
            last_write: now,
            count_owner: ((mode.index() as u64) << 63) | 1,
        }
    }

    fn owner(self) -> Mode {
        if self.count_owner & Self::OWNER_BIT != 0 {
            Mode::Kernel
        } else {
            Mode::User
        }
    }

    fn access_count(self) -> u64 {
        self.count_owner & !Self::OWNER_BIT
    }
}

/// Outcome of [`SetAssocCache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the request hit.
    pub hit: bool,
    /// The way that now holds the line.
    pub way: u32,
    /// A valid block displaced by the fill, if any.
    pub victim: Option<EvictedBlock>,
}

/// Folds a tag to its 8-bit lookup signature.
#[inline]
fn tag_signature(tag: u64) -> u8 {
    (tag ^ (tag >> 8)) as u8
}

/// Associativity at or below which lookups compare full tags directly:
/// the set's whole tag array fits in one cache line, so the signature
/// filter's extra work costs more than it saves. Wider sets (the 16-way
/// L2) go through [`scan_for_tag`]'s signature pre-filter instead.
const DIRECT_SCAN_WAYS: u32 = 8;

/// Finds the lowest way in `live` whose tag matches, comparing full tags.
#[inline]
fn scan_tags_direct(set_tags: &[u64], tag: u64, mut live: u64) -> Option<u32> {
    while live != 0 {
        let way = live.trailing_zeros();
        if set_tags[way as usize] == tag {
            return Some(way);
        }
        live &= live - 1;
    }
    None
}

/// Finds the lowest way in `live` whose signature and full tag match.
///
/// Signatures are scanned eight ways at a time with SWAR zero-byte
/// detection; only matching bytes (hits and ~1/256 false positives) are
/// verified against the full tag array. Candidates are visited in
/// increasing way order. `set_sigs` shorter than a multiple of eight is
/// zero-padded: a padding byte can only match when `sig == 0`, and such
/// phantom ways are rejected by `live`, which never has bits at or above
/// the way count.
#[inline]
fn scan_for_tag(set_sigs: &[u8], set_tags: &[u64], sig: u8, tag: u64, live: u64) -> Option<u32> {
    const LOW: u64 = 0x0101_0101_0101_0101;
    const HIGH: u64 = 0x8080_8080_8080_8080;
    let broadcast = LOW.wrapping_mul(u64::from(sig));
    let mut chunk_base = 0u32;
    for chunk in set_sigs.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        let x = u64::from_le_bytes(word) ^ broadcast;
        // Bit 7 of each byte of `m` is set iff that byte of `x` is zero.
        let mut m = x.wrapping_sub(LOW) & !x & HIGH;
        while m != 0 {
            let way = chunk_base + m.trailing_zeros() / 8;
            if (live >> way) & 1 != 0 && set_tags[way as usize] == tag {
                return Some(way);
            }
            m &= m - 1;
        }
        chunk_base += 8;
    }
    None
}

/// A set-associative, write-back, write-allocate cache model.
///
/// # Examples
///
/// ```
/// use moca_cache::{CacheGeometry, ReplacementPolicy, SetAssocCache, WayMask};
/// use moca_trace::Mode;
///
/// let geom = CacheGeometry::new(64 * 1024, 8, 64)?;
/// let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
/// let mask = WayMask::first(8);
///
/// let first = cache.access(0x1000 / 64, false, Mode::User, 0, mask);
/// assert!(!first.hit);
/// let second = cache.access(0x1000 / 64, false, Mode::User, 1, mask);
/// assert!(second.hit);
/// # Ok::<(), moca_cache::GeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geom: CacheGeometry,
    /// `geom.ways()`, hoisted out of the access path.
    ways: u32,
    /// `geom.sets() - 1`, for the set-index mask.
    set_mask: u64,
    /// `geom.sets().trailing_zeros()`, for the tag shift.
    tag_shift: u32,
    /// Bits of `WayMask::first(ways)`: the set of legal ways.
    legal_bits: u64,
    /// Hot: per-block tags, set-major (`set * ways + way`).
    tags: Vec<u64>,
    /// Hot: per-block 8-bit tag signatures (same layout as `tags`), the
    /// first-level filter of the lookup scan.
    sigs: Vec<u8>,
    /// Hot: two bitmask words per set — valid at `2 * set`, dirty at
    /// `2 * set + 1` (bit `w` = way `w`). Interleaving keeps both words
    /// of a set on the same cache line.
    flags: Vec<u64>,
    /// Cold: per-block metadata, set-major like `tags`.
    meta: Vec<ColdMeta>,
    repl: ReplacementState,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache.
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let n = (geom.sets() as usize) * (geom.ways() as usize);
        let sets = geom.sets() as usize;
        Self {
            geom,
            ways: geom.ways(),
            set_mask: geom.sets() - 1,
            tag_shift: geom.sets().trailing_zeros(),
            legal_bits: WayMask::first(geom.ways()).bits(),
            tags: vec![0; n],
            sigs: vec![0; n],
            flags: vec![0; sets * 2],
            meta: vec![ColdMeta::EMPTY; n],
            repl: ReplacementState::new(policy, geom.sets(), geom.ways()),
            stats: CacheStats::new(),
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics to zero (contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    #[inline]
    fn idx(&self, set: u64, way: u32) -> usize {
        set as usize * self.ways as usize + way as usize
    }

    /// Valid bitmask word of `set`.
    #[inline]
    fn valid_bits(&self, set: u64) -> u64 {
        self.flags[set as usize * 2]
    }

    /// Dirty bitmask word of `set`.
    #[inline]
    fn dirty_bits(&self, set: u64) -> u64 {
        self.flags[set as usize * 2 + 1]
    }

    #[inline]
    fn line_from(&self, tag: u64, set: u64) -> u64 {
        (tag << self.tag_shift) | set
    }

    /// Performs an access to `line` (a line address, i.e. byte address
    /// divided by the line size) restricted to `mask`.
    ///
    /// On a miss the line is filled into `mask`; a displaced valid block is
    /// returned in [`AccessResult::victim`].
    ///
    /// # Panics
    ///
    /// Panics if `mask` is empty or references ways beyond the geometry
    /// (see the module docs on mask validation).
    pub fn access(
        &mut self,
        line: u64,
        write: bool,
        mode: Mode,
        now: u64,
        mask: WayMask,
    ) -> AccessResult {
        let bits = mask.bits();
        assert!(bits != 0, "access with empty way mask");
        self.check_mask_bounds(mask);

        let set = line & self.set_mask;
        let tag = line >> self.tag_shift;
        let si = set as usize;
        let base = si * self.ways as usize;
        let valid_bits = self.flags[si * 2];

        // Lookup restricted to the mask: partitioned segments are fully
        // isolated, so a line resident in foreign ways is *not* a hit.
        // Narrow sets compare full tags directly (one cache line); wide
        // sets filter ways through the 8-bit signature array first (SWAR
        // zero-byte detection, one u64 word per 8 ways), so a wide-set
        // miss touches 1 byte per way of signatures instead of 8 bytes
        // per way of full tags, and only signature matches — real hits
        // plus ~1/256 false positives — read the tag array. Both scans
        // visit candidates in increasing way order against valid ∩ mask,
        // preserving the old scan order exactly.
        let ways = self.ways as usize;
        let hit = if self.ways <= DIRECT_SCAN_WAYS {
            scan_tags_direct(&self.tags[base..base + ways], tag, valid_bits & bits)
        } else {
            scan_for_tag(
                &self.sigs[base..base + ways],
                &self.tags[base..base + ways],
                tag_signature(tag),
                tag,
                valid_bits & bits,
            )
        };
        if let Some(way) = hit {
            let m = &mut self.meta[base + way as usize];
            if write {
                self.flags[si * 2 + 1] |= 1u64 << way;
                m.last_write = now;
            }
            m.last_touch = now;
            m.count_owner += 1;
            self.repl.on_hit(set, self.ways, way);
            let c = &mut self.stats.by_mode[mode.index()];
            c.hits += 1;
            c.writes += u64::from(write);
            return AccessResult {
                hit: true,
                way,
                victim: None,
            };
        }

        // Miss: pick the lowest invalid way in the mask, else a policy
        // victim (victim choice + fill bookkeeping in one dispatch).
        let invalid = bits & !valid_bits;
        let (way, victim) = if invalid != 0 {
            let w = invalid.trailing_zeros();
            self.repl.on_fill(set, self.ways, w);
            (w, None)
        } else {
            let w = self.repl.evict_and_fill(set, self.ways, mask);
            let i = base + w as usize;
            let m = self.meta[i];
            let ev = EvictedBlock {
                line: self.line_from(self.tags[i], set),
                dirty: self.flags[si * 2 + 1] & (1u64 << w) != 0,
                owner: m.owner(),
                inserted_at: m.inserted_at,
                last_touch: m.last_touch,
                last_write: m.last_write,
                access_count: m.access_count(),
            };
            if ev.owner == mode {
                self.stats.same_evictions[ev.owner.index()] += 1;
            } else {
                self.stats.cross_evictions[ev.owner.index()] += 1;
            }
            (w, Some(ev))
        };

        let i = base + way as usize;
        self.tags[i] = tag;
        self.sigs[i] = tag_signature(tag);
        self.flags[si * 2] |= 1u64 << way;
        if write {
            self.flags[si * 2 + 1] |= 1u64 << way;
        } else {
            self.flags[si * 2 + 1] &= !(1u64 << way);
        }
        self.meta[i] = ColdMeta::filled(mode, now);

        // One counter-block write per access: every miss-path stat lands
        // here instead of re-dispatching `mode_mut` per field.
        let wb = u64::from(victim.is_some_and(|v| v.dirty));
        let c = &mut self.stats.by_mode[mode.index()];
        c.misses += 1;
        c.fills += 1;
        c.writes += u64::from(write);
        c.writebacks += wb;

        AccessResult {
            hit: false,
            way,
            victim,
        }
    }

    /// Looks a line up without changing any state.
    ///
    /// An empty mask is a valid (trivially unsuccessful) search.
    ///
    /// # Panics
    ///
    /// Panics if `mask` references ways beyond the geometry — the same
    /// validation [`SetAssocCache::access`] applies.
    pub fn probe(&self, line: u64, mask: WayMask) -> Option<BlockView> {
        self.check_mask_bounds(mask);
        let set = line & self.set_mask;
        let tag = line >> self.tag_shift;
        let base = set as usize * self.ways as usize;
        let mut cand = self.valid_bits(set) & mask.bits();
        while cand != 0 {
            let way = cand.trailing_zeros();
            let i = base + way as usize;
            if self.tags[i] == tag {
                return Some(self.view(set, way));
            }
            cand &= cand - 1;
        }
        None
    }

    fn view(&self, set: u64, way: u32) -> BlockView {
        let i = self.idx(set, way);
        let m = self.meta[i];
        BlockView {
            line: self.line_from(self.tags[i], set),
            dirty: self.dirty_bits(set) & (1u64 << way) != 0,
            owner: m.owner(),
            inserted_at: m.inserted_at,
            last_touch: m.last_touch,
            last_write: m.last_write,
            access_count: m.access_count(),
        }
    }

    /// The mask of valid ways in `set`.
    ///
    /// Cheap (one word read); lets sweep-style callers skip invalid slots
    /// without probing each `(set, way)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn valid_ways(&self, set: u64) -> WayMask {
        assert!(set < self.geom.sets(), "set {set} out of range");
        WayMask::from_bits(self.valid_bits(set))
    }

    /// Returns a view of the block at `(set, way)` if valid.
    ///
    /// # Panics
    ///
    /// Panics if `set` or `way` is out of range.
    pub fn block_at(&self, set: u64, way: u32) -> Option<BlockView> {
        assert!(set < self.geom.sets() && way < self.ways);
        if self.valid_bits(set) & (1u64 << way) != 0 {
            Some(self.view(set, way))
        } else {
            None
        }
    }

    /// Invalidates the block at `(set, way)`, returning it if it was valid.
    ///
    /// Used by retention expiry and external coherence events.
    ///
    /// # Panics
    ///
    /// Panics if `set` or `way` is out of range.
    pub fn invalidate_at(&mut self, set: u64, way: u32) -> Option<EvictedBlock> {
        assert!(set < self.geom.sets() && way < self.ways);
        if self.valid_bits(set) & (1u64 << way) == 0 {
            return None;
        }
        let i = self.idx(set, way);
        let m = self.meta[i];
        let ev = EvictedBlock {
            line: self.line_from(self.tags[i], set),
            dirty: self.dirty_bits(set) & (1u64 << way) != 0,
            owner: m.owner(),
            inserted_at: m.inserted_at,
            last_touch: m.last_touch,
            last_write: m.last_write,
            access_count: m.access_count(),
        };
        self.flags[set as usize * 2] &= !(1u64 << way);
        self.stats.invalidations += 1;
        Some(ev)
    }

    /// Records a refresh rewrite of the block at `(set, way)`: resets the
    /// cell-write clock without changing dirtiness or recency.
    ///
    /// Returns `false` if the slot is invalid.
    ///
    /// # Panics
    ///
    /// Panics if `set` or `way` is out of range.
    pub fn refresh_write(&mut self, set: u64, way: u32, now: u64) -> bool {
        assert!(set < self.geom.sets() && way < self.ways);
        if self.valid_bits(set) & (1u64 << way) == 0 {
            return false;
        }
        let i = self.idx(set, way);
        self.meta[i].last_write = now;
        true
    }

    /// Marks the block at `(set, way)` clean (after an early writeback,
    /// e.g. ahead of STT-RAM retention expiry). Returns `true` if the
    /// block was valid and dirty.
    ///
    /// # Panics
    ///
    /// Panics if `set` or `way` is out of range.
    pub fn clear_dirty(&mut self, set: u64, way: u32) -> bool {
        assert!(set < self.geom.sets() && way < self.ways);
        let bit = 1u64 << way;
        let fi = set as usize * 2;
        if self.flags[fi] & bit != 0 && self.flags[fi + 1] & bit != 0 {
            self.flags[fi + 1] &= !bit;
            true
        } else {
            false
        }
    }

    /// Invalidates a line wherever it resides within `mask`.
    ///
    /// # Panics
    ///
    /// Panics if `mask` references ways beyond the geometry (same
    /// validation as [`SetAssocCache::access`]; the empty mask is a
    /// trivially unsuccessful search).
    pub fn invalidate_line(&mut self, line: u64, mask: WayMask) -> Option<EvictedBlock> {
        self.check_mask_bounds(mask);
        let set = line & self.set_mask;
        let tag = line >> self.tag_shift;
        let base = set as usize * self.ways as usize;
        let mut cand = self.valid_bits(set) & mask.bits();
        while cand != 0 {
            let way = cand.trailing_zeros();
            if self.tags[base + way as usize] == tag {
                return self.invalidate_at(set, way);
            }
            cand &= cand - 1;
        }
        None
    }

    /// Evicts every valid block in `way` across all sets (used when a way
    /// is removed from a partition or power-gated). Dirty blocks are
    /// returned so the caller can write them back.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn drain_way(&mut self, way: u32) -> Vec<EvictedBlock> {
        assert!(way < self.ways, "way {way} out of range");
        let mut out = Vec::new();
        let bit = 1u64 << way;
        for set in 0..self.geom.sets() {
            if self.valid_bits(set) & bit != 0 {
                if let Some(ev) = self.invalidate_at(set, way) {
                    out.push(ev);
                }
            }
        }
        out
    }

    /// Number of valid blocks currently resident in `mask`.
    ///
    /// With the per-set valid bitmasks this is a popcount per set, not a
    /// probe per `(set, way)` pair. Ways beyond the geometry contribute
    /// nothing.
    pub fn occupancy(&self, mask: WayMask) -> u64 {
        let bits = mask.bits() & self.legal_bits;
        self.flags
            .chunks_exact(2)
            .map(|pair| u64::from((pair[0] & bits).count_ones()))
            .sum()
    }

    /// Iterates views of all valid blocks (set-major order).
    pub fn iter_valid(&self) -> impl Iterator<Item = (u64, u32, BlockView)> + '_ {
        (0..self.geom.sets()).flat_map(move |set| {
            WayMask::from_bits(self.valid_bits(set))
                .iter()
                .map(move |way| (set, way, self.view(set, way)))
        })
    }

    /// Panics unless every way in `mask` exists in the geometry.
    #[inline]
    fn check_mask_bounds(&self, mask: WayMask) {
        assert!(
            mask.bits() & !self.legal_bits == 0,
            "mask {mask} references ways beyond {}-way geometry",
            self.ways
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 4 ways x 64B = 1 KiB
        let geom = CacheGeometry::new(1024, 4, 64).expect("valid");
        SetAssocCache::new(geom, ReplacementPolicy::Lru)
    }

    fn full() -> WayMask {
        WayMask::first(4)
    }

    /// Line addresses that all map to set 0 of the 4-set cache.
    fn set0_line(i: u64) -> u64 {
        i * 4
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let r = c.access(10, false, Mode::User, 0, full());
        assert!(!r.hit);
        assert!(r.victim.is_none());
        let r = c.access(10, false, Mode::User, 1, full());
        assert!(r.hit);
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn write_marks_dirty_and_writeback_on_eviction() {
        let mut c = small();
        c.access(set0_line(0), true, Mode::User, 0, full());
        // Fill the set, then one more to evict the dirty line.
        for i in 1..=4 {
            c.access(set0_line(i), false, Mode::User, i, full());
        }
        let evicted_dirty = c.stats().writebacks();
        assert_eq!(evicted_dirty, 1, "dirty LRU line must be written back");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        for i in 0..4 {
            c.access(set0_line(i), false, Mode::User, i, full());
        }
        // Touch line 0 so line 1 becomes LRU.
        c.access(set0_line(0), false, Mode::User, 10, full());
        let r = c.access(set0_line(9), false, Mode::User, 11, full());
        let v = r.victim.expect("set was full");
        assert_eq!(v.line, set0_line(1));
    }

    #[test]
    fn cross_mode_eviction_counted() {
        let mut c = small();
        for i in 0..4 {
            c.access(set0_line(i), false, Mode::User, i, full());
        }
        let r = c.access(0xC000_0000 / 64 * 4, false, Mode::Kernel, 5, full());
        // Kernel fill evicted a user block.
        assert!(r.victim.is_some());
        assert_eq!(c.stats().cross_evictions[Mode::User.index()], 1);
        assert_eq!(c.stats().same_evictions[Mode::User.index()], 0);
        assert!((c.stats().cross_eviction_share() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mask_isolation_no_foreign_hits() {
        let mut c = small();
        let left = WayMask::range(0, 2);
        let right = WayMask::range(2, 4);
        c.access(20, false, Mode::User, 0, left);
        // Same line through the disjoint mask must MISS (strict isolation).
        let r = c.access(20, false, Mode::Kernel, 1, right);
        assert!(!r.hit);
        // And both copies may coexist in different ways.
        assert!(c.probe(20, left).is_some());
        assert!(c.probe(20, right).is_some());
    }

    #[test]
    fn fills_stay_inside_mask() {
        let mut c = small();
        let right = WayMask::range(2, 4);
        for i in 0..16 {
            let r = c.access(set0_line(i), false, Mode::Kernel, i, right);
            assert!(right.contains(r.way));
        }
        assert_eq!(c.occupancy(WayMask::range(0, 2)), 0);
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = small();
        c.access(7, true, Mode::User, 3, full());
        let before = *c.stats();
        let view = c.probe(7, full()).expect("resident");
        assert_eq!(view.line, 7);
        assert!(view.dirty);
        assert_eq!(view.owner, Mode::User);
        assert_eq!(before, *c.stats());
        assert!(c.probe(8, full()).is_none());
    }

    #[test]
    fn probe_accepts_empty_mask() {
        let mut c = small();
        c.access(7, false, Mode::User, 0, full());
        assert!(c.probe(7, WayMask::EMPTY).is_none());
        assert!(c.invalidate_line(7, WayMask::EMPTY).is_none());
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn probe_oversized_mask_panics_like_access() {
        let c = small();
        c.probe(7, WayMask::first(8));
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn invalidate_line_oversized_mask_panics_like_access() {
        let mut c = small();
        c.invalidate_line(7, WayMask::first(8));
    }

    #[test]
    fn invalidate_line_returns_block() {
        let mut c = small();
        c.access(7, true, Mode::Kernel, 3, full());
        let ev = c.invalidate_line(7, full()).expect("was resident");
        assert!(ev.dirty);
        assert_eq!(ev.owner, Mode::Kernel);
        assert!(c.probe(7, full()).is_none());
        assert_eq!(c.stats().invalidations, 1);
        assert!(c.invalidate_line(7, full()).is_none());
    }

    #[test]
    fn drain_way_empties_exactly_that_way() {
        let mut c = small();
        // Fill all 4 ways of every set.
        for set in 0..4u64 {
            for i in 0..4u64 {
                c.access(i * 4 + set, false, Mode::User, i, full());
            }
        }
        assert_eq!(c.occupancy(full()), 16);
        let drained = c.drain_way(2);
        assert_eq!(drained.len(), 4);
        assert_eq!(c.occupancy(full()), 12);
        assert_eq!(c.occupancy(WayMask::EMPTY.with(2)), 0);
    }

    #[test]
    fn valid_ways_tracks_contents() {
        let mut c = small();
        assert_eq!(c.valid_ways(0), WayMask::EMPTY);
        c.access(set0_line(0), false, Mode::User, 0, full());
        c.access(set0_line(1), false, Mode::User, 1, full());
        assert_eq!(c.valid_ways(0).count(), 2);
        c.invalidate_at(0, 0);
        assert_eq!(c.valid_ways(0).count(), 1);
        assert!(!c.valid_ways(0).contains(0));
    }

    #[test]
    fn block_metadata_tracks_touches() {
        let mut c = small();
        c.access(5, false, Mode::User, 100, full());
        c.access(5, true, Mode::User, 200, full());
        c.access(5, false, Mode::User, 300, full());
        let v = c.probe(5, full()).expect("resident");
        assert_eq!(v.inserted_at, 100);
        assert_eq!(v.last_touch, 300);
        assert_eq!(v.access_count, 3);
        assert!(v.dirty);
    }

    #[test]
    fn evicted_block_carries_lifetime() {
        let mut c = small();
        c.access(set0_line(0), false, Mode::User, 10, full());
        c.access(set0_line(0), false, Mode::User, 20, full());
        for i in 1..=4 {
            c.access(set0_line(i), false, Mode::User, 100 + i, full());
        }
        // line 0 was LRU after the loop ran (it was touched last at 20).
        let mut evicted_line0 = None;
        let mut c2 = small();
        c2.access(set0_line(0), false, Mode::User, 10, full());
        c2.access(set0_line(0), false, Mode::User, 20, full());
        for i in 1..=4 {
            let r = c2.access(set0_line(i), false, Mode::User, 100 + i, full());
            if let Some(v) = r.victim {
                if v.line == set0_line(0) {
                    evicted_line0 = Some(v);
                }
            }
        }
        let v = evicted_line0.expect("line 0 evicted");
        assert_eq!(v.inserted_at, 10);
        assert_eq!(v.last_touch, 20);
        assert_eq!(v.access_count, 2);
        // Silence unused warning on first cache.
        let _ = c.stats();
    }

    #[test]
    fn iter_valid_counts() {
        let mut c = small();
        c.access(1, false, Mode::User, 0, full());
        c.access(2, false, Mode::Kernel, 0, full());
        let blocks: Vec<_> = c.iter_valid().collect();
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small();
        c.access(1, false, Mode::User, 0, full());
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(1, false, Mode::User, 1, full()).hit);
    }

    #[test]
    #[should_panic(expected = "empty way mask")]
    fn empty_mask_panics() {
        let mut c = small();
        c.access(1, false, Mode::User, 0, WayMask::EMPTY);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn oversized_mask_panics() {
        let mut c = small();
        c.access(1, false, Mode::User, 0, WayMask::first(8));
    }
}
