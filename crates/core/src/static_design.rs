//! Static partition sizing: find the smallest (user, kernel) way pair
//! whose miss rate stays within a budget of the full shared baseline.
//!
//! This is the search behind the paper's first technique (claim C3): the
//! partition removes user/kernel interference, so a *smaller* total cache
//! can match the big shared cache's miss rate — and the saved capacity is
//! the static design's energy win.

/// Outcome of a partition search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionChoice {
    /// Ways chosen for the user segment.
    pub user_ways: u32,
    /// Ways chosen for the kernel segment.
    pub kernel_ways: u32,
    /// Miss rate the chosen configuration achieved.
    pub miss_rate: f64,
    /// Miss rate of the reference (shared baseline) configuration.
    pub baseline_miss_rate: f64,
    /// Number of candidate configurations evaluated.
    pub evaluated: usize,
}

impl PartitionChoice {
    /// Total ways of the chosen partition.
    pub fn total_ways(&self) -> u32 {
        self.user_ways + self.kernel_ways
    }
}

/// Searches for the smallest partition within a miss-rate budget.
///
/// `eval(user_ways, kernel_ways)` must return the miss rate of that
/// configuration on the workload under study (typically by running the
/// trace-driven simulator; the experiment harness in `moca-sim` provides
/// exactly that closure). Configurations are explored in increasing order
/// of total size; within equal size, user-heavy splits are tried first
/// (user working sets are usually larger). The first configuration whose
/// miss rate is within `tolerance` (absolute) of `baseline_miss_rate` is
/// returned.
///
/// Returns the *best-effort* configuration (minimum miss rate seen) if no
/// candidate meets the budget.
///
/// # Panics
///
/// Panics if `max_user_ways` or `max_kernel_ways` is zero, or `tolerance`
/// is negative.
///
/// # Examples
///
/// ```
/// use moca_core::static_design::find_min_partition;
///
/// // A synthetic workload where 3 user + 2 kernel ways suffice.
/// let eval = |u: u32, k: u32| {
///     let base: f64 = 0.10;
///     base + if u < 3 { 0.05 } else { 0.0 } + if k < 2 { 0.04 } else { 0.0 }
/// };
/// let choice = find_min_partition(12, 8, 0.10, 0.005, eval);
/// assert_eq!((choice.user_ways, choice.kernel_ways), (3, 2));
/// ```
pub fn find_min_partition<F>(
    max_user_ways: u32,
    max_kernel_ways: u32,
    baseline_miss_rate: f64,
    tolerance: f64,
    mut eval: F,
) -> PartitionChoice
where
    F: FnMut(u32, u32) -> f64,
{
    assert!(max_user_ways > 0 && max_kernel_ways > 0, "need at least one way each");
    assert!(tolerance >= 0.0, "tolerance must be non-negative");

    let budget = baseline_miss_rate + tolerance;
    let mut best: Option<PartitionChoice> = None;
    let mut evaluated = 0usize;

    for total in 2..=(max_user_ways + max_kernel_ways) {
        // user-heavy first: larger user allocations are the common case.
        let mut candidates: Vec<(u32, u32)> = Vec::new();
        for user in (1..total).rev() {
            let kernel = total - user;
            if user <= max_user_ways && kernel >= 1 && kernel <= max_kernel_ways {
                candidates.push((user, kernel));
            }
        }
        for (user, kernel) in candidates {
            let miss = eval(user, kernel);
            evaluated += 1;
            let better = match &best {
                None => true,
                Some(b) => miss < b.miss_rate,
            };
            if better {
                best = Some(PartitionChoice {
                    user_ways: user,
                    kernel_ways: kernel,
                    miss_rate: miss,
                    baseline_miss_rate,
                    evaluated,
                });
            }
            if miss <= budget {
                return PartitionChoice {
                    user_ways: user,
                    kernel_ways: kernel,
                    miss_rate: miss,
                    baseline_miss_rate,
                    evaluated,
                };
            }
        }
    }

    let mut fallback = best.expect("at least one candidate evaluated");
    fallback.evaluated = evaluated;
    fallback
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_smallest_satisfying_config() {
        // miss rate improves with ways, saturating at (4, 2).
        let eval = |u: u32, k: u32| {
            0.08 + 0.03 * (4u32.saturating_sub(u) as f64) + 0.05 * (2u32.saturating_sub(k) as f64)
        };
        let c = find_min_partition(12, 4, 0.08, 1e-9, eval);
        assert_eq!((c.user_ways, c.kernel_ways), (4, 2));
        assert_eq!(c.total_ways(), 6);
        assert!(c.miss_rate <= 0.08 + 1e-9);
    }

    #[test]
    fn prefers_smaller_total_over_marginal_gain() {
        // Anything with total >= 4 is within budget.
        let eval = |u: u32, k: u32| if u + k >= 4 { 0.1 } else { 0.5 };
        let c = find_min_partition(8, 8, 0.1, 0.01, eval);
        assert_eq!(c.total_ways(), 4);
    }

    #[test]
    fn tolerance_relaxes_the_budget() {
        // Exact baseline requires 8 ways; +2% tolerance admits 4.
        let eval = |u: u32, k: u32| match u + k {
            t if t >= 8 => 0.10,
            t if t >= 4 => 0.115,
            _ => 0.3,
        };
        let strict = find_min_partition(8, 8, 0.10, 0.001, eval);
        assert_eq!(strict.total_ways(), 8);
        let relaxed = find_min_partition(8, 8, 0.10, 0.02, eval);
        assert_eq!(relaxed.total_ways(), 4);
    }

    #[test]
    fn falls_back_to_best_effort() {
        // Nothing meets an impossible budget; must return min-miss config.
        let eval = |u: u32, k: u32| 0.5 - 0.01 * f64::from(u + k);
        let c = find_min_partition(3, 3, 0.0, 0.0, eval);
        assert_eq!((c.user_ways, c.kernel_ways), (3, 3));
        // All 3x3 candidates must have been tried.
        assert_eq!(c.evaluated, 9);
    }

    #[test]
    fn user_heavy_tie_break() {
        // Every config of total 5 passes; user-heavy must win.
        let eval = |u: u32, k: u32| if u + k == 5 { 0.0 } else { 1.0 };
        let c = find_min_partition(8, 8, 0.0, 0.0, eval);
        assert_eq!(c.total_ways(), 5);
        assert!(c.user_ways > c.kernel_ways);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        find_min_partition(0, 4, 0.1, 0.0, |_, _| 0.0);
    }
}
