//! L2 design-point configuration.
//!
//! The paper's evaluation compares four designs; [`L2Design`] captures all
//! of them (plus intermediate points for sweeps) as data, and
//! [`MobileL2`](crate::mobile_l2::MobileL2) executes any of them.

use moca_cache::replacement::ReplacementPolicy;
use moca_energy::{RetentionClass, TechNode, Temperature};

use std::fmt;

/// How a volatile (short-retention) STT-RAM segment handles blocks whose
/// retention clock is running out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshPolicy {
    /// Write dirty blocks back early, then let blocks expire and
    /// invalidate them lazily. Cheap, but expired blocks re-miss.
    InvalidateOnExpiry,
    /// Rewrite ageing blocks in place (DRAM-style refresh at half the
    /// retention period). No expiry misses, but refresh writes cost
    /// energy.
    Refresh,
}

impl fmt::Display for RefreshPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefreshPolicy::InvalidateOnExpiry => f.write_str("invalidate-on-expiry"),
            RefreshPolicy::Refresh => f.write_str("refresh"),
        }
    }
}

/// Parameters shared by every design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L2BaseParams {
    /// Number of sets (fixed across designs; capacity varies by ways).
    pub sets: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Replacement policy of every segment.
    pub policy: ReplacementPolicy,
    /// Process node of the banks.
    pub tech: TechNode,
    /// Core clock in GHz (converts cycles to wall-clock for leakage and
    /// retention).
    pub clock_ghz: f64,
    /// Model an L2 write buffer: store hits retire at read latency (the
    /// buffer absorbs the slow MTJ write off the critical path). The
    /// energy cost of the write is unchanged. The standard mitigation for
    /// STT-RAM write latency in this paper family; disabled by default so
    /// the headline numbers show the raw technology trade-off.
    pub write_buffer: bool,
    /// Enable a next-line prefetcher: every demand miss also fills
    /// `line + 1` into the same segment (if absent). Helps the streaming
    /// tails mobile workloads are rich in; costs fill energy and DRAM
    /// traffic. Disabled by default (the paper's designs have none).
    pub next_line_prefetch: bool,
    /// Die temperature; leakage doubles every ~25 C above the 60 C
    /// reference. The headline experiments run at the reference.
    pub temperature: Temperature,
}

impl Default for L2BaseParams {
    /// The paper-era mobile L2 substrate: 2048 sets × 64 B lines
    /// (128 KiB per way), LRU, 45 nm, 1 GHz.
    fn default() -> Self {
        Self {
            sets: 2048,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
            tech: TechNode::Nm45,
            clock_ghz: 1.0,
            write_buffer: false,
            next_line_prefetch: false,
            temperature: Temperature::REFERENCE,
        }
    }
}

impl L2BaseParams {
    /// Bytes of one way (sets × line size).
    pub fn way_bytes(&self) -> u64 {
        self.sets * self.line_bytes
    }
}

/// One of the paper's L2 design points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum L2Design {
    /// Conventional shared SRAM L2 (the baseline).
    SharedSram {
        /// Total associativity.
        ways: u32,
    },
    /// Conventional shared L2 on homogeneous STT-RAM (no partitioning) —
    /// a comparison point that isolates the technology swap from the
    /// paper's partitioning techniques.
    SharedStt {
        /// Total associativity.
        ways: u32,
        /// Retention class of all cells.
        retention: RetentionClass,
        /// Expiry handling when the class is volatile.
        refresh: RefreshPolicy,
    },
    /// Statically way-partitioned SRAM: isolated user and kernel segments,
    /// usually with a shrunk total size (the paper's first technique).
    StaticSram {
        /// Ways of the user segment.
        user_ways: u32,
        /// Ways of the kernel segment.
        kernel_ways: u32,
    },
    /// Static partition on multi-retention STT-RAM (second technique).
    StaticMultiRetention {
        /// Ways of the user segment.
        user_ways: u32,
        /// Ways of the kernel segment.
        kernel_ways: u32,
        /// Retention class of the user segment's cells.
        user_retention: RetentionClass,
        /// Retention class of the kernel segment's cells.
        kernel_retention: RetentionClass,
        /// Expiry handling for volatile segments.
        refresh: RefreshPolicy,
    },
    /// Dynamic partitioning on plain SRAM — an ablation separating the
    /// benefit of adaptive sizing from the technology change. Not one of
    /// the paper's proposals; used by the F8 sensitivity study.
    DynamicSram {
        /// Physical associativity (upper bound on the two segments).
        max_ways: u32,
        /// Lower bound on each segment's ways.
        min_ways: u32,
        /// Epoch length in cycles between repartition decisions.
        epoch_cycles: u64,
    },
    /// Dynamically partitioned short-retention STT-RAM (third technique):
    /// segment sizes adapt per epoch, unused ways are power-gated.
    DynamicStt {
        /// Physical associativity (upper bound on the two segments).
        max_ways: u32,
        /// Lower bound on each segment's ways.
        min_ways: u32,
        /// Retention class of the user segment's cells.
        user_retention: RetentionClass,
        /// Retention class of the kernel segment's cells.
        kernel_retention: RetentionClass,
        /// Expiry handling for volatile segments.
        refresh: RefreshPolicy,
        /// Epoch length in cycles between repartition decisions.
        epoch_cycles: u64,
    },
}

/// Errors from validating an [`L2Design`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// A way count was zero.
    ZeroWays(&'static str),
    /// Way counts exceed what [`moca_cache::WayMask`] supports.
    TooManyWays(u32),
    /// Dynamic design's `min_ways * 2 > max_ways`.
    MinExceedsMax {
        /// Requested minimum per segment.
        min_ways: u32,
        /// Physical maximum.
        max_ways: u32,
    },
    /// Epoch length of zero cycles.
    ZeroEpoch,
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::ZeroWays(which) => write!(f, "{which} must have at least one way"),
            DesignError::TooManyWays(w) => write!(f, "total ways {w} exceeds 64"),
            DesignError::MinExceedsMax { min_ways, max_ways } => write!(
                f,
                "two segments of at least {min_ways} ways cannot fit in {max_ways} ways"
            ),
            DesignError::ZeroEpoch => f.write_str("epoch length must be non-zero"),
        }
    }
}

impl std::error::Error for DesignError {}

impl L2Design {
    /// The paper's baseline: 2 MiB 16-way shared SRAM.
    pub fn baseline() -> Self {
        L2Design::SharedSram { ways: 16 }
    }

    /// The paper's static technique at its default design point: a shrunk
    /// (6 user + 4 kernel)-way partition (10 of 16 baseline ways) on
    /// multi-retention STT-RAM — long-retention user cells,
    /// short-retention kernel cells.
    pub fn static_default() -> Self {
        L2Design::StaticMultiRetention {
            user_ways: 6,
            kernel_ways: 4,
            user_retention: RetentionClass::OneSecond,
            kernel_retention: RetentionClass::TenMillis,
            refresh: RefreshPolicy::InvalidateOnExpiry,
        }
    }

    /// The paper's dynamic technique at its default design point:
    /// short-retention cells in *both* segments for maximal savings.
    pub fn dynamic_default() -> Self {
        L2Design::DynamicStt {
            max_ways: 16,
            min_ways: 1,
            user_retention: RetentionClass::HundredMillis,
            kernel_retention: RetentionClass::TenMillis,
            refresh: RefreshPolicy::InvalidateOnExpiry,
            epoch_cycles: 500_000,
        }
    }

    /// Physical associativity the design needs.
    pub fn physical_ways(&self) -> u32 {
        match *self {
            L2Design::SharedSram { ways } | L2Design::SharedStt { ways, .. } => ways,
            L2Design::StaticSram {
                user_ways,
                kernel_ways,
            }
            | L2Design::StaticMultiRetention {
                user_ways,
                kernel_ways,
                ..
            } => user_ways + kernel_ways,
            L2Design::DynamicSram { max_ways, .. } | L2Design::DynamicStt { max_ways, .. } => {
                max_ways
            }
        }
    }

    /// Validates the design point.
    ///
    /// # Errors
    ///
    /// Returns a [`DesignError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), DesignError> {
        match *self {
            L2Design::SharedSram { ways } | L2Design::SharedStt { ways, .. } => {
                if ways == 0 {
                    return Err(DesignError::ZeroWays("shared cache"));
                }
            }
            L2Design::StaticSram {
                user_ways,
                kernel_ways,
            }
            | L2Design::StaticMultiRetention {
                user_ways,
                kernel_ways,
                ..
            } => {
                if user_ways == 0 {
                    return Err(DesignError::ZeroWays("user segment"));
                }
                if kernel_ways == 0 {
                    return Err(DesignError::ZeroWays("kernel segment"));
                }
            }
            L2Design::DynamicSram {
                max_ways,
                min_ways,
                epoch_cycles,
            }
            | L2Design::DynamicStt {
                max_ways,
                min_ways,
                epoch_cycles,
                ..
            } => {
                if max_ways == 0 {
                    return Err(DesignError::ZeroWays("dynamic cache"));
                }
                if min_ways == 0 {
                    return Err(DesignError::ZeroWays("segment minimum"));
                }
                if min_ways * 2 > max_ways {
                    return Err(DesignError::MinExceedsMax { min_ways, max_ways });
                }
                if epoch_cycles == 0 {
                    return Err(DesignError::ZeroEpoch);
                }
            }
        }
        if self.physical_ways() > 64 {
            return Err(DesignError::TooManyWays(self.physical_ways()));
        }
        Ok(())
    }

    /// Short human-readable label for tables.
    pub fn label(&self) -> String {
        match *self {
            L2Design::SharedSram { ways } => format!("SRAM-shared-{ways}w"),
            L2Design::SharedStt {
                ways, retention, ..
            } => format!("STT-shared-{ways}w-{retention}"),
            L2Design::StaticSram {
                user_ways,
                kernel_ways,
            } => format!("SRAM-static-{user_ways}u{kernel_ways}k"),
            L2Design::StaticMultiRetention {
                user_ways,
                kernel_ways,
                user_retention,
                kernel_retention,
                ..
            } => format!(
                "MRSTT-static-{user_ways}u{kernel_ways}k-{user_retention}/{kernel_retention}"
            ),
            L2Design::DynamicSram { max_ways, .. } => format!("SRAM-dynamic-{max_ways}w"),
            L2Design::DynamicStt {
                max_ways,
                user_retention,
                kernel_retention,
                ..
            } => format!("STT-dynamic-{max_ways}w-{user_retention}/{kernel_retention}"),
        }
    }
}

impl fmt::Display for L2Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        L2Design::baseline().validate().expect("baseline");
        L2Design::static_default().validate().expect("static");
        L2Design::dynamic_default().validate().expect("dynamic");
    }

    #[test]
    fn baseline_is_2mib_16way() {
        let p = L2BaseParams::default();
        assert_eq!(p.way_bytes(), 128 << 10);
        assert_eq!(L2Design::baseline().physical_ways(), 16);
        assert_eq!(
            p.way_bytes() * u64::from(L2Design::baseline().physical_ways()),
            2 << 20
        );
    }

    #[test]
    fn physical_ways_sums_partitions() {
        let d = L2Design::StaticSram {
            user_ways: 6,
            kernel_ways: 2,
        };
        assert_eq!(d.physical_ways(), 8);
    }

    #[test]
    fn validation_catches_zero_ways() {
        assert!(matches!(
            L2Design::SharedSram { ways: 0 }.validate(),
            Err(DesignError::ZeroWays(_))
        ));
        assert!(matches!(
            L2Design::StaticSram {
                user_ways: 0,
                kernel_ways: 2
            }
            .validate(),
            Err(DesignError::ZeroWays("user segment"))
        ));
        assert!(matches!(
            L2Design::StaticSram {
                user_ways: 2,
                kernel_ways: 0
            }
            .validate(),
            Err(DesignError::ZeroWays("kernel segment"))
        ));
    }

    #[test]
    fn validation_catches_dynamic_bounds() {
        let d = L2Design::DynamicStt {
            max_ways: 4,
            min_ways: 3,
            user_retention: RetentionClass::OneSecond,
            kernel_retention: RetentionClass::TenMillis,
            refresh: RefreshPolicy::Refresh,
            epoch_cycles: 1000,
        };
        assert!(matches!(d.validate(), Err(DesignError::MinExceedsMax { .. })));
        let d = L2Design::DynamicStt {
            max_ways: 8,
            min_ways: 1,
            user_retention: RetentionClass::OneSecond,
            kernel_retention: RetentionClass::TenMillis,
            refresh: RefreshPolicy::Refresh,
            epoch_cycles: 0,
        };
        assert_eq!(d.validate(), Err(DesignError::ZeroEpoch));
    }

    #[test]
    fn validation_catches_too_many_ways() {
        let d = L2Design::StaticSram {
            user_ways: 40,
            kernel_ways: 30,
        };
        assert_eq!(d.validate(), Err(DesignError::TooManyWays(70)));
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            L2Design::baseline().label(),
            L2Design::static_default().label(),
            L2Design::dynamic_default().label(),
            L2Design::StaticSram {
                user_ways: 6,
                kernel_ways: 2,
            }
            .label(),
        ];
        let mut sorted = labels.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }

    #[test]
    fn error_display() {
        let e = DesignError::MinExceedsMax {
            min_ways: 3,
            max_ways: 4,
        };
        assert!(e.to_string().contains("cannot fit"));
    }
}
