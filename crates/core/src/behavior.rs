//! Segment access-behaviour analysis.
//!
//! The paper's second observation (claim C4): once the L2 is partitioned,
//! the kernel and user segments show *completely different* access
//! behaviour — block lifetimes and re-reference intervals differ by orders
//! of magnitude — which motivates giving each segment its own STT-RAM
//! retention class. This module provides the histograms gathered while an
//! [`MobileL2`](crate::mobile_l2::MobileL2) runs and the retention
//! recommendation derived from them.

use moca_energy::RetentionClass;

/// Number of log2 buckets (cycle scale: bucket `i` holds values in
/// `[2^i, 2^(i+1))`), enough for 10-year retention at GHz clocks.
pub const INTERVAL_BUCKETS: usize = 60;

/// A log2-bucketed histogram of cycle intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalHistogram {
    buckets: Box<[u64; INTERVAL_BUCKETS]>,
    total: u64,
}

impl Default for IntervalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl IntervalHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0; INTERVAL_BUCKETS]),
            total: 0,
        }
    }

    /// Records an interval in cycles (zero is counted in bucket 0).
    pub fn record(&mut self, cycles: u64) {
        let bucket = if cycles <= 1 {
            0
        } else {
            (63 - cycles.leading_zeros() as usize).min(INTERVAL_BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; INTERVAL_BUCKETS] {
        &self.buckets
    }

    /// Lower bound (in cycles) of the bucket containing the `q`-quantile,
    /// or `None` for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < q <= 1.0`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.total == 0 {
            return None;
        }
        let threshold = (self.total as f64 * q).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= threshold {
                return Some(1u64 << i);
            }
        }
        Some(1u64 << (INTERVAL_BUCKETS - 1))
    }

    /// Median interval (lower bound of the median bucket).
    pub fn median(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &IntervalHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// Behaviour observed for one L2 segment while simulating.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentBehavior {
    /// Intervals between consecutive touches of the same resident block.
    pub reuse: IntervalHistogram,
    /// Block lifetimes (fill → eviction/invalidation).
    pub lifetime: IntervalHistogram,
    /// Intervals between consecutive cell writes of the same block — the
    /// quantity an STT-RAM retention time must cover.
    pub write_interval: IntervalHistogram,
    /// Evicted blocks that were touched only by their fill ("dead on
    /// arrival").
    pub dead_blocks: u64,
    /// Total blocks removed (evicted, drained, or expired).
    pub evictions: u64,
}

impl SegmentBehavior {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of removed blocks that were dead on arrival.
    pub fn dead_fraction(&self) -> f64 {
        if self.evictions == 0 {
            0.0
        } else {
            self.dead_blocks as f64 / self.evictions as f64
        }
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &SegmentBehavior) {
        self.reuse.merge(&other.reuse);
        self.lifetime.merge(&other.lifetime);
        self.write_interval.merge(&other.write_interval);
        self.dead_blocks += other.dead_blocks;
        self.evictions += other.evictions;
    }
}

/// Recommends the shortest standard retention class that covers the given
/// quantile of observed block lifetimes.
///
/// A block whose lifetime exceeds the segment's retention expires and
/// costs an extra miss (or a refresh); choosing retention at a high
/// lifetime quantile keeps that overhead marginal while minimizing write
/// energy — the paper's multi-retention selection rule.
///
/// Returns [`RetentionClass::TenYears`] when the histogram is empty (no
/// evidence → be safe) or when no volatile class covers the quantile.
///
/// # Panics
///
/// Panics unless `0.0 < coverage <= 1.0` or `clock_ghz <= 0`.
pub fn recommend_retention(
    lifetimes: &IntervalHistogram,
    clock_ghz: f64,
    coverage: f64,
) -> RetentionClass {
    assert!(clock_ghz > 0.0, "clock must be positive");
    let Some(cycles) = lifetimes.quantile(coverage) else {
        return RetentionClass::TenYears;
    };
    let needed_secs = cycles as f64 / (clock_ghz * 1e9);
    // Shortest standard class covering the quantile. SWEEP is
    // longest-first, so scan from the short end.
    for rc in RetentionClass::SWEEP.iter().rev() {
        if rc.duration().secs() >= needed_secs {
            return *rc;
        }
    }
    RetentionClass::TenYears
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = IntervalHistogram::new();
        for v in [1u64, 2, 4, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.buckets()[0], 1); // value 1
        assert_eq!(h.buckets()[1], 1); // value 2
        assert_eq!(h.buckets()[10], 1); // value 1024
        assert_eq!(h.median(), Some(4));
        assert_eq!(h.quantile(1.0), Some(1024));
        assert_eq!(h.quantile(0.2), Some(1));
    }

    #[test]
    fn histogram_zero_and_huge_values() {
        let mut h = IntervalHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[INTERVAL_BUCKETS - 1], 1);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = IntervalHistogram::new();
        assert_eq!(h.median(), None);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        IntervalHistogram::new().quantile(0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = IntervalHistogram::new();
        a.record(2);
        let mut b = IntervalHistogram::new();
        b.record(2);
        b.record(1 << 20);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.buckets()[1], 2);
    }

    #[test]
    fn dead_fraction() {
        let mut s = SegmentBehavior::new();
        assert_eq!(s.dead_fraction(), 0.0);
        s.evictions = 4;
        s.dead_blocks = 1;
        assert!((s.dead_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn segment_behavior_merge() {
        let mut a = SegmentBehavior::new();
        a.evictions = 1;
        a.reuse.record(8);
        let mut b = SegmentBehavior::new();
        b.evictions = 2;
        b.dead_blocks = 1;
        a.merge(&b);
        assert_eq!(a.evictions, 3);
        assert_eq!(a.dead_blocks, 1);
        assert_eq!(a.reuse.total(), 1);
    }

    #[test]
    fn retention_recommendation_scales_with_lifetime() {
        // Lifetimes around 1 M cycles at 1 GHz = 1 ms → 10 ms class.
        let mut short = IntervalHistogram::new();
        for _ in 0..100 {
            short.record(1 << 20);
        }
        assert_eq!(
            recommend_retention(&short, 1.0, 0.95),
            RetentionClass::TenMillis
        );

        // Lifetimes around 2^31 cycles ≈ 2.1 s → 10 s class.
        let mut long = IntervalHistogram::new();
        for _ in 0..100 {
            long.record(1 << 31);
        }
        assert_eq!(
            recommend_retention(&long, 1.0, 0.95),
            RetentionClass::TenSeconds
        );
    }

    #[test]
    fn retention_recommendation_empty_is_safe() {
        let h = IntervalHistogram::new();
        assert_eq!(recommend_retention(&h, 1.0, 0.95), RetentionClass::TenYears);
    }

    #[test]
    fn retention_recommendation_uses_quantile_not_max() {
        let mut h = IntervalHistogram::new();
        // 99 short lifetimes, 1 enormous outlier.
        for _ in 0..99 {
            h.record(1 << 18); // ~0.26 ms
        }
        h.record(1 << 40); // ~18 min
        assert_eq!(recommend_retention(&h, 1.0, 0.95), RetentionClass::TenMillis);
    }
}
