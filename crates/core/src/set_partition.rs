//! Set-partitioned L2: the main design-space alternative to way
//! partitioning.
//!
//! Way partitioning (the paper's choice, [`MobileL2`]) splits the
//! associativity of one array; set partitioning gives each mode its own
//! smaller array with *full* associativity but fewer sets. The trade-off:
//!
//! * way partitioning keeps all sets (fewer conflict-prone indices) but
//!   lowers per-segment associativity, and can re-size at way
//!   granularity at runtime;
//! * set partitioning keeps associativity but needs power-of-two set
//!   counts, and resizing means re-indexing the whole array (which is why
//!   the paper's dynamic technique is way-based).
//!
//! [`SetPartitionedL2`] exists for the A2 ablation experiment comparing
//! the two at equal capacity.
//!
//! [`MobileL2`]: crate::mobile_l2::MobileL2

use moca_cache::stats::CacheStats;
use moca_cache::{CacheGeometry, GeometryError, L2Request, SetAssocCache, WayMask};
use moca_energy::{EnergyAccountant, EnergyBreakdown, MemoryTechnology, Technology, Time};
use moca_trace::Mode;

use crate::design::L2BaseParams;
use crate::mobile_l2::{L2Response, TrafficCounters};

/// A two-array, set-partitioned L2 (user and kernel arrays).
#[derive(Debug, Clone)]
pub struct SetPartitionedL2 {
    caches: [SetAssocCache; 2],
    masks: [WayMask; 2],
    accts: [EnergyAccountant; 2],
    read_latency: [u64; 2],
    write_latency: [u64; 2],
    traffic: TrafficCounters,
    clock_ghz: f64,
    last_accrual: u64,
}

impl SetPartitionedL2 {
    /// Builds the design: `user_sets` / `kernel_sets` sets of `ways`-way
    /// SRAM each (set counts must be powers of two).
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if either geometry is invalid.
    pub fn new(
        user_sets: u64,
        kernel_sets: u64,
        ways: u32,
        params: &L2BaseParams,
    ) -> Result<Self, GeometryError> {
        let mk = |sets: u64| -> Result<(SetAssocCache, EnergyAccountant, u64, u64), GeometryError> {
            let geom = CacheGeometry::from_sets(sets, ways, params.line_bytes)?;
            let bank = Technology::Sram(moca_energy::SramBank::new(
                geom.capacity_bytes(),
                ways,
                params.tech,
            ));
            let read = bank.read_latency().cycles(params.clock_ghz).max(1);
            let write = bank.write_latency().cycles(params.clock_ghz).max(1);
            Ok((
                SetAssocCache::new(geom, params.policy),
                EnergyAccountant::new(bank),
                read,
                write,
            ))
        };
        let (uc, ua, url, uwl) = mk(user_sets)?;
        let (kc, ka, krl, kwl) = mk(kernel_sets)?;
        Ok(Self {
            caches: [uc, kc],
            masks: [WayMask::first(ways); 2],
            accts: [ua, ka],
            read_latency: [url, krl],
            write_latency: [uwl, kwl],
            traffic: TrafficCounters::default(),
            clock_ghz: params.clock_ghz,
            last_accrual: 0,
        })
    }

    /// Total capacity of both arrays in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.caches
            .iter()
            .map(|c| c.geometry().capacity_bytes())
            .sum()
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        format!(
            "SRAM-setpart-{}K/{}K",
            self.caches[0].geometry().capacity_bytes() >> 10,
            self.caches[1].geometry().capacity_bytes() >> 10,
        )
    }

    fn accrue(&mut self, now: u64) {
        let elapsed = now.saturating_sub(self.last_accrual);
        if elapsed == 0 {
            return;
        }
        let dt = Time::from_cycles(elapsed, self.clock_ghz);
        for a in &mut self.accts {
            a.accrue_leakage(dt, 1.0);
        }
        self.last_accrual = now;
    }

    /// Processes one request at cycle `now`.
    pub fn request(&mut self, req: &L2Request, now: u64) -> L2Response {
        self.accrue(now);
        let i = req.mode.index();
        let result = self.caches[i].access(req.line, req.write, req.mode, now, self.masks[i]);
        if result.hit {
            if req.write {
                self.accts[i].record_writes(1);
            } else {
                self.accts[i].record_reads(1);
            }
            return L2Response {
                hit: true,
                latency_cycles: if req.write {
                    self.write_latency[i]
                } else {
                    self.read_latency[i]
                },
                dram_read: false,
            };
        }
        self.accts[i].record_reads(1);
        self.accts[i].record_writes(1);
        self.traffic.dram_reads += 1;
        if let Some(v) = result.victim {
            if v.dirty {
                self.accts[i].record_reads(1);
                self.traffic.dram_writes += 1;
            }
        }
        L2Response {
            hit: false,
            latency_cycles: self.read_latency[i],
            dram_read: true,
        }
    }

    /// Accrues trailing leakage; call once after the last request.
    pub fn finalize(&mut self, now: u64) {
        self.accrue(now);
    }

    /// Merged statistics of both arrays.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats::new();
        s.merge(self.caches[0].stats());
        s.merge(self.caches[1].stats());
        s
    }

    /// Merged energy breakdown.
    pub fn energy(&self) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::new();
        e.merge(self.accts[0].breakdown());
        e.merge(self.accts[1].breakdown());
        e
    }

    /// DRAM traffic so far.
    pub fn traffic(&self) -> TrafficCounters {
        self.traffic
    }

    /// Per-mode miss rate.
    pub fn miss_rate(&self, mode: Mode) -> f64 {
        self.caches[mode.index()].stats().miss_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_cache::L2Cause;
    use moca_trace::AccessKind;

    fn req(line: u64, write: bool, mode: Mode) -> L2Request {
        L2Request {
            line,
            write,
            mode,
            cause: if write {
                L2Cause::Writeback
            } else {
                L2Cause::Demand(AccessKind::Load)
            },
        }
    }

    fn mk() -> SetPartitionedL2 {
        // 1 MiB user (1024 sets x 16w) + 512 KiB kernel (512 sets x 16w).
        SetPartitionedL2::new(1024, 512, 16, &L2BaseParams::default()).expect("valid")
    }

    #[test]
    fn capacity_and_label() {
        let l2 = mk();
        assert_eq!(l2.capacity_bytes(), (1 << 20) + (512 << 10));
        assert_eq!(l2.label(), "SRAM-setpart-1024K/512K");
    }

    #[test]
    fn arrays_are_isolated() {
        let mut l2 = mk();
        l2.request(&req(7, false, Mode::User), 0);
        // Same line in kernel mode goes to the other array: a miss.
        let r = l2.request(&req(7, false, Mode::Kernel), 10);
        assert!(!r.hit);
        // And both hit afterwards, independently.
        assert!(l2.request(&req(7, false, Mode::User), 20).hit);
        assert!(l2.request(&req(7, false, Mode::Kernel), 30).hit);
        assert_eq!(l2.stats().cross_evictions, [0, 0]);
    }

    #[test]
    fn accounting_identities() {
        let mut l2 = mk();
        for i in 0..5000u64 {
            let mode = if i % 3 == 0 { Mode::Kernel } else { Mode::User };
            l2.request(&req(i % 700, i % 5 == 0, mode), i * 10);
        }
        l2.finalize(60_000);
        let s = l2.stats();
        assert_eq!(s.accesses(), 5000);
        assert_eq!(l2.traffic().dram_reads, s.misses());
        assert!(l2.energy().total().nj() > 0.0);
        assert!(l2.energy().leakage.nj() > 0.0);
        assert!(l2.miss_rate(Mode::User) > 0.0);
        assert!(l2.miss_rate(Mode::Kernel) > 0.0);
    }

    #[test]
    fn bad_geometry_is_rejected() {
        // 3 sets is not a power of two.
        assert!(SetPartitionedL2::new(3, 512, 16, &L2BaseParams::default()).is_err());
    }

    #[test]
    fn leakage_tracks_both_arrays() {
        let mut l2 = mk();
        l2.request(&req(1, false, Mode::User), 0);
        l2.finalize(1_000_000);
        let e = l2.energy();
        // 1.5 MiB SRAM at ~80 mW/MiB for 1 ms ≈ 120 uJ; sanity band.
        assert!(e.leakage.joules() > 1e-8 && e.leakage.joules() < 1e-2);
    }
}
