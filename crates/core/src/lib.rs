//! # moca-core — the paper's energy-efficient mobile L2 designs
//!
//! This crate implements the primary contribution of *"Energy-efficient
//! cache design in emerging mobile platforms"* (DATE'15 / TODAES'17):
//!
//! 1. **Static user/kernel way-partitioning** of the L2 with a shrunk
//!    total size ([`L2Design::StaticSram`], sizing search in
//!    [`static_design`]);
//! 2. **Multi-retention STT-RAM segments** exploiting the distinct access
//!    behaviour of the two segments ([`L2Design::StaticMultiRetention`],
//!    behaviour analysis in [`behavior`]);
//! 3. **Dynamic partitioning with short-retention STT-RAM** and way
//!    power-gating ([`L2Design::DynamicStt`], controller in [`dynamic`]).
//!
//! All design points execute on the same engine, [`MobileL2`].
//!
//! ```
//! use moca_core::{L2BaseParams, L2Design, MobileL2};
//! use moca_cache::{L2Cause, L2Request};
//! use moca_trace::{AccessKind, Mode};
//!
//! let mut l2 = MobileL2::new(L2Design::static_default(), L2BaseParams::default())?;
//! let req = L2Request {
//!     line: 1,
//!     write: false,
//!     mode: Mode::Kernel,
//!     cause: L2Cause::Demand(AccessKind::Load),
//! };
//! l2.request(&req, 0);
//! l2.finalize(1_000_000);
//! assert!(l2.energy().total().nj() > 0.0);
//! # Ok::<(), moca_core::DesignError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod behavior;
pub mod design;
pub mod dynamic;
pub mod hybrid;
pub mod mobile_l2;
pub mod set_partition;
pub mod static_design;

pub use behavior::{recommend_retention, IntervalHistogram, SegmentBehavior};
pub use design::{DesignError, L2BaseParams, L2Design, RefreshPolicy};
pub use dynamic::{AllocationSample, ControllerConfig, DynamicController};
pub use hybrid::{HybridL2, HybridStats};
pub use mobile_l2::{ExpiryStats, L2Response, MobileL2, TrafficCounters};
pub use set_partition::SetPartitionedL2;
pub use static_design::{find_min_partition, PartitionChoice};
