//! Epoch-based dynamic partition controller.
//!
//! Implements the paper's third technique: at every epoch boundary the
//! controller inspects per-mode utility monitors
//! ([`UtilityMonitor`]) and picks the
//! *smallest* way allocation for each segment that preserves almost all of
//! the hits the segment could get from the full cache — minimizing active
//! capacity (and therefore leakage and refresh cost) instead of maximizing
//! raw hit count. Changes are rate-limited to ±1 way per segment per epoch
//! and gated by two-epoch hysteresis so the allocation does not thrash on
//! phase noise.

use moca_cache::{CacheGeometry, UtilityMonitor};
use moca_trace::Mode;

/// A point in the allocation timeline (for the adaptation figure F7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocationSample {
    /// Cycle at which the allocation took effect.
    pub cycle: u64,
    /// Ways assigned to the user segment.
    pub user_ways: u32,
    /// Ways assigned to the kernel segment.
    pub kernel_ways: u32,
}

/// Tuning knobs of the controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Epoch length in cycles.
    pub epoch_cycles: u64,
    /// Minimum ways per segment.
    pub min_ways: u32,
    /// Physical ways available to both segments together.
    pub max_ways: u32,
    /// Fraction of full-cache hits a segment must keep (the size/miss
    /// trade-off knob; the paper tolerates a small miss-rate increase).
    pub hit_retention: f64,
    /// Epochs a desire must persist before it is applied.
    pub hysteresis_epochs: u32,
    /// Minimum sampled accesses in an epoch before resizing decisions are
    /// trusted.
    pub min_samples: u64,
}

impl ControllerConfig {
    /// Defaults matching `DESIGN.md` T1.
    pub fn new(epoch_cycles: u64, min_ways: u32, max_ways: u32) -> Self {
        Self {
            epoch_cycles,
            min_ways,
            max_ways,
            hit_retention: 0.94,
            hysteresis_epochs: 2,
            min_samples: 128,
        }
    }
}

/// The dynamic-partition decision engine.
///
/// The owner ([`MobileL2`](crate::mobile_l2::MobileL2)) feeds every L2
/// request into [`DynamicController::observe`] and calls
/// [`DynamicController::decide`] when [`DynamicController::epoch_due`]
/// reports an epoch boundary; the returned target allocation is then
/// applied by draining / enabling physical ways.
#[derive(Debug, Clone)]
pub struct DynamicController {
    cfg: ControllerConfig,
    next_epoch: u64,
    monitors: [UtilityMonitor; 2],
    /// Consecutive epochs each segment has wanted to move in the same
    /// direction (+1 grow / -1 shrink).
    streak: [(i32, u32); 2],
}

impl DynamicController {
    /// Creates a controller monitoring a cache of the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has fewer sets than the 16-set sampling
    /// period of the monitors.
    pub fn new(cfg: ControllerConfig, geom: CacheGeometry) -> Self {
        let sample_shift = 4.min(geom.sets().trailing_zeros());
        Self {
            cfg,
            next_epoch: cfg.epoch_cycles,
            monitors: [
                UtilityMonitor::new(geom, sample_shift),
                UtilityMonitor::new(geom, sample_shift),
            ],
            streak: [(0, 0); 2],
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Feeds one request into the mode's utility monitor.
    pub fn observe(&mut self, mode: Mode, line: u64) {
        self.monitors[mode.index()].observe(line);
    }

    /// Returns `true` when an epoch boundary has been reached.
    pub fn epoch_due(&self, now: u64) -> bool {
        now >= self.next_epoch
    }

    /// Smallest way count retaining `hit_retention` of full-assoc hits.
    fn desired_ways(&self, mode: Mode, current: u32) -> u32 {
        let mon = &self.monitors[mode.index()];
        if mon.accesses() < self.cfg.min_samples {
            return current;
        }
        let full = mon.hits_with_ways(self.cfg.max_ways);
        if full == 0 {
            return self.cfg.min_ways;
        }
        let target = (full as f64 * self.cfg.hit_retention).ceil() as u64;
        for w in self.cfg.min_ways..=self.cfg.max_ways {
            if mon.hits_with_ways(w) >= target {
                return w;
            }
        }
        self.cfg.max_ways
    }

    /// Computes the next allocation at an epoch boundary.
    ///
    /// `current` is the `(user_ways, kernel_ways)` allocation in force.
    /// The result differs from `current` by at most one way per segment
    /// and always satisfies the min/max constraints.
    pub fn decide(&mut self, now: u64, current: (u32, u32)) -> (u32, u32) {
        // Advance the epoch boundary past `now` (robust to long gaps).
        while self.next_epoch <= now {
            self.next_epoch += self.cfg.epoch_cycles;
        }
        let desires = [
            self.desired_ways(Mode::User, current.0),
            self.desired_ways(Mode::Kernel, current.1),
        ];
        let currents = [current.0, current.1];
        let mut next = currents;

        for i in 0..2 {
            let dir = (desires[i] as i64 - currents[i] as i64).signum() as i32;
            let (prev_dir, count) = self.streak[i];
            let streak = if dir != 0 && dir == prev_dir {
                count + 1
            } else {
                u32::from(dir != 0)
            };
            self.streak[i] = (dir, streak);
            if dir != 0 && streak >= self.cfg.hysteresis_epochs {
                next[i] = (currents[i] as i64 + i64::from(dir)) as u32;
            }
        }

        // Enforce bounds and the shared physical budget; shrink requests
        // always fit, so only growth can violate the budget.
        for n in &mut next {
            *n = (*n).clamp(self.cfg.min_ways, self.cfg.max_ways);
        }
        while next[0] + next[1] > self.cfg.max_ways {
            // Revert the grow with the weaker claim (smaller desire gap).
            let gap0 = desires[0] as i64 - next[0] as i64;
            let gap1 = desires[1] as i64 - next[1] as i64;
            if next[0] > currents[0] && (gap0 <= gap1 || next[1] <= currents[1]) {
                next[0] -= 1;
            } else if next[1] > currents[1] {
                next[1] -= 1;
            } else if next[0] > self.cfg.min_ways {
                next[0] -= 1;
            } else {
                next[1] -= 1;
            }
        }

        // New epoch: clear counters but keep tag stacks warm.
        self.monitors[0].reset_counters();
        self.monitors[1].reset_counters();
        (next[0], next[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(2 << 20, 16, 64).expect("valid")
    }

    fn cfg() -> ControllerConfig {
        let mut c = ControllerConfig::new(1000, 1, 16);
        c.min_samples = 10;
        c.hysteresis_epochs = 1; // immediate reaction for unit tests
        c
    }

    /// Lines that map to sampled set 0 with distinct tags.
    fn line(tag: u64) -> u64 {
        tag * 2048 // 2048 sets
    }

    #[test]
    fn epoch_scheduling() {
        let mut c = DynamicController::new(cfg(), geom());
        assert!(!c.epoch_due(999));
        assert!(c.epoch_due(1000));
        c.decide(1000, (8, 8));
        assert!(!c.epoch_due(1500));
        assert!(c.epoch_due(2000));
    }

    #[test]
    fn small_working_set_shrinks() {
        let mut c = DynamicController::new(cfg(), geom());
        // User touches only 2 distinct lines, over and over.
        for i in 0..2000u64 {
            c.observe(Mode::User, line(i % 2));
            c.observe(Mode::Kernel, line(100 + i % 2));
        }
        let (u, k) = c.decide(1000, (8, 8));
        assert!(u < 8, "tiny user working set should shrink, got {u}");
        assert!(k < 8, "tiny kernel working set should shrink, got {k}");
    }

    #[test]
    fn large_working_set_grows() {
        let mut c = DynamicController::new(cfg(), geom());
        // User cycles through 12 lines in one set: needs ~12 ways for hits.
        for i in 0..6000u64 {
            c.observe(Mode::User, line(i % 12));
            c.observe(Mode::Kernel, line(100));
        }
        let (u, _k) = c.decide(1000, (4, 4));
        assert!(u > 4, "starved user segment should grow, got {u}");
    }

    #[test]
    fn steps_are_bounded_to_one_way() {
        let mut c = DynamicController::new(cfg(), geom());
        for i in 0..6000u64 {
            c.observe(Mode::User, line(i % 14));
        }
        let (u, k) = c.decide(1000, (4, 4));
        assert!(u <= 5 && k >= 3, "±1 way per epoch, got ({u},{k})");
    }

    #[test]
    fn hysteresis_delays_changes() {
        let mut hcfg = cfg();
        hcfg.hysteresis_epochs = 2;
        let mut c = DynamicController::new(hcfg, geom());
        for i in 0..2000u64 {
            c.observe(Mode::User, line(i % 2));
        }
        // First epoch that wants to shrink: blocked by hysteresis.
        let first = c.decide(1000, (8, 8));
        assert_eq!(first, (8, 8));
        for i in 0..2000u64 {
            c.observe(Mode::User, line(i % 2));
        }
        // Second consecutive epoch: allowed.
        let second = c.decide(2000, (8, 8));
        assert!(second.0 < 8);
    }

    #[test]
    fn respects_physical_budget() {
        let mut c = DynamicController::new(cfg(), geom());
        // Both modes want everything.
        for i in 0..8000u64 {
            c.observe(Mode::User, line(i % 16));
            c.observe(Mode::Kernel, line(1000 + i % 16));
        }
        let (u, k) = c.decide(1000, (8, 8));
        assert!(u + k <= 16);
        assert!(u >= 1 && k >= 1);
    }

    #[test]
    fn idle_epoch_keeps_allocation() {
        let mut c = DynamicController::new(cfg(), geom());
        // Fewer than min_samples observations.
        for i in 0..5u64 {
            c.observe(Mode::User, line(i));
        }
        assert_eq!(c.decide(1000, (6, 3)), (6, 3));
    }

    #[test]
    fn config_accessor() {
        let c = DynamicController::new(cfg(), geom());
        assert_eq!(c.config().max_ways, 16);
    }
}
