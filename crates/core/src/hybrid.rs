//! Hybrid SRAM / STT-RAM L2 with write-intensity-aware placement.
//!
//! A well-known alternative to the paper's homogeneous STT-RAM designs:
//! keep a few SRAM ways for *write-hot* blocks and fill everything else
//! into dense, low-leakage STT-RAM ways, steering blocks with a small
//! write-history table (WHT). The A3 extension experiment compares this
//! hybrid against the all-SRAM baseline and an all-STT-RAM cache to show
//! where the paper's multi-retention approach stands.
//!
//! Scope: the hybrid is mode-agnostic (no user/kernel partitioning) and
//! requires a non-volatile STT retention class — it isolates the *write
//! energy* question from the retention/partitioning questions studied by
//! [`MobileL2`](crate::mobile_l2::MobileL2).

use moca_cache::stats::CacheStats;
use moca_cache::{L2Request, SetAssocCache, WayMask};
use moca_energy::{
    EnergyAccountant, EnergyBreakdown, MemoryTechnology, RetentionClass, Technology, Time,
};

use crate::design::{DesignError, L2BaseParams};
use crate::mobile_l2::{L2Response, TrafficCounters};

/// Number of entries in the write-history table (direct-mapped).
const WHT_ENTRIES: usize = 4096;
/// Saturating-counter ceiling.
const WHT_MAX: u8 = 3;
/// Counter value at or above which a block is predicted write-hot.
const WHT_HOT: u8 = 2;
/// Write hits in STT needed before a block migrates to SRAM.
const MIGRATE_AFTER: u8 = 2;

/// Placement/migration counters of a [`HybridL2`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridStats {
    /// Fills steered into the SRAM ways (predicted write-hot).
    pub sram_fills: u64,
    /// Fills steered into the STT-RAM ways.
    pub stt_fills: u64,
    /// Blocks migrated STT → SRAM after repeated writes.
    pub migrations: u64,
    /// Writes absorbed by the SRAM ways (the energy win).
    pub sram_writes: u64,
    /// Writes that still hit STT-RAM.
    pub stt_writes: u64,
}

impl HybridStats {
    /// Fraction of writes absorbed by SRAM (`0.0` when no writes).
    pub fn sram_write_share(&self) -> f64 {
        let total = self.sram_writes + self.stt_writes;
        if total == 0 {
            0.0
        } else {
            self.sram_writes as f64 / total as f64
        }
    }
}

/// A shared hybrid L2: `sram_ways` SRAM + `stt_ways` STT-RAM in one
/// physical array.
#[derive(Debug, Clone)]
pub struct HybridL2 {
    cache: SetAssocCache,
    sram_mask: WayMask,
    stt_mask: WayMask,
    sram_acct: EnergyAccountant,
    stt_acct: EnergyAccountant,
    sram_read_lat: u64,
    sram_write_lat: u64,
    stt_read_lat: u64,
    stt_write_lat: u64,
    /// Direct-mapped write-history counters, indexed by line hash.
    wht: Vec<u8>,
    /// Per-resident-block STT write streak (indexed like the cache).
    stt_write_streak: Vec<u8>,
    stats: HybridStats,
    traffic: TrafficCounters,
    clock_ghz: f64,
    last_accrual: u64,
}

impl HybridL2 {
    /// Builds the hybrid with the given way split and STT retention.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::ZeroWays`] if either partition is empty or
    /// [`DesignError::TooManyWays`] if the total exceeds 64. Volatile
    /// retention classes are rejected (see module docs).
    pub fn new(
        sram_ways: u32,
        stt_ways: u32,
        retention: RetentionClass,
        params: &L2BaseParams,
    ) -> Result<Self, DesignError> {
        if sram_ways == 0 {
            return Err(DesignError::ZeroWays("sram partition"));
        }
        if stt_ways == 0 {
            return Err(DesignError::ZeroWays("stt partition"));
        }
        let total = sram_ways + stt_ways;
        if total > 64 {
            return Err(DesignError::TooManyWays(total));
        }
        assert!(
            !retention.is_volatile(),
            "the hybrid engine models non-volatile STT ways; use MobileL2 for \
             retention-relaxed designs"
        );
        let geom = moca_cache::CacheGeometry::from_sets(params.sets, total, params.line_bytes)
            .expect("validated way count");
        let sram_bank = Technology::Sram(moca_energy::SramBank::new(
            params.way_bytes() * u64::from(sram_ways),
            sram_ways,
            params.tech,
        ));
        let stt_bank = Technology::SttRam(moca_energy::SttRamBank::new(
            params.way_bytes() * u64::from(stt_ways),
            stt_ways,
            retention,
            params.tech,
        ));
        let lat = |t: &Technology| {
            (
                t.read_latency().cycles(params.clock_ghz).max(1),
                t.write_latency().cycles(params.clock_ghz).max(1),
            )
        };
        let (srl, swl) = lat(&sram_bank);
        let (trl, twl) = lat(&stt_bank);
        Ok(Self {
            cache: SetAssocCache::new(geom, params.policy),
            sram_mask: WayMask::first(sram_ways),
            stt_mask: WayMask::range(sram_ways, total),
            sram_acct: EnergyAccountant::new(sram_bank),
            stt_acct: EnergyAccountant::new(stt_bank),
            sram_read_lat: srl,
            sram_write_lat: swl,
            stt_read_lat: trl,
            stt_write_lat: twl,
            wht: vec![0; WHT_ENTRIES],
            stt_write_streak: vec![0; (params.sets as usize) * total as usize],
            stats: HybridStats::default(),
            traffic: TrafficCounters::default(),
            clock_ghz: params.clock_ghz,
            last_accrual: 0,
        })
    }

    fn wht_index(line: u64) -> usize {
        // Fibonacci hash of the line address.
        (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 52) as usize % WHT_ENTRIES
    }

    fn accrue(&mut self, now: u64) {
        let elapsed = now.saturating_sub(self.last_accrual);
        if elapsed == 0 {
            return;
        }
        let dt = Time::from_cycles(elapsed, self.clock_ghz);
        self.sram_acct.accrue_leakage(dt, 1.0);
        self.stt_acct.accrue_leakage(dt, 1.0);
        self.last_accrual = now;
    }

    fn streak_idx(&self, set: u64, way: u32) -> usize {
        set as usize * self.cache.geometry().ways() as usize + way as usize
    }

    /// Processes one request at cycle `now`.
    pub fn request(&mut self, req: &L2Request, now: u64) -> L2Response {
        self.accrue(now);
        let full = self.sram_mask.union(self.stt_mask);
        let set = self.cache.geometry().set_of_line(req.line);

        // Hybrid lookup probes both partitions (one array, both masks).
        if let Some(view) = self.cache.probe(req.line, full) {
            // Find the way to classify the hit.
            let result = self.cache.access(req.line, req.write, req.mode, now, full);
            debug_assert!(result.hit);
            let in_sram = self.sram_mask.contains(result.way);
            if req.write {
                let wht = &mut self.wht[Self::wht_index(req.line)];
                *wht = (*wht + 1).min(WHT_MAX);
            }
            let latency = match (in_sram, req.write) {
                (true, false) => {
                    self.sram_acct.record_reads(1);
                    self.stats.sram_writes += 0;
                    self.sram_read_lat
                }
                (true, true) => {
                    self.sram_acct.record_writes(1);
                    self.stats.sram_writes += 1;
                    self.sram_write_lat
                }
                (false, false) => {
                    self.stt_acct.record_reads(1);
                    self.stt_read_lat
                }
                (false, true) => {
                    self.stt_acct.record_writes(1);
                    self.stats.stt_writes += 1;
                    // Track the write streak; migrate write-hot blocks.
                    let si = self.streak_idx(set, result.way);
                    self.stt_write_streak[si] = self.stt_write_streak[si].saturating_add(1);
                    if self.stt_write_streak[si] >= MIGRATE_AFTER {
                        self.migrate_to_sram(req, set, result.way, now);
                    }
                    self.stt_write_lat
                }
            };
            let _ = view;
            return L2Response {
                hit: true,
                latency_cycles: latency,
                dram_read: false,
            };
        }

        // Miss: steer the fill by predicted write intensity.
        let hot = self.wht[Self::wht_index(req.line)] >= WHT_HOT || req.write;
        let mask = if hot { self.sram_mask } else { self.stt_mask };
        let result = self.cache.access(req.line, req.write, req.mode, now, mask);
        debug_assert!(!result.hit);
        self.traffic.dram_reads += 1;
        let si = self.streak_idx(set, result.way);
        self.stt_write_streak[si] = 0;
        if hot {
            self.stats.sram_fills += 1;
            self.sram_acct.record_reads(1);
            self.sram_acct.record_writes(1);
        } else {
            self.stats.stt_fills += 1;
            self.stt_acct.record_reads(1);
            self.stt_acct.record_writes(1);
        }
        if let Some(v) = result.victim {
            if v.dirty {
                if hot {
                    self.sram_acct.record_reads(1);
                } else {
                    self.stt_acct.record_reads(1);
                }
                self.traffic.dram_writes += 1;
            }
        }
        L2Response {
            hit: false,
            latency_cycles: if hot {
                self.sram_read_lat
            } else {
                self.stt_read_lat
            },
            dram_read: true,
        }
    }

    /// Moves a write-hot block from an STT way into the SRAM partition.
    fn migrate_to_sram(&mut self, req: &L2Request, set: u64, way: u32, now: u64) {
        let Some(ev) = self.cache.invalidate_at(set, way) else {
            return;
        };
        // Read out of STT, write into SRAM.
        self.stt_acct.record_reads(1);
        let result = self
            .cache
            .access(ev.line, ev.dirty, ev.owner, now, self.sram_mask);
        debug_assert!(!result.hit);
        self.sram_acct.record_writes(1);
        if let Some(v) = result.victim {
            if v.dirty {
                self.sram_acct.record_reads(1);
                self.traffic.dram_writes += 1;
            }
        }
        let si = self.streak_idx(set, way);
        self.stt_write_streak[si] = 0;
        self.stats.migrations += 1;
        let _ = req;
    }

    /// Accrues trailing leakage; call once after the last request.
    pub fn finalize(&mut self, now: u64) {
        self.accrue(now);
    }

    /// Cache statistics. Note: migrations perform internal accesses, so
    /// `accesses()` slightly exceeds the external request count.
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Placement/migration counters.
    pub fn hybrid_stats(&self) -> HybridStats {
        self.stats
    }

    /// Merged energy breakdown.
    pub fn energy(&self) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::new();
        e.merge(self.sram_acct.breakdown());
        e.merge(self.stt_acct.breakdown());
        e
    }

    /// DRAM traffic so far.
    pub fn traffic(&self) -> TrafficCounters {
        self.traffic
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        format!(
            "Hybrid-{}s{}t",
            self.sram_mask.count(),
            self.stt_mask.count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_cache::L2Cause;
    use moca_trace::{AccessKind, Mode};

    fn req(line: u64, write: bool) -> L2Request {
        L2Request {
            line,
            write,
            mode: Mode::User,
            cause: if write {
                L2Cause::Writeback
            } else {
                L2Cause::Demand(AccessKind::Load)
            },
        }
    }

    fn mk() -> HybridL2 {
        HybridL2::new(2, 14, RetentionClass::TenYears, &L2BaseParams::default()).expect("valid")
    }

    #[test]
    fn read_fills_go_to_stt_write_fills_to_sram() {
        let mut l2 = mk();
        l2.request(&req(1, false), 0);
        l2.request(&req(2, true), 10);
        let s = l2.hybrid_stats();
        assert_eq!(s.stt_fills, 1);
        assert_eq!(s.sram_fills, 1);
    }

    #[test]
    fn hit_works_across_partitions() {
        let mut l2 = mk();
        l2.request(&req(1, false), 0); // fill into STT
        let r = l2.request(&req(1, false), 10);
        assert!(r.hit);
        assert!(r.latency_cycles > 0);
    }

    #[test]
    fn repeated_writes_trigger_migration() {
        let mut l2 = mk();
        l2.request(&req(1, false), 0); // STT fill (cold WHT)
        l2.request(&req(1, true), 10); // STT write streak 1
        l2.request(&req(1, true), 20); // streak 2 → migrate
        let s = l2.hybrid_stats();
        assert_eq!(s.migrations, 1, "{s:?}");
        // Subsequent writes hit SRAM.
        l2.request(&req(1, true), 30);
        assert!(l2.hybrid_stats().sram_writes > 0);
    }

    #[test]
    fn wht_learns_write_hot_lines() {
        let mut l2 = mk();
        // Train the WHT: write-heavy line gets evicted and refilled.
        for i in 0..3u64 {
            l2.request(&req(42, true), i * 10);
        }
        // Even a *read* miss of a trained line now fills into SRAM.
        // (Different line mapping to a different set but same WHT slot is
        // unlikely; use the same line after invalidating it.)
        let before = l2.hybrid_stats().sram_fills;
        // Force eviction impossible directly; simplest: new line sharing
        // the WHT entry is not constructible portably, so re-request the
        // same line as a write after simulated eviction is skipped. The
        // WHT effect on fresh fills is covered by the write-fill rule.
        let _ = before;
        assert!(l2.hybrid_stats().sram_write_share() > 0.0);
    }

    #[test]
    fn energy_has_both_components() {
        let mut l2 = mk();
        for i in 0..2000u64 {
            l2.request(&req(i % 300, i % 4 == 0), i * 10);
        }
        l2.finalize(30_000);
        let e = l2.energy();
        assert!(e.total().nj() > 0.0);
        assert!(e.leakage.nj() > 0.0);
        assert!(l2.traffic().dram_reads > 0);
        assert!(l2.label().contains("Hybrid-2s14t"));
    }

    #[test]
    fn rejects_bad_configs() {
        let p = L2BaseParams::default();
        assert!(HybridL2::new(0, 14, RetentionClass::TenYears, &p).is_err());
        assert!(HybridL2::new(2, 0, RetentionClass::TenYears, &p).is_err());
        assert!(HybridL2::new(40, 40, RetentionClass::TenYears, &p).is_err());
    }

    #[test]
    #[should_panic(expected = "non-volatile")]
    fn rejects_volatile_retention() {
        let _ = HybridL2::new(2, 14, RetentionClass::TenMillis, &L2BaseParams::default());
    }

    #[test]
    fn sram_absorbs_most_writes_on_write_hot_streams() {
        let mut l2 = mk();
        // A small, write-heavy working set.
        for i in 0..20_000u64 {
            l2.request(&req(i % 64, i % 2 == 0), i * 5);
        }
        let share = l2.hybrid_stats().sram_write_share();
        assert!(share > 0.8, "SRAM should absorb write-hot lines, got {share:.2}");
    }
}
