//! Property-based tests of the `MobileL2` engine: structural invariants
//! must hold for every design under arbitrary request streams.

use proptest::prelude::*;

use moca_cache::{L2Cause, L2Request};
use moca_core::{L2BaseParams, L2Design, MobileL2, RefreshPolicy};
use moca_energy::RetentionClass;
use moca_trace::{AccessKind, Mode};

fn arb_design() -> impl Strategy<Value = L2Design> {
    prop_oneof![
        (1u32..=16).prop_map(|ways| L2Design::SharedSram { ways }),
        (1u32..=8, 1u32..=8).prop_map(|(u, k)| L2Design::StaticSram {
            user_ways: u,
            kernel_ways: k,
        }),
        (1u32..=8, 1u32..=8, 0usize..2).prop_map(|(u, k, r)| L2Design::StaticMultiRetention {
            user_ways: u,
            kernel_ways: k,
            user_retention: RetentionClass::OneSecond,
            kernel_retention: RetentionClass::TenMillis,
            refresh: if r == 0 {
                RefreshPolicy::InvalidateOnExpiry
            } else {
                RefreshPolicy::Refresh
            },
        }),
        (4u32..=16, 1u32..=2).prop_map(|(max, min)| L2Design::DynamicStt {
            max_ways: max,
            min_ways: min.min(max / 2).max(1),
            user_retention: RetentionClass::HundredMillis,
            kernel_retention: RetentionClass::TenMillis,
            refresh: RefreshPolicy::InvalidateOnExpiry,
            epoch_cycles: 20_000,
        }),
    ]
}

fn arb_request() -> impl Strategy<Value = L2Request> {
    (0u64..100_000, any::<bool>(), any::<bool>()).prop_map(|(line, write, kernel)| L2Request {
        line,
        write,
        mode: if kernel { Mode::Kernel } else { Mode::User },
        cause: if write {
            L2Cause::Writeback
        } else {
            L2Cause::Demand(AccessKind::Load)
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every design: accounting identities hold after an arbitrary
    /// request stream (hits+misses = requests, misses = DRAM reads,
    /// non-negative energy, active ways within physical bounds).
    #[test]
    fn engine_invariants(
        design in arb_design(),
        reqs in prop::collection::vec(arb_request(), 1..400),
    ) {
        let mut l2 = MobileL2::new(design, L2BaseParams::default()).expect("valid design");
        let mut now = 0u64;
        for r in &reqs {
            now += 50;
            let resp = l2.request(r, now);
            prop_assert!(resp.latency_cycles >= 1);
            prop_assert_eq!(resp.dram_read, !resp.hit);
        }
        l2.finalize(now + 1);

        let stats = l2.stats();
        prop_assert_eq!(stats.accesses(), reqs.len() as u64);
        prop_assert_eq!(stats.hits() + stats.misses(), reqs.len() as u64);
        prop_assert_eq!(l2.traffic().dram_reads, stats.misses());

        let e = l2.energy();
        prop_assert!(e.total().pj() >= 0.0);
        prop_assert!(e.leakage.pj() > 0.0, "time passed, leakage must accrue");

        let active = l2.active_ways();
        prop_assert!(active >= 1 && active <= design.physical_ways());
    }

    /// Partitioned designs never report cross-mode evictions and their
    /// per-mode traffic adds up.
    #[test]
    fn partitioned_designs_have_no_interference(
        u in 1u32..=8,
        k in 1u32..=8,
        reqs in prop::collection::vec(arb_request(), 1..300),
    ) {
        let design = L2Design::StaticSram { user_ways: u, kernel_ways: k };
        let mut l2 = MobileL2::new(design, L2BaseParams::default()).expect("valid");
        for (i, r) in reqs.iter().enumerate() {
            l2.request(r, (i as u64 + 1) * 10);
        }
        prop_assert_eq!(l2.stats().cross_evictions, [0, 0]);
        prop_assert_eq!(l2.segment_ways(Mode::User), u);
        prop_assert_eq!(l2.segment_ways(Mode::Kernel), k);
    }

    /// Dynamic designs keep the two segments disjoint and within budget
    /// at every timeline point.
    #[test]
    fn dynamic_allocation_bounds(
        reqs in prop::collection::vec(arb_request(), 200..800),
    ) {
        let design = L2Design::DynamicStt {
            max_ways: 8,
            min_ways: 1,
            user_retention: RetentionClass::HundredMillis,
            kernel_retention: RetentionClass::TenMillis,
            refresh: RefreshPolicy::InvalidateOnExpiry,
            epoch_cycles: 5_000,
        };
        let mut l2 = MobileL2::new(design, L2BaseParams::default()).expect("valid");
        for (i, r) in reqs.iter().enumerate() {
            l2.request(r, (i as u64 + 1) * 100);
        }
        for sample in l2.timeline() {
            prop_assert!(sample.user_ways >= 1);
            prop_assert!(sample.kernel_ways >= 1);
            prop_assert!(sample.user_ways + sample.kernel_ways <= 8);
        }
    }

    /// The engine's responses are a pure function of the request history:
    /// replaying the same stream gives identical state.
    #[test]
    fn engine_is_deterministic(
        design in arb_design(),
        reqs in prop::collection::vec(arb_request(), 1..200),
    ) {
        let run = || {
            let mut l2 = MobileL2::new(design, L2BaseParams::default()).expect("valid");
            let mut hits = 0u64;
            for (i, r) in reqs.iter().enumerate() {
                if l2.request(r, (i as u64 + 1) * 7).hit {
                    hits += 1;
                }
            }
            l2.finalize(reqs.len() as u64 * 7 + 1);
            (hits, l2.energy().total().pj().to_bits(), l2.active_ways())
        };
        prop_assert_eq!(run(), run());
    }
}
