//! Property-based tests (moca-testkit) of the `MobileL2` engine:
//! structural invariants must hold for every design under arbitrary
//! request streams.

use moca_testkit::{check, Config, TestRng};
use moca_testkit::{require, require_eq};

use moca_cache::{L2Cause, L2Request};
use moca_core::{L2BaseParams, L2Design, MobileL2, RefreshPolicy};
use moca_energy::RetentionClass;
use moca_trace::{AccessKind, Mode};

fn arb_design(rng: &mut TestRng) -> L2Design {
    match rng.range_usize(0, 4) {
        0 => L2Design::SharedSram {
            ways: rng.range_u32(1, 17),
        },
        1 => L2Design::StaticSram {
            user_ways: rng.range_u32(1, 9),
            kernel_ways: rng.range_u32(1, 9),
        },
        2 => L2Design::StaticMultiRetention {
            user_ways: rng.range_u32(1, 9),
            kernel_ways: rng.range_u32(1, 9),
            user_retention: RetentionClass::OneSecond,
            kernel_retention: RetentionClass::TenMillis,
            refresh: if rng.bool() {
                RefreshPolicy::InvalidateOnExpiry
            } else {
                RefreshPolicy::Refresh
            },
        },
        _ => {
            let max = rng.range_u32(4, 17);
            let min = rng.range_u32(1, 3);
            L2Design::DynamicStt {
                max_ways: max,
                min_ways: min.min(max / 2).max(1),
                user_retention: RetentionClass::HundredMillis,
                kernel_retention: RetentionClass::TenMillis,
                refresh: RefreshPolicy::InvalidateOnExpiry,
                epoch_cycles: 20_000,
            }
        }
    }
}

fn arb_request(rng: &mut TestRng) -> L2Request {
    let (line, write, kernel) = (rng.range_u64(0, 100_000), rng.bool(), rng.bool());
    L2Request {
        line,
        write,
        mode: if kernel { Mode::Kernel } else { Mode::User },
        cause: if write {
            L2Cause::Writeback
        } else {
            L2Cause::Demand(AccessKind::Load)
        },
    }
}

/// For every design: accounting identities hold after an arbitrary
/// request stream (hits+misses = requests, misses = DRAM reads,
/// non-negative energy, active ways within physical bounds).
#[test]
fn engine_invariants() {
    check(
        Config::cases(32),
        |rng| (arb_design(rng), rng.vec(1, 400, arb_request)),
        |(design, reqs)| {
            let mut l2 = MobileL2::new(*design, L2BaseParams::default()).expect("valid design");
            let mut now = 0u64;
            for r in reqs {
                now += 50;
                let resp = l2.request(r, now);
                require!(resp.latency_cycles >= 1);
                require_eq!(resp.dram_read, !resp.hit);
            }
            l2.finalize(now + 1);

            let stats = l2.stats();
            require_eq!(stats.accesses(), reqs.len() as u64);
            require_eq!(stats.hits() + stats.misses(), reqs.len() as u64);
            require_eq!(l2.traffic().dram_reads, stats.misses());

            let e = l2.energy();
            require!(e.total().pj() >= 0.0);
            require!(e.leakage.pj() > 0.0, "time passed, leakage must accrue");

            let active = l2.active_ways();
            require!(active >= 1 && active <= design.physical_ways());
            Ok(())
        },
    );
}

/// Partitioned designs never report cross-mode evictions and their
/// per-mode traffic adds up.
#[test]
fn partitioned_designs_have_no_interference() {
    check(
        Config::cases(32),
        |rng| {
            (
                rng.range_u32(1, 9),
                rng.range_u32(1, 9),
                rng.vec(1, 300, arb_request),
            )
        },
        |(u, k, reqs)| {
            let design = L2Design::StaticSram {
                user_ways: *u,
                kernel_ways: *k,
            };
            let mut l2 = MobileL2::new(design, L2BaseParams::default()).expect("valid");
            for (i, r) in reqs.iter().enumerate() {
                l2.request(r, (i as u64 + 1) * 10);
            }
            require_eq!(l2.stats().cross_evictions, [0, 0]);
            require_eq!(l2.segment_ways(Mode::User), *u);
            require_eq!(l2.segment_ways(Mode::Kernel), *k);
            Ok(())
        },
    );
}

/// Dynamic designs keep the two segments disjoint and within budget at
/// every timeline point.
#[test]
fn dynamic_allocation_bounds() {
    check(
        Config::cases(32),
        |rng| rng.vec(200, 800, arb_request),
        |reqs| {
            let design = L2Design::DynamicStt {
                max_ways: 8,
                min_ways: 1,
                user_retention: RetentionClass::HundredMillis,
                kernel_retention: RetentionClass::TenMillis,
                refresh: RefreshPolicy::InvalidateOnExpiry,
                epoch_cycles: 5_000,
            };
            let mut l2 = MobileL2::new(design, L2BaseParams::default()).expect("valid");
            for (i, r) in reqs.iter().enumerate() {
                l2.request(r, (i as u64 + 1) * 100);
            }
            for sample in l2.timeline() {
                require!(sample.user_ways >= 1);
                require!(sample.kernel_ways >= 1);
                require!(sample.user_ways + sample.kernel_ways <= 8);
            }
            Ok(())
        },
    );
}

/// The engine's responses are a pure function of the request history:
/// replaying the same stream gives identical state.
#[test]
fn engine_is_deterministic() {
    check(
        Config::cases(32),
        |rng| (arb_design(rng), rng.vec(1, 200, arb_request)),
        |(design, reqs)| {
            let run = || {
                let mut l2 = MobileL2::new(*design, L2BaseParams::default()).expect("valid");
                let mut hits = 0u64;
                for (i, r) in reqs.iter().enumerate() {
                    if l2.request(r, (i as u64 + 1) * 7).hit {
                        hits += 1;
                    }
                }
                l2.finalize(reqs.len() as u64 * 7 + 1);
                (hits, l2.energy().total().pj().to_bits(), l2.active_ways())
            };
            require_eq!(run(), run());
            Ok(())
        },
    );
}
