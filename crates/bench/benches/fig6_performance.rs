//! F6 bench: the performance comparison's inner loop (baseline vs the
//! dynamic design, whose STT-RAM latencies and epochs cost the most).

use criterion::{criterion_group, criterion_main, Criterion};
use moca_bench::{bench_app, bench_run};
use moca_core::L2Design;
use std::hint::black_box;

fn fig6(c: &mut Criterion) {
    let app = bench_app();
    let mut g = c.benchmark_group("fig6_performance");
    g.sample_size(10);
    g.bench_function("baseline-cpr", |b| {
        b.iter(|| black_box(bench_run(&app, L2Design::baseline()).cpr()))
    });
    g.bench_function("static-mr-cpr", |b| {
        b.iter(|| black_box(bench_run(&app, L2Design::static_default()).cpr()))
    });
    g.bench_function("dynamic-cpr", |b| {
        b.iter(|| black_box(bench_run(&app, L2Design::dynamic_default()).cpr()))
    });
    g.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
