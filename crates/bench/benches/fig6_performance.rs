//! F6 bench: the performance comparison's inner loop (baseline vs the
//! dynamic design, whose STT-RAM latencies and epochs cost the most).

use moca_bench::{bench_app, bench_run, Runner};
use moca_core::L2Design;
use std::hint::black_box;

fn main() {
    let app = bench_app();
    let mut r = Runner::new("fig6_performance");
    r.bench("baseline-cpr", || {
        black_box(bench_run(&app, L2Design::baseline()).cpr())
    });
    r.bench("static-mr-cpr", || {
        black_box(bench_run(&app, L2Design::static_default()).cpr())
    });
    r.bench("dynamic-cpr", || {
        black_box(bench_run(&app, L2Design::dynamic_default()).cpr())
    });
    r.finish();
}
