//! F7 bench: dynamic-design run with timeline collection, plus the
//! controller decision in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use moca_bench::{bench_app, bench_run};
use moca_cache::CacheGeometry;
use moca_core::{ControllerConfig, DynamicController, L2Design};
use moca_trace::Mode;
use std::hint::black_box;

fn fig7(c: &mut Criterion) {
    let app = bench_app();
    let mut g = c.benchmark_group("fig7_adaptation");
    g.sample_size(10);
    g.bench_function("dynamic-run-with-timeline", |b| {
        b.iter(|| {
            let r = bench_run(&app, L2Design::dynamic_default());
            black_box(r.timeline.len())
        })
    });
    g.bench_function("controller-epoch-decision", |b| {
        let geom = CacheGeometry::new(2 << 20, 16, 64).expect("valid");
        b.iter(|| {
            let mut ctrl = DynamicController::new(ControllerConfig::new(1000, 1, 16), geom);
            for i in 0..4096u64 {
                ctrl.observe(Mode::User, (i % 5) * 2048);
                ctrl.observe(Mode::Kernel, (7 + i % 3) * 2048);
            }
            black_box(ctrl.decide(1000, (8, 8)))
        })
    });
    g.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
