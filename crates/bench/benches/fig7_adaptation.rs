//! F7 bench: dynamic-design run with timeline collection, plus the
//! controller decision in isolation.

use moca_bench::{bench_app, bench_run, Runner};
use moca_cache::CacheGeometry;
use moca_core::{ControllerConfig, DynamicController, L2Design};
use moca_trace::Mode;
use std::hint::black_box;

fn main() {
    let app = bench_app();
    let mut r = Runner::new("fig7_adaptation");
    r.bench("dynamic-run-with-timeline", || {
        let report = bench_run(&app, L2Design::dynamic_default());
        black_box(report.timeline.len())
    });
    let geom = CacheGeometry::new(2 << 20, 16, 64).expect("valid");
    r.bench("controller-epoch-decision", || {
        let mut ctrl = DynamicController::new(ControllerConfig::new(1000, 1, 16), geom);
        for i in 0..4096u64 {
            ctrl.observe(Mode::User, (i % 5) * 2048);
            ctrl.observe(Mode::Kernel, (7 + i % 3) * 2048);
        }
        black_box(ctrl.decide(1000, (8, 8)))
    });
    r.finish();
}
