//! T2 bench: one app across the four headline designs (the energy table's
//! inner loop).

use moca_bench::{bench_app, bench_run, Runner};
use moca_sim::experiments::matrix::headline_designs;
use std::hint::black_box;

fn main() {
    let app = bench_app();
    let mut r = Runner::new("table2_energy");
    for design in headline_designs() {
        r.bench(&design.label(), || {
            let report = bench_run(&app, design);
            black_box(report.l2_energy.total())
        });
    }
    r.finish();
}
