//! T2 bench: one app across the four headline designs (the energy table's
//! inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use moca_bench::{bench_app, bench_run};
use moca_sim::experiments::matrix::headline_designs;
use std::hint::black_box;

fn table2(c: &mut Criterion) {
    let app = bench_app();
    let mut g = c.benchmark_group("table2_energy");
    g.sample_size(10);
    for design in headline_designs() {
        g.bench_function(design.label(), |b| {
            b.iter(|| {
                let r = bench_run(&app, design);
                black_box(r.l2_energy.total())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
