//! F1 bench: baseline simulation that measures the kernel share of L2
//! accesses (one app per iteration; the full figure runs all ten).

use moca_bench::{bench_run, Runner, BENCH_SEED};
use moca_core::L2Design;
use moca_sim::run_app;
use moca_trace::AppProfile;
use std::hint::black_box;

fn main() {
    let mut r = Runner::new("fig1_kernel_share");
    for app in [AppProfile::browser(), AppProfile::game(), AppProfile::music()] {
        r.bench(app.name, || {
            let report = bench_run(&app, L2Design::baseline());
            black_box(report.l2_kernel_share())
        });
    }
    // The raw-share measurement path (trace statistics via the L1s).
    let email = AppProfile::email();
    r.bench("raw-share-email", || {
        let report = run_app(&email, L2Design::baseline(), 60_000, BENCH_SEED);
        black_box(report.l1_stats.kernel_share())
    });
    r.finish();
}
