//! F1 bench: baseline simulation that measures the kernel share of L2
//! accesses (one app per iteration; the full figure runs all ten).

use criterion::{criterion_group, criterion_main, Criterion};
use moca_bench::{bench_run, BENCH_SEED};
use moca_core::L2Design;
use moca_sim::run_app;
use moca_trace::AppProfile;
use std::hint::black_box;

fn fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_kernel_share");
    g.sample_size(10);
    for app in [AppProfile::browser(), AppProfile::game(), AppProfile::music()] {
        g.bench_function(app.name, |b| {
            b.iter(|| {
                let r = bench_run(&app, L2Design::baseline());
                black_box(r.l2_kernel_share())
            })
        });
    }
    // The raw-share measurement path (trace statistics via the L1s).
    g.bench_function("raw-share-email", |b| {
        let app = AppProfile::email();
        b.iter(|| {
            let r = run_app(&app, L2Design::baseline(), 60_000, BENCH_SEED);
            black_box(r.l1_stats.kernel_share())
        })
    });
    g.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);
