//! F2 bench: shared vs isolated runs that quantify user/kernel
//! interference (cross-mode evictions and the miss-rate gap).

use criterion::{criterion_group, criterion_main, Criterion};
use moca_bench::{bench_app, bench_run};
use moca_core::L2Design;
use std::hint::black_box;

fn fig2(c: &mut Criterion) {
    let app = bench_app();
    let mut g = c.benchmark_group("fig2_interference");
    g.sample_size(10);
    g.bench_function("shared-with-cross-evictions", |b| {
        b.iter(|| {
            let r = bench_run(&app, L2Design::baseline());
            black_box(r.l2_stats.cross_eviction_share())
        })
    });
    g.bench_function("isolated-double-capacity", |b| {
        b.iter(|| {
            let r = bench_run(
                &app,
                L2Design::StaticSram {
                    user_ways: 16,
                    kernel_ways: 16,
                },
            );
            black_box(r.l2_miss_rate())
        })
    });
    g.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
