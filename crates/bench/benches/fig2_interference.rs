//! F2 bench: shared vs isolated runs that quantify user/kernel
//! interference (cross-mode evictions and the miss-rate gap).

use moca_bench::{bench_app, bench_run, Runner};
use moca_core::L2Design;
use std::hint::black_box;

fn main() {
    let app = bench_app();
    let mut r = Runner::new("fig2_interference");
    r.bench("shared-with-cross-evictions", || {
        let report = bench_run(&app, L2Design::baseline());
        black_box(report.l2_stats.cross_eviction_share())
    });
    r.bench("isolated-double-capacity", || {
        let report = bench_run(
            &app,
            L2Design::StaticSram {
                user_ways: 16,
                kernel_ways: 16,
            },
        );
        black_box(report.l2_miss_rate())
    });
    r.finish();
}
