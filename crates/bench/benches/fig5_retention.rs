//! F5 bench: one retention-class point of the design-space sweep under
//! both expiry policies.

use moca_bench::{bench_app, bench_run, Runner};
use moca_core::{L2Design, RefreshPolicy};
use moca_energy::RetentionClass;
use std::hint::black_box;

fn main() {
    let app = bench_app();
    let mut r = Runner::new("fig5_retention");
    for (label, policy) in [
        ("invalidate-10ms", RefreshPolicy::InvalidateOnExpiry),
        ("refresh-10ms", RefreshPolicy::Refresh),
    ] {
        r.bench(label, || {
            let report = bench_run(
                &app,
                L2Design::StaticMultiRetention {
                    user_ways: 6,
                    kernel_ways: 4,
                    user_retention: RetentionClass::TenMillis,
                    kernel_retention: RetentionClass::TenMillis,
                    refresh: policy,
                },
            );
            black_box(report.l2_energy.total())
        });
    }
    r.finish();
}
