//! F5 bench: one retention-class point of the design-space sweep under
//! both expiry policies.

use criterion::{criterion_group, criterion_main, Criterion};
use moca_bench::{bench_app, bench_run};
use moca_core::{L2Design, RefreshPolicy};
use moca_energy::RetentionClass;
use std::hint::black_box;

fn fig5(c: &mut Criterion) {
    let app = bench_app();
    let mut g = c.benchmark_group("fig5_retention");
    g.sample_size(10);
    for (label, policy) in [
        ("invalidate-10ms", RefreshPolicy::InvalidateOnExpiry),
        ("refresh-10ms", RefreshPolicy::Refresh),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let r = bench_run(
                    &app,
                    L2Design::StaticMultiRetention {
                        user_ways: 6,
                        kernel_ways: 4,
                        user_retention: RetentionClass::TenMillis,
                        kernel_retention: RetentionClass::TenMillis,
                        refresh: policy,
                    },
                );
                black_box(r.l2_energy.total())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
