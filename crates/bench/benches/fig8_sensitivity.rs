//! F8 bench: ablation variants of the dynamic design (epoch length and
//! refresh policy extremes).

use moca_bench::{bench_app, bench_run, Runner};
use moca_core::{L2Design, RefreshPolicy};
use moca_energy::RetentionClass;
use std::hint::black_box;

fn variant(epoch: u64, refresh: RefreshPolicy) -> L2Design {
    L2Design::DynamicStt {
        max_ways: 16,
        min_ways: 1,
        user_retention: RetentionClass::HundredMillis,
        kernel_retention: RetentionClass::TenMillis,
        refresh,
        epoch_cycles: epoch,
    }
}

fn main() {
    let app = bench_app();
    let mut r = Runner::new("fig8_sensitivity");
    r.bench("epoch-100k", || {
        black_box(
            bench_run(&app, variant(100_000, RefreshPolicy::InvalidateOnExpiry))
                .l2_energy
                .total(),
        )
    });
    r.bench("epoch-2M", || {
        black_box(
            bench_run(&app, variant(2_000_000, RefreshPolicy::InvalidateOnExpiry))
                .l2_energy
                .total(),
        )
    });
    r.bench("policy-refresh", || {
        black_box(
            bench_run(&app, variant(500_000, RefreshPolicy::Refresh))
                .l2_energy
                .total(),
        )
    });
    r.finish();
}
