//! F8 bench: ablation variants of the dynamic design (epoch length and
//! refresh policy extremes).

use criterion::{criterion_group, criterion_main, Criterion};
use moca_bench::{bench_app, bench_run};
use moca_core::{L2Design, RefreshPolicy};
use moca_energy::RetentionClass;
use std::hint::black_box;

fn variant(epoch: u64, refresh: RefreshPolicy) -> L2Design {
    L2Design::DynamicStt {
        max_ways: 16,
        min_ways: 1,
        user_retention: RetentionClass::HundredMillis,
        kernel_retention: RetentionClass::TenMillis,
        refresh,
        epoch_cycles: epoch,
    }
}

fn fig8(c: &mut Criterion) {
    let app = bench_app();
    let mut g = c.benchmark_group("fig8_sensitivity");
    g.sample_size(10);
    g.bench_function("epoch-100k", |b| {
        b.iter(|| black_box(bench_run(&app, variant(100_000, RefreshPolicy::InvalidateOnExpiry)).l2_energy.total()))
    });
    g.bench_function("epoch-2M", |b| {
        b.iter(|| black_box(bench_run(&app, variant(2_000_000, RefreshPolicy::InvalidateOnExpiry)).l2_energy.total()))
    });
    g.bench_function("policy-refresh", |b| {
        b.iter(|| black_box(bench_run(&app, variant(500_000, RefreshPolicy::Refresh)).l2_energy.total()))
    });
    g.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
