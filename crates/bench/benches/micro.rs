//! Microbenchmarks of the substrates: trace generation throughput, the
//! cache access path, L1 filtering, the utility monitor, the shared-trace
//! sweep engines (chunk broadcast and the lock-step kernel), and the
//! chunk arena.

use moca_bench::{bench_app, Runner, BENCH_SEED};
use moca_cache::{CacheGeometry, L1Pair, ReplacementPolicy, SetAssocCache, UtilityMonitor, WayMask};
use moca_core::{L2Design, RefreshPolicy};
use moca_energy::RetentionClass;
use moca_sim::fanout::{fan_out, ChunkArena, FanOut, TraceStream};
use moca_sim::lockstep::LockStep;
use moca_sim::{run_app, FileTraceSource};
use moca_trace::binfmt::{self, TraceReader, CHUNK_REFS};
use moca_trace::{AppProfile, MemoryAccess, Mode, TraceGenerator};
use std::hint::black_box;
use std::io::Cursor;
use std::sync::Arc;

fn trace_generation(r: &mut Runner) {
    r.throughput_elems(100_000);
    r.bench("trace-generation/browser-100k-refs", || {
        let gen = TraceGenerator::new(&AppProfile::browser(), 1);
        black_box(gen.take(100_000).map(|a| a.addr).sum::<u64>())
    });
    // Same stream through the chunked fill API (reused buffer) instead of
    // the per-access iterator.
    r.throughput_elems(100_000);
    r.bench("trace-generation/browser-100k-fill", || {
        let mut gen = TraceGenerator::new(&AppProfile::browser(), 1);
        let mut chunk = Vec::with_capacity(TraceGenerator::DEFAULT_CHUNK);
        let mut sum = 0u64;
        let mut left = 100_000usize;
        while left > 0 {
            let n = gen.fill(&mut chunk).min(left);
            sum += chunk[..n].iter().map(|a| a.addr).sum::<u64>();
            left -= n;
        }
        black_box(sum)
    });
}

fn cache_access_path(r: &mut Runner) {
    let geom = CacheGeometry::new(2 << 20, 16, 64).expect("valid");
    let policies = [
        ("lru", ReplacementPolicy::Lru),
        ("plru", ReplacementPolicy::TreePlru),
        ("srrip", ReplacementPolicy::Srrip),
    ];
    for (name, policy) in policies {
        r.throughput_elems(100_000);
        r.bench(&format!("cache-access/{name}"), || {
            let mut cache = SetAssocCache::new(geom, policy);
            let mask = WayMask::first(16);
            let mut hits = 0u64;
            for i in 0..100_000u64 {
                let line = (i * 2654435761) % 100_000;
                if cache.access(line, i % 7 == 0, Mode::User, i, mask).hit {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    }
}

fn l1_filter(r: &mut Runner) {
    let trace: Vec<_> = TraceGenerator::new(&AppProfile::game(), 2)
        .take(100_000)
        .collect();
    r.throughput_elems(trace.len() as u64);
    r.bench("l1-filter/filter-100k", || {
        let mut l1 = L1Pair::mobile_default();
        let mut reqs = 0u64;
        for (i, a) in trace.iter().enumerate() {
            let o = l1.filter(a, i as u64);
            reqs += u64::from(o.demand.is_some()) + u64::from(o.writeback.is_some());
        }
        black_box(reqs)
    });
}

fn utility_monitor(r: &mut Runner) {
    let geom = CacheGeometry::new(2 << 20, 16, 64).expect("valid");
    r.throughput_elems(100_000);
    r.bench("utility-monitor/observe-100k", || {
        let mut m = UtilityMonitor::new(geom, 4);
        for i in 0..100_000u64 {
            m.observe(i % 40_000);
        }
        black_box(m.hits_with_ways(16))
    });
}

/// Eight designs spanning the sweep-shaped experiments: shared/partitioned
/// SRAM, the STT retention family, and both dynamic variants.
fn sweep_designs() -> [L2Design; 8] {
    [
        L2Design::baseline(),
        L2Design::static_default(),
        L2Design::dynamic_default(),
        L2Design::SharedSram { ways: 4 },
        L2Design::StaticSram {
            user_ways: 8,
            kernel_ways: 4,
        },
        L2Design::SharedStt {
            ways: 16,
            retention: RetentionClass::TenYears,
            refresh: RefreshPolicy::InvalidateOnExpiry,
        },
        L2Design::StaticMultiRetention {
            user_ways: 6,
            kernel_ways: 4,
            user_retention: RetentionClass::OneSecond,
            kernel_retention: RetentionClass::TenMillis,
            refresh: RefreshPolicy::Refresh,
        },
        L2Design::DynamicSram {
            max_ways: 16,
            min_ways: 1,
            epoch_cycles: 500_000,
        },
    ]
}

fn sweep_fanout(r: &mut Runner) {
    let app = bench_app();
    let designs = sweep_designs();
    const REFS: usize = 100_000;
    // The pre-fan-out sweep shape: every design regenerates the trace.
    r.throughput_elems((designs.len() * REFS) as u64);
    r.bench("sweep-fanout/8-designs-100k-sequential", || {
        let mut cycles = 0u64;
        for &design in &designs {
            cycles += run_app(&app, design, REFS, BENCH_SEED).cycles;
        }
        black_box(cycles)
    });
    // Shared-trace chunk broadcast: one stream stepped per-reference
    // through all eight systems (the PR 3 reference engine, retained as
    // `run_broadcast` for the differential harness; the warmup iteration
    // leaves the global arena warm, as any sweep after the first one in
    // a process would find it).
    r.throughput_elems((designs.len() * REFS) as u64);
    r.bench("sweep-fanout/8-designs-100k", || {
        let reports = FanOut::new(&app, BENCH_SEED).run_broadcast(&designs, REFS);
        black_box(reports.iter().map(|rep| rep.cycles).sum::<u64>())
    });
    // The lock-step kernel behind the production entry points: a shared
    // L1 front end filters each chunk once and the eight design lanes
    // replay only L2-visible events, skipping pure-hit runs in O(1).
    r.throughput_elems((designs.len() * REFS) as u64);
    r.bench("sweep-lockstep/8-designs-100k", || {
        let reports = fan_out(&app, &designs, REFS, BENCH_SEED);
        black_box(reports.iter().map(|rep| rep.cycles).sum::<u64>())
    });
    // Lane grouping ablation: width 1 rebuilds (and re-pays) the shared
    // front end for every design, isolating what the design-major lane
    // layout itself buys.
    r.throughput_elems((designs.len() * REFS) as u64);
    r.bench("lockstep/lane-group-width", || {
        let reports = LockStep::new(&app, BENCH_SEED)
            .with_lane_group(1)
            .run(&designs, REFS);
        black_box(reports.iter().map(|rep| rep.cycles).sum::<u64>())
    });
}

/// Compile-once replay: decoding a compiled container must beat
/// regenerating the same stream by a wide margin — that gap is the
/// entire point of the on-disk format (`trace-decode` vs `trace-gen` is
/// the ratio `bench_guard` pins).
fn trace_replay(r: &mut Runner) {
    let app = AppProfile::browser();
    const SEED: u64 = 1;
    // 100k refs round up to 13 full chunks; generation and decode both
    // process exactly this many references so the ratio is honest.
    const CHUNKS: usize = 100_000usize.div_ceil(CHUNK_REFS);
    let refs = (CHUNKS * CHUNK_REFS) as u64;

    r.throughput_elems(refs);
    r.bench("trace-gen/100k-refs", || {
        let mut gen = TraceGenerator::new(&app, SEED);
        let mut chunk: Vec<MemoryAccess> = Vec::with_capacity(CHUNK_REFS);
        let mut sum = 0u64;
        for _ in 0..CHUNKS {
            gen.fill(&mut chunk);
            sum += chunk.iter().map(|a| a.addr).sum::<u64>();
        }
        black_box(sum)
    });

    // Compile once, decode per iteration from memory: the steady-state
    // cost of serving a sweep from a warm corpus file.
    let bytes = {
        let mut w = Cursor::new(Vec::new());
        binfmt::compile(&mut w, &app, SEED, CHUNKS * CHUNK_REFS).expect("in-memory compile");
        w.into_inner()
    };
    r.throughput_elems(refs);
    r.bench("trace-decode/100k-refs", || {
        let mut reader = TraceReader::new(Cursor::new(&bytes[..])).expect("parse");
        let mut chunk: Vec<MemoryAccess> = Vec::with_capacity(CHUNK_REFS);
        let mut sum = 0u64;
        for i in 0..reader.header().chunk_count() {
            reader.read_chunk(i, &mut chunk).expect("decode");
            sum += chunk.iter().map(|a| a.addr).sum::<u64>();
        }
        black_box(sum)
    });

    // The full file-backed sweep path: TraceStream over a registered
    // source, zero-capacity arena so every chunk really hits the disk
    // (buffered) decode path.
    let path = std::env::temp_dir().join(format!("moca-bench-replay-{}.mtrc", std::process::id()));
    std::fs::write(&path, &bytes).expect("write bench trace");
    let source = Arc::new(FileTraceSource::open(&path).expect("open bench trace"));
    r.throughput_elems(refs);
    r.bench("trace-file/replay-100k", || {
        let cold = ChunkArena::with_capacity(0);
        let mut stream = TraceStream::with_source(&app, SEED, &cold, Arc::clone(&source));
        let mut sum = 0u64;
        for _ in 0..CHUNKS {
            sum += stream.next_chunk().iter().map(|a| a.addr).sum::<u64>();
        }
        black_box(sum)
    });
    std::fs::remove_file(&path).ok();
}

fn chunk_arena(r: &mut Runner) {
    let app = AppProfile::browser();
    let arena = ChunkArena::with_capacity(32);
    const REFS: usize = 100_000;
    let replay = |arena: &ChunkArena| {
        let mut stream = TraceStream::with_arena(&app, 1, arena);
        let mut sum = 0u64;
        let mut left = REFS;
        while left > 0 {
            let chunk = stream.next_chunk();
            let n = chunk.len().min(left);
            sum += chunk[..n].iter().map(|a| a.addr).sum::<u64>();
            left -= n;
        }
        sum
    };
    replay(&arena); // populate: every later pass is pure hits
    assert!(arena.stats().hit_rate() < 1.0);
    r.throughput_elems(REFS as u64);
    r.bench("chunk-arena/hit-rate", || black_box(replay(&arena)));
}

fn main() {
    let mut r = Runner::new("micro");
    trace_generation(&mut r);
    cache_access_path(&mut r);
    l1_filter(&mut r);
    utility_monitor(&mut r);
    sweep_fanout(&mut r);
    trace_replay(&mut r);
    chunk_arena(&mut r);
    r.finish();
}
