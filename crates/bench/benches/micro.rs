//! Microbenchmarks of the substrates: trace generation throughput, the
//! cache access path, L1 filtering, and the utility monitor.

use moca_bench::Runner;
use moca_cache::{CacheGeometry, L1Pair, ReplacementPolicy, SetAssocCache, UtilityMonitor, WayMask};
use moca_trace::{AppProfile, Mode, TraceGenerator};
use std::hint::black_box;

fn trace_generation(r: &mut Runner) {
    r.throughput_elems(100_000);
    r.bench("trace-generation/browser-100k-refs", || {
        let gen = TraceGenerator::new(&AppProfile::browser(), 1);
        black_box(gen.take(100_000).map(|a| a.addr).sum::<u64>())
    });
    // Same stream through the chunked fill API (reused buffer) instead of
    // the per-access iterator.
    r.throughput_elems(100_000);
    r.bench("trace-generation/browser-100k-fill", || {
        let mut gen = TraceGenerator::new(&AppProfile::browser(), 1);
        let mut chunk = Vec::with_capacity(TraceGenerator::DEFAULT_CHUNK);
        let mut sum = 0u64;
        let mut left = 100_000usize;
        while left > 0 {
            let n = gen.fill(&mut chunk).min(left);
            sum += chunk[..n].iter().map(|a| a.addr).sum::<u64>();
            left -= n;
        }
        black_box(sum)
    });
}

fn cache_access_path(r: &mut Runner) {
    let geom = CacheGeometry::new(2 << 20, 16, 64).expect("valid");
    let policies = [
        ("lru", ReplacementPolicy::Lru),
        ("plru", ReplacementPolicy::TreePlru),
        ("srrip", ReplacementPolicy::Srrip),
    ];
    for (name, policy) in policies {
        r.throughput_elems(100_000);
        r.bench(&format!("cache-access/{name}"), || {
            let mut cache = SetAssocCache::new(geom, policy);
            let mask = WayMask::first(16);
            let mut hits = 0u64;
            for i in 0..100_000u64 {
                let line = (i * 2654435761) % 100_000;
                if cache.access(line, i % 7 == 0, Mode::User, i, mask).hit {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    }
}

fn l1_filter(r: &mut Runner) {
    let trace: Vec<_> = TraceGenerator::new(&AppProfile::game(), 2)
        .take(100_000)
        .collect();
    r.throughput_elems(trace.len() as u64);
    r.bench("l1-filter/filter-100k", || {
        let mut l1 = L1Pair::mobile_default();
        let mut reqs = 0u64;
        for (i, a) in trace.iter().enumerate() {
            let o = l1.filter(a, i as u64);
            reqs += u64::from(o.demand.is_some()) + u64::from(o.writeback.is_some());
        }
        black_box(reqs)
    });
}

fn utility_monitor(r: &mut Runner) {
    let geom = CacheGeometry::new(2 << 20, 16, 64).expect("valid");
    r.throughput_elems(100_000);
    r.bench("utility-monitor/observe-100k", || {
        let mut m = UtilityMonitor::new(geom, 4);
        for i in 0..100_000u64 {
            m.observe(i % 40_000);
        }
        black_box(m.hits_with_ways(16))
    });
}

fn main() {
    let mut r = Runner::new("micro");
    trace_generation(&mut r);
    cache_access_path(&mut r);
    l1_filter(&mut r);
    utility_monitor(&mut r);
    r.finish();
}
