//! Microbenchmarks of the substrates: trace generation throughput, the
//! cache access path, L1 filtering, and the utility monitor.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use moca_cache::{CacheGeometry, L1Pair, ReplacementPolicy, SetAssocCache, UtilityMonitor, WayMask};
use moca_trace::{AppProfile, Mode, TraceGenerator};
use std::hint::black_box;

fn trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_trace_generation");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("browser-100k-refs", |b| {
        b.iter(|| {
            let gen = TraceGenerator::new(&AppProfile::browser(), 1);
            black_box(gen.take(100_000).map(|a| a.addr).sum::<u64>())
        })
    });
    g.finish();
}

fn cache_access_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_cache_access");
    let geom = CacheGeometry::new(2 << 20, 16, 64).expect("valid");
    let policies = [
        ("lru", ReplacementPolicy::Lru),
        ("plru", ReplacementPolicy::TreePlru),
        ("srrip", ReplacementPolicy::Srrip),
    ];
    g.throughput(Throughput::Elements(100_000));
    for (name, policy) in policies {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cache = SetAssocCache::new(geom, policy);
                let mask = WayMask::first(16);
                let mut hits = 0u64;
                for i in 0..100_000u64 {
                    let line = (i * 2654435761) % 100_000;
                    if cache.access(line, i % 7 == 0, Mode::User, i, mask).hit {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }
    g.finish();
}

fn l1_filter(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_l1_filter");
    let trace: Vec<_> = TraceGenerator::new(&AppProfile::game(), 2)
        .take(100_000)
        .collect();
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("filter-100k", |b| {
        b.iter(|| {
            let mut l1 = L1Pair::mobile_default();
            let mut reqs = 0u64;
            for (i, a) in trace.iter().enumerate() {
                let o = l1.filter(a, i as u64);
                reqs += u64::from(o.demand.is_some()) + u64::from(o.writeback.is_some());
            }
            black_box(reqs)
        })
    });
    g.finish();
}

fn utility_monitor(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_utility_monitor");
    let geom = CacheGeometry::new(2 << 20, 16, 64).expect("valid");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("observe-100k", |b| {
        b.iter(|| {
            let mut m = UtilityMonitor::new(geom, 4);
            for i in 0..100_000u64 {
                m.observe(i % 40_000);
            }
            black_box(m.hits_with_ways(16))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    trace_generation,
    cache_access_path,
    l1_filter,
    utility_monitor
);
criterion_main!(benches);
