//! F4 bench: behaviour-probed simulation (reuse/lifetime histograms) and
//! the retention recommendation.

use criterion::{criterion_group, criterion_main, Criterion};
use moca_bench::{bench_app, BENCH_REFS, BENCH_SEED};
use moca_core::{recommend_retention, L2Design};
use moca_sim::run_app_with_behavior;
use moca_trace::Mode;
use std::hint::black_box;

fn fig4(c: &mut Criterion) {
    let app = bench_app();
    let design = L2Design::StaticSram {
        user_ways: 6,
        kernel_ways: 4,
    };
    let mut g = c.benchmark_group("fig4_behavior");
    g.sample_size(10);
    g.bench_function("behavior-probed-run", |b| {
        b.iter(|| {
            let r = run_app_with_behavior(&app, design, BENCH_REFS, BENCH_SEED);
            black_box(r.behavior(Mode::Kernel).reuse.total())
        })
    });
    let report = run_app_with_behavior(&app, design, BENCH_REFS, BENCH_SEED);
    g.bench_function("retention-recommendation", |b| {
        b.iter(|| {
            black_box(recommend_retention(
                &report.behavior(Mode::Kernel).lifetime,
                1.0,
                0.95,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
