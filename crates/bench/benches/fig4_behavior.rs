//! F4 bench: behaviour-probed simulation (reuse/lifetime histograms) and
//! the retention recommendation.

use moca_bench::{bench_app, Runner, BENCH_REFS, BENCH_SEED};
use moca_core::{recommend_retention, L2Design};
use moca_sim::run_app_with_behavior;
use moca_trace::Mode;
use std::hint::black_box;

fn main() {
    let app = bench_app();
    let design = L2Design::StaticSram {
        user_ways: 6,
        kernel_ways: 4,
    };
    let mut r = Runner::new("fig4_behavior");
    r.bench("behavior-probed-run", || {
        let report = run_app_with_behavior(&app, design, BENCH_REFS, BENCH_SEED);
        black_box(report.behavior(Mode::Kernel).reuse.total())
    });
    let report = run_app_with_behavior(&app, design, BENCH_REFS, BENCH_SEED);
    r.bench("retention-recommendation", || {
        black_box(recommend_retention(
            &report.behavior(Mode::Kernel).lifetime,
            1.0,
            0.95,
        ))
    });
    r.finish();
}
