//! F3 bench: one evaluation step of the partition-sizing search plus the
//! search loop itself on a synthetic miss-rate model.

use moca_bench::{bench_app, bench_run, Runner};
use moca_core::{find_min_partition, L2Design};
use std::hint::black_box;

fn main() {
    let app = bench_app();
    let mut r = Runner::new("fig3_static_sweep");
    r.bench("one-candidate-eval", || {
        let report = bench_run(
            &app,
            L2Design::StaticSram {
                user_ways: 6,
                kernel_ways: 4,
            },
        );
        black_box(report.l2_miss_rate())
    });
    r.bench("search-loop-synthetic", || {
        let choice = find_min_partition(12, 8, 0.10, 0.01, |u, k| {
            0.10 + 0.02 * (6u32.saturating_sub(u) as f64)
                + 0.03 * (4u32.saturating_sub(k) as f64)
        });
        black_box(choice.total_ways())
    });
    r.finish();
}
