//! F3 bench: one evaluation step of the partition-sizing search plus the
//! search loop itself on a synthetic miss-rate model.

use criterion::{criterion_group, criterion_main, Criterion};
use moca_bench::{bench_app, bench_run};
use moca_core::{find_min_partition, L2Design};
use std::hint::black_box;

fn fig3(c: &mut Criterion) {
    let app = bench_app();
    let mut g = c.benchmark_group("fig3_static_sweep");
    g.sample_size(10);
    g.bench_function("one-candidate-eval", |b| {
        b.iter(|| {
            let r = bench_run(
                &app,
                L2Design::StaticSram {
                    user_ways: 6,
                    kernel_ways: 4,
                },
            );
            black_box(r.l2_miss_rate())
        })
    });
    g.bench_function("search-loop-synthetic", |b| {
        b.iter(|| {
            let choice = find_min_partition(12, 8, 0.10, 0.01, |u, k| {
                0.10 + 0.02 * (6u32.saturating_sub(u) as f64)
                    + 0.03 * (4u32.saturating_sub(k) as f64)
            });
            black_box(choice.total_ways())
        })
    });
    g.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
