//! Benchmark regression checking against a recorded baseline.
//!
//! The `bench_guard` binary (and `scripts/ci.sh`) compare a fresh run of
//! `benches/micro.rs` against the `"after"` section of the repo-root
//! `BENCH_micro.json` and fail when any benchmark's throughput drops by
//! more than a tolerance (30% in CI). Both inputs are text containing
//! the [`crate::Runner`] JSON lines — the baseline wraps them in a
//! `{"before": ..., "after": ...}` document, the current run is raw
//! `cargo bench` output with human lines interleaved.
//!
//! Parsing is a deliberate non-goal here: the workspace has no JSON
//! dependency, and both inputs are produced by our own [`crate::Runner`]
//! (or copied from it into `BENCH_micro.json`), so a scan for the
//! `"bench":"..."` / `"min_ns":N` key pairs is exact for the format we
//! emit. It is *not* a general JSON parser and will mis-read documents
//! that embed those keys inside string values.

/// One benchmark's identity and fastest-iteration time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// `bench` name as printed by the runner (e.g. `cache-access/lru`).
    pub bench: String,
    /// Fastest timed iteration in nanoseconds.
    pub min_ns: u64,
}

/// Extracts every `("bench", min_ns)` pair from `text`.
///
/// Works on raw `cargo bench` output (JSON lines interleaved with human
/// lines) and on `BENCH_micro.json` result arrays alike. Records whose
/// `min_ns` is missing or malformed are skipped.
pub fn parse_records(text: &str) -> Vec<BenchRecord> {
    const BENCH_KEY: &str = "\"bench\"";
    const MIN_KEY: &str = "\"min_ns\"";
    // Skips `: ` (any whitespace around the colon) after a key.
    fn after_colon(s: &str) -> Option<&str> {
        let s = s.trim_start();
        s.strip_prefix(':').map(str::trim_start)
    }
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find(BENCH_KEY) {
        rest = &rest[start + BENCH_KEY.len()..];
        let Some(value) = after_colon(rest).and_then(|s| s.strip_prefix('"')) else {
            continue;
        };
        let Some(name_end) = value.find('"') else { break };
        let name = &value[..name_end];
        rest = &value[name_end + 1..];
        // min_ns belongs to the same record: it must appear before the
        // next record's "bench" key.
        let next_bench = rest.find(BENCH_KEY).unwrap_or(rest.len());
        if let Some(min_at) = rest[..next_bench].find(MIN_KEY) {
            let digits: String = after_colon(&rest[min_at + MIN_KEY.len()..])
                .unwrap_or("")
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if let Ok(min_ns) = digits.parse::<u64>() {
                out.push(BenchRecord {
                    bench: name.to_string(),
                    min_ns,
                });
            }
        }
    }
    out
}

/// Extracts the baseline records from a `BENCH_micro.json` document.
///
/// Only the `"after"` section counts as the baseline — the `"before"`
/// section documents the pre-optimization numbers and must not be
/// guarded against. A document without an `"after"` key (e.g. a raw
/// JSON-lines file) is parsed whole.
pub fn baseline_records(doc: &str) -> Vec<BenchRecord> {
    let section = match doc.find("\"after\"") {
        Some(at) => &doc[at..],
        None => doc,
    };
    parse_records(section)
}

/// Outcome of comparing one current measurement against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Benchmark name.
    pub bench: String,
    /// Baseline fastest iteration (ns).
    pub base_min_ns: u64,
    /// Current fastest iteration (ns), `None` when the benchmark is
    /// missing from the current run.
    pub cur_min_ns: Option<u64>,
    /// `base_min_ns / cur_min_ns`: current throughput as a fraction of
    /// baseline throughput (1.0 = parity, 0.5 = half as fast). Zero when
    /// the benchmark is missing.
    pub throughput_ratio: f64,
    /// Whether this comparison violates the tolerance.
    pub failed: bool,
}

/// Compares `current` against `baseline`, flagging any benchmark whose
/// throughput fell below `1 - max_regression` of the baseline (with
/// throughput ∝ 1/min_ns). Baseline benchmarks absent from the current
/// run also fail — a silently dropped benchmark is a dropped guard.
/// Benchmarks only present in `current` (newly added) are ignored.
pub fn compare(
    baseline: &[BenchRecord],
    current: &[BenchRecord],
    max_regression: f64,
) -> Vec<Comparison> {
    baseline
        .iter()
        .map(|base| {
            let cur = current.iter().find(|c| c.bench == base.bench);
            let (cur_min_ns, ratio) = match cur {
                Some(c) => (
                    Some(c.min_ns),
                    base.min_ns as f64 / c.min_ns.max(1) as f64,
                ),
                None => (None, 0.0),
            };
            Comparison {
                bench: base.bench.clone(),
                base_min_ns: base.min_ns,
                cur_min_ns,
                throughput_ratio: ratio,
                failed: ratio < 1.0 - max_regression,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(bench: &str, min_ns: u64) -> BenchRecord {
        BenchRecord {
            bench: bench.into(),
            min_ns,
        }
    }

    #[test]
    fn parses_runner_json_lines_with_human_noise() {
        let text = "micro/cache-access/lru: median 3.86 ms, min 3.51 ms (5 iters)\n\
            {\"group\":\"micro\",\"bench\":\"cache-access/lru\",\"iters\":5,\"median_ns\":3858844,\"min_ns\":3513865,\"throughput_elems\":100000}\n\
            {\"group\":\"micro\",\"bench\":\"l1-filter/filter-100k\",\"iters\":5,\"median_ns\":2263198,\"min_ns\":2187561,\"throughput_elems\":null}\n\
            micro: 2 benchmark(s) done\n";
        let records = parse_records(text);
        assert_eq!(
            records,
            vec![
                rec("cache-access/lru", 3513865),
                rec("l1-filter/filter-100k", 2187561)
            ]
        );
    }

    #[test]
    fn record_without_min_ns_is_skipped_not_mismatched() {
        // First record lacks min_ns; its neighbour's value must not be
        // attributed to it.
        let text = "{\"bench\":\"a\",\"median_ns\":5}\n{\"bench\":\"b\",\"min_ns\":7}";
        assert_eq!(parse_records(text), vec![rec("b", 7)]);
    }

    #[test]
    fn tolerates_pretty_printed_json() {
        let text = "{ \"bench\": \"spaced/name\", \"median_ns\": 5, \"min_ns\": 42 }";
        assert_eq!(parse_records(text), vec![rec("spaced/name", 42)]);
    }

    #[test]
    fn baseline_uses_only_the_after_section() {
        let doc = r#"{
            "before": { "results": [ {"bench":"x","min_ns":100} ] },
            "after":  { "results": [ {"bench":"x","min_ns":40} ] }
        }"#;
        assert_eq!(baseline_records(doc), vec![rec("x", 40)]);
    }

    #[test]
    fn baseline_without_after_key_parses_whole_document() {
        let doc = "{\"bench\":\"y\",\"min_ns\":9}";
        assert_eq!(baseline_records(doc), vec![rec("y", 9)]);
    }

    #[test]
    fn parity_and_speedup_pass_at_30_percent() {
        let base = vec![rec("a", 1000), rec("b", 1000)];
        let cur = vec![rec("a", 1000), rec("b", 500)];
        let cmp = compare(&base, &cur, 0.30);
        assert!(cmp.iter().all(|c| !c.failed));
        assert!((cmp[1].throughput_ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_beyond_tolerance_fails() {
        // 1000 -> 1500 ns is a 33% throughput drop (ratio 0.667).
        let cmp = compare(&[rec("a", 1000)], &[rec("a", 1500)], 0.30);
        assert!(cmp[0].failed);
        // 1000 -> 1400 ns is a 28.6% drop (ratio 0.714): allowed.
        let cmp = compare(&[rec("a", 1000)], &[rec("a", 1400)], 0.30);
        assert!(!cmp[0].failed);
    }

    #[test]
    fn missing_benchmark_fails_and_new_benchmark_is_ignored() {
        let cmp = compare(&[rec("gone", 1000)], &[rec("new", 10)], 0.30);
        assert_eq!(cmp.len(), 1);
        assert!(cmp[0].failed);
        assert_eq!(cmp[0].cur_min_ns, None);
    }

    #[test]
    fn shipped_baseline_file_parses() {
        // Guards the committed BENCH_micro.json against format drift,
        // and against silently dropping a guarded benchmark.
        let doc = include_str!("../../../BENCH_micro.json");
        let records = baseline_records(doc);
        for required in [
            "cache-access/lru",
            "trace-generation/browser-100k-refs",
            "sweep-fanout/8-designs-100k-sequential",
            "sweep-fanout/8-designs-100k",
            "sweep-lockstep/8-designs-100k",
            "lockstep/lane-group-width",
            "trace-gen/100k-refs",
            "trace-decode/100k-refs",
            "trace-file/replay-100k",
            "chunk-arena/hit-rate",
        ] {
            assert!(
                records.iter().any(|r| r.bench == required),
                "BENCH_micro.json 'after' section must list {required}"
            );
        }
        assert!(records.len() >= 10, "got {} records", records.len());
    }

    #[test]
    fn shipped_baseline_records_fanout_speedup() {
        // The fan-out acceptance criterion, pinned against the committed
        // numbers: the shared-trace sweep must be recorded at >= 2x the
        // throughput of the sequential per-design baseline (min_ns).
        let doc = include_str!("../../../BENCH_micro.json");
        let records = baseline_records(doc);
        let min_of = |name: &str| {
            records
                .iter()
                .find(|r| r.bench == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .min_ns as f64
        };
        let speedup =
            min_of("sweep-fanout/8-designs-100k-sequential") / min_of("sweep-fanout/8-designs-100k");
        assert!(
            speedup >= 2.0,
            "recorded fan-out speedup {speedup:.2}x is below the 2x criterion"
        );
    }

    #[test]
    fn shipped_baseline_records_lockstep_speedup() {
        // The lock-step acceptance criterion, pinned against the
        // committed numbers: the event-replay kernel must be recorded at
        // >= 1.5x the throughput of the per-reference chunk-broadcast
        // engine it replaced (min_ns, same 8-design 100k-ref sweep).
        let doc = include_str!("../../../BENCH_micro.json");
        let records = baseline_records(doc);
        let min_of = |name: &str| {
            records
                .iter()
                .find(|r| r.bench == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .min_ns as f64
        };
        let speedup =
            min_of("sweep-fanout/8-designs-100k") / min_of("sweep-lockstep/8-designs-100k");
        assert!(
            speedup >= 1.5,
            "recorded lock-step speedup {speedup:.2}x is below the 1.5x criterion"
        );
    }

    #[test]
    fn shipped_baseline_records_trace_decode_speedup() {
        // The replay-container acceptance criterion, pinned against the
        // committed numbers: decoding a compiled trace must be recorded
        // at >= 5x the throughput of regenerating the same stream
        // (min_ns, identical reference counts on both sides).
        let doc = include_str!("../../../BENCH_micro.json");
        let records = baseline_records(doc);
        let min_of = |name: &str| {
            records
                .iter()
                .find(|r| r.bench == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .min_ns as f64
        };
        let speedup = min_of("trace-gen/100k-refs") / min_of("trace-decode/100k-refs");
        assert!(
            speedup >= 5.0,
            "recorded trace-decode speedup {speedup:.2}x is below the 5x criterion"
        );
    }
}
