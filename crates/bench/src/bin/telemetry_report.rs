//! `telemetry_report` — aggregates a `repro --telemetry` JSONL stream
//! into a per-phase profile.
//!
//! Usage:
//!
//! ```text
//! telemetry_report PATH
//! ```
//!
//! Reads the stream written by `repro --telemetry PATH` (one
//! self-describing JSON object per line; see `DESIGN.md` § Telemetry &
//! profiling), validates that **every** line parses against the
//! emitted schema, and prints:
//!
//! * a per-scope profile table — sweep points and the nanoseconds each
//!   scope spent in trace generation vs cache simulation vs energy
//!   accounting, plus each scope's share of the total measured time;
//! * a worker-pool table (workers observed, items processed, busy time)
//!   when the run was parallel;
//! * checkpoint journal activity and the end-of-run trace-arena
//!   snapshot, when present;
//! * the counter totals.
//!
//! A malformed line is a hard error naming the line number (exit 2):
//! the stream doubles as the CI fixture proving the JSONL emitter and
//! parser agree, so "mostly parses" is not good enough.

use std::collections::BTreeMap;
use std::process::ExitCode;

use moca_sim::table::Table;
use moca_sim::telemetry::{parse_line, JsonValue};

/// Per-scope accumulator for `point` events.
#[derive(Default)]
struct PhaseAgg {
    points: u64,
    gen_ns: u64,
    sim_ns: u64,
    energy_ns: u64,
}

impl PhaseAgg {
    fn total_ns(&self) -> u64 {
        self.gen_ns + self.sim_ns + self.energy_ns
    }
}

/// Per-`(scope, pool)` accumulator for `worker_stop` events.
#[derive(Default)]
struct PoolAgg {
    workers: u64,
    jobs: u64,
    items: u64,
    busy_ns: u64,
}

/// Looks up a string field emitted by the telemetry renderer.
fn str_field<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Result<&'a str, String> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, JsonValue::Str(s))) => Ok(s),
        Some(_) => Err(format!("field {key:?} is not a string")),
        None => Err(format!("missing field {key:?}")),
    }
}

/// Looks up a numeric field emitted by the telemetry renderer.
fn num_field(fields: &[(String, JsonValue)], key: &str) -> Result<u64, String> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, JsonValue::Num(n))) => Ok(*n),
        Some(_) => Err(format!("field {key:?} is not a number")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", part as f64 / whole as f64 * 100.0)
    }
}

/// Aggregated view of one stream; built line by line.
#[derive(Default)]
struct Report {
    events: usize,
    phases: BTreeMap<String, PhaseAgg>,
    pools: BTreeMap<(String, String), PoolAgg>,
    counters: BTreeMap<String, u64>,
    appends: u64,
    replays: u64,
    /// Last `arena` snapshot seen: (cached, capacity, hits, misses, rejected).
    arena: Option<(u64, u64, u64, u64, u64)>,
    /// Last `trace_io` snapshot seen:
    /// (files, chunks_decoded, bytes_read, decode_ns, checksum_verifies, decode_errors).
    trace_io: Option<(u64, u64, u64, u64, u64, u64)>,
}

impl Report {
    /// Folds one JSONL line into the aggregate.
    fn ingest(&mut self, line: &str) -> Result<(), String> {
        let fields = parse_line(line)?;
        self.events += 1;
        match str_field(&fields, "kind")? {
            "point" => {
                let agg = self
                    .phases
                    .entry(str_field(&fields, "scope")?.to_string())
                    .or_default();
                agg.points += 1;
                agg.gen_ns += num_field(&fields, "trace_gen_ns")?;
                agg.sim_ns += num_field(&fields, "sim_ns")?;
                agg.energy_ns += num_field(&fields, "energy_ns")?;
            }
            "worker_stop" => {
                let key = (
                    str_field(&fields, "scope")?.to_string(),
                    str_field(&fields, "pool")?.to_string(),
                );
                let agg = self.pools.entry(key).or_default();
                agg.workers += 1;
                agg.jobs = agg.jobs.max(num_field(&fields, "jobs")?);
                agg.items += num_field(&fields, "items")?;
                agg.busy_ns += num_field(&fields, "busy_ns")?;
            }
            // Starts carry no payload the stop doesn't repeat.
            "worker_start" => {}
            "checkpoint" => match str_field(&fields, "event")? {
                "append" => self.appends += 1,
                "replay" => self.replays += 1,
                other => return Err(format!("unknown checkpoint event {other:?}")),
            },
            "arena" => {
                self.arena = Some((
                    num_field(&fields, "cached_chunks")?,
                    num_field(&fields, "capacity_chunks")?,
                    num_field(&fields, "hits")?,
                    num_field(&fields, "misses")?,
                    num_field(&fields, "rejected")?,
                ));
            }
            "trace_io" => {
                self.trace_io = Some((
                    num_field(&fields, "files")?,
                    num_field(&fields, "chunks_decoded")?,
                    num_field(&fields, "bytes_read")?,
                    num_field(&fields, "decode_ns")?,
                    num_field(&fields, "checksum_verifies")?,
                    num_field(&fields, "decode_errors")?,
                ));
            }
            "counter" => {
                *self
                    .counters
                    .entry(str_field(&fields, "name")?.to_string())
                    .or_default() += num_field(&fields, "value")?;
            }
            other => return Err(format!("unknown event kind {other:?}")),
        }
        Ok(())
    }

    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# telemetry report — {} event(s), {} scope(s) with sweep points\n\n",
            self.events,
            self.phases.len()
        ));

        let grand_total: u64 = self.phases.values().map(PhaseAgg::total_ns).sum();
        let mut profile = Table::new(vec![
            "scope", "points", "gen ms", "sim ms", "energy ms", "share",
        ]);
        for (scope, agg) in &self.phases {
            profile.row(vec![
                scope.clone(),
                agg.points.to_string(),
                ms(agg.gen_ns),
                ms(agg.sim_ns),
                ms(agg.energy_ns),
                pct(agg.total_ns(), grand_total),
            ]);
        }
        if !profile.is_empty() {
            out.push_str("## per-scope profile\n\n");
            out.push_str(&profile.render());
            let gen: u64 = self.phases.values().map(|a| a.gen_ns).sum();
            let sim: u64 = self.phases.values().map(|a| a.sim_ns).sum();
            let energy: u64 = self.phases.values().map(|a| a.energy_ns).sum();
            out.push_str(&format!(
                "\nphase split: trace-gen {}, cache-sim {}, energy {}\n",
                pct(gen, grand_total),
                pct(sim, grand_total),
                pct(energy, grand_total)
            ));
        }

        if !self.pools.is_empty() {
            let mut pools = Table::new(vec!["scope", "pool", "workers", "jobs", "items", "busy ms"]);
            for ((scope, pool), agg) in &self.pools {
                pools.row(vec![
                    scope.clone(),
                    pool.clone(),
                    agg.workers.to_string(),
                    agg.jobs.to_string(),
                    agg.items.to_string(),
                    ms(agg.busy_ns),
                ]);
            }
            out.push_str("\n## worker pools\n\n");
            out.push_str(&pools.render());
        }

        if self.appends + self.replays > 0 {
            out.push_str(&format!(
                "\ncheckpoint journal: {} append(s), {} replay(s)\n",
                self.appends, self.replays
            ));
        }
        if let Some((cached, cap, hits, misses, rejected)) = self.arena {
            out.push_str(&format!(
                "trace arena: {cached}/{cap} chunk(s) cached, {hits} hit(s) / {misses} miss(es), {rejected} rejected\n"
            ));
        }
        if let Some((files, chunks, bytes, ns, verifies, errors)) = self.trace_io {
            out.push_str(&format!(
                "trace replay: {files} file(s), {chunks} chunk(s) decoded ({bytes} bytes, {} ms), \
                 {verifies} checksum(s) verified, {errors} decode error(s)\n",
                ms(ns)
            ));
        }

        if !self.counters.is_empty() {
            let mut counters = Table::new(vec!["counter", "total"]);
            for (name, value) in &self.counters {
                counters.row(vec![name.clone(), value.to_string()]);
            }
            out.push_str("\n## counters\n\n");
            out.push_str(&counters.render());
        }
        out
    }
}

fn run(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut report = Report::default();
    for (i, line) in text.lines().enumerate() {
        report
            .ingest(line)
            .map_err(|e| format!("{path}:{}: {e}", i + 1))?;
    }
    Ok(report)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: telemetry_report PATH\n  PATH  JSONL stream written by `repro --telemetry PATH`");
        return ExitCode::from(2);
    };
    match run(path) {
        Ok(report) => {
            print!("{}", report.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("telemetry_report: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingests_every_emitted_kind() {
        let mut r = Report::default();
        let lines = [
            r#"{"v":1,"kind":"point","scope":"F3","app":"music","design":"d","index":0,"total":2,"trace_gen_ns":5,"sim_ns":10,"energy_ns":5}"#,
            r#"{"v":1,"kind":"point","scope":"F3","app":"music","design":"e","index":1,"total":2,"trace_gen_ns":0,"sim_ns":20,"energy_ns":0}"#,
            r#"{"v":1,"kind":"worker_start","scope":"F3","pool":"parallel_map","worker":0,"jobs":2}"#,
            r#"{"v":1,"kind":"worker_stop","scope":"F3","pool":"parallel_map","worker":0,"jobs":2,"items":2,"busy_ns":30}"#,
            r#"{"v":1,"kind":"checkpoint","scope":"F3","event":"append","key":"k"}"#,
            r#"{"v":1,"kind":"checkpoint","scope":"F3","event":"replay","key":"k"}"#,
            r#"{"v":1,"kind":"arena","cached_chunks":3,"capacity_chunks":512,"hits":9,"misses":3,"rejected":0}"#,
            r#"{"v":1,"kind":"trace_io","files":4,"chunks_decoded":148,"bytes_read":900000,"decode_ns":123456,"checksum_verifies":148,"decode_errors":0}"#,
            r#"{"v":1,"kind":"counter","name":"sim_batches","value":4}"#,
        ];
        for line in lines {
            r.ingest(line).unwrap();
        }
        assert_eq!(r.events, lines.len());
        let f3 = &r.phases["F3"];
        assert_eq!((f3.points, f3.gen_ns, f3.sim_ns, f3.energy_ns), (2, 5, 30, 5));
        let pool = &r.pools[&("F3".to_string(), "parallel_map".to_string())];
        assert_eq!((pool.workers, pool.items, pool.busy_ns), (1, 2, 30));
        assert_eq!((r.appends, r.replays), (1, 1));
        assert_eq!(r.arena, Some((3, 512, 9, 3, 0)));
        assert_eq!(r.trace_io, Some((4, 148, 900000, 123456, 148, 0)));
        assert_eq!(r.counters["sim_batches"], 4);
        let rendered = r.render();
        assert!(rendered.contains("per-scope profile"));
        assert!(rendered.contains("worker pools"));
        assert!(rendered.contains("sim_batches"));
        assert!(rendered.contains("trace replay: 4 file(s), 148 chunk(s) decoded"));
    }

    #[test]
    fn rejects_malformed_and_unknown_lines() {
        let mut r = Report::default();
        assert!(r.ingest("not json").is_err());
        assert!(r
            .ingest(r#"{"v":1,"kind":"mystery","scope":"F3"}"#)
            .is_err());
        assert!(r
            .ingest(r#"{"v":1,"kind":"point","scope":"F3"}"#)
            .is_err(),
            "point without timing fields must be rejected");
    }

    #[test]
    fn share_handles_empty_stream() {
        let r = Report::default();
        let rendered = r.render();
        assert!(rendered.contains("0 event(s)"));
    }
}
