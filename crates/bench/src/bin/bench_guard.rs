//! CI benchmark regression guard.
//!
//! ```text
//! bench_guard <BENCH_micro.json> <current-bench-output> [--max-regression 0.30]
//! ```
//!
//! Compares the `"after"` section of the recorded baseline against a
//! fresh `cargo bench` capture (JSON lines, human lines tolerated) and
//! exits non-zero when any baseline benchmark's throughput — measured as
//! `1/min_ns` — dropped by more than the tolerance, or disappeared from
//! the run. See [`moca_bench::regression`] for the comparison rules.

use moca_bench::regression::{baseline_records, compare, parse_records};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bench_guard <baseline.json> <current-output> [--max-regression FRAC]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regression = 0.30f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regression" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                max_regression = v;
                i += 1;
            }
            a => {
                if let Some(v) = a.strip_prefix("--max-regression=") {
                    let Ok(v) = v.parse() else { return usage() };
                    max_regression = v;
                } else {
                    paths.push(a.to_string());
                }
            }
        }
        i += 1;
    }
    if paths.len() != 2 || !(0.0..1.0).contains(&max_regression) {
        return usage();
    }

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_guard: cannot read {path}: {e}");
            None
        }
    };
    let (Some(base_text), Some(cur_text)) = (read(&paths[0]), read(&paths[1])) else {
        return ExitCode::from(2);
    };

    let baseline = baseline_records(&base_text);
    if baseline.is_empty() {
        eprintln!("bench_guard: no benchmark records in baseline {}", paths[0]);
        return ExitCode::from(2);
    }
    let current = parse_records(&cur_text);

    let mut failures = 0;
    for c in compare(&baseline, &current, max_regression) {
        let status = if c.failed { "FAIL" } else { "ok" };
        match c.cur_min_ns {
            Some(cur) => println!(
                "{status:>4}  {:<40} base {:>10} ns  now {:>10} ns  ({:.2}x throughput)",
                c.bench, c.base_min_ns, cur, c.throughput_ratio
            ),
            None => println!("{status:>4}  {:<40} missing from current run", c.bench),
        }
        failures += usize::from(c.failed);
    }
    if failures > 0 {
        eprintln!(
            "bench_guard: {failures} benchmark(s) regressed more than {:.0}% vs {}",
            max_regression * 100.0,
            paths[0]
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_guard: all {} benchmark(s) within {:.0}% of baseline",
        baseline.len(),
        max_regression * 100.0
    );
    ExitCode::SUCCESS
}
