//! Shared helpers for the `moca-bench` Criterion targets.
//!
//! Each reproduced figure/table has a bench target named after it
//! (`fig1_kernel_share`, `table2_energy`, ...). Criterion measures the
//! *simulation kernel* of the experiment at a reduced reference count so
//! iteration times stay in the hundreds of milliseconds; regenerating the
//! full figures is the job of the `repro` binary, not the benches.

use moca_core::L2Design;
use moca_sim::metrics::SimReport;
use moca_sim::run_app;
use moca_trace::AppProfile;

/// References per bench iteration — small enough for Criterion, large
/// enough to exercise steady-state behaviour (epochs, sweeps).
pub const BENCH_REFS: usize = 120_000;

/// The seed all bench iterations share (determinism keeps variance low).
pub const BENCH_SEED: u64 = 2015;

/// Runs one app/design pair at bench scale and returns the report.
pub fn bench_run(app: &AppProfile, design: L2Design) -> SimReport {
    run_app(app, design, BENCH_REFS, BENCH_SEED)
}

/// The app most benches use.
pub fn bench_app() -> AppProfile {
    AppProfile::browser()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_run_is_deterministic() {
        let app = bench_app();
        let a = bench_run(&app, L2Design::baseline());
        let b = bench_run(&app, L2Design::baseline());
        assert_eq!(a.cycles, b.cycles);
    }
}
