//! Offline benchmark harness plus shared helpers for the `moca-bench`
//! targets.
//!
//! Each reproduced figure/table has a bench target named after it
//! (`fig1_kernel_share`, `table2_energy`, ...). The targets use the
//! dependency-free [`Runner`] below — warmup iterations followed by `N`
//! timed iterations per benchmark, reported as median/min wall time with
//! a machine-readable JSON line — so `cargo bench` works with zero
//! registry access. Each target measures the *simulation kernel* of its
//! experiment at a reduced reference count so iteration times stay in
//! the hundreds of milliseconds; regenerating the full figures is the
//! job of the `repro` binary, not the benches.
//!
//! Flags (after `cargo bench -p moca-bench -- ...`):
//!
//! * `--smoke` — one iteration, no warmup (CI liveness check).
//! * `--iters N` — timed iterations per benchmark (default 5).
//! * `--warmup N` — warmup iterations per benchmark (default 1).
//!
//! Unknown flags (such as the `--bench` cargo appends) are ignored.

pub mod regression;

use std::hint::black_box;
use std::time::Instant;

use moca_core::L2Design;
use moca_sim::metrics::SimReport;
use moca_sim::run_app;
use moca_trace::AppProfile;

/// References per bench iteration — small enough for quick iterations,
/// large enough to exercise steady-state behaviour (epochs, sweeps).
pub const BENCH_REFS: usize = 120_000;

/// The seed all bench iterations share (determinism keeps variance low).
pub const BENCH_SEED: u64 = 2015;

/// Runs one app/design pair at bench scale and returns the report.
pub fn bench_run(app: &AppProfile, design: L2Design) -> SimReport {
    run_app(app, design, BENCH_REFS, BENCH_SEED)
}

/// The app most benches use.
pub fn bench_app() -> AppProfile {
    AppProfile::browser()
}

/// Iteration counts for a bench run, parsed from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchConfig {
    /// Untimed warmup iterations before measuring.
    pub warmup: usize,
    /// Timed iterations (the median/min are taken over these).
    pub iters: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig { warmup: 1, iters: 5 }
    }
}

impl BenchConfig {
    /// Parses `--smoke`, `--iters N`/`--iters=N` and `--warmup
    /// N`/`--warmup=N` from the process arguments. Unknown flags are
    /// ignored (cargo passes `--bench` through).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse(&args)
    }

    /// [`BenchConfig::from_args`] over an explicit argument list.
    pub fn parse(args: &[String]) -> Self {
        let mut cfg = BenchConfig::default();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            match a {
                "--smoke" => {
                    cfg.warmup = 0;
                    cfg.iters = 1;
                }
                "--iters" | "--warmup" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        if a == "--iters" {
                            cfg.iters = v;
                        } else {
                            cfg.warmup = v;
                        }
                        i += 1;
                    }
                }
                _ => {
                    if let Some(v) = a.strip_prefix("--iters=").and_then(|s| s.parse().ok()) {
                        cfg.iters = v;
                    } else if let Some(v) = a.strip_prefix("--warmup=").and_then(|s| s.parse().ok())
                    {
                        cfg.warmup = v;
                    }
                    // Anything else: tolerated and ignored.
                }
            }
            i += 1;
        }
        cfg.iters = cfg.iters.max(1);
        cfg
    }
}

/// One benchmark's measured timings (nanoseconds per iteration).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` of the benchmark.
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Sorted per-iteration wall times in nanoseconds.
    pub samples_ns: Vec<u64>,
    /// Optional elements-per-iteration for throughput reporting.
    pub throughput_elems: Option<u64>,
}

impl Measurement {
    /// Fastest iteration in nanoseconds.
    pub fn min_ns(&self) -> u64 {
        self.samples_ns[0]
    }

    /// Median iteration in nanoseconds (lower middle for even counts).
    pub fn median_ns(&self) -> u64 {
        self.samples_ns[(self.samples_ns.len() - 1) / 2]
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named group of benchmarks sharing one [`BenchConfig`].
///
/// Construct with [`Runner::new`] at the top of a bench target's `main`,
/// call [`Runner::bench`] per benchmark, and finish with
/// [`Runner::finish`] (prints the footer). Every benchmark prints a
/// human line and a JSON line:
///
/// ```text
/// fig6_performance/baseline-cpr: median 41.20 ms, min 40.97 ms (5 iters)
/// {"group":"fig6_performance","bench":"baseline-cpr","iters":5,"median_ns":41204512,"min_ns":40972011}
/// ```
pub struct Runner {
    group: String,
    config: BenchConfig,
    /// Elements per iteration for the *next* benchmark (reset after use).
    pending_throughput: Option<u64>,
    ran: usize,
}

impl Runner {
    /// Creates a runner for `group`, reading flags from the process
    /// arguments.
    pub fn new(group: &str) -> Self {
        Self::with_config(group, BenchConfig::from_args())
    }

    /// Creates a runner with an explicit config (used by tests).
    pub fn with_config(group: &str, config: BenchConfig) -> Self {
        Runner {
            group: group.to_string(),
            config,
            pending_throughput: None,
            ran: 0,
        }
    }

    /// The active config.
    pub fn config(&self) -> BenchConfig {
        self.config
    }

    /// Declares that the next benchmark processes `elems` elements per
    /// iteration; its report then includes an elements/second figure.
    pub fn throughput_elems(&mut self, elems: u64) {
        self.pending_throughput = Some(elems);
    }

    /// Runs one benchmark: `warmup` untimed calls of `f`, then `iters`
    /// timed calls. Returns the measurement (also printed to stdout).
    pub fn bench<R, F>(&mut self, name: &str, mut f: F) -> Measurement
    where
        F: FnMut() -> R,
    {
        for _ in 0..self.config.warmup {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(self.config.iters);
        for _ in 0..self.config.iters {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed().as_nanos() as u64);
        }
        samples.sort_unstable();
        let m = Measurement {
            group: self.group.clone(),
            name: name.to_string(),
            samples_ns: samples,
            throughput_elems: self.pending_throughput.take(),
        };
        self.report(&m);
        self.ran += 1;
        m
    }

    fn report(&self, m: &Measurement) {
        let mut line = format!(
            "{}/{}: median {}, min {} ({} iters)",
            m.group,
            m.name,
            fmt_ns(m.median_ns()),
            fmt_ns(m.min_ns()),
            m.samples_ns.len()
        );
        if let Some(elems) = m.throughput_elems {
            let eps = elems as f64 / (m.median_ns().max(1) as f64 / 1e9);
            line.push_str(&format!(", {:.1} Melem/s", eps / 1e6));
        }
        println!("{line}");
        let tp = m
            .throughput_elems
            .map_or(String::from("null"), |e| e.to_string());
        println!(
            "{{\"group\":\"{}\",\"bench\":\"{}\",\"iters\":{},\"median_ns\":{},\"min_ns\":{},\"throughput_elems\":{}}}",
            m.group,
            m.name,
            m.samples_ns.len(),
            m.median_ns(),
            m.min_ns(),
            tp
        );
    }

    /// Prints the group footer. Call at the end of the target's `main`.
    pub fn finish(self) {
        println!("{}: {} benchmark(s) done", self.group, self.ran);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_run_is_deterministic() {
        let app = bench_app();
        let a = bench_run(&app, L2Design::baseline());
        let b = bench_run(&app, L2Design::baseline());
        assert_eq!(a.cycles, b.cycles);
    }

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn config_defaults() {
        assert_eq!(BenchConfig::parse(&[]), BenchConfig { warmup: 1, iters: 5 });
    }

    #[test]
    fn config_smoke_is_one_iteration() {
        let cfg = BenchConfig::parse(&strings(&["--bench", "--smoke"]));
        assert_eq!(cfg, BenchConfig { warmup: 0, iters: 1 });
    }

    #[test]
    fn config_explicit_counts_both_forms() {
        let cfg = BenchConfig::parse(&strings(&["--iters", "3", "--warmup=2"]));
        assert_eq!(cfg, BenchConfig { warmup: 2, iters: 3 });
        let cfg = BenchConfig::parse(&strings(&["--iters=7", "--warmup", "0"]));
        assert_eq!(cfg, BenchConfig { warmup: 0, iters: 7 });
    }

    #[test]
    fn config_ignores_unknown_flags_and_zero_iters() {
        let cfg = BenchConfig::parse(&strings(&["--bench", "--iters", "0", "--whatever"]));
        assert_eq!(cfg.iters, 1, "iters clamps to >= 1");
    }

    #[test]
    fn runner_measures_and_counts() {
        let mut r = Runner::with_config("test", BenchConfig { warmup: 1, iters: 4 });
        let mut calls = 0u32;
        let m = r.bench("count-calls", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 5, "1 warmup + 4 timed");
        assert_eq!(m.samples_ns.len(), 4);
        assert!(m.min_ns() <= m.median_ns());
        r.throughput_elems(1000);
        let m2 = r.bench("with-throughput", || std::hint::black_box(2 + 2));
        assert_eq!(m2.throughput_elems, Some(1000));
        let m3 = r.bench("throughput-resets", || ());
        assert_eq!(m3.throughput_elems, None);
        r.finish();
    }

    #[test]
    fn measurement_median_is_lower_middle() {
        let m = Measurement {
            group: "g".into(),
            name: "n".into(),
            samples_ns: vec![10, 20, 30, 40],
            throughput_elems: None,
        };
        assert_eq!(m.median_ns(), 20);
        assert_eq!(m.min_ns(), 10);
    }
}
