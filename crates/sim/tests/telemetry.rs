//! End-to-end contract of the `repro --telemetry` JSONL stream.
//!
//! The determinism promise under test (see `DESIGN.md` § Telemetry &
//! profiling): with timing fields (`*_ns`) masked and the
//! scheduling-dependent kinds (`worker_start`, `worker_stop`, `arena`)
//! filtered out, the stream is **byte-identical for every `--jobs`
//! value**, and every sweep point appears exactly once.
//!
//! The tests drive the `repro` binary as a subprocess: the recorder
//! installed by `--telemetry` is process-global, so exercising it
//! in-process would let concurrently running tests pollute each other's
//! streams.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;

use moca_sim::telemetry::{is_scheduling_kind, mask_timing, parse_line, JsonValue};

/// Experiments used by the tests: A2 fans out per-app design pairs
/// (multi-point sweeps) and F3 runs standalone single-point sweeps, so
/// both `point` shapes appear in the stream.
const IDS: [&str; 2] = ["F3", "A2"];

/// Runs `repro --quick --jobs N --progress --telemetry <tmp>` and
/// returns `(jsonl stream, stderr)`.
fn repro_stream(jobs: usize) -> (String, String) {
    let path = std::env::temp_dir().join(format!(
        "moca-telemetry-{}-jobs{jobs}.jsonl",
        std::process::id()
    ));
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--quick", "--progress", "--jobs", &jobs.to_string()])
        .arg("--telemetry")
        .arg(&path)
        .args(IDS)
        .output()
        .expect("repro binary runs");
    assert!(
        output.status.success(),
        "repro --jobs {jobs} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stream = std::fs::read_to_string(&path).expect("telemetry stream written");
    let _ = std::fs::remove_file(&path);
    (stream, String::from_utf8_lossy(&output.stderr).into_owned())
}

/// Extracts a field, asserting it is a string.
fn str_field<'a>(fields: &'a [(String, JsonValue)], key: &str) -> &'a str {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, JsonValue::Str(s))) => s,
        other => panic!("field {key:?} missing or not a string: {other:?}"),
    }
}

/// Extracts a field, asserting it is a number.
fn num_field(fields: &[(String, JsonValue)], key: &str) -> u64 {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, JsonValue::Num(n))) => *n,
        other => panic!("field {key:?} missing or not a number: {other:?}"),
    }
}

/// The canonical form compared across job counts: every line parses,
/// timing is masked, scheduling-dependent kinds are dropped.
fn canonical(stream: &str) -> String {
    stream
        .lines()
        .filter_map(|line| {
            let masked = mask_timing(line)
                .unwrap_or_else(|e| panic!("line does not parse: {e}\n  {line}"));
            let fields = parse_line(&masked).expect("masked line still parses");
            let kind = str_field(&fields, "kind").to_string();
            (!is_scheduling_kind(&kind)).then_some(masked)
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn stream_is_deterministic_across_job_counts_and_covers_every_point() {
    let (reference_raw, stderr) = repro_stream(1);
    let reference = canonical(&reference_raw);
    assert!(
        !reference.is_empty(),
        "a telemetry run must produce deterministic events"
    );

    // --progress heartbeats go to stderr, one per experiment, stdout
    // untouched (stdout is the report; its byte-identity across job
    // counts is covered by the determinism suite).
    for (i, id) in IDS.iter().enumerate() {
        let needle = format!("[progress] {id} ({}/{})", i + 1, IDS.len());
        assert!(
            stderr.contains(&needle),
            "missing heartbeat {needle:?} in stderr:\n{stderr}"
        );
    }

    for jobs in [2, 8] {
        let (raw, _) = repro_stream(jobs);
        assert_eq!(
            canonical(&raw),
            reference,
            "canonical telemetry stream differs between --jobs 1 and --jobs {jobs}"
        );
    }

    // Exactly-once coverage, checked on the reference stream (the
    // byte-equality above extends it to every job count): no duplicate
    // sweep points, and each multi-point sweep covers 0..total.
    let mut seen = BTreeMap::<(String, String, String, u64, u64), u64>::new();
    let mut groups = BTreeMap::<(String, String, u64), Vec<u64>>::new();
    for line in reference.lines() {
        let fields = parse_line(line).expect("canonical line parses");
        if str_field(&fields, "kind") != "point" {
            continue;
        }
        let scope = str_field(&fields, "scope").to_string();
        let app = str_field(&fields, "app").to_string();
        let design = str_field(&fields, "design").to_string();
        let (index, total) = (num_field(&fields, "index"), num_field(&fields, "total"));
        assert!(index < total, "point index {index} out of range 0..{total}");
        *seen.entry((scope.clone(), app.clone(), design, index, total)).or_default() += 1;
        if total > 1 {
            groups.entry((scope, app, total)).or_default().push(index);
        }
    }
    for (key, count) in &seen {
        assert_eq!(*count, 1, "sweep point emitted {count} times: {key:?}");
    }

    // The lock-step engine replays filtered events instead of stepping
    // per reference, but it must keep feeding the same counters the
    // scalar batch loop did: both totals present, nonzero, and every
    // batch accounts for at least one and at most ~8192 references
    // (the scalar loop's batch size; lock-step lanes bump per 1024-ref
    // chunk, well inside the bound). Cross-job equality of the totals
    // is already covered by the byte-equality above — counter events
    // survive canonicalization.
    let mut counters = BTreeMap::<String, u64>::new();
    for line in reference.lines() {
        let fields = parse_line(line).expect("canonical line parses");
        if str_field(&fields, "kind") == "counter" {
            counters.insert(
                str_field(&fields, "name").to_string(),
                num_field(&fields, "value"),
            );
        }
    }
    let batches = counters.get("sim_batches").copied().unwrap_or(0);
    let refs = counters.get("sim_refs").copied().unwrap_or(0);
    assert!(batches > 0, "sim_batches counter missing: {counters:?}");
    assert!(refs > 0, "sim_refs counter missing: {counters:?}");
    assert!(
        batches <= refs && refs <= batches * 8192,
        "counter totals violate the batch accounting invariant: \
         sim_batches={batches} sim_refs={refs}"
    );
    assert!(
        !groups.is_empty(),
        "the chosen experiments must include a multi-point sweep"
    );
    for ((scope, app, total), mut indices) in groups {
        indices.sort_unstable();
        assert_eq!(
            indices,
            (0..total).collect::<Vec<_>>(),
            "sweep ({scope}, {app}) does not cover 0..{total} exactly once"
        );
    }
}

#[test]
fn no_telemetry_flag_means_no_stream_and_identical_report() {
    // Without --telemetry the recorder stays uninstalled: same report on
    // stdout, no stray file, no "telemetry:" trailer on stderr.
    let path: PathBuf = std::env::temp_dir().join(format!(
        "moca-telemetry-{}-absent.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--quick", "--jobs", "2", "F3"])
        .output()
        .expect("repro binary runs");
    assert!(output.status.success());
    assert!(!path.exists());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        !stderr.contains("telemetry:"),
        "disabled run must not mention telemetry: {stderr}"
    );
}
