//! Cross-engine differential suite for the lock-step kernel.
//!
//! The lock-step engine rewrote the hottest loop in the codebase (one
//! shared L1 front end per lane group, O(1) retires over hit gaps), so
//! its correctness contract is pinned exhaustively here: for every
//! replacement policy × associativity × pool size cell of a small grid,
//! and for ragged mixed-family pools that do not fill a lane group, the
//! [`SimReport`] of every design must match the scalar `run_app`-style
//! oracle **field by field** — the oracle owns a private generator and
//! its own per-design L1, sharing no code with the front end under test.
//!
//! The randomized scalar ≡ broadcast ≡ lock-step properties (and the
//! fault-isolation cases) live in `lockstep_props.rs`; byte-identity of
//! rendered experiment output stays in `determinism.rs`.

use moca_cache::ReplacementPolicy;
use moca_core::{L2Design, RefreshPolicy};
use moca_energy::RetentionClass;
use moca_sim::lockstep::LockStep;
use moca_sim::{SimReport, System, SystemConfig};
use moca_trace::{AppProfile, TraceGenerator};

/// All six replacement policies, labelled for failure messages.
const POLICIES: [(&str, ReplacementPolicy); 6] = [
    ("lru", ReplacementPolicy::Lru),
    ("fifo", ReplacementPolicy::Fifo),
    ("random", ReplacementPolicy::Random { seed: 0xD1FF_2015 }),
    ("nru", ReplacementPolicy::Nru),
    ("plru", ReplacementPolicy::TreePlru),
    ("srrip", ReplacementPolicy::Srrip),
];

/// The scalar oracle: a private [`TraceGenerator`], a per-design L1,
/// the plain [`System::step`] loop — no arena, no front end, no replay.
fn scalar_oracle(
    app: &AppProfile,
    design: L2Design,
    cfg: SystemConfig,
    refs: usize,
    seed: u64,
) -> SimReport {
    let mut sys = System::new(app.name, design, cfg).expect("oracle design must be valid");
    let mut gen = TraceGenerator::new(app, seed);
    sys.run_generated(&mut gen, refs);
    sys.finish()
}

/// Field-by-field comparison: every [`SimReport`] field is asserted
/// separately (through its `Debug` rendering, the workspace's canonical
/// comparable form) so a divergence names the exact field, not just a
/// byte offset in a 2 kB line.
fn assert_reports_match_fieldwise(want: &SimReport, got: &SimReport, ctx: &str) {
    macro_rules! field {
        ($name:ident) => {
            assert_eq!(
                format!("{:?}", want.$name),
                format!("{:?}", got.$name),
                "field `{}` diverges [{ctx}]",
                stringify!($name)
            );
        };
    }
    field!(design);
    field!(app);
    field!(refs);
    field!(cycles);
    field!(clock_ghz);
    field!(l1_stats);
    field!(l2_stats);
    field!(l2_energy);
    field!(dram_energy);
    field!(traffic);
    field!(expiry);
    field!(prefetches);
    field!(final_active_ways);
    assert_eq!(
        want.mean_active_ways.to_bits(),
        got.mean_active_ways.to_bits(),
        "field `mean_active_ways` diverges bitwise [{ctx}]"
    );
    field!(timeline);
    field!(behavior);
    // Belt and braces: the whole rendering, in case a field is added to
    // the report without extending the list above.
    assert_eq!(
        format!("{want:?}"),
        format!("{got:?}"),
        "full report rendering diverges [{ctx}]"
    );
}

/// A K-lane pool of shared-SRAM designs: the grid's associativity first,
/// then heterogeneous power-of-two lane mates (TreePlru requires
/// power-of-two associativity).
fn grid_pool(ways: u32, k: usize) -> Vec<L2Design> {
    const LANE_MATES: [u32; 7] = [16, 2, 8, 4, 1, 16, 2];
    std::iter::once(ways)
        .chain(LANE_MATES)
        .take(k)
        .map(|ways| L2Design::SharedSram { ways })
        .collect()
}

/// The exhaustive small grid: 6 policies × 4 associativities × 4 pool
/// sizes, every lane checked field-by-field against the scalar oracle.
#[test]
fn policy_ways_pool_grid_matches_scalar_oracle_fieldwise() {
    let app = AppProfile::browser();
    let refs = 3_003; // off chunk alignment
    let seed = 0x010C_57E9;
    for (policy_name, policy) in POLICIES {
        let cfg = SystemConfig {
            l2_policy: policy,
            ..SystemConfig::default()
        };
        for ways in [1u32, 2, 4, 8] {
            for k in [1usize, 2, 3, 8] {
                let pool = grid_pool(ways, k);
                let reports = LockStep::new(&app, seed)
                    .with_config(cfg)
                    .run(&pool, refs);
                assert_eq!(reports.len(), k);
                for (lane, (design, got)) in pool.iter().zip(&reports).enumerate() {
                    let want = scalar_oracle(&app, *design, cfg, refs, seed);
                    let ctx = format!(
                        "policy={policy_name} ways={ways} k={k} lane={lane} design={design:?}"
                    );
                    assert_reports_match_fieldwise(&want, got, &ctx);
                }
            }
        }
    }
}

/// Ragged mixed-family pool: 11 designs spanning shared/partitioned
/// SRAM, STT retention mixes, and both dynamic variants — one full lane
/// group of 8 plus a ragged tail of 3 — checked at several lane-group
/// widths, including widths that split the pool unevenly.
#[test]
fn ragged_mixed_family_pool_matches_scalar_oracle_at_every_width() {
    let app = AppProfile::game();
    let refs = 12_345;
    let seed = 2015;
    let pool = vec![
        L2Design::baseline(),
        L2Design::static_default(),
        L2Design::dynamic_default(),
        L2Design::SharedSram { ways: 4 },
        L2Design::StaticSram {
            user_ways: 6,
            kernel_ways: 4,
        },
        L2Design::SharedStt {
            ways: 16,
            retention: RetentionClass::TenYears,
            refresh: RefreshPolicy::InvalidateOnExpiry,
        },
        L2Design::StaticMultiRetention {
            user_ways: 6,
            kernel_ways: 4,
            user_retention: RetentionClass::OneSecond,
            kernel_retention: RetentionClass::TenMillis,
            refresh: RefreshPolicy::Refresh,
        },
        L2Design::DynamicStt {
            max_ways: 16,
            min_ways: 1,
            user_retention: RetentionClass::HundredMillis,
            kernel_retention: RetentionClass::TenMillis,
            refresh: RefreshPolicy::InvalidateOnExpiry,
            epoch_cycles: 100_000,
        },
        L2Design::DynamicSram {
            max_ways: 16,
            min_ways: 1,
            epoch_cycles: 500_000,
        },
        L2Design::SharedSram { ways: 16 },
        L2Design::StaticSram {
            user_ways: 8,
            kernel_ways: 4,
        },
    ];
    let cfg = SystemConfig::default();
    let oracle: Vec<SimReport> = pool
        .iter()
        .map(|&design| scalar_oracle(&app, design, cfg, refs, seed))
        .collect();
    for width in [1usize, 2, 3, 5, 8] {
        let reports = LockStep::new(&app, seed)
            .with_lane_group(width)
            .run(&pool, refs);
        assert_eq!(reports.len(), pool.len());
        for (lane, (want, got)) in oracle.iter().zip(&reports).enumerate() {
            let ctx = format!("ragged pool width={width} lane={lane}");
            assert_reports_match_fieldwise(want, got, &ctx);
        }
    }
}

/// The non-default knobs that change the replay path itself — row-buffer
/// DRAM (stateful per-demand timing) and the next-line prefetcher — stay
/// byte-identical through the front end too.
#[test]
fn row_buffer_dram_and_prefetch_configs_match_scalar_oracle() {
    let app = AppProfile::video();
    let refs = 9_001;
    let seed = 77;
    for cfg in [
        SystemConfig {
            dram_model: moca_sim::DramModel::RowBuffer,
            ..SystemConfig::default()
        },
        SystemConfig {
            l2_next_line_prefetch: true,
            ..SystemConfig::default()
        },
    ] {
        let pool = [
            L2Design::baseline(),
            L2Design::static_default(),
            L2Design::SharedSram { ways: 2 },
        ];
        let reports = LockStep::new(&app, seed).with_config(cfg).run(&pool, refs);
        for (lane, (design, got)) in pool.iter().zip(&reports).enumerate() {
            let want = scalar_oracle(&app, *design, cfg, refs, seed);
            let ctx = format!("cfg={cfg:?} lane={lane}");
            assert_reports_match_fieldwise(&want, got, &ctx);
        }
    }
}
