//! Determinism of the parallel sweep engine.
//!
//! The contract of `moca_sim::parallel` is that sharding an experiment's
//! independent simulations over worker threads changes *nothing* about
//! the output: results are merged in input order and every simulation
//! owns its seeded trace generator, so the rendered experiment — table,
//! summary, claim checks — must be **byte-identical** for every job
//! count. These tests pin that contract for each figure/table experiment
//! at `Scale::Smoke` (claim checks may fail at that scale; only equality
//! of the rendered output matters here).

use moca_sim::experiments::{by_id, ExperimentResult};
use moca_sim::parallel::Jobs;
use moca_sim::workloads::Scale;

/// Flattens an experiment result into one comparable string.
fn render_full(r: &ExperimentResult) -> String {
    let mut out = r.render();
    for c in &r.claims {
        out.push_str(&format!("{} {} {} {}\n", c.claim, c.target, c.measured, c.pass));
    }
    out
}

/// Runs `id` serially and with 2 and 8 worker threads, asserting the
/// rendered output is byte-identical across all job counts.
fn assert_deterministic(id: &str) {
    let serial = by_id(id, Scale::Smoke, Jobs::SERIAL)
        .unwrap_or_else(|| panic!("unknown experiment id {id}"));
    let reference = render_full(&serial);
    assert!(!reference.is_empty());
    for jobs in [1usize, 2, 8] {
        let parallel = by_id(id, Scale::Smoke, Jobs::new(jobs)).expect("known id");
        assert_eq!(
            reference,
            render_full(&parallel),
            "experiment {id} output differs between serial and jobs={jobs}"
        );
    }
}

macro_rules! determinism_tests {
    ($($test_name:ident => $id:literal),* $(,)?) => {
        $(
            #[test]
            fn $test_name() {
                assert_deterministic($id);
            }
        )*
    };
}

determinism_tests! {
    f1_kernel_share_is_deterministic => "F1",
    f2_interference_is_deterministic => "F2",
    f3_static_sweep_is_deterministic => "F3",
    f4_behavior_is_deterministic => "F4",
    f5_retention_sweep_is_deterministic => "F5",
    f6_performance_is_deterministic => "F6",
    f7_adaptation_is_deterministic => "F7",
    f8_sensitivity_is_deterministic => "F8",
    t2_energy_table_is_deterministic => "T2",
    a1_area_is_deterministic => "A1",
    a2_partition_style_is_deterministic => "A2",
    a3_hybrid_study_is_deterministic => "A3",
    a4_duty_cycle_is_deterministic => "A4",
    a5_prefetch_study_is_deterministic => "A5",
    a6_temperature_is_deterministic => "A6",
    a7_multitask_is_deterministic => "A7",
}

/// Fan-out-vs-sequential equivalence.
///
/// The shared-trace fan-out engine (`moca_sim::fanout`) promises that
/// broadcasting one trace stream to N designs — through any arena state
/// and any job count — produces reports **byte-identical** to running
/// each design alone through `run_app`, which owns a private generator
/// and never touches the arena. These tests pin that promise for the
/// design families the sweep-shaped experiments use, and for randomized
/// (designs, refs, seed) triples.
mod fanout_equivalence {
    use moca_core::{L2Design, RefreshPolicy};
    use moca_energy::RetentionClass;
    use moca_sim::fanout::{fan_out, fan_out_parallel};
    use moca_sim::parallel::Jobs;
    use moca_sim::workloads::run_app;
    use moca_testkit::{check, require, Config, TestRng};
    use moca_trace::AppProfile;

    /// A design pool spanning every sweep-shaped experiment: shared and
    /// partitioned SRAM (F3, A2), the retention grid (F5), dynamic
    /// variants (F8), and the suite defaults (T2/A4/A6).
    fn design_pool() -> Vec<L2Design> {
        vec![
            L2Design::baseline(),
            L2Design::static_default(),
            L2Design::dynamic_default(),
            L2Design::SharedSram { ways: 4 },
            L2Design::SharedSram { ways: 16 },
            L2Design::StaticSram {
                user_ways: 6,
                kernel_ways: 4,
            },
            L2Design::StaticSram {
                user_ways: 8,
                kernel_ways: 4,
            },
            L2Design::SharedStt {
                ways: 16,
                retention: RetentionClass::TenYears,
                refresh: RefreshPolicy::InvalidateOnExpiry,
            },
            L2Design::StaticMultiRetention {
                user_ways: 6,
                kernel_ways: 4,
                user_retention: RetentionClass::OneSecond,
                kernel_retention: RetentionClass::TenMillis,
                refresh: RefreshPolicy::Refresh,
            },
            L2Design::DynamicStt {
                max_ways: 16,
                min_ways: 1,
                user_retention: RetentionClass::HundredMillis,
                kernel_retention: RetentionClass::TenMillis,
                refresh: RefreshPolicy::InvalidateOnExpiry,
                epoch_cycles: 100_000,
            },
            L2Design::DynamicSram {
                max_ways: 16,
                min_ways: 1,
                epoch_cycles: 500_000,
            },
        ]
    }

    /// Asserts `run_app` loop == fan-out(jobs=1) == fan-out(jobs=2) ==
    /// fan-out(jobs=8) for the given sweep, by `Debug` rendering.
    fn assert_fanout_equivalent(app: &AppProfile, designs: &[L2Design], refs: usize, seed: u64) {
        let sequential: Vec<String> = designs
            .iter()
            .map(|&d| format!("{:?}", run_app(app, d, refs, seed)))
            .collect();
        for jobs in [1usize, 2, 8] {
            let fanned = fan_out_parallel(app, designs, refs, seed, Jobs::new(jobs));
            assert_eq!(fanned.len(), sequential.len());
            for (i, (seq, fan)) in sequential.iter().zip(&fanned).enumerate() {
                assert_eq!(
                    seq,
                    &format!("{fan:?}"),
                    "design {i} differs from sequential run_app at jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn full_design_pool_fans_out_identically() {
        // Refs chosen off chunk alignment on purpose.
        assert_fanout_equivalent(&AppProfile::browser(), &design_pool(), 30_123, 2015);
    }

    #[test]
    fn retention_grid_fans_out_identically() {
        let designs: Vec<L2Design> = RetentionClass::SWEEP
            .into_iter()
            .map(|rc| L2Design::StaticMultiRetention {
                user_ways: 6,
                kernel_ways: 4,
                user_retention: rc,
                kernel_retention: rc,
                refresh: RefreshPolicy::InvalidateOnExpiry,
            })
            .collect();
        assert_fanout_equivalent(&AppProfile::video(), &designs, 25_000, 0x5EED_2015);
    }

    #[test]
    fn single_design_fan_out_is_run_app() {
        let app = AppProfile::music();
        let solo = run_app(&app, L2Design::static_default(), 20_000, 7);
        let fanned = fan_out(&app, &[L2Design::static_default()], 20_000, 7);
        assert_eq!(format!("{:?}", fanned[0]), format!("{solo:?}"));
    }

    /// The rendered CSV — the artifact sweeps actually ship — is
    /// byte-identical across job counts through the lock-step engine,
    /// with the wall-time column masked (it is measurement noise). The
    /// pool is larger than one lane group with a ragged tail, so group
    /// chunking itself is exercised.
    #[test]
    fn sweep_csv_is_byte_identical_across_jobs_through_lockstep() {
        use moca_sim::sweep::{sweep, sweep_parallel, write_csv};
        use moca_sim::LANE_GROUP;

        let params: [u32; 11] = [1, 2, 4, 8, 16, 2, 4, 8, 16, 1, 2];
        assert!(
            params.len() > LANE_GROUP,
            "the pool must span more than one lane group"
        );
        let app = AppProfile::browser();
        let to_design = |&ways: &u32| L2Design::SharedSram { ways };
        let serial = sweep(&params, to_design, &app, 12_000, 42);
        let mut reference = Vec::new();
        write_csv(&mut reference, serial.iter().map(|p| (&p.report, 0u64)))
            .expect("csv renders");
        for jobs in [1usize, 2, 8] {
            let sharded =
                sweep_parallel(&params, to_design, &app, 12_000, 42, Jobs::new(jobs));
            let mut got = Vec::new();
            write_csv(&mut got, sharded.iter().map(|p| (&p.report, 0u64)))
                .expect("csv renders");
            assert_eq!(
                String::from_utf8(reference.clone()).expect("utf8"),
                String::from_utf8(got).expect("utf8"),
                "sweep CSV differs between serial and jobs={jobs}"
            );
        }
    }

    /// Kill/resume smoke over the lock-step engine: the journal is
    /// dropped after three points — mid lane group, so the resumed run
    /// re-forms different lane groupings than the killed one — and the
    /// resumed CSV must still be byte-identical to an uninterrupted run.
    #[test]
    fn checkpoint_resume_across_a_lane_group_boundary_is_byte_identical() {
        use moca_sim::checkpoint::{sweep_checkpointed, write_checkpoint_csv, Journal};
        use moca_sim::LANE_GROUP;

        // Distinct way counts: the journal keys points by design, so a
        // duplicate would replay more than the killed prefix.
        let params: [u32; 10] = [2, 4, 8, 16, 1, 3, 5, 6, 7, 9];
        assert!(params.len() > LANE_GROUP);
        let app = AppProfile::video();
        let refs = 8_000;
        let to_design = |&ways: &u32| L2Design::SharedSram { ways };
        let base = std::env::temp_dir().join(format!(
            "moca-lockstep-resume-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);

        let mut j = Journal::open(&base.join("full")).expect("open");
        let full = sweep_checkpointed(&mut j, &params, to_design, &app, refs, 11, Jobs::new(2))
            .expect("full run");
        let mut csv_full = Vec::new();
        write_checkpoint_csv(&mut csv_full, &full).expect("csv");

        // Three journaled points is a ragged prefix of the first
        // 8-lane group; the resume completes that group's remainder
        // plus the rest under a different job count.
        let mut j = Journal::open(&base.join("killed")).expect("open");
        sweep_checkpointed(&mut j, &params[..3], to_design, &app, refs, 11, Jobs::SERIAL)
            .expect("partial run");
        drop(j);

        let mut j = Journal::resume(&base.join("killed")).expect("resume");
        let resumed = sweep_checkpointed(&mut j, &params, to_design, &app, refs, 11, Jobs::new(8))
            .expect("resumed run");
        assert_eq!(
            resumed.iter().filter(|p| p.is_replayed()).count(),
            3,
            "exactly the journaled points replay"
        );
        let mut csv_resumed = Vec::new();
        write_checkpoint_csv(&mut csv_resumed, &resumed).expect("csv");
        assert_eq!(
            String::from_utf8(csv_full).expect("utf8"),
            String::from_utf8(csv_resumed).expect("utf8"),
            "resume across a lane-group boundary must reproduce the uninterrupted CSV"
        );
        std::fs::remove_dir_all(&base).expect("cleanup");
    }

    #[test]
    fn random_triples_fan_out_identically() {
        // moca-testkit property: for randomized (designs, refs, seed)
        // triples, fan-out at a random job count reproduces the
        // sequential per-design reports byte-for-byte.
        let pool = design_pool();
        let apps = AppProfile::suite();
        check(
            Config::cases(12),
            |rng: &mut TestRng| {
                let app = rng.pick(&apps).clone();
                let designs =
                    rng.vec(1, 6, |rng| *rng.pick(&pool));
                let refs = rng.range_usize(1_000, 30_000);
                let seed = rng.next_u64();
                let jobs = rng.range_usize(1, 9);
                (app, designs, refs, seed, jobs)
            },
            |(app, designs, refs, seed, jobs)| {
                let fanned = fan_out_parallel(app, designs, *refs, *seed, Jobs::new(*jobs));
                for (i, (design, fan)) in designs.iter().zip(&fanned).enumerate() {
                    let solo = run_app(app, *design, *refs, *seed);
                    require!(
                        format!("{solo:?}") == format!("{fan:?}"),
                        "design {i} ({design:?}) differs at jobs={jobs}, refs={refs}, seed={seed:#x}"
                    );
                }
                Ok(())
            },
        );
    }
}
