//! Determinism of the parallel sweep engine.
//!
//! The contract of `moca_sim::parallel` is that sharding an experiment's
//! independent simulations over worker threads changes *nothing* about
//! the output: results are merged in input order and every simulation
//! owns its seeded trace generator, so the rendered experiment — table,
//! summary, claim checks — must be **byte-identical** for every job
//! count. These tests pin that contract for each figure/table experiment
//! at `Scale::Smoke` (claim checks may fail at that scale; only equality
//! of the rendered output matters here).

use moca_sim::experiments::{by_id, ExperimentResult};
use moca_sim::parallel::Jobs;
use moca_sim::workloads::Scale;

/// Flattens an experiment result into one comparable string.
fn render_full(r: &ExperimentResult) -> String {
    let mut out = r.render();
    for c in &r.claims {
        out.push_str(&format!("{} {} {} {}\n", c.claim, c.target, c.measured, c.pass));
    }
    out
}

/// Runs `id` serially and with 2 and 8 worker threads, asserting the
/// rendered output is byte-identical across all job counts.
fn assert_deterministic(id: &str) {
    let serial = by_id(id, Scale::Smoke, Jobs::SERIAL)
        .unwrap_or_else(|| panic!("unknown experiment id {id}"));
    let reference = render_full(&serial);
    assert!(!reference.is_empty());
    for jobs in [1usize, 2, 8] {
        let parallel = by_id(id, Scale::Smoke, Jobs::new(jobs)).expect("known id");
        assert_eq!(
            reference,
            render_full(&parallel),
            "experiment {id} output differs between serial and jobs={jobs}"
        );
    }
}

macro_rules! determinism_tests {
    ($($test_name:ident => $id:literal),* $(,)?) => {
        $(
            #[test]
            fn $test_name() {
                assert_deterministic($id);
            }
        )*
    };
}

determinism_tests! {
    f1_kernel_share_is_deterministic => "F1",
    f2_interference_is_deterministic => "F2",
    f3_static_sweep_is_deterministic => "F3",
    f4_behavior_is_deterministic => "F4",
    f5_retention_sweep_is_deterministic => "F5",
    f6_performance_is_deterministic => "F6",
    f7_adaptation_is_deterministic => "F7",
    f8_sensitivity_is_deterministic => "F8",
    t2_energy_table_is_deterministic => "T2",
    a1_area_is_deterministic => "A1",
    a2_partition_style_is_deterministic => "A2",
    a3_hybrid_study_is_deterministic => "A3",
    a4_duty_cycle_is_deterministic => "A4",
    a5_prefetch_study_is_deterministic => "A5",
    a6_temperature_is_deterministic => "A6",
    a7_multitask_is_deterministic => "A7",
}
