//! File-backed trace replay: byte-identity, fallback, and checkpoint
//! integration.
//!
//! Each test uses a unique `(app, seed)` identity: the registry and
//! arena are process-global, and unique seeds keep concurrently running
//! tests from serving each other's chunks.

use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;
use std::sync::Arc;

use moca_core::L2Design;
use moca_sim::checkpoint::{point_key, point_key_with_source, Journal};
use moca_sim::{
    csv_row, run_app, sweep_checkpointed, sweep_parallel, write_csv, ChunkArena, FanOut,
    FileTraceSource, Jobs, TraceRegistry, TraceStream,
};
use moca_trace::binfmt::{self, TraceReader, CHUNK_REFS};
use moca_trace::AppProfile;

/// Compiles `(app, seed, refs)` into a uniquely named temp file and
/// returns its path.
fn compile_to_temp(app: &AppProfile, seed: u64, refs: usize, tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "moca-replay-it-{}-{tag}.mtrc",
        std::process::id()
    ));
    let file = File::create(&path).expect("create temp trace");
    binfmt::compile(BufWriter::new(file), app, seed, refs).expect("compile");
    path
}

#[test]
fn file_stream_serves_generator_identical_chunks_from_disk() {
    let app = AppProfile::browser();
    let seed = 0xF11E_0001u64;
    let refs = 3 * CHUNK_REFS;
    let path = compile_to_temp(&app, seed, refs, "stream");
    let source = Arc::new(FileTraceSource::open(&path).expect("open source"));
    assert_ne!(
        source.source_fingerprint(),
        app.fingerprint(),
        "file-backed streams must live in their own arena namespace"
    );

    // Zero-capacity arenas: every chunk is decoded (left) or generated
    // (right), nothing is served from cache.
    let cold_a = ChunkArena::with_capacity(0);
    let cold_b = ChunkArena::with_capacity(0);
    let mut from_file = TraceStream::with_source(&app, seed, &cold_a, source);
    let mut from_gen = TraceStream::with_arena(&app, seed, &cold_b);
    assert!(from_file.is_file_backed());
    assert!(!from_gen.is_file_backed());
    for chunk in 0..4 {
        // Chunk 3 is past the file; the stream must fall through to
        // generation seamlessly.
        assert_eq!(
            from_file.next_chunk(),
            from_gen.next_chunk(),
            "chunk {chunk} diverged"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn registered_corpus_replays_byte_identically_at_every_job_count() {
    let app = AppProfile::game();
    let seed = 0xF11E_0002u64;
    let refs = 2 * CHUNK_REFS + 1000;
    let designs = [L2Design::baseline(), L2Design::static_default()];

    // In-process baseline, computed before the corpus exists. Reports
    // are compared through their full CSV rendering (SimReport carries
    // floats and exposes no structural equality).
    let baseline: Vec<String> = designs
        .iter()
        .map(|&d| csv_row(&run_app(&app, d, refs, seed), 0))
        .collect();
    let to_design = |&i: &usize| designs[i];
    let params = [0usize, 1];
    let mut baseline_csv = Vec::new();
    let points = sweep_parallel(&params, to_design, &app, refs, seed, Jobs::SERIAL);
    write_csv(&mut baseline_csv, points.iter().map(|p| (&p.report, 0))).expect("csv");

    let path = compile_to_temp(&app, seed, refs, "corpus");
    TraceRegistry::global().register(FileTraceSource::open(&path).expect("open"));
    let before = TraceRegistry::global().stats();

    for jobs in [1usize, 2, 8] {
        let reports: Vec<String> = FanOut::new(&app, seed)
            .run_parallel(&designs, refs, Jobs::new(jobs))
            .iter()
            .map(|r| csv_row(r, 0))
            .collect();
        assert_eq!(reports, baseline, "fan-out diverged at jobs={jobs}");
        let points = sweep_parallel(&params, to_design, &app, refs, seed, Jobs::new(jobs));
        let mut csv = Vec::new();
        write_csv(&mut csv, points.iter().map(|p| (&p.report, 0))).expect("csv");
        assert_eq!(csv, baseline_csv, "sweep CSV diverged at jobs={jobs}");
    }

    let after = TraceRegistry::global().stats();
    assert!(
        after.chunks_decoded > before.chunks_decoded,
        "the corpus was registered but nothing was decoded from it"
    );
    assert_eq!(after.decode_errors, before.decode_errors);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_corpus_falls_back_to_generation_byte_identically() {
    let app = AppProfile::video();
    let seed = 0xF11E_0003u64;
    let refs = 2 * CHUNK_REFS;
    let design = L2Design::baseline();
    let baseline = csv_row(&run_app(&app, design, refs, seed), 0);

    let path = compile_to_temp(&app, seed, refs, "corrupt");
    // Flip one byte in chunk 0's payload; the checksum now fails.
    let mut bytes = std::fs::read(&path).expect("read");
    let offset = {
        let reader = TraceReader::open(&path).expect("parse");
        reader.header().chunks[0].offset as usize + 5
    };
    bytes[offset] ^= 0x20;
    std::fs::write(&path, &bytes).expect("rewrite");

    // The header (and directory) still parse, so registration succeeds;
    // the corruption only surfaces at replay time.
    TraceRegistry::global().register(FileTraceSource::open(&path).expect("open"));
    let before = TraceRegistry::global().stats();
    let reports = FanOut::new(&app, seed).run(&[design], refs);
    assert_eq!(csv_row(&reports[0], 0), baseline, "fallback must preserve byte-identity");
    let after = TraceRegistry::global().stats();
    assert!(
        after.decode_errors > before.decode_errors,
        "the checksum failure must be counted"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_keys_follow_the_trace_source() {
    let app = AppProfile::music();
    let seed = 0xF11E_0004u64;
    let refs = CHUNK_REFS;
    let design = L2Design::baseline();

    // Without a corpus the key is exactly the historical app-keyed one.
    assert_eq!(
        point_key(&app, &design, seed, refs),
        point_key_with_source(app.fingerprint(), &design, seed, refs)
    );

    let path = compile_to_temp(&app, seed, refs, "ckpt");
    let source = TraceRegistry::global().register(FileTraceSource::open(&path).expect("open"));

    let dir = std::env::temp_dir().join(format!("moca-replay-it-{}-journal", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let to_design = |&ways: &u32| L2Design::SharedSram { ways };

    let mut journal = Journal::open(&dir).expect("open journal");
    let first = sweep_checkpointed(&mut journal, &[4u32, 8], to_design, &app, refs, seed, Jobs::SERIAL)
        .expect("first sweep");
    assert!(first.iter().all(|p| !p.is_replayed()));

    // The journal keys carry the file's source fingerprint, not the
    // app's: replaying against a different corpus must not hit them.
    let journal_text = std::fs::read_to_string(dir.join(Journal::FILE_NAME)).expect("journal");
    assert!(
        journal_text.contains(&format!("{:016x}", source.source_fingerprint())),
        "journal keys must be namespaced by the trace-source fingerprint"
    );

    let mut journal = Journal::resume(&dir).expect("resume journal");
    let second = sweep_checkpointed(&mut journal, &[4u32, 8], to_design, &app, refs, seed, Jobs::SERIAL)
        .expect("second sweep");
    assert!(second.iter().all(|p| p.is_replayed()));
    assert_eq!(first[0].row(), second[0].row());

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&path).ok();
}
