//! Randomized cross-engine properties of the lock-step kernel, built on
//! the `moca-testkit` differential harness.
//!
//! Two contracts are pinned here:
//!
//! 1. **Three-engine agreement**: for randomized (app, design pool,
//!    refs, seed, jobs) inputs, the scalar sequential oracle, the
//!    retained PR 3 chunk-broadcast engine, and the lock-step kernel
//!    (serial *and* sharded over worker threads) produce byte-identical
//!    [`moca_sim::SimReport`]s.
//! 2. **Lane poisoning**: a design that panics mid-run fails alone — its
//!    lane is poisoned, every other lane of the shared front end runs to
//!    completion byte-identically to a fault-free run — and the failed
//!    point set (indices, labels, rendered causes) is identical across
//!    jobs 1/2/8.

use moca_core::{L2Design, RefreshPolicy};
use moca_energy::RetentionClass;
use moca_sim::fanout::FanOut;
use moca_sim::lockstep::LockStep;
use moca_sim::parallel::Jobs;
use moca_sim::workloads::run_app;
use moca_sim::SweepPointError;
use moca_testkit::differential::{engines_agree, EngineRun};
use moca_testkit::{check, require, require_eq, Config, FaultPlan, TestRng};
use moca_trace::AppProfile;

/// Design pool spanning every family a sweep-shaped experiment touches.
fn design_pool() -> Vec<L2Design> {
    vec![
        L2Design::baseline(),
        L2Design::static_default(),
        L2Design::dynamic_default(),
        L2Design::SharedSram { ways: 2 },
        L2Design::SharedSram { ways: 16 },
        L2Design::StaticSram {
            user_ways: 6,
            kernel_ways: 4,
        },
        L2Design::SharedStt {
            ways: 16,
            retention: RetentionClass::TenYears,
            refresh: RefreshPolicy::InvalidateOnExpiry,
        },
        L2Design::StaticMultiRetention {
            user_ways: 8,
            kernel_ways: 4,
            user_retention: RetentionClass::HundredMillis,
            kernel_retention: RetentionClass::TenMillis,
            refresh: RefreshPolicy::Refresh,
        },
        L2Design::DynamicStt {
            max_ways: 16,
            min_ways: 1,
            user_retention: RetentionClass::OneSecond,
            kernel_retention: RetentionClass::TenMillis,
            refresh: RefreshPolicy::InvalidateOnExpiry,
            epoch_cycles: 100_000,
        },
        L2Design::DynamicSram {
            max_ways: 16,
            min_ways: 2,
            epoch_cycles: 250_000,
        },
    ]
}

#[test]
fn random_inputs_agree_across_scalar_broadcast_and_lockstep() {
    let pool = design_pool();
    let apps = AppProfile::suite();
    check(
        Config::cases(10),
        |rng: &mut TestRng| {
            let app = rng.pick(&apps).clone();
            let designs = rng.vec(1, 7, |rng| *rng.pick(&pool));
            let refs = rng.range_usize(1_000, 25_000);
            let seed = rng.next_u64();
            let jobs = rng.range_usize(1, 9);
            let width = rng.range_usize(1, 9);
            (app, designs, refs, seed, jobs, width)
        },
        |(app, designs, refs, seed, jobs, width)| {
            let fan = FanOut::new(app, *seed);
            let sequential: Vec<_> = designs
                .iter()
                .map(|&d| run_app(app, d, *refs, *seed))
                .collect();
            let runs = [
                EngineRun::render("scalar run_app", &sequential),
                EngineRun::render("broadcast", &fan.run_broadcast(designs, *refs)),
                EngineRun::render(
                    "lockstep serial",
                    &LockStep::new(app, *seed)
                        .with_lane_group(*width)
                        .run(designs, *refs),
                ),
                EngineRun::render(
                    "lockstep parallel",
                    &fan.run_parallel(designs, *refs, Jobs::new(*jobs)),
                ),
            ];
            engines_agree(
                &format!(
                    "app={} designs={} refs={refs} seed={seed:#x} jobs={jobs} width={width}",
                    app.name,
                    designs.len()
                ),
                &runs,
            )
        },
    );
}

/// Renders isolated outcomes into deterministic comparable text (wall
/// time excluded — it is measurement noise).
fn outcome_fingerprint(
    outcomes: &[Result<(moca_sim::SimReport, u64), SweepPointError>],
) -> Vec<String> {
    outcomes
        .iter()
        .map(|o| match o {
            Ok((report, _wall)) => format!("ok {report:?}"),
            Err(e) => format!("err {e}"),
        })
        .collect()
}

#[test]
fn panicking_design_poisons_only_its_own_lane_identically_across_jobs() {
    let app = AppProfile::camera();
    let pool = design_pool();
    let refs = 8_000;
    let seed = 0xFA_117;
    // Deterministic fault plan over the 10-design pool: roughly a third
    // of the lanes panic mid-run.
    let faults = FaultPlan::new(0xBAD_5EED).with_rate(1, 3).faulty_indices(pool.len());
    assert!(
        !faults.is_empty() && faults.len() < pool.len(),
        "the plan must fault some but not all lanes: {faults:?}"
    );
    let fan = FanOut::new(&app, seed).with_injected_faults(&faults);

    let reference = outcome_fingerprint(&fan.run_timed_isolated(&pool, refs));

    // Failed lanes carry the deterministic injected payload; surviving
    // lanes are byte-identical to a fault-free run of the same pool.
    let clean = FanOut::new(&app, seed).run(&pool, refs);
    for (i, line) in reference.iter().enumerate() {
        if faults.contains(&i) {
            assert!(
                line.starts_with("err") && line.contains(&format!("injected fault at index {i}")),
                "lane {i}: {line}"
            );
        } else {
            assert_eq!(
                line,
                &format!("ok {:?}", clean[i]),
                "surviving lane {i} must match the fault-free run"
            );
        }
    }

    // The failed-point set — and every surviving report — is identical
    // for every job count.
    for jobs in [1usize, 2, 8] {
        let sharded =
            outcome_fingerprint(&fan.run_timed_parallel_isolated(&pool, refs, Jobs::new(jobs)));
        assert_eq!(reference, sharded, "jobs={jobs} diverged from serial");
    }
}

#[test]
fn randomized_fault_sets_are_job_count_invariant() {
    let pool = design_pool();
    let apps = AppProfile::suite();
    check(
        Config::cases(6),
        |rng: &mut TestRng| {
            let app = rng.pick(&apps).clone();
            let n = rng.range_usize(2, 9);
            let designs = rng.vec(n, n + 1, |rng| *rng.pick(&pool));
            let faults = FaultPlan::new(rng.next_u64())
                .with_rate(1, 3)
                .faulty_indices(n);
            let refs = rng.range_usize(1_000, 9_000);
            let seed = rng.next_u64();
            let jobs = rng.range_usize(2, 9);
            (app, designs, faults, refs, seed, jobs)
        },
        |(app, designs, faults, refs, seed, jobs)| {
            let fan = FanOut::new(app, *seed).with_injected_faults(faults);
            let serial = outcome_fingerprint(&fan.run_timed_isolated(designs, *refs));
            let sharded = outcome_fingerprint(&fan.run_timed_parallel_isolated(
                designs,
                *refs,
                Jobs::new(*jobs),
            ));
            require_eq!(serial, sharded, "jobs={jobs}");
            for (i, line) in serial.iter().enumerate() {
                require!(
                    line.starts_with("err") == faults.contains(&i),
                    "lane {i} fault membership mismatch: {line}"
                );
            }
            Ok(())
        },
    );
}
