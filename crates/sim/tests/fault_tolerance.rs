//! Fault-tolerance suite: panic isolation, deterministic failed sets,
//! checkpoint kill/resume byte-equivalence, and I/O error surfacing.
//!
//! The contracts under test (see `DESIGN.md`, "Failure model"):
//!
//! 1. a faulting sweep point never takes down its neighbours;
//! 2. the failed-point set — indices, labels, rendered causes — is a
//!    pure function of the inputs, identical for every `--jobs N`;
//! 3. surviving reports are byte-identical to a fault-free run of the
//!    same designs;
//! 4. a killed checkpointed sweep resumes to byte-identical output;
//! 5. write failures surface as `io::Result` errors, not panics.

use std::io;

use moca_core::L2Design;
use moca_sim::checkpoint::{sweep_checkpointed, write_checkpoint_csv, CheckpointedPoint, Journal};
use moca_sim::fanout::{ChunkArena, TraceStream};
use moca_sim::parallel::{parallel_map_isolated, Jobs};
use moca_sim::sweep::{sweep_parallel, sweep_parallel_isolated};
use moca_sim::PointCause;
use moca_testkit::{check, Config, FaultPlan, ShortWriter, TestRng};
use moca_trace::{AppProfile, TraceGenerator};

/// Maps a swept way count to a design; `ways == 0` is an *invalid*
/// design (rejected by validation), the injected fault of this suite.
fn to_design(&ways: &u32) -> L2Design {
    L2Design::SharedSram { ways }
}

/// Renders an isolated sweep outcome into comparable, deterministic
/// text (wall time excluded — it is measurement noise).
fn outcome_fingerprint(outcomes: &[Result<moca_sim::SweepPoint<u32>, moca_sim::SweepPointError>]) -> Vec<String> {
    outcomes
        .iter()
        .map(|o| match o {
            Ok(p) => format!("ok {} {:?}", p.param, p.report),
            Err(e) => format!("err {e}"),
        })
        .collect()
}

#[test]
fn faulty_points_are_isolated_from_their_neighbours() {
    let app = AppProfile::music();
    let params = [4u32, 0, 8, 0, 2];
    let outcomes = sweep_parallel_isolated(&params, to_design, &app, 6_000, 1, Jobs::SERIAL);

    assert_eq!(outcomes.len(), params.len());
    for (i, outcome) in outcomes.iter().enumerate() {
        if params[i] == 0 {
            let e = outcome.as_ref().expect_err("invalid design must fail");
            assert_eq!(e.index, i);
            assert!(matches!(e.cause, PointCause::Build(_)), "{e}");
            assert!(e.to_string().contains("build failed"), "{e}");
        } else {
            let p = outcome.as_ref().expect("valid design must survive");
            assert_eq!(p.param, params[i]);
            assert!(p.report.cycles > 0);
        }
    }

    // Surviving points are byte-identical to a fault-free sweep of the
    // same valid designs (the shared trace stream is unaffected by the
    // failed slots).
    let valid: Vec<u32> = params.iter().copied().filter(|&w| w != 0).collect();
    let clean = sweep_parallel(&valid, to_design, &app, 6_000, 1, Jobs::SERIAL);
    let survived: Vec<_> = outcomes.iter().filter_map(|o| o.as_ref().ok()).collect();
    assert_eq!(survived.len(), clean.len());
    for (s, c) in survived.iter().zip(&clean) {
        assert_eq!(s.param, c.param);
        assert_eq!(format!("{:?}", s.report), format!("{:?}", c.report));
    }
}

#[test]
fn failed_set_is_identical_for_every_job_count() {
    let app = AppProfile::game();
    // Faults at fixed positions across group boundaries for jobs ∈ {2, 8}.
    let params = [2u32, 0, 4, 6, 0, 8, 10, 0, 12, 16, 0, 1];
    let reference = outcome_fingerprint(&sweep_parallel_isolated(
        &params, to_design, &app, 5_000, 9, Jobs::SERIAL,
    ));
    for jobs in [2, 3, 8] {
        let sharded = outcome_fingerprint(&sweep_parallel_isolated(
            &params,
            to_design,
            &app,
            5_000,
            9,
            Jobs::new(jobs),
        ));
        assert_eq!(reference, sharded, "jobs={jobs} diverged from serial");
    }
}

#[test]
fn fault_plan_panics_yield_exact_deterministic_failed_set() {
    let plan = FaultPlan::new(0xDEAD_BEEF).with_rate(1, 3);
    let items: Vec<usize> = (0..60).collect();
    let expected = plan.faulty_indices(items.len());
    assert!(!expected.is_empty() && expected.len() < items.len());

    let mut renderings = Vec::new();
    for jobs in [1, 2, 8] {
        let outcomes = parallel_map_isolated(Jobs::new(jobs), items.clone(), |i| {
            plan.trip(i); // panics on planned indices
            i * 10
        });
        let failed: Vec<usize> = outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.is_err().then_some(i))
            .collect();
        assert_eq!(failed, expected, "jobs={jobs}");
        for (i, o) in outcomes.iter().enumerate() {
            match o {
                Ok(v) => assert_eq!(*v, i * 10),
                Err(msg) => assert_eq!(msg, &format!("injected fault at index {i}")),
            }
        }
        renderings.push(format!("{outcomes:?}"));
    }
    assert!(renderings.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn randomized_fault_injection_is_deterministic_across_jobs() {
    let apps = [
        AppProfile::music(),
        AppProfile::game(),
        AppProfile::browser(),
        AppProfile::video(),
        AppProfile::camera(),
    ];
    check(
        Config::cases(8),
        |rng: &mut TestRng| {
            let app_idx = rng.range_usize(0, apps.len());
            let n = rng.range_usize(3, 9);
            let plan = FaultPlan::new(rng.next_u64()).with_rate(1, 3);
            // Valid way counts, then zero out the plan's fault indices.
            let mut params: Vec<u32> =
                (0..n).map(|_| rng.range_u32(1, 17)).collect();
            for i in plan.faulty_indices(n) {
                params[i] = 0;
            }
            let seed = rng.next_u64();
            let jobs = rng.range_usize(2, 7);
            (app_idx, params, seed, jobs)
        },
        |(app_idx, params, seed, jobs)| {
            let app = &apps[*app_idx];
            let serial = outcome_fingerprint(&sweep_parallel_isolated(
                params, to_design, app, 3_000, *seed, Jobs::SERIAL,
            ));
            let sharded = outcome_fingerprint(&sweep_parallel_isolated(
                params,
                to_design,
                app,
                3_000,
                *seed,
                Jobs::new(*jobs),
            ));
            moca_testkit::require_eq!(serial, sharded, "jobs={jobs}");
            for (i, line) in serial.iter().enumerate() {
                let expect_err = params[i] == 0;
                moca_testkit::require_eq!(
                    line.starts_with("err"),
                    expect_err,
                    "point {i}: {line}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn poisoned_arena_recovers_and_streams_correctly() {
    let app = AppProfile::browser();
    let arena = ChunkArena::with_capacity(8);

    // Prime, then poison the arena's lock the way a crashed worker would.
    let mut warm = TraceStream::with_arena(&app, 5, &arena);
    let first = warm.next_chunk().to_vec();
    arena.poison();

    // Every accessor recovers: stats are readable and a fresh stream
    // still produces the reference trace (serving chunk 0 from cache).
    let stats = arena.stats();
    assert!(stats.cached_chunks > 0);
    let mut stream = TraceStream::with_arena(&app, 5, &arena);
    let replay = stream.next_chunk().to_vec();
    assert_eq!(first, replay);
    let direct: Vec<_> = TraceGenerator::new(&app, 5).take(replay.len()).collect();
    assert_eq!(replay, direct);
}

#[test]
fn killed_checkpoint_run_resumes_byte_identically() {
    let app = AppProfile::video();
    let params = [2u32, 4, 8, 16];
    let refs = 8_000;
    let base = std::env::temp_dir().join(format!("moca-ft-resume-{}", std::process::id()));
    let dir_full = base.join("full");
    let dir_killed = base.join("killed");
    let _ = std::fs::remove_dir_all(&base);

    // Reference: one uninterrupted run.
    let mut j = Journal::open(&dir_full).expect("open");
    let full = sweep_checkpointed(&mut j, &params, to_design, &app, refs, 11, Jobs::new(2))
        .expect("full run");
    let mut csv_full = Vec::new();
    write_checkpoint_csv(&mut csv_full, &full).expect("csv");

    // "Killed" run: two points land in the journal, then the process
    // dies (simulated by dropping the journal mid-way).
    let mut j = Journal::open(&dir_killed).expect("open");
    sweep_checkpointed(&mut j, &params[..2], to_design, &app, refs, 11, Jobs::SERIAL)
        .expect("partial run");
    drop(j);

    // Resume: finished points replay, the rest simulate.
    let mut j = Journal::resume(&dir_killed).expect("resume");
    let resumed = sweep_checkpointed(&mut j, &params, to_design, &app, refs, 11, Jobs::new(3))
        .expect("resumed run");
    assert_eq!(
        resumed.iter().filter(|p| p.is_replayed()).count(),
        2,
        "exactly the journaled points replay"
    );
    let mut csv_resumed = Vec::new();
    write_checkpoint_csv(&mut csv_resumed, &resumed).expect("csv");

    assert_eq!(
        String::from_utf8(csv_full).expect("utf8"),
        String::from_utf8(csv_resumed).expect("utf8"),
        "kill/resume output must be byte-identical to the uninterrupted run"
    );
    std::fs::remove_dir_all(&base).expect("cleanup");
}

#[test]
fn exhausted_writer_surfaces_write_zero_not_a_panic() {
    let points = [CheckpointedPoint::Replayed {
        param: 4u32,
        row: "music,design,1000,1,1.0".to_string(),
    }];

    // Large enough for the header, too small for the row.
    let mut sink = ShortWriter::new(64);
    let err = write_checkpoint_csv(&mut sink, &points).expect_err("short write");
    assert_eq!(err.kind(), io::ErrorKind::WriteZero);

    // A writer with room for everything succeeds — same data, same code
    // path, proving the error came from the sink and not the payload.
    let mut roomy = ShortWriter::new(4096);
    write_checkpoint_csv(&mut roomy, &points).expect("fits");
    assert!(!roomy.written().is_empty());
}
