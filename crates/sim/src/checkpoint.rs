//! Checkpoint/resume for long sweeps and `repro` runs.
//!
//! A full `repro` pass costs minutes; a killed run used to lose all of
//! it. This module provides an append-only, crash-tolerant **journal**
//! of completed work keyed by content fingerprints, so a restarted run
//! replays finished results verbatim and only simulates what is
//! missing:
//!
//! * **sweep points** are keyed by `(AppProfile::fingerprint, design
//!   fingerprint, seed, refs)` — the exact identity of one deterministic
//!   simulation — and store their CSV row ([`crate::sweep::csv_row`]
//!   with the run-local `wall_ns` column blanked, since wall time is
//!   measurement noise, not simulation output);
//! * **experiments** (the `repro` binary) are keyed by
//!   `(experiment id, scale, seed)` and store the fully rendered block,
//!   so resumed output is byte-identical to an uninterrupted run.
//!
//! # Journal format
//!
//! One record per line, CSV-shaped:
//!
//! ```text
//! <key>,<checksum>,<payload>
//! ```
//!
//! The key contains no commas, the checksum is the fixed-seed
//! [`moca_trace::fxhash`] of the escaped payload (16 hex digits), and
//! the payload — the *final* field, so embedded commas stay raw — has
//! newlines, carriage returns, and backslashes escaped. Records are
//! flushed as soon as the work completes; a process killed mid-write
//! leaves at most one torn final line, which fails the
//! checksum/format check and is ignored on reload. Corruption never
//! aborts a resume — an unreadable record is simply re-simulated.

use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use moca_core::L2Design;
use moca_trace::fxhash::{FxHashMap, FxHasher};
use moca_trace::AppProfile;

use crate::fanout::FanOut;
use crate::parallel::Jobs;
use crate::sweep::{csv_row, SweepPoint, CSV_HEADER};
use crate::telemetry::{self, Event};

/// Fixed-seed fingerprint of a byte string (journal checksums and
/// design identities).
fn fxhash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// A stable 64-bit identity for a design point, derived from its label
/// (the label encodes every design parameter; see
/// [`L2Design::label`]).
pub fn design_fingerprint(design: &L2Design) -> u64 {
    fxhash_bytes(design.label().as_bytes())
}

/// The journal key of one sweep point:
/// `(app fingerprint, design fingerprint, seed, refs)`.
pub fn point_key(app: &AppProfile, design: &L2Design, seed: u64, refs: usize) -> String {
    point_key_with_source(app.fingerprint(), design, seed, refs)
}

/// [`point_key`] with an explicit trace-source fingerprint.
///
/// For in-process generation the source fingerprint *is* the app
/// fingerprint, so the key is unchanged; a sweep replaying a registered
/// compiled trace keys by the file's
/// [`source fingerprint`](moca_trace::binfmt::TraceHeader::source_fingerprint)
/// instead — the same namespacing the chunk arena applies — so
/// file-backed points memoize and resume in their own identity space.
pub fn point_key_with_source(
    source_fingerprint: u64,
    design: &L2Design,
    seed: u64,
    refs: usize,
) -> String {
    format!(
        "pt:{source_fingerprint:016x}:{:016x}:{seed:016x}:{refs}",
        design_fingerprint(design),
    )
}

/// The journal key of one `repro` experiment at a given scale/seed.
pub fn experiment_key(id: &str, scale: &str, seed: u64) -> String {
    format!("exp:{id}:{scale}:{seed:016x}")
}

/// Escapes a payload into a single journal-line field (backslash,
/// newline, and carriage return become two-character escapes).
fn escape(payload: &str) -> String {
    let mut out = String::with_capacity(payload.len());
    for c in payload.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]; `None` on a malformed escape sequence (a sign
/// of a torn or corrupted record).
fn unescape(field: &str) -> Option<String> {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// An append-only, crash-tolerant journal of completed work.
///
/// See the [module docs](self) for the record format. Lookups are
/// in-memory ([`Journal::open`] loads every valid record); writes are
/// appended and flushed immediately so a `SIGKILL` loses at most the
/// record being written.
///
/// # Examples
///
/// ```
/// let dir = std::env::temp_dir().join(format!("moca-journal-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let mut journal = moca_sim::checkpoint::Journal::open(&dir)?;
/// journal.record("exp:F3:Quick:0", "rendered block\nwith, commas")?;
///
/// // A fresh handle sees the flushed record.
/// let reopened = moca_sim::checkpoint::Journal::open(&dir)?;
/// assert_eq!(reopened.get("exp:F3:Quick:0"), Some("rendered block\nwith, commas"));
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    entries: FxHashMap<String, String>,
    file: File,
}

impl Journal {
    /// File name of the journal inside its checkpoint directory.
    pub const FILE_NAME: &'static str = "journal.csv";

    /// Opens (creating if needed) the journal under `dir`, loading every
    /// valid existing record. Torn or corrupt lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns any error from creating the directory or opening/reading
    /// the journal file.
    pub fn open(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(Self::FILE_NAME);
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        let mut text = String::new();
        file.read_to_string(&mut text)?;
        let mut entries = FxHashMap::default();
        for line in text.split_inclusive('\n') {
            // A record is only durable once its newline landed; the
            // final line of a killed process may be torn — skip it.
            let Some(line) = line.strip_suffix('\n') else {
                continue;
            };
            let Some((key, checksum, payload)) = parse_record(line) else {
                continue;
            };
            if fxhash_bytes(payload.as_bytes()) != checksum {
                continue;
            }
            let Some(payload) = unescape(payload) else {
                continue;
            };
            entries.insert(key.to_string(), payload);
        }
        Ok(Self { path, entries, file })
    }

    /// Opens an existing journal for resumption.
    ///
    /// # Errors
    ///
    /// Unlike [`Journal::open`], fails with [`io::ErrorKind::NotFound`]
    /// when no journal file exists under `dir` — resuming from nothing
    /// is almost always a mistyped directory.
    pub fn resume(dir: &Path) -> io::Result<Self> {
        if !dir.join(Self::FILE_NAME).is_file() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no checkpoint journal at {}", dir.join(Self::FILE_NAME).display()),
            ));
        }
        Self::open(dir)
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of loaded + recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the journal holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded payload for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// `true` when `key` has a recorded payload.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Appends a record and flushes it to disk before returning, so a
    /// kill after `record` never loses the entry.
    ///
    /// Re-recording an existing key overwrites the in-memory entry and
    /// appends a superseding line (last record wins on reload) — with
    /// deterministic payloads both lines are identical anyway.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (e.g. full disk); the key is not
    /// added to the in-memory map in that case.
    ///
    /// # Panics
    ///
    /// Panics if `key` contains a comma, newline, or carriage return —
    /// keys are caller-controlled identifiers, never data.
    pub fn record(&mut self, key: &str, payload: &str) -> io::Result<()> {
        assert!(
            !key.contains([',', '\n', '\r']),
            "journal keys must be comma- and newline-free: {key:?}"
        );
        let escaped = escape(payload);
        let line = format!("{key},{:016x},{escaped}\n", fxhash_bytes(escaped.as_bytes()));
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.entries.insert(key.to_string(), payload.to_string());
        if telemetry::enabled() {
            telemetry::record(Event::Checkpoint {
                event: "append",
                key: key.to_string(),
            });
            telemetry::add("checkpoint_appends", 1);
        }
        Ok(())
    }

    /// Emits a telemetry `replay` event for `key` (no-op when telemetry
    /// is disabled). Callers invoke this at the point they serve a
    /// journal entry instead of simulating — [`Journal::get`] itself
    /// stays silent because it is also used for existence probes.
    pub fn note_replay(&self, key: &str) {
        if telemetry::enabled() {
            telemetry::record(Event::Checkpoint {
                event: "replay",
                key: key.to_string(),
            });
            telemetry::add("checkpoint_replays", 1);
        }
    }
}

/// Splits a journal line into `(key, checksum, escaped payload)`.
fn parse_record(line: &str) -> Option<(&str, u64, &str)> {
    let (key, rest) = line.split_once(',')?;
    let (checksum, payload) = rest.split_once(',')?;
    if key.is_empty() || checksum.len() != 16 {
        return None;
    }
    let checksum = u64::from_str_radix(checksum, 16).ok()?;
    Some((key, checksum, payload))
}

/// One point of a checkpointed sweep: either freshly simulated in this
/// run, or replayed verbatim from the journal.
#[derive(Debug, Clone)]
pub enum CheckpointedPoint<P> {
    /// Simulated by this run (and recorded to the journal). Boxed: a
    /// [`SweepPoint`] carries a full report (hundreds of bytes), which
    /// would otherwise dominate the size of every `Replayed` value too.
    Fresh(Box<SweepPoint<P>>),
    /// Completed by an earlier run; only the recorded CSV row is
    /// available (reconstructing a full [`SimReport`] is not needed to
    /// export results — and `row` is byte-identical to what this run
    /// would have produced).
    ///
    /// [`SimReport`]: crate::metrics::SimReport
    Replayed {
        /// The swept parameter value.
        param: P,
        /// The recorded CSV row (fields per [`CSV_HEADER`], `wall_ns`
        /// blanked).
        row: String,
    },
}

impl<P> CheckpointedPoint<P> {
    /// The swept parameter value.
    pub fn param(&self) -> &P {
        match self {
            CheckpointedPoint::Fresh(p) => &p.param,
            CheckpointedPoint::Replayed { param, .. } => param,
        }
    }

    /// The point's CSV row with the `wall_ns` column blanked — the
    /// checkpoint-stable rendering (wall time varies run to run; every
    /// other field is deterministic).
    pub fn row(&self) -> String {
        match self {
            CheckpointedPoint::Fresh(p) => csv_row(&p.report, 0),
            CheckpointedPoint::Replayed { row, .. } => row.clone(),
        }
    }

    /// `true` when the point was replayed from the journal.
    pub fn is_replayed(&self) -> bool {
        matches!(self, CheckpointedPoint::Replayed { .. })
    }
}

/// [`crate::sweep::sweep_parallel`] with journal-backed checkpointing:
/// points already recorded under this `(app, design, seed, refs)`
/// identity are skipped and replayed verbatim; the rest are simulated
/// (sharded over `jobs` on the shared-trace fan-out engine) and
/// recorded as they complete.
///
/// The concatenation of [`CheckpointedPoint::row`]s is **byte-identical
/// between an uninterrupted run and any kill/resume sequence** — rows
/// are deterministic once `wall_ns` is blanked, and the journal stores
/// exactly that rendering. See [`write_checkpoint_csv`].
///
/// # Errors
///
/// Returns any journal I/O error. Simulation itself uses the plain
/// (fail-fast) path: a panicking design point aborts with the panic
/// after completed points were already journaled, so a rerun resumes
/// past them.
///
/// # Examples
///
/// ```
/// use moca_sim::checkpoint::{sweep_checkpointed, Journal};
/// use moca_sim::parallel::Jobs;
/// use moca_core::L2Design;
/// use moca_trace::AppProfile;
///
/// let dir = std::env::temp_dir().join(format!("moca-ckpt-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let app = AppProfile::music();
/// let to_design = |&ways: &u32| L2Design::SharedSram { ways };
///
/// let mut journal = Journal::open(&dir)?;
/// let first = sweep_checkpointed(&mut journal, &[4u32, 8], to_design, &app, 10_000, 1, Jobs::SERIAL)?;
/// assert!(first.iter().all(|p| !p.is_replayed()));
///
/// // A second run (fresh process in real life) replays both points.
/// let mut journal = Journal::open(&dir)?;
/// let second = sweep_checkpointed(&mut journal, &[4u32, 8], to_design, &app, 10_000, 1, Jobs::SERIAL)?;
/// assert!(second.iter().all(|p| p.is_replayed()));
/// assert_eq!(first[0].row(), second[0].row());
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn sweep_checkpointed<P, F>(
    journal: &mut Journal,
    params: &[P],
    to_design: F,
    app: &AppProfile,
    refs: usize,
    seed: u64,
    jobs: Jobs,
) -> io::Result<Vec<CheckpointedPoint<P>>>
where
    P: Clone + Send + Sync,
    F: Fn(&P) -> L2Design + Sync,
{
    let designs: Vec<L2Design> = params.iter().map(to_design).collect();
    // Key by the trace source actually backing the streams: the app
    // fingerprint for generation, the file's source fingerprint when a
    // compiled trace is registered for this (app, seed).
    let source_fp = crate::replay::TraceRegistry::global()
        .lookup(app.fingerprint(), seed)
        .map(|s| s.source_fingerprint())
        .unwrap_or_else(|| app.fingerprint());
    let keys: Vec<String> = designs
        .iter()
        .map(|d| point_key_with_source(source_fp, d, seed, refs))
        .collect();
    let missing: Vec<usize> = (0..designs.len())
        .filter(|&i| !journal.contains(&keys[i]))
        .collect();
    let missing_designs: Vec<L2Design> = missing.iter().map(|&i| designs[i]).collect();

    let timed = FanOut::new(app, seed).run_timed_parallel(&missing_designs, refs, jobs);
    let mut fresh: FxHashMap<usize, SweepPoint<P>> = FxHashMap::default();
    for (&i, (report, wall_ns)) in missing.iter().zip(timed) {
        journal.record(&keys[i], &csv_row(&report, 0))?;
        fresh.insert(
            i,
            SweepPoint {
                param: params[i].clone(),
                report,
                wall_ns,
            },
        );
    }

    Ok((0..designs.len())
        .map(|i| match fresh.remove(&i) {
            Some(point) => CheckpointedPoint::Fresh(Box::new(point)),
            None => {
                journal.note_replay(&keys[i]);
                CheckpointedPoint::Replayed {
                    param: params[i].clone(),
                    row: journal
                        .get(&keys[i])
                        .expect("non-missing point has a journal entry")
                        .to_string(),
                }
            }
        })
        .collect())
}

/// Writes checkpointed sweep points as CSV (header + one
/// [`CheckpointedPoint::row`] per point).
///
/// Because rows blank `wall_ns`, the output is byte-identical whether
/// the sweep ran uninterrupted or was killed and resumed any number of
/// times.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_checkpoint_csv<P, W: Write>(
    mut writer: W,
    points: &[CheckpointedPoint<P>],
) -> io::Result<()> {
    writeln!(writer, "{CSV_HEADER}")?;
    for p in points {
        writeln!(writer, "{}", p.row())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "moca-checkpoint-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn escape_roundtrips_awkward_payloads() {
        for payload in [
            "plain",
            "with,commas,kept",
            "multi\nline\nblock",
            "back\\slash \\n literal",
            "\r\n mixed \\ everything, here\n",
            "",
        ] {
            let esc = escape(payload);
            assert!(!esc.contains('\n') && !esc.contains('\r'), "{esc:?}");
            assert_eq!(unescape(&esc).as_deref(), Some(payload));
        }
        assert_eq!(unescape("bad \\x escape"), None);
        assert_eq!(unescape("trailing \\"), None);
    }

    #[test]
    fn journal_roundtrips_across_reopen() {
        let dir = temp_dir("roundtrip");
        let mut j = Journal::open(&dir).expect("open");
        assert!(j.is_empty());
        j.record("k1", "payload one").expect("record");
        j.record("k2", "line1\nline2, with comma").expect("record");
        assert_eq!(j.len(), 2);

        let j2 = Journal::open(&dir).expect("reopen");
        assert_eq!(j2.len(), 2);
        assert_eq!(j2.get("k1"), Some("payload one"));
        assert_eq!(j2.get("k2"), Some("line1\nline2, with comma"));
        assert!(!j2.contains("k3"));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn torn_and_corrupt_lines_are_skipped() {
        let dir = temp_dir("torn");
        let mut j = Journal::open(&dir).expect("open");
        j.record("good", "kept").expect("record");
        let path = j.path().to_path_buf();
        drop(j);

        // Simulate a SIGKILL mid-write (torn final line, no newline) plus
        // assorted corruption.
        let mut f = OpenOptions::new().append(true).open(&path).expect("append");
        f.write_all(b"not-a-record\n").expect("write");
        f.write_all(b"badsum,0000000000000000,payload\n").expect("write");
        f.write_all(b"torn,00000000").expect("write");
        drop(f);

        let j = Journal::open(&dir).expect("reopen");
        assert_eq!(j.len(), 1);
        assert_eq!(j.get("good"), Some("kept"));

        // The journal stays appendable after corruption.
        let mut j = Journal::open(&dir).expect("reopen again");
        j.record("after", "still works").expect("record");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn resume_requires_an_existing_journal() {
        let dir = temp_dir("resume-missing");
        let err = Journal::resume(&dir).expect_err("missing journal");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let _ = Journal::open(&dir).expect("open creates");
        Journal::resume(&dir).expect("resume after create");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    #[should_panic(expected = "comma- and newline-free")]
    fn keys_with_commas_are_rejected() {
        let dir = temp_dir("badkey");
        let mut j = Journal::open(&dir).expect("open");
        let _ = j.record("a,b", "x");
    }

    #[test]
    fn point_keys_separate_every_identity_component() {
        let app = AppProfile::music();
        let other_app = AppProfile::game();
        let d1 = L2Design::baseline();
        let d2 = L2Design::static_default();
        let base = point_key(&app, &d1, 1, 1000);
        assert_ne!(base, point_key(&other_app, &d1, 1, 1000), "app");
        assert_ne!(base, point_key(&app, &d2, 1, 1000), "design");
        assert_ne!(base, point_key(&app, &d1, 2, 1000), "seed");
        assert_ne!(base, point_key(&app, &d1, 1, 2000), "refs");
        assert_eq!(base, point_key(&app, &d1, 1, 1000), "stable");
    }

    #[test]
    fn checkpointed_sweep_resumes_byte_identically() {
        let app = AppProfile::game();
        let to_design = |&w: &u32| L2Design::SharedSram { ways: w };
        let params = [2u32, 4, 8];
        let refs = 12_000;

        // Uninterrupted reference run.
        let dir_a = temp_dir("sweep-a");
        let mut ja = Journal::open(&dir_a).expect("open");
        let full =
            sweep_checkpointed(&mut ja, &params, to_design, &app, refs, 3, Jobs::SERIAL)
                .expect("run");
        let mut csv_full = Vec::new();
        write_checkpoint_csv(&mut csv_full, &full).expect("csv");

        // "Killed" run: only the first point completed before the kill.
        let dir_b = temp_dir("sweep-b");
        let mut jb = Journal::open(&dir_b).expect("open");
        let partial = sweep_checkpointed(
            &mut jb,
            &params[..1],
            to_design,
            &app,
            refs,
            3,
            Jobs::SERIAL,
        )
        .expect("partial");
        assert_eq!(partial.len(), 1);
        drop(jb);

        // Resume with the full parameter list: point 0 replays, 1..2 run.
        let mut jb = Journal::resume(&dir_b).expect("resume");
        let resumed =
            sweep_checkpointed(&mut jb, &params, to_design, &app, refs, 3, Jobs::new(2))
                .expect("resumed");
        assert!(resumed[0].is_replayed());
        assert!(!resumed[1].is_replayed() && !resumed[2].is_replayed());
        let mut csv_resumed = Vec::new();
        write_checkpoint_csv(&mut csv_resumed, &resumed).expect("csv");

        assert_eq!(
            csv_full, csv_resumed,
            "kill/resume must reproduce the uninterrupted CSV byte-for-byte"
        );

        // A third run replays everything without simulating.
        let mut jb = Journal::resume(&dir_b).expect("resume");
        let replayed =
            sweep_checkpointed(&mut jb, &params, to_design, &app, refs, 3, Jobs::SERIAL)
                .expect("replay");
        assert!(replayed.iter().all(CheckpointedPoint::is_replayed));

        std::fs::remove_dir_all(&dir_a).expect("cleanup");
        std::fs::remove_dir_all(&dir_b).expect("cleanup");
    }

    #[test]
    fn record_failure_surfaces_io_error() {
        let dir = temp_dir("io-error");
        let mut j = Journal::open(&dir).expect("open");
        j.record("k", "v").expect("record");
        // Reopen the handle read-only behind the journal's back by
        // swapping the file for a directory is platform-dependent;
        // instead exercise the error path through a full write to a
        // closed pipe-like sink at the csv layer.
        let mut sink = moca_testkit::ShortWriter::new(4);
        let err = write_checkpoint_csv(
            &mut sink,
            &[CheckpointedPoint::Replayed {
                param: 1u32,
                row: "x".repeat(64),
            }],
        )
        .expect_err("short write must error");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
