//! Structured errors for fault-tolerant sweep execution.
//!
//! The isolated sweep runners ([`crate::fanout::FanOut::run_isolated`],
//! [`crate::sweep::sweep_isolated`], and friends) never abort a whole
//! sweep because one design point is bad: each point's failure is
//! captured as a [`SweepPointError`] carrying the point's position in
//! the sweep, its design label, and a structured [`PointCause`]. The
//! cause is either a build-time rejection (the design or geometry failed
//! validation) or a caught panic from inside the simulation.
//!
//! Failure values are **deterministic**: a given bad design point
//! produces the same `SweepPointError` — byte-identical `Display`
//! rendering included — for every worker-thread count, so the failed
//! point *set* of a sweep is part of the determinism contract pinned by
//! `crates/sim/tests/fault_tolerance.rs`.

use std::fmt;

use crate::system::BuildSystemError;

/// Why one sweep point failed.
#[derive(Debug, Clone)]
pub enum PointCause {
    /// The design point was rejected while assembling its [`System`]
    /// (invalid design or cache geometry).
    ///
    /// [`System`]: crate::system::System
    Build(BuildSystemError),
    /// The simulation panicked; the payload message is preserved.
    Panic(String),
}

impl fmt::Display for PointCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointCause::Build(e) => write!(f, "build failed: {e}"),
            PointCause::Panic(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

/// Failure of one design point inside a sweep.
///
/// # Examples
///
/// ```
/// use moca_core::L2Design;
/// use moca_sim::sweep::sweep_isolated;
/// use moca_trace::AppProfile;
///
/// // ways = 0 is invalid; the other point still completes.
/// let points = sweep_isolated(
///     &[0u32, 4],
///     |&ways| L2Design::SharedSram { ways },
///     &AppProfile::music(),
///     10_000,
///     1,
/// );
/// let err = points[0].as_ref().unwrap_err();
/// assert_eq!(err.index, 0);
/// assert!(err.to_string().contains("build failed"));
/// assert!(points[1].is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct SweepPointError {
    /// Position of the failed point in the sweep's input order.
    pub index: usize,
    /// The design's human-readable label ([`moca_core::L2Design::label`]).
    pub label: String,
    /// What went wrong.
    pub cause: PointCause,
}

impl fmt::Display for SweepPointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep point {} ({}): {}", self.index, self.label, self.cause)
    }
}

impl std::error::Error for SweepPointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.cause {
            PointCause::Build(e) => Some(e),
            PointCause::Panic(_) => None,
        }
    }
}

impl SweepPointError {
    /// A stable one-line identity used to compare failed-point *sets*
    /// across job counts: `index`, `label`, and the rendered cause.
    pub fn identity(&self) -> String {
        self.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_core::DesignError;

    fn sample() -> SweepPointError {
        SweepPointError {
            index: 3,
            label: "SRAM-shared-0w".into(),
            cause: PointCause::Build(BuildSystemError::Design(DesignError::ZeroWays(
                "shared cache",
            ))),
        }
    }

    #[test]
    fn display_carries_index_label_and_cause() {
        let e = sample();
        let s = e.to_string();
        assert!(s.contains("point 3"), "{s}");
        assert!(s.contains("SRAM-shared-0w"), "{s}");
        assert!(s.contains("build failed"), "{s}");
        assert_eq!(e.identity(), s);
    }

    #[test]
    fn source_chains_to_build_error() {
        use std::error::Error;
        assert!(sample().source().is_some());
        let p = SweepPointError {
            index: 0,
            label: "x".into(),
            cause: PointCause::Panic("boom".into()),
        };
        assert!(p.source().is_none());
        assert!(p.to_string().contains("panicked: boom"));
    }
}
