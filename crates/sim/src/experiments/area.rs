//! A1 (extension) — silicon area of the compared designs.
//!
//! Not a figure of the original evaluation, but a direct corollary the
//! paper invokes: MTJ cells are ~3× denser than 6T SRAM, so the proposed
//! designs shrink the L2 macro as well as its energy. Area is computed
//! from the *physical* arrays — a dynamic design must lay out all
//! `max_ways` even though it power-gates most of them.

use moca_core::L2Design;
use moca_energy::{bank_area_mm2, RetentionClass, Technology};

use crate::experiments::matrix::headline_designs;
use crate::experiments::{ClaimCheck, ExperimentResult};
use crate::parallel::Jobs;
use crate::table::Table;
use crate::workloads::Scale;

/// Bytes per way of the default L2 substrate (2048 sets × 64 B).
const WAY_BYTES: u64 = 2048 * 64;

fn physical_bank(design: &L2Design) -> Technology {
    let ways = design.physical_ways();
    let capacity = WAY_BYTES * u64::from(ways);
    match design {
        L2Design::SharedSram { .. }
        | L2Design::StaticSram { .. }
        | L2Design::DynamicSram { .. } => Technology::sram(capacity, ways),
        L2Design::SharedStt { retention, .. } => Technology::sttram(capacity, ways, *retention),
        L2Design::StaticMultiRetention { user_retention, .. } => {
            Technology::sttram(capacity, ways, *user_retention)
        }
        L2Design::DynamicStt { user_retention, .. } => {
            Technology::sttram(capacity, ways, *user_retention)
        }
    }
}

/// Runs the experiment (pure computation; `scale` and `jobs` are unused
/// but kept for interface uniformity).
pub fn run(_scale: Scale, _jobs: Jobs) -> ExperimentResult {
    let mut table = Table::new(vec![
        "design",
        "physical array",
        "cell type",
        "area (mm^2)",
        "vs baseline",
    ]);
    let designs = headline_designs();
    let baseline_area = bank_area_mm2(&physical_bank(&designs[0]));
    let mut areas = Vec::new();
    for d in &designs {
        let bank = physical_bank(d);
        let area = bank_area_mm2(&bank);
        areas.push(area);
        table.row(vec![
            d.label(),
            format!(
                "{} KiB ({} ways)",
                WAY_BYTES * u64::from(d.physical_ways()) / 1024,
                d.physical_ways()
            ),
            match bank {
                Technology::Sram(_) => "SRAM 6T".to_string(),
                Technology::SttRam(_) => "STT-RAM 1T1MTJ".to_string(),
            },
            format!("{area:.2}"),
            format!("{:.2}x", area / baseline_area),
        ]);
    }

    // Reference point: an STT-RAM array of the full baseline capacity.
    let full_stt = Technology::sttram(16 * WAY_BYTES, 16, RetentionClass::TenMillis);
    table.row(vec![
        "(2 MiB STT-RAM reference)".into(),
        "2048 KiB (16 ways)".into(),
        "STT-RAM 1T1MTJ".into(),
        format!("{:.2}", bank_area_mm2(&full_stt)),
        format!("{:.2}x", bank_area_mm2(&full_stt) / baseline_area),
    ]);

    let static_rel = areas[2] / baseline_area;
    let dynamic_rel = areas[3] / baseline_area;
    let claims = vec![
        ClaimCheck {
            claim: "A1",
            target: "static MR-STT design uses < 0.30x the baseline macro area".into(),
            measured: format!("{static_rel:.2}x"),
            pass: static_rel < 0.30,
        },
        ClaimCheck {
            claim: "A1",
            target: "dynamic design (full 16-way STT array) uses < 0.40x baseline area".into(),
            measured: format!("{dynamic_rel:.2}x"),
            pass: dynamic_rel < 0.40,
        },
    ];
    ExperimentResult {
        id: "A1",
        title: "Silicon area of the physical L2 arrays (extension)",
        table: table.render(),
        summary: format!(
            "Beyond energy, the STT-RAM designs shrink the L2 macro: the shrunk static \
             partition occupies {:.2}x and even the dynamic design's full 16-way array \
             only {:.2}x of the baseline SRAM area (MTJ cells are ~3x denser).",
            static_rel, dynamic_rel
        ),
        claims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_claims_hold() {
        let r = run(Scale::Quick, Jobs::SERIAL);
        assert!(r.passed(), "claims failed:\n{}", r.render());
        assert!(r.table.contains("STT-RAM"));
        assert!(r.table.contains("SRAM 6T"));
    }

    #[test]
    fn baseline_row_is_unity() {
        let r = run(Scale::Quick, Jobs::SERIAL);
        assert!(r.table.contains("1.00x"));
    }
}
