//! A6 (extension) — energy savings versus die temperature.
//!
//! Phones are passively cooled and routinely run hot. Sub-threshold SRAM
//! leakage roughly doubles every 25 °C, while STT-RAM's MTJ cells do not
//! leak at all — so the paper's designs save *more* on a hot die. This
//! study sweeps the die temperature and reports the static design's
//! saving at each point.

use moca_core::{L2BaseParams, L2Design, MobileL2};
use moca_energy::Temperature;
use moca_trace::AppProfile;

use moca_cache::L1Pair;

use crate::experiments::{ClaimCheck, ExperimentResult};
use crate::fanout::TraceStream;
use crate::parallel::{parallel_map, Jobs};
use crate::table::{pct, Table};
use crate::workloads::{Scale, EXPERIMENT_SEED};

/// App used for the temperature sweep.
pub const APP: &str = "office";

/// Die temperatures swept (°C).
pub const SWEEP_C: [f64; 4] = [35.0, 60.0, 85.0, 110.0];

/// Runs one design at one temperature (a small in-module runner so we can
/// set `L2BaseParams::temperature`, which `SystemConfig` does not expose).
fn run_at(design: L2Design, temp_c: f64, refs: usize) -> (f64, f64) {
    let params = L2BaseParams {
        temperature: Temperature::from_celsius(temp_c),
        ..L2BaseParams::default()
    };
    let app = AppProfile::by_name(APP).expect("known app");
    let mut l1 = L1Pair::mobile_default();
    let mut l2 = MobileL2::new(design, params).expect("valid design");
    let mut now = 0u64;
    // Every (temperature, design) cell replays the same (app, seed)
    // stream, so after the first cell the chunks come from the arena.
    let mut stream = TraceStream::new(&app, EXPERIMENT_SEED);
    let mut left = refs;
    while left > 0 {
        let chunk = stream.next_chunk();
        let n = chunk.len().min(left);
        for a in &chunk[..n] {
            now += 2;
            let out = l1.filter(a, now);
            for req in [out.demand, out.writeback].into_iter().flatten() {
                let resp = l2.request(&req, now);
                if resp.dram_read {
                    now += 120;
                }
            }
        }
        left -= n;
    }
    l2.finalize(now);
    let e = l2.energy();
    (e.total().joules(), e.leakage_fraction())
}

/// Runs the experiment, sharding the temperature × design grid over
/// `jobs` threads.
pub fn run(scale: Scale, jobs: Jobs) -> ExperimentResult {
    let refs = scale.sweep_refs();
    let mut table = Table::new(vec![
        "die temperature",
        "baseline leak share",
        "static MR saving",
    ]);
    let mut savings = Vec::new();
    let cells: Vec<(f64, L2Design)> = SWEEP_C
        .iter()
        .flat_map(|&c| {
            [L2Design::baseline(), L2Design::static_default()]
                .into_iter()
                .map(move |d| (c, d))
        })
        .collect();
    let results = parallel_map(jobs, cells, |(c, design)| run_at(design, c, refs));
    for (&c, row) in SWEEP_C.iter().zip(results.chunks(2)) {
        let (base_j, base_leak) = row[0];
        let (stat_j, _) = row[1];
        let saving = 1.0 - stat_j / base_j;
        savings.push(saving);
        table.row(vec![format!("{c:.0} C"), pct(base_leak), pct(saving)]);
    }

    let monotone = savings.windows(2).all(|w| w[1] >= w[0] - 1e-9);
    let cold = savings[0];
    let hot = *savings.last().expect("non-empty");
    let claims = vec![ClaimCheck {
        claim: "A6",
        target: "the static design's saving grows monotonically with die temperature".into(),
        measured: format!("{} at 35 C -> {} at 110 C", pct(cold), pct(hot)),
        pass: monotone && hot > cold,
    }];
    ExperimentResult {
        id: "A6",
        title: "Energy savings vs die temperature (extension)",
        table: table.render(),
        summary: format!(
            "SRAM leakage doubles every ~25 C while MTJ cells never leak, so the \
             static multi-retention design's saving climbs from {} on a cool die to \
             {} on a hot one — thermal headroom is another axis on which the paper's \
             designs win.",
            pct(cold),
            pct(hot)
        ),
        claims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_grow_with_temperature() {
        let r = run(Scale::Quick, Jobs::available());
        assert!(r.passed(), "claims failed:\n{}", r.render());
        assert!(r.table.contains("110 C"));
    }
}
