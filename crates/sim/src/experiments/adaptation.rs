//! F7 — dynamic partition adaptation over time.
//!
//! Reproduces claim C6: the dynamic controller minimizes the active cache
//! size, repartitioning the user/kernel segments each epoch and power-gating
//! unused ways. The table samples the allocation timeline of two
//! representative apps.

use moca_core::L2Design;
use moca_trace::AppProfile;

use crate::experiments::{ClaimCheck, ExperimentResult};
use crate::parallel::{parallel_map, Jobs};
use crate::table::Table;
use crate::workloads::{run_app, Scale, EXPERIMENT_SEED};

/// Apps shown in the timeline table.
pub const TIMELINE_APPS: [&str; 2] = ["browser", "camera"];

/// Timeline samples shown per app.
const SAMPLES: usize = 12;

/// Runs the experiment, sharding the timeline simulations over `jobs`
/// threads.
pub fn run(scale: Scale, jobs: Jobs) -> ExperimentResult {
    let mut table = Table::new(vec!["app", "time (ms)", "user ways", "kernel ways", "total"]);
    let mut mean_ways = Vec::new();
    let mut changes = Vec::new();
    let runs = parallel_map(jobs, TIMELINE_APPS.to_vec(), |name| {
        let app = AppProfile::by_name(name).expect("known app");
        run_app(&app, L2Design::dynamic_default(), scale.refs(), EXPERIMENT_SEED)
    });
    for (name, r) in TIMELINE_APPS.iter().zip(&runs) {
        mean_ways.push(r.mean_active_ways);
        changes.push(r.timeline.len().saturating_sub(1));
        let step = (r.timeline.len() / SAMPLES).max(1);
        for s in r.timeline.iter().step_by(step) {
            table.row(vec![
                name.to_string(),
                format!("{:.2}", s.cycle as f64 / (r.clock_ghz * 1e6)),
                s.user_ways.to_string(),
                s.kernel_ways.to_string(),
                (s.user_ways + s.kernel_ways).to_string(),
            ]);
        }
    }
    let mean = mean_ways.iter().sum::<f64>() / mean_ways.len() as f64;
    let total_changes: usize = changes.iter().sum();

    let claims = vec![
        ClaimCheck {
            claim: "C6",
            target: "dynamic design power-gates capacity (time-weighted mean < 16 ways)".into(),
            measured: format!("{mean:.1} mean active ways"),
            pass: mean < 16.0,
        },
        ClaimCheck {
            claim: "C6",
            target: "allocation actually adapts over time (> 3 repartitions)".into(),
            measured: format!("{total_changes} repartitions"),
            pass: total_changes > 3,
        },
    ];
    ExperimentResult {
        id: "F7",
        title: "Dynamic partition adaptation (active ways over time)",
        table: table.render(),
        summary: format!(
            "Starting from an even 8+8 split, the controller shrinks each segment to \
             the smallest allocation that preserves its hits and tracks phase changes; \
             the time-weighted mean is {mean:.1} active ways (of 16), with unused ways \
             power-gated."
        ),
        claims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_adapts() {
        let r = run(Scale::Quick, Jobs::available());
        assert!(r.passed(), "claims failed:\n{}", r.render());
        assert!(r.table.contains("browser"));
    }
}
