//! A2 (extension) — way partitioning versus set partitioning.
//!
//! The paper partitions by *ways*; the natural alternative is
//! partitioning by *sets* (two independent arrays with full
//! associativity). This ablation compares the two at equal total capacity
//! (1.5 MiB: 8u+4k ways vs 1 MiB + 512 KiB arrays) and shows why the
//! way-based choice is the right substrate for the dynamic technique —
//! it performs comparably while being resizable at way granularity.

use moca_cache::L1Pair;
use moca_core::{L2BaseParams, L2Design, SetPartitionedL2};
use moca_trace::AppProfile;

use crate::config::SystemConfig;
use crate::cpu::InOrderCore;
use crate::experiments::{ClaimCheck, ExperimentResult};
use crate::fanout::{fan_out, TraceStream};
use crate::parallel::{parallel_map, Jobs};
use crate::table::{f3, Table};
use crate::workloads::{Scale, EXPERIMENT_SEED};

/// Apps compared.
pub const APPS: [&str; 4] = ["browser", "video", "music", "office"];

/// Runs a set-partitioned configuration through the L1s and core model
/// (the standard [`System`](crate::system::System) drives `MobileL2`, so
/// this experiment has its own small runner).
fn run_set_partitioned(app: &AppProfile, refs: usize) -> (f64, f64, u64) {
    let cfg = SystemConfig::default();
    let mut core = InOrderCore::new(cfg.base_cycles_per_ref);
    let mut l1 = L1Pair::mobile_default();
    let mut l2 = SetPartitionedL2::new(1024, 512, 16, &L2BaseParams::default())
        .expect("static geometry is valid");
    let mut stream = TraceStream::new(app, EXPERIMENT_SEED);
    let mut left = refs;
    while left > 0 {
        let chunk = stream.next_chunk();
        let n = chunk.len().min(left);
        for a in &chunk[..n] {
            let now = core.cycle();
            let out = l1.filter(a, now);
            let mut stall = 0;
            if let Some(d) = out.demand {
                let resp = l2.request(&d, now);
                stall = resp.latency_cycles
                    + if resp.dram_read {
                        cfg.dram_latency_cycles
                    } else {
                        0
                    };
            }
            if let Some(wb) = out.writeback {
                l2.request(&wb, now);
            }
            core.retire(stall);
        }
        left -= n;
    }
    l2.finalize(core.cycle());
    let miss = l2.stats().miss_rate();
    let cpr = core.cycle() as f64 / core.refs() as f64;
    (miss, cpr, core.cycle())
}

/// Runs the experiment, sharding the per-app comparison runs over `jobs`
/// threads.
pub fn run(scale: Scale, jobs: Jobs) -> ExperimentResult {
    let refs = scale.sweep_refs();
    let mut table = Table::new(vec![
        "app",
        "way-part miss (8u+4k)",
        "set-part miss (1M/512K)",
        "way-part slowdown",
        "set-part slowdown",
    ]);
    let way_design = L2Design::StaticSram {
        user_ways: 8,
        kernel_ways: 4,
    };
    let mut way_miss_sum = 0.0;
    let mut set_miss_sum = 0.0;
    let runs = parallel_map(jobs, APPS.to_vec(), |name| {
        let app = AppProfile::by_name(name).expect("known app");
        // Baseline and way-partitioned share one trace pass; the
        // set-partitioned runner replays the same chunks from the arena.
        let mut pair = fan_out(&app, &[L2Design::baseline(), way_design], refs, EXPERIMENT_SEED);
        let way = pair.pop().expect("two designs");
        let base = pair.pop().expect("two designs");
        let set = run_set_partitioned(&app, refs);
        (base, way, set)
    });
    for (name, (base, way, (set_miss, set_cpr, _))) in APPS.iter().zip(runs) {
        way_miss_sum += way.l2_miss_rate();
        set_miss_sum += set_miss;
        table.row(vec![
            name.to_string(),
            f3(way.l2_miss_rate()),
            f3(set_miss),
            f3(way.slowdown_vs(&base)),
            f3(set_cpr / base.cpr()),
        ]);
    }
    let n = APPS.len() as f64;
    let (way_mean, set_mean) = (way_miss_sum / n, set_miss_sum / n);

    let claims = vec![ClaimCheck {
        claim: "A2",
        target: "way partitioning performs within 0.02 absolute miss rate of set partitioning at equal capacity".into(),
        measured: format!("way {way_mean:.3} vs set {set_mean:.3}"),
        pass: (way_mean - set_mean).abs() < 0.02,
    }];
    ExperimentResult {
        id: "A2",
        title: "Way vs set partitioning at equal capacity (extension)",
        table: table.render(),
        summary: format!(
            "At 1.5 MiB total, way partitioning (mean miss {way_mean:.3}) and set \
             partitioning (mean miss {set_mean:.3}) are nearly equivalent — so choosing \
             ways costs nothing, and only ways can be re-assigned at runtime, which the \
             dynamic technique requires."
        ),
        claims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_styles_are_comparable() {
        let r = run(Scale::Quick, Jobs::available());
        assert!(r.passed(), "claims failed:\n{}", r.render());
        assert!(r.table.contains("browser"));
    }
}
