//! A5 (extension) — next-line prefetching on top of the paper's designs.
//!
//! Mobile workloads carry heavy streaming tails (file reads, frame
//! buffers), which a trivial next-line prefetcher converts from misses to
//! hits. The study asks whether prefetching changes the paper's picture:
//! it reduces stalls on every design, but *increases* L2 fill energy and
//! DRAM traffic — and on STT-RAM each prefetch fill is an expensive
//! write, so the energy story is design-dependent.

use moca_core::L2Design;
use moca_trace::AppProfile;

use crate::config::SystemConfig;
use crate::experiments::{ClaimCheck, ExperimentResult};
use crate::metrics::SimReport;
use crate::parallel::{parallel_map, Jobs};
use crate::system::System;
use crate::table::{f3, Table};
use crate::workloads::{Scale, EXPERIMENT_SEED};

/// Streaming-heavy apps where a next-line prefetcher matters most.
pub const APPS: [&str; 3] = ["video", "camera", "maps"];

fn run(app: &AppProfile, design: L2Design, refs: usize, prefetch: bool) -> SimReport {
    let cfg = SystemConfig {
        l2_next_line_prefetch: prefetch,
        ..SystemConfig::default()
    };
    let mut sys = System::new(app.name, design, cfg).expect("valid design");
    let mut gen = moca_trace::TraceGenerator::new(app, EXPERIMENT_SEED);
    sys.run_generated(&mut gen, refs);
    sys.finish()
}

/// Runs the experiment, sharding the app × design on/off pairs over
/// `jobs` threads.
pub fn run_experiment(scale: Scale, jobs: Jobs) -> ExperimentResult {
    let refs = scale.sweep_refs();
    let mut table = Table::new(vec![
        "app / design",
        "demand miss (no pf)",
        "demand miss (pf)",
        "speedup from pf",
        "energy cost of pf",
    ]);
    let mut speedups = Vec::new();
    let mut miss_drops = Vec::new();
    let cells: Vec<(&str, L2Design)> = APPS
        .iter()
        .flat_map(|&name| {
            [L2Design::baseline(), L2Design::static_default()]
                .into_iter()
                .map(move |design| (name, design))
        })
        .collect();
    let pairs = parallel_map(jobs, cells, |(name, design)| {
        let app = AppProfile::by_name(name).expect("known app");
        let off = run(&app, design, refs, false);
        let on = run(&app, design, refs, true);
        (name, design, off, on)
    });
    for (name, design, off, on) in pairs {
        let speedup = off.cpr() / on.cpr();
        let energy_ratio = on.l2_energy.normalized_to(&off.l2_energy);
        speedups.push(speedup);
        miss_drops.push(off.l2_demand_miss_rate() - on.l2_demand_miss_rate());
        table.row(vec![
            format!("{name} / {}", design.label()),
            f3(off.l2_demand_miss_rate()),
            f3(on.l2_demand_miss_rate()),
            f3(speedup),
            f3(energy_ratio),
        ]);
    }
    let mean_speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let mean_drop = miss_drops.iter().sum::<f64>() / miss_drops.len() as f64;

    let claims = vec![
        ClaimCheck {
            claim: "A5",
            target: "next-line prefetching lowers the demand miss rate on streaming apps (mean drop > 0.02)".into(),
            measured: format!("{mean_drop:+.3}"),
            pass: mean_drop > 0.02,
        },
        ClaimCheck {
            claim: "A5",
            target: "prefetching speeds execution up (mean speedup > 1.0)".into(),
            measured: f3(mean_speedup),
            pass: mean_speedup > 1.0,
        },
    ];
    ExperimentResult {
        id: "A5",
        title: "Next-line prefetching on the paper's designs (extension)",
        table: table.render(),
        summary: format!(
            "A trivial next-line prefetcher cuts the miss rate of streaming apps by \
             {:.1} points and speeds execution up {:.1}% on average, at the cost of \
             extra fill energy (the last column; on STT-RAM each prefetch is an \
             expensive write). The paper's conclusions are orthogonal: prefetching \
             helps baseline and proposed designs alike.",
            mean_drop * 100.0,
            (mean_speedup - 1.0) * 100.0
        ),
        claims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_helps_streaming_apps() {
        let r = run_experiment(Scale::Quick, Jobs::available());
        assert!(r.passed(), "claims failed:\n{}", r.render());
        assert!(r.table.contains("video"));
    }
}
