//! The reproduced evaluation: one module per figure/table of `DESIGN.md`'s
//! experiment index.
//!
//! Every experiment returns an [`ExperimentResult`] containing the
//! rendered data table, a prose summary, and machine-checkable
//! [`ClaimCheck`]s against the paper's abstract-level claims (C1–C8 in
//! `DESIGN.md`). The `repro` binary runs them all and regenerates the
//! data behind `EXPERIMENTS.md`.

pub mod adaptation;
pub mod area;
pub mod behavior;
pub mod duty_cycle;
pub mod energy_table;
pub mod hybrid_study;
pub mod interference;
pub mod kernel_share;
pub mod matrix;
pub mod multitask;
pub mod partition_style;
pub mod performance;
pub mod prefetch_study;
pub mod retention_sweep;
pub mod sensitivity;
pub mod static_sweep;
pub mod temperature;

use crate::parallel::Jobs;
use crate::workloads::Scale;

/// A paper claim checked against measured data.
#[derive(Debug, Clone)]
pub struct ClaimCheck {
    /// Claim id from `DESIGN.md` (e.g. `"C1"`).
    pub claim: &'static str,
    /// What the paper states / the reproduction targets.
    pub target: String,
    /// What this run measured.
    pub measured: String,
    /// Whether the measurement satisfies the target band.
    pub pass: bool,
}

impl std::fmt::Display for ClaimCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}: target {}, measured {}",
            if self.pass { "PASS" } else { "FAIL" },
            self.claim,
            self.target,
            self.measured
        )
    }
}

/// Output of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id from the `DESIGN.md` index (e.g. `"F1"`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Rendered data table(s).
    pub table: String,
    /// One-paragraph interpretation.
    pub summary: String,
    /// Claim checks.
    pub claims: Vec<ClaimCheck>,
}

impl ExperimentResult {
    /// `true` when every claim check passed.
    pub fn passed(&self) -> bool {
        self.claims.iter().all(|c| c.pass)
    }

    /// Renders the full experiment block (title, table, summary, claims).
    pub fn render(&self) -> String {
        let mut out = format!(
            "## {} — {}\n\n{}\n{}\n",
            self.id, self.title, self.table, self.summary
        );
        for c in &self.claims {
            out.push_str(&format!("{c}\n"));
        }
        out.push('\n');
        out
    }
}

/// Runs the complete experiment suite.
///
/// The design-matrix runs (T2/F6 share them) are executed once and
/// reused. Each experiment shards its independent simulations over
/// `jobs` threads; output is bit-identical for every job count. This is
/// the entry point of the `repro` binary.
pub fn all(scale: Scale, jobs: Jobs) -> Vec<ExperimentResult> {
    let m = matrix::run_matrix(scale, jobs);
    vec![
        kernel_share::run(scale, jobs),
        interference::run(scale, jobs),
        static_sweep::run(scale, jobs),
        behavior::run(scale, jobs),
        retention_sweep::run(scale, jobs),
        energy_table::from_matrix(&m),
        performance::from_matrix(&m),
        adaptation::run(scale, jobs),
        sensitivity::run(scale, jobs),
        area::run(scale, jobs),
        partition_style::run(scale, jobs),
        hybrid_study::run(scale, jobs),
        duty_cycle::run(scale, jobs),
        prefetch_study::run_experiment(scale, jobs),
        temperature::run(scale, jobs),
        multitask::run(scale, jobs),
    ]
}

/// Looks up and runs a single experiment by id (`"F1"`, `"T2"`, ...).
///
/// Returns `None` for an unknown id.
pub fn by_id(id: &str, scale: Scale, jobs: Jobs) -> Option<ExperimentResult> {
    match id.to_ascii_uppercase().as_str() {
        "F1" => Some(kernel_share::run(scale, jobs)),
        "F2" => Some(interference::run(scale, jobs)),
        "F3" => Some(static_sweep::run(scale, jobs)),
        "F4" => Some(behavior::run(scale, jobs)),
        "F5" => Some(retention_sweep::run(scale, jobs)),
        "T2" => Some(energy_table::from_matrix(&matrix::run_matrix(scale, jobs))),
        "F6" => Some(performance::from_matrix(&matrix::run_matrix(scale, jobs))),
        "F7" => Some(adaptation::run(scale, jobs)),
        "F8" => Some(sensitivity::run(scale, jobs)),
        "A1" => Some(area::run(scale, jobs)),
        "A2" => Some(partition_style::run(scale, jobs)),
        "A3" => Some(hybrid_study::run(scale, jobs)),
        "A4" => Some(duty_cycle::run(scale, jobs)),
        "A5" => Some(prefetch_study::run_experiment(scale, jobs)),
        "A6" => Some(temperature::run(scale, jobs)),
        "A7" => Some(multitask::run(scale, jobs)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_check_display() {
        let c = ClaimCheck {
            claim: "C1",
            target: ">40%".into(),
            measured: "46%".into(),
            pass: true,
        };
        let s = c.to_string();
        assert!(s.contains("PASS") && s.contains("C1"));
    }

    #[test]
    fn experiment_result_render_and_pass() {
        let r = ExperimentResult {
            id: "F0",
            title: "smoke",
            table: "a b\n---\n1 2\n".into(),
            summary: "fine.".into(),
            claims: vec![ClaimCheck {
                claim: "C0",
                target: "t".into(),
                measured: "m".into(),
                pass: false,
            }],
        };
        assert!(!r.passed());
        let s = r.render();
        assert!(s.contains("## F0") && s.contains("FAIL"));
    }

    #[test]
    fn by_id_rejects_unknown() {
        assert!(by_id("F99", Scale::Quick, Jobs::SERIAL).is_none());
    }
}
