//! A7 (extension) — multi-programmed (co-scheduled) workloads.
//!
//! The paper's evaluation runs one app at a time; real phones time-slice
//! a foreground app with background services. Co-scheduling enlarges the
//! combined user footprint while the shared kernel stays hot, so both of
//! the paper's levers (interference removal, kernel-segment retention)
//! keep working. This study runs app pairs through the headline designs
//! and checks that the savings and the performance bound survive
//! multi-tasking.

use moca_core::L2Design;
use moca_trace::{AppProfile, MultiProgrammed};

use crate::config::SystemConfig;
use crate::experiments::{ClaimCheck, ExperimentResult};
use crate::metrics::SimReport;
use crate::parallel::{parallel_map, Jobs};
use crate::system::System;
use crate::table::{f3, pct, Table};
use crate::workloads::{Scale, EXPERIMENT_SEED};

/// Co-scheduled pairs (foreground + background-ish mixes).
pub const PAIRS: [(&str, &str); 3] = [
    ("browser", "music"),
    ("game", "email"),
    ("video", "social"),
];

/// Scheduler quantum in references (~10 ms at mobile rates).
const QUANTUM: u64 = 20_000;

fn run_pair(a: &str, b: &str, design: L2Design, refs: usize) -> SimReport {
    let apps = vec![
        AppProfile::by_name(a).expect("known app"),
        AppProfile::by_name(b).expect("known app"),
    ];
    let name = format!("{a}+{b}");
    let mut sys = System::new(name, design, SystemConfig::default()).expect("valid design");
    sys.run(MultiProgrammed::new(&apps, QUANTUM, EXPERIMENT_SEED).take(refs));
    sys.finish()
}

/// Runs the experiment, sharding the pair × design grid over `jobs`
/// threads.
pub fn run(scale: Scale, jobs: Jobs) -> ExperimentResult {
    let refs = scale.sweep_refs() * 2;
    let mut table = Table::new(vec![
        "pair",
        "L2 kernel share",
        "cross-eviction share",
        "static MR saving",
        "static slowdown",
        "dynamic saving",
    ]);
    let mut savings = Vec::new();
    let mut slowdowns = Vec::new();
    let mut kernel_shares = Vec::new();
    let cells: Vec<((&str, &str), L2Design)> = PAIRS
        .iter()
        .flat_map(|&pair| {
            [
                L2Design::baseline(),
                L2Design::static_default(),
                L2Design::dynamic_default(),
            ]
            .into_iter()
            .map(move |d| (pair, d))
        })
        .collect();
    let reports = parallel_map(jobs, cells, |((a, b), design)| {
        run_pair(a, b, design, refs)
    });
    for (&(a, b), row) in PAIRS.iter().zip(reports.chunks(3)) {
        let (base, stat, dynamic) = (&row[0], &row[1], &row[2]);
        let saving = 1.0 - stat.energy_ratio_vs(base);
        let slow = stat.slowdown_vs(base);
        savings.push(saving);
        slowdowns.push(slow);
        kernel_shares.push(base.l2_kernel_share());
        table.row(vec![
            format!("{a}+{b}"),
            pct(base.l2_kernel_share()),
            pct(base.l2_stats.cross_eviction_share()),
            pct(saving),
            f3(slow),
            pct(1.0 - dynamic.energy_ratio_vs(base)),
        ]);
    }
    let mean_saving = savings.iter().sum::<f64>() / savings.len() as f64;
    let worst_slow = slowdowns.iter().fold(0.0f64, |m, &s| m.max(s));
    let mean_kshare = kernel_shares.iter().sum::<f64>() / kernel_shares.len() as f64;

    let claims = vec![
        ClaimCheck {
            claim: "A7/C1",
            target: "kernel share stays above 40% under co-scheduling".into(),
            measured: pct(mean_kshare),
            pass: mean_kshare > 0.40,
        },
        ClaimCheck {
            claim: "A7/C7",
            target: "static MR saving survives multi-tasking (>= 65%)".into(),
            measured: pct(mean_saving),
            pass: mean_saving >= 0.65,
        },
        ClaimCheck {
            claim: "A7/C7",
            target: "static slowdown stays bounded under multi-tasking (<= 10%)".into(),
            measured: f3(worst_slow),
            pass: worst_slow <= 1.10,
        },
    ];
    ExperimentResult {
        id: "A7",
        title: "Co-scheduled app pairs on the headline designs (extension)",
        table: table.render(),
        summary: format!(
            "Time-slicing two apps enlarges the combined user footprint but the shared \
             kernel stays hot ({} of L2 traffic), so the savings persist ({} for the \
             static technique). The static design's slowdown does creep up (worst \
             {:.1}%) because its fixed partition was sized for single apps — exactly \
             the rigidity the paper's dynamic technique exists to remove.",
            pct(mean_kshare),
            pct(mean_saving),
            (worst_slow - 1.0) * 100.0
        ),
        claims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn designs_survive_multitasking() {
        let r = run(Scale::Quick, Jobs::available());
        assert!(r.passed(), "claims failed:\n{}", r.render());
        assert!(r.table.contains("browser+music"));
    }
}
