//! A3 (extension) — hybrid SRAM/STT-RAM versus the homogeneous designs.
//!
//! The hybrid ([`HybridL2`]) keeps two SRAM ways for write-hot blocks and
//! fills the rest into non-volatile STT-RAM, steering fills with a
//! write-history table. This experiment positions it between the
//! all-SRAM baseline and an all-STT-RAM cache: the hybrid removes most
//! STT write energy but keeps the SRAM ways' leakage, which is exactly
//! why the paper's retention-relaxation approach (cheap STT writes
//! everywhere) wins overall (compare with T2).

use moca_cache::L1Pair;
use moca_core::{HybridL2, L2BaseParams, L2Design, RefreshPolicy};
use moca_energy::RetentionClass;
use moca_trace::AppProfile;

use crate::config::SystemConfig;
use crate::cpu::InOrderCore;
use crate::experiments::{ClaimCheck, ExperimentResult};
use crate::fanout::{fan_out, TraceStream};
use crate::parallel::{parallel_map, Jobs};
use crate::table::{f3, pct, Table};
use crate::workloads::{Scale, EXPERIMENT_SEED};

/// Apps compared (write-heavy ones are where the hybrid matters).
pub const APPS: [&str; 3] = ["camera", "video", "browser"];

/// Runs the hybrid through its own small runner (it is not an
/// [`L2Design`] variant; see [`HybridL2`] docs).
fn run_hybrid(app: &AppProfile, refs: usize) -> (f64, f64, f64, u64) {
    let cfg = SystemConfig::default();
    let mut core = InOrderCore::new(cfg.base_cycles_per_ref);
    let mut l1 = L1Pair::mobile_default();
    let mut l2 = HybridL2::new(2, 14, RetentionClass::TenYears, &L2BaseParams::default())
        .expect("static config is valid");
    let mut stream = TraceStream::new(app, EXPERIMENT_SEED);
    let mut left = refs;
    while left > 0 {
        let chunk = stream.next_chunk();
        let n = chunk.len().min(left);
        for a in &chunk[..n] {
            let now = core.cycle();
            let out = l1.filter(a, now);
            let mut stall = 0;
            if let Some(d) = out.demand {
                let resp = l2.request(&d, now);
                stall = resp.latency_cycles
                    + if resp.dram_read {
                        cfg.dram_latency_cycles
                    } else {
                        0
                    };
            }
            if let Some(wb) = out.writeback {
                l2.request(&wb, now);
            }
            core.retire(stall);
        }
        left -= n;
    }
    l2.finalize(core.cycle());
    (
        l2.energy().total().joules(),
        core.cycle() as f64 / core.refs() as f64,
        l2.hybrid_stats().sram_write_share(),
        l2.hybrid_stats().migrations,
    )
}

/// Runs the experiment, sharding the per-app comparison runs over `jobs`
/// threads.
pub fn run(scale: Scale, jobs: Jobs) -> ExperimentResult {
    let refs = scale.sweep_refs();
    let all_stt = L2Design::SharedStt {
        ways: 16,
        retention: RetentionClass::TenYears,
        refresh: RefreshPolicy::InvalidateOnExpiry,
    };
    let mut table = Table::new(vec![
        "app",
        "all-SRAM normE",
        "all-STT(10yr) normE",
        "hybrid 2s+14t normE",
        "hybrid slowdown",
        "SRAM write share",
        "migrations",
    ]);
    let mut norm_gaps = Vec::new();
    let mut shares = Vec::new();
    let runs = parallel_map(jobs, APPS.to_vec(), |name| {
        let app = AppProfile::by_name(name).expect("known app");
        // Baseline and all-STT share one trace pass; the hybrid's own
        // runner replays the same chunks from the arena.
        let mut pair = fan_out(&app, &[L2Design::baseline(), all_stt], refs, EXPERIMENT_SEED);
        let stt = pair.pop().expect("two designs");
        let base = pair.pop().expect("two designs");
        let hybrid = run_hybrid(&app, refs);
        (base, stt, hybrid)
    });
    for (name, (base, stt, (hybrid_j, hybrid_cpr, share, migrations))) in APPS.iter().zip(runs) {
        let base_j = base.l2_energy.total().joules();
        let hybrid_norm = hybrid_j / base_j;
        let stt_norm = stt.energy_ratio_vs(&base);
        norm_gaps.push(hybrid_norm - stt_norm);
        shares.push(share);
        table.row(vec![
            name.to_string(),
            "1.000".to_string(),
            f3(stt_norm),
            f3(hybrid_norm),
            f3(hybrid_cpr / base.cpr()),
            pct(share),
            migrations.to_string(),
        ]);
    }
    let mean_share = shares.iter().sum::<f64>() / shares.len() as f64;
    let worst_gap = norm_gaps.iter().fold(f64::MIN, |a, &b| a.max(b));

    // The honest finding: steering concentrates write traffic into the
    // tiny SRAM partition far beyond its capacity share, yet total energy
    // barely moves — cold fill-writes (write-allocate misses) dominate
    // STT write energy and no placement policy can dodge them. That is
    // precisely why the paper attacks the *per-write cost* via retention
    // relaxation instead of write placement.
    let claims = vec![
        ClaimCheck {
            claim: "A3",
            target: "steering works: the SRAM ways (12.5% of capacity) absorb a disproportionate write share (> 25%)".into(),
            measured: pct(mean_share),
            pass: mean_share > 0.25,
        },
        ClaimCheck {
            claim: "A3",
            target: "yet the hybrid stays within 0.05 normalized energy of all-STT (fill-writes dominate)".into(),
            measured: format!("worst gap {worst_gap:+.3}"),
            pass: worst_gap < 0.05,
        },
    ];
    ExperimentResult {
        id: "A3",
        title: "Hybrid SRAM/STT-RAM L2 vs homogeneous designs (extension)",
        table: table.render(),
        summary: format!(
            "Write-history steering concentrates {} of L2 writes into two SRAM ways \
             (12.5% of capacity), but total energy is nearly identical to all-STT: \
             the dominant STT writes are cold fills that no placement policy can \
             avoid. Write placement is therefore a weak lever here — the paper's \
             retention relaxation, which cheapens *every* write, is the strong one \
             (compare T2's ~84% saving with all-STT(10yr)'s ~62%).",
            pct(mean_share)
        ),
        claims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_study_claims_hold() {
        let r = run(Scale::Quick, Jobs::available());
        assert!(r.passed(), "claims failed:\n{}", r.render());
        assert!(r.table.contains("camera"));
    }
}
