//! F6 — normalized performance per design.
//!
//! Reproduces the performance half of claims C7/C8: the paper reports
//! 2 % performance loss for the static technique and 3 % for the dynamic
//! one. The metric is cycles-per-reference normalized to the shared SRAM
//! baseline (`> 1.0` = slower).

use crate::experiments::matrix::DesignMatrix;
use crate::experiments::{ClaimCheck, ExperimentResult};
use crate::table::{pct, Table};

/// Builds the result from an already-run design matrix.
pub fn from_matrix(m: &DesignMatrix) -> ExperimentResult {
    let mut headers = vec!["app".to_string()];
    headers.extend(m.designs.iter().map(|d| d.label()));
    let mut table = Table::new(headers);

    for row in &m.rows {
        let mut cells = vec![row[0].app.clone()];
        for r in row.iter() {
            cells.push(format!("{:.3}", r.slowdown_vs(&row[0])));
        }
        table.row(cells);
    }
    let mut mean_cells = vec!["MEAN".to_string()];
    let mut means = Vec::new();
    for d in 0..m.designs.len() {
        let mean = m.mean_over_apps(d, |r, b| r.slowdown_vs(b));
        means.push(mean);
        mean_cells.push(format!("{mean:.3}"));
    }
    table.row(mean_cells);

    let static_loss = means[2] - 1.0;
    let dynamic_loss = means[3] - 1.0;
    let claims = vec![
        ClaimCheck {
            claim: "C7",
            target: "static technique performance loss ~2% (accept <= 5%)".into(),
            measured: pct(static_loss),
            pass: static_loss <= 0.05,
        },
        ClaimCheck {
            claim: "C8",
            target: "dynamic technique performance loss ~3% (accept <= 6%)".into(),
            measured: pct(dynamic_loss),
            pass: dynamic_loss <= 0.06,
        },
        ClaimCheck {
            claim: "C7/C8",
            target: "dynamic loses slightly more performance than static (paper: 3% vs 2%)".into(),
            measured: format!("{} vs {}", pct(dynamic_loss), pct(static_loss)),
            pass: dynamic_loss >= static_loss - 0.005,
        },
    ];
    ExperimentResult {
        id: "F6",
        title: "Normalized execution time per design (baseline = 1.0)",
        table: table.render(),
        summary: format!(
            "Cycles-per-reference rises by {} for the static multi-retention design \
             (shrunk capacity + STT-RAM write latency) and by {} for the dynamic \
             design (adds adaptation transients and retention expiry) — small prices \
             for the energy savings of T2.",
            pct(static_loss),
            pct(dynamic_loss)
        ),
        claims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::matrix::headline_designs;
    use crate::metrics::SimReport;
    use crate::workloads::run_app;
    use moca_trace::AppProfile;

    #[test]
    fn performance_table_structure() {
        let designs = headline_designs();
        let rows: Vec<Vec<SimReport>> = AppProfile::suite()[..2]
            .iter()
            .map(|app| designs.iter().map(|d| run_app(app, *d, 300_000, 7)).collect())
            .collect();
        let m = DesignMatrix { designs, rows };
        let r = from_matrix(&m);
        assert!(r.table.contains("MEAN"));
        // Baseline column is exactly 1.0 for every app.
        for line in r.table.lines().skip(2) {
            if line.starts_with("MEAN") || line.is_empty() {
                continue;
            }
            assert!(line.contains("1.000"), "baseline column missing in {line}");
        }
    }
}
