//! F4 — access behaviour of the separated user and kernel segments.
//!
//! Reproduces claim C4: once the L2 is partitioned, the two segments show
//! completely different access behaviour. The table reports, per segment,
//! the median re-reference interval, the 95th-percentile block lifetime,
//! the dead-on-arrival fraction, and the STT-RAM retention class the
//! analyzer recommends from the lifetime distribution — the input to the
//! multi-retention design (F5/T2).

use moca_core::{recommend_retention, L2Design};
use moca_energy::RetentionClass;
use moca_trace::{AppProfile, Mode};

use crate::experiments::{ClaimCheck, ExperimentResult};
use crate::parallel::{parallel_map, Jobs};
use crate::table::{pct, Table};
use crate::workloads::{run_app_with_behavior, Scale, EXPERIMENT_SEED};

/// Lifetime quantile a retention class must cover.
pub const COVERAGE: f64 = 0.95;

fn fmt_cycles_ms(c: Option<u64>) -> String {
    match c {
        None => "-".into(),
        Some(cycles) => format!("{:.2} ms", cycles as f64 / 1e6),
    }
}

/// Runs the experiment, sharding the per-app simulations over `jobs`
/// threads.
pub fn run(scale: Scale, jobs: Jobs) -> ExperimentResult {
    let design = L2Design::StaticSram {
        user_ways: 6,
        kernel_ways: 4,
    };
    let mut table = Table::new(vec![
        "app",
        "segment",
        "median reuse",
        "p95 lifetime",
        "dead blocks",
        "recommended retention",
    ]);
    let mut recs: Vec<(RetentionClass, RetentionClass)> = Vec::new();
    let runs = parallel_map(jobs, AppProfile::suite(), |app| {
        let r = run_app_with_behavior(&app, design, scale.refs(), EXPERIMENT_SEED);
        (app, r)
    });
    for (app, r) in runs {
        let mut row_rec = (RetentionClass::TenYears, RetentionClass::TenYears);
        for mode in Mode::ALL {
            let b = r.behavior(mode);
            let rec = recommend_retention(&b.lifetime, r.clock_ghz, COVERAGE);
            match mode {
                Mode::User => row_rec.0 = rec,
                Mode::Kernel => row_rec.1 = rec,
            }
            table.row(vec![
                app.name.to_string(),
                mode.to_string(),
                fmt_cycles_ms(b.reuse.median()),
                fmt_cycles_ms(b.lifetime.quantile(COVERAGE)),
                pct(b.dead_fraction()),
                rec.label(),
            ]);
        }
        recs.push(row_rec);
    }

    // Claim: kernel lifetimes are no longer than user lifetimes (kernel
    // blocks turn over at least as fast), so the kernel segment can use a
    // retention class at most as long as the user segment's.
    let kernel_not_longer = recs
        .iter()
        .filter(|(u, k)| k.duration().secs() <= u.duration().secs())
        .count();
    let volatile_ok = recs
        .iter()
        .all(|(u, k)| u.is_volatile() && k.is_volatile());

    let claims = vec![
        ClaimCheck {
            claim: "C4",
            target: "kernel retention recommendation <= user's in a majority of apps".into(),
            measured: format!("{kernel_not_longer}/10 apps"),
            pass: kernel_not_longer >= 6,
        },
        ClaimCheck {
            claim: "C4/C5",
            target: "both segments' lifetimes are covered by volatile (sub-hour) retention classes".into(),
            measured: format!("all volatile = {volatile_ok}"),
            pass: volatile_ok,
        },
    ];
    ExperimentResult {
        id: "F4",
        title: "Segment access behaviour and retention recommendation",
        table: table.render(),
        summary: "Block lifetimes in both segments are orders of magnitude below the \
                  10-year non-volatile retention point, and kernel blocks turn over at \
                  least as fast as user blocks — so each segment can adopt a relaxed, \
                  write-cheap retention class, with the kernel segment taking the \
                  shortest one."
            .into(),
        claims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaviour_supports_multi_retention() {
        let r = run(Scale::Quick, Jobs::available());
        assert!(r.passed(), "claims failed:\n{}", r.render());
        assert!(r.table.contains("kernel"));
    }
}
