//! F2 — user/kernel interference in the shared L2.
//!
//! Reproduces claim C2: kernel and user blocks interfere destructively in
//! a shared L2. Measured two ways:
//!
//! * the **cross-mode eviction share** of the shared baseline — the
//!   fraction of evictions where a fill from one mode displaced a valid
//!   block of the other mode, and
//! * the miss-rate gap between the shared cache and an
//!   **interference-free** configuration that gives each mode its own
//!   full-size segment (16 user + 16 kernel ways, i.e. double capacity —
//!   an idealized bound, not a proposal).

use moca_core::L2Design;
use moca_trace::AppProfile;

use crate::experiments::{ClaimCheck, ExperimentResult};
use crate::parallel::{parallel_map, Jobs};
use crate::table::{f3, pct, Table};
use crate::workloads::{run_app, Scale, EXPERIMENT_SEED};

/// Runs the experiment, sharding the shared/isolated run pairs over
/// `jobs` threads.
pub fn run(scale: Scale, jobs: Jobs) -> ExperimentResult {
    let mut table = Table::new(vec![
        "app",
        "shared miss",
        "isolated miss",
        "interference miss delta",
        "cross-mode eviction share",
    ]);
    let mut cross_shares = Vec::new();
    let mut deltas = Vec::new();
    let isolated = L2Design::StaticSram {
        user_ways: 16,
        kernel_ways: 16,
    };
    let pairs = parallel_map(jobs, AppProfile::suite(), |app| {
        let shared = run_app(&app, L2Design::baseline(), scale.refs(), EXPERIMENT_SEED);
        let iso = run_app(&app, isolated, scale.refs(), EXPERIMENT_SEED);
        (app, shared, iso)
    });
    for (app, shared, iso) in pairs {
        let delta = shared.l2_miss_rate() - iso.l2_miss_rate();
        let cross = shared.l2_stats.cross_eviction_share();
        cross_shares.push(cross);
        deltas.push(delta);
        table.row(vec![
            app.name.to_string(),
            f3(shared.l2_miss_rate()),
            f3(iso.l2_miss_rate()),
            format!("{delta:+.3}"),
            pct(cross),
        ]);
    }
    let mean_cross = cross_shares.iter().sum::<f64>() / cross_shares.len() as f64;
    let mean_delta = deltas.iter().sum::<f64>() / deltas.len() as f64;
    table.row(vec![
        "MEAN".into(),
        "-".into(),
        "-".into(),
        format!("{mean_delta:+.3}"),
        pct(mean_cross),
    ]);

    let claims = vec![
        ClaimCheck {
            claim: "C2",
            target: "cross-mode evictions are a substantial share of shared-L2 evictions (> 15%)".into(),
            measured: pct(mean_cross),
            pass: mean_cross > 0.15,
        },
        ClaimCheck {
            claim: "C2",
            target: "removing interference lowers the miss rate (mean delta > 0)".into(),
            measured: format!("{mean_delta:+.4}"),
            pass: mean_delta > 0.0,
        },
    ];
    ExperimentResult {
        id: "F2",
        title: "User/kernel interference in the shared L2",
        table: table.render(),
        summary: format!(
            "In the shared baseline, {} of all evictions displace a block owned by \
             the other privilege mode; an interference-free configuration lowers the \
             miss rate by {:.1} percentage points on average. These 'unnecessary block \
             replacements' motivate partitioning.",
            pct(mean_cross),
            mean_delta * 100.0
        ),
        claims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interference_is_visible() {
        let r = run(Scale::Quick, Jobs::available());
        assert!(r.passed(), "claims failed:\n{}", r.render());
    }
}
