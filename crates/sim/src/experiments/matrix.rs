//! The shared design-matrix runs: every app on every headline design.
//!
//! Both T2 (energy) and F6 (performance) read from one [`DesignMatrix`] so
//! the two tables always describe the same simulations.

use moca_core::L2Design;
use moca_trace::AppProfile;

use crate::metrics::SimReport;
use crate::parallel::{parallel_map, Jobs};
use crate::workloads::{run_app, Scale, EXPERIMENT_SEED};

/// The four headline designs of the reproduced evaluation, in table
/// order: baseline, static SRAM partition, static multi-retention
/// STT-RAM, dynamic STT-RAM.
pub fn headline_designs() -> Vec<L2Design> {
    vec![
        L2Design::baseline(),
        L2Design::StaticSram {
            user_ways: 6,
            kernel_ways: 4,
        },
        L2Design::static_default(),
        L2Design::dynamic_default(),
    ]
}

/// All apps × all headline designs.
#[derive(Debug, Clone)]
pub struct DesignMatrix {
    /// The designs, in column order (`designs[0]` is the baseline).
    pub designs: Vec<L2Design>,
    /// `rows[app][design]` simulation reports.
    pub rows: Vec<Vec<SimReport>>,
}

impl DesignMatrix {
    /// The baseline report for app row `i`.
    pub fn baseline(&self, i: usize) -> &SimReport {
        &self.rows[i][0]
    }

    /// Iterator of app names (row order).
    pub fn app_names(&self) -> impl Iterator<Item = &str> {
        self.rows.iter().map(|r| r[0].app.as_str())
    }

    /// Mean over apps of `f(report, baseline)` for design column `d`.
    pub fn mean_over_apps<F>(&self, d: usize, f: F) -> f64
    where
        F: Fn(&SimReport, &SimReport) -> f64,
    {
        let n = self.rows.len() as f64;
        self.rows.iter().map(|r| f(&r[d], &r[0])).sum::<f64>() / n
    }
}

/// Runs the matrix at the given scale, sharding the app × design cell
/// simulations over `jobs` threads.
///
/// Every cell is an independent simulation with its own seeded trace
/// generator, and cells are merged back in (app, design) order — the
/// matrix is bit-identical for every job count.
pub fn run_matrix(scale: Scale, jobs: Jobs) -> DesignMatrix {
    let designs = headline_designs();
    let apps = AppProfile::suite();
    let cells: Vec<(AppProfile, L2Design)> = apps
        .iter()
        .flat_map(|app| designs.iter().map(move |d| (app.clone(), *d)))
        .collect();
    let reports = parallel_map(jobs, cells, |(app, d)| {
        run_app(&app, d, scale.refs(), EXPERIMENT_SEED)
    });
    let rows = reports
        .chunks(designs.len())
        .map(|row| row.to_vec())
        .collect();
    DesignMatrix { designs, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_designs_start_with_baseline() {
        let d = headline_designs();
        assert_eq!(d.len(), 4);
        assert_eq!(d[0], L2Design::baseline());
    }

    #[test]
    fn matrix_shape_is_apps_by_designs() {
        // A tiny matrix (not Quick scale) to keep the test fast.
        let designs = headline_designs();
        let rows: Vec<Vec<SimReport>> = AppProfile::suite()[..2]
            .iter()
            .map(|app| {
                designs
                    .iter()
                    .map(|d| run_app(app, *d, 30_000, 1))
                    .collect()
            })
            .collect();
        let m = DesignMatrix { designs, rows };
        assert_eq!(m.rows.len(), 2);
        assert_eq!(m.rows[0].len(), 4);
        assert_eq!(m.baseline(0).design, L2Design::baseline().label());
        let mean = m.mean_over_apps(1, |r, b| r.slowdown_vs(b));
        assert!(mean > 0.5 && mean < 2.0);
        assert_eq!(m.app_names().count(), 2);
    }
}
