//! F8 — sensitivity and ablation studies.
//!
//! Three ablations around the dynamic design's defaults, run on one
//! representative app (browser):
//!
//! 1. **Epoch length** — short epochs react faster but thrash; long
//!    epochs under-adapt.
//! 2. **Refresh policy** — invalidate-on-expiry versus in-place refresh
//!    for the volatile segments.
//! 3. **Kernel retention class** — the energy/performance trade of the
//!    short-retention choice.

use moca_core::{L2Design, RefreshPolicy};
use moca_energy::RetentionClass;
use moca_trace::AppProfile;

use crate::experiments::{ClaimCheck, ExperimentResult};
use crate::fanout::FanOut;
use crate::parallel::Jobs;
use crate::table::{f3, Table};
use crate::workloads::{Scale, EXPERIMENT_SEED};

/// The app used for the ablations.
pub const ABLATION_APP: &str = "browser";

fn dynamic_with(epoch: u64, refresh: RefreshPolicy, kernel_retention: RetentionClass) -> L2Design {
    L2Design::DynamicStt {
        max_ways: 16,
        min_ways: 1,
        user_retention: RetentionClass::HundredMillis,
        kernel_retention,
        refresh,
        epoch_cycles: epoch,
    }
}

/// Runs the experiment, sharding the ablation variants over `jobs`
/// threads.
pub fn run(scale: Scale, jobs: Jobs) -> ExperimentResult {
    let app = AppProfile::by_name(ABLATION_APP).expect("known app");
    let refs = scale.sweep_refs() * 2;

    // Enumerate every variant up front (table order), then shard the
    // simulations; the baseline rides along as the first work item.
    let mut variants: Vec<(String, L2Design)> = Vec::new();
    // 1. Epoch length.
    for epoch in [100_000u64, 500_000, 2_000_000, 8_000_000] {
        variants.push((
            format!("epoch {}k cycles", epoch / 1000),
            dynamic_with(epoch, RefreshPolicy::InvalidateOnExpiry, RetentionClass::TenMillis),
        ));
    }
    // 2. Refresh policy.
    variants.push((
        "policy invalidate-on-expiry".into(),
        dynamic_with(500_000, RefreshPolicy::InvalidateOnExpiry, RetentionClass::TenMillis),
    ));
    variants.push((
        "policy refresh".into(),
        dynamic_with(500_000, RefreshPolicy::Refresh, RetentionClass::TenMillis),
    ));
    // 3. Technology x policy 2x2: separates the benefit of dynamic
    // sizing from the benefit of the STT-RAM technology swap.
    variants.push((
        "2x2: SRAM dynamic".into(),
        L2Design::DynamicSram {
            max_ways: 16,
            min_ways: 1,
            epoch_cycles: 500_000,
        },
    ));
    variants.push((
        "2x2: SRAM static 6u4k".into(),
        L2Design::StaticSram {
            user_ways: 6,
            kernel_ways: 4,
        },
    ));
    variants.push(("2x2: STT static (default)".into(), L2Design::static_default()));
    variants.push(("2x2: STT dynamic (default)".into(), L2Design::dynamic_default()));
    // 4. Kernel retention.
    for rc in [
        RetentionClass::OneSecond,
        RetentionClass::HundredMillis,
        RetentionClass::TenMillis,
    ] {
        variants.push((
            format!("kernel retention {}", rc.label()),
            dynamic_with(500_000, RefreshPolicy::InvalidateOnExpiry, rc),
        ));
    }

    let mut work: Vec<L2Design> = vec![L2Design::baseline()];
    work.extend(variants.iter().map(|(_, d)| *d));
    // One shared trace stream fans out to the baseline plus all 13
    // variants; reports stay byte-identical to per-design `run_app`.
    let mut reports = FanOut::new(&app, EXPERIMENT_SEED).run_parallel(&work, refs, jobs);
    let baseline = reports.remove(0);

    let mut table = Table::new(vec![
        "variant",
        "norm energy",
        "slowdown",
        "mean ways",
        "expired/1k L2 acc",
    ]);
    let mut results: Vec<(f64, f64)> = Vec::new();
    for ((label, _), r) in variants.iter().zip(&reports) {
        let ne = r.energy_ratio_vs(&baseline);
        let slow = r.slowdown_vs(&baseline);
        table.row(vec![
            label.clone(),
            f3(ne),
            f3(slow),
            format!("{:.1}", r.mean_active_ways),
            format!(
                "{:.2}",
                r.expiry.expired as f64 * 1000.0 / r.l2_stats.accesses().max(1) as f64
            ),
        ]);
        results.push((ne, slow));
    }
    let epoch_results = &results[0..4];
    let (sram_dyn_e, _) = results[6];
    let (sram_static_e, _) = results[7];
    let (stt_static_e, _) = results[8];
    let (stt_dyn_e, _) = results[9];
    let retention_results = &results[10..13];

    // Claims: every variant keeps the headline shape (large savings at
    // modest slowdown) — the techniques are not knife-edge tuned — and
    // the 2x2 shows both levers matter: the technology swap dominates,
    // and dynamic sizing helps within each technology.
    let worst_energy = epoch_results
        .iter()
        .chain(retention_results)
        .map(|&(e, _)| e)
        .fold(0.0f64, f64::max);
    let worst_slow = epoch_results
        .iter()
        .chain(retention_results)
        .map(|&(_, s)| s)
        .fold(0.0f64, f64::max);
    let claims = vec![
        ClaimCheck {
            claim: "C8 (robustness)",
            target: "all dynamic-STT ablation variants keep >= 60% energy saving".into(),
            measured: format!("worst norm energy {worst_energy:.3}"),
            pass: worst_energy <= 0.40,
        },
        ClaimCheck {
            claim: "C5/C6 (2x2)",
            target: "technology swap saves more than dynamic sizing alone".into(),
            measured: format!(
                "SRAM: static {sram_static_e:.3} / dynamic {sram_dyn_e:.3}; STT: static {stt_static_e:.3} / dynamic {stt_dyn_e:.3}"
            ),
            pass: stt_static_e < sram_dyn_e && stt_dyn_e < sram_static_e,
        },
        ClaimCheck {
            claim: "C8 (robustness)",
            target: "all ablation variants stay within 10% slowdown".into(),
            measured: format!("worst slowdown {worst_slow:.3}"),
            pass: worst_slow <= 1.10,
        },
    ];
    ExperimentResult {
        id: "F8",
        title: "Sensitivity: epoch length, refresh policy, kernel retention (browser)",
        table: table.render(),
        summary: "The dynamic design's savings are robust across an 80x epoch-length \
                  range, both expiry policies, and a 100x kernel-retention range; the \
                  defaults (500k-cycle epochs, invalidate-on-expiry, 10 ms kernel \
                  retention) sit at the flat part of every knob."
            .into(),
        claims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_are_robust() {
        let r = run(Scale::Quick, Jobs::available());
        assert!(r.passed(), "claims failed:\n{}", r.render());
        assert!(r.table.contains("epoch"));
        assert!(r.table.contains("refresh"));
    }
}
