//! F1 — kernel share of L2 accesses per application.
//!
//! Reproduces the paper's motivating observation (claim C1): in
//! interactive smartphone apps, *more than 40 %* of L2 cache accesses are
//! OS-kernel accesses. The table shows the raw (pre-L1) kernel share and
//! the L2-level share after L1 filtering, which amplifies the kernel's
//! weight because user code caches better in the L1s.

use moca_core::L2Design;
use moca_trace::{AppProfile, Mode};

use crate::experiments::{ClaimCheck, ExperimentResult};
use crate::parallel::Jobs;
use crate::table::{pct, Table};
use crate::workloads::{run_suite_parallel, Scale, EXPERIMENT_SEED};

/// Runs the experiment, sharding the per-app simulations over `jobs`
/// threads.
pub fn run(scale: Scale, jobs: Jobs) -> ExperimentResult {
    let mut table = Table::new(vec!["app", "raw kernel share", "L2 kernel share", "L2 accesses/1k refs"]);
    let mut l2_shares = Vec::new();
    let reports = run_suite_parallel(L2Design::baseline(), scale.refs(), EXPERIMENT_SEED, jobs);
    for (app, r) in AppProfile::suite().iter().zip(&reports) {
        let raw = r.l1_stats.mode(Mode::Kernel).accesses() as f64 / r.l1_stats.accesses() as f64;
        let l2 = r.l2_kernel_share();
        let rate = r.l2_stats.accesses() as f64 * 1000.0 / r.refs as f64;
        l2_shares.push(l2);
        table.row(vec![
            app.name.to_string(),
            pct(raw),
            pct(l2),
            format!("{rate:.0}"),
        ]);
    }
    let mean = l2_shares.iter().sum::<f64>() / l2_shares.len() as f64;
    table.row(vec!["MEAN".into(), "-".into(), pct(mean), "-".into()]);

    let claims = vec![ClaimCheck {
        claim: "C1",
        target: "suite-mean kernel share of L2 accesses > 40%".into(),
        measured: pct(mean).to_string(),
        pass: mean > 0.40,
    }];
    ExperimentResult {
        id: "F1",
        title: "Kernel share of L2 accesses per app",
        table: table.render(),
        summary: format!(
            "Across the ten-app suite the kernel contributes {} of all L2 accesses on \
             the shared baseline (raw trace shares are lower; the L1s filter user \
             traffic harder, amplifying the kernel's weight at the L2). This is the \
             interference source the paper's partitioning removes.",
            pct(mean)
        ),
        claims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_share_exceeds_forty_percent() {
        let r = run(Scale::Quick, Jobs::available());
        assert!(r.passed(), "claims failed:\n{}", r.render());
        assert!(r.table.contains("browser"));
        assert!(r.table.contains("MEAN"));
    }
}
