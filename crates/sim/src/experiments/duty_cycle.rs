//! A4 (extension) — energy savings versus usage duty cycle.
//!
//! Phones are idle most of the time (screen off, waiting for input); a
//! cache keeps leaking through all of it. This experiment interleaves
//! active bursts with idle gaps at several duty cycles and measures the
//! designs' savings: the lower the duty cycle, the more
//! leakage-dominated the baseline becomes and the larger the STT-RAM
//! designs' advantage — the usage regime the paper targets.

use moca_core::L2Design;
use moca_trace::{AppProfile, MemoryAccess};

use crate::config::SystemConfig;
use crate::experiments::{ClaimCheck, ExperimentResult};
use crate::fanout::TraceStream;
use crate::parallel::{parallel_map, Jobs};
use crate::system::System;
use crate::table::{pct, Table};
use crate::workloads::{Scale, EXPERIMENT_SEED};

/// App used for the duty-cycle study.
pub const APP: &str = "social";

/// Active references per burst before each idle gap.
const BURST_REFS: usize = 100_000;

/// Runs `refs` references at the given duty cycle (fraction of wall time
/// spent active).
fn run_at_duty(design: L2Design, refs: usize, duty: f64) -> crate::metrics::SimReport {
    let app = AppProfile::by_name(APP).expect("known app");
    let mut sys =
        System::new(app.name, design, SystemConfig::default()).expect("valid design");
    // All twelve (duty, design) cells consume the same stream, so after
    // the first cell every chunk is an arena hit. Arena chunks are
    // smaller than a burst; the leftover of a chunk carries into the
    // next burst so the reference sequence is unchanged.
    let mut stream = TraceStream::new(&app, EXPERIMENT_SEED);
    let mut chunk: std::sync::Arc<[MemoryAccess]> = Vec::new().into();
    let mut off = 0usize;
    let mut done = 0usize;
    while done < refs {
        let burst = BURST_REFS.min(refs - done);
        let start = sys.cycles();
        let mut run = 0usize;
        while run < burst {
            if off == chunk.len() {
                chunk = stream.next_chunk();
                off = 0;
            }
            let n = (chunk.len() - off).min(burst - run);
            sys.run_batch(&chunk[off..off + n]);
            off += n;
            run += n;
        }
        done += burst;
        // Pad the burst's active time with idle so active/total = duty.
        let active = sys.cycles() - start;
        if duty < 1.0 {
            let idle = (active as f64 * (1.0 - duty) / duty) as u64;
            sys.idle(idle);
        }
    }
    sys.finish()
}

/// Runs the experiment, sharding the duty-cycle × design grid over
/// `jobs` threads.
pub fn run(scale: Scale, jobs: Jobs) -> ExperimentResult {
    let refs = scale.sweep_refs();
    let duties = [1.0, 0.5, 0.25, 0.10];
    let mut table = Table::new(vec![
        "duty cycle",
        "baseline leak share",
        "static MR saving",
        "dynamic saving",
    ]);
    let mut static_savings = Vec::new();
    let cells: Vec<(f64, L2Design)> = duties
        .iter()
        .flat_map(|&duty| {
            [
                L2Design::baseline(),
                L2Design::static_default(),
                L2Design::dynamic_default(),
            ]
            .into_iter()
            .map(move |d| (duty, d))
        })
        .collect();
    let reports = parallel_map(jobs, cells, |(duty, design)| {
        run_at_duty(design, refs, duty)
    });
    for (&duty, row) in duties.iter().zip(reports.chunks(3)) {
        let (base, stat, dynamic) = (&row[0], &row[1], &row[2]);
        let s_saving = 1.0 - stat.energy_ratio_vs(base);
        let d_saving = 1.0 - dynamic.energy_ratio_vs(base);
        static_savings.push(s_saving);
        table.row(vec![
            pct(duty),
            pct(base.l2_energy.leakage_fraction()),
            pct(s_saving),
            pct(d_saving),
        ]);
    }

    let first = static_savings[0];
    let last = *static_savings.last().expect("non-empty");
    let monotone = static_savings.windows(2).all(|w| w[1] >= w[0] - 0.01);
    let claims = vec![
        ClaimCheck {
            claim: "A4",
            target: "STT savings grow as the duty cycle drops (idle leakage dominates)".into(),
            measured: format!(
                "static saving {} at 100% duty -> {} at 10% duty",
                pct(first),
                pct(last)
            ),
            pass: last > first && monotone,
        },
        ClaimCheck {
            claim: "A4",
            target: "at 10% duty the static design saves >= 90%".into(),
            measured: pct(last),
            pass: last >= 0.90,
        },
    ];
    ExperimentResult {
        id: "A4",
        title: "Energy savings vs usage duty cycle (extension)",
        table: table.render(),
        summary: format!(
            "As idle time grows, the SRAM baseline's energy becomes almost pure \
             leakage, so the STT-RAM designs' saving climbs from {} (always active) \
             to {} at a phone-like 10% duty cycle — the reproduction's headline \
             numbers are, if anything, conservative for real usage.",
            pct(first),
            pct(last)
        ),
        claims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_grow_with_idleness() {
        let r = run(Scale::Quick, Jobs::available());
        assert!(r.passed(), "claims failed:\n{}", r.render());
        assert!(r.table.contains("10.0%"));
    }

    #[test]
    fn duty_table_has_all_rows() {
        let r = run(Scale::Quick, Jobs::available());
        assert_eq!(r.table.lines().count(), 2 + 4, "header + rule + 4 duty rows");
    }
}
