//! F3 — static partition sizing search.
//!
//! Reproduces claim C3: after partitioning, the total L2 can be *shrunk*
//! while keeping a miss rate similar to the full-size shared baseline.
//! For each representative app the search
//! ([`find_min_partition`])
//! evaluates (user, kernel) way pairs in increasing total size and stops
//! at the first configuration within the miss-rate budget.

use moca_core::{find_min_partition, L2Design};
use moca_trace::AppProfile;

use crate::experiments::{ClaimCheck, ExperimentResult};
use crate::fanout::FanOut;
use crate::parallel::{parallel_map, Jobs};
use crate::table::{f3, Table};
use crate::workloads::{Scale, EXPERIMENT_SEED};

/// Apps used for the (quadratic-cost) sizing search.
pub const SEARCH_APPS: [&str; 4] = ["browser", "game", "video", "music"];

/// Absolute miss-rate budget over the baseline.
pub const MISS_BUDGET: f64 = 0.02;

/// Runs the experiment, sharding the per-app sizing searches over
/// `jobs` threads.
///
/// Each app's search is inherently sequential (it early-exits at the
/// first in-budget configuration), so the parallel axis is the app: four
/// independent searches, merged in `SEARCH_APPS` order.
pub fn run(scale: Scale, jobs: Jobs) -> ExperimentResult {
    let refs = scale.sweep_refs();
    let mut table = Table::new(vec![
        "app",
        "baseline miss",
        "chosen user+kernel ways",
        "chosen miss",
        "size vs 16-way",
        "configs tried",
    ]);
    let mut totals = Vec::new();
    let choices = parallel_map(jobs, SEARCH_APPS.to_vec(), |name| {
        let app = AppProfile::by_name(name).expect("known app");
        // The search early-exits, so candidates cannot be batched up
        // front; running each through the fan-out engine still amortizes
        // trace generation, because every evaluation of the same (app,
        // seed) after the first replays chunks from the shared arena.
        let fan = FanOut::new(&app, EXPERIMENT_SEED);
        let eval = |design: L2Design| {
            let mut reports = fan.run(&[design], refs);
            reports.pop().expect("one design in, one report out")
        };
        let baseline = eval(L2Design::baseline());
        find_min_partition(12, 8, baseline.l2_miss_rate(), MISS_BUDGET, |u, k| {
            eval(L2Design::StaticSram {
                user_ways: u,
                kernel_ways: k,
            })
            .l2_miss_rate()
        })
    });
    for (name, choice) in SEARCH_APPS.iter().zip(&choices) {
        totals.push(choice.total_ways());
        table.row(vec![
            name.to_string(),
            f3(choice.baseline_miss_rate),
            format!("{}u + {}k = {}", choice.user_ways, choice.kernel_ways, choice.total_ways()),
            f3(choice.miss_rate),
            format!("{:.0}%", choice.total_ways() as f64 / 16.0 * 100.0),
            choice.evaluated.to_string(),
        ]);
    }
    let mean_total = totals.iter().map(|&t| f64::from(t)).sum::<f64>() / totals.len() as f64;

    let claims = vec![ClaimCheck {
        claim: "C3",
        target: format!(
            "a partition within {MISS_BUDGET:.2} absolute miss of the 16-way baseline exists at <= 12 total ways"
        ),
        measured: format!("mean chosen total = {mean_total:.1} ways"),
        pass: mean_total <= 12.0,
    }];
    ExperimentResult {
        id: "F3",
        title: "Static partition sizing (miss rate vs segment ways)",
        table: table.render(),
        summary: format!(
            "Isolating user and kernel removes their mutual replacements, so a \
             partition of ~{mean_total:.0} total ways (of 16) stays within {MISS_BUDGET} \
             absolute miss rate of the full shared cache. The suite default (6u+4k, \
             10 ways — 62.5% of baseline capacity) is chosen from this analysis."
        ),
        claims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_finds_shrunk_partitions() {
        let r = run(Scale::Quick, Jobs::available());
        assert!(r.passed(), "claims failed:\n{}", r.render());
        assert!(r.table.contains("browser"));
    }
}
