//! T2 — normalized L2 energy per design (the headline table).
//!
//! Reproduces claims C7/C8: the static multi-retention technique cuts L2
//! energy by ~75 % and the dynamic short-retention technique by ~85 %
//! relative to the shared SRAM baseline. Absolute joules differ from the
//! authors' CACTI/NVSim testbed; the reproduction targets the *shape*:
//! large savings, dynamic > static, leakage the dominant component saved.

use crate::experiments::matrix::DesignMatrix;
use crate::experiments::{ClaimCheck, ExperimentResult};
use crate::table::{pct, Table};

/// Builds the result from an already-run design matrix.
pub fn from_matrix(m: &DesignMatrix) -> ExperimentResult {
    let labels: Vec<String> = m.designs.iter().map(|d| d.label()).collect();
    let mut headers = vec!["app".to_string()];
    headers.extend(labels.iter().cloned());
    let mut table = Table::new(headers);

    for row in &m.rows {
        let mut cells = vec![row[0].app.clone()];
        for r in row.iter() {
            cells.push(format!("{:.3}", r.energy_ratio_vs(&row[0])));
        }
        table.row(cells);
    }
    let mut mean_cells = vec!["MEAN".to_string()];
    let mut means = Vec::new();
    for d in 0..m.designs.len() {
        let mean = m.mean_over_apps(d, |r, b| r.energy_ratio_vs(b));
        means.push(mean);
        mean_cells.push(format!("{mean:.3}"));
    }
    table.row(mean_cells);

    // Component breakdown of the baseline and the two techniques (suite
    // means) — shows *where* the savings come from.
    let mut breakdown = Table::new(vec!["design", "leakage share", "dynamic share", "refresh share"]);
    for d in [0usize, 2, 3] {
        let leak = m.mean_over_apps(d, |r, _| r.l2_energy.leakage_fraction());
        let dynamic = m.mean_over_apps(d, |r, _| {
            r.l2_energy.dynamic().pj() / r.l2_energy.total().pj()
        });
        let refresh = m.mean_over_apps(d, |r, _| {
            r.l2_energy.refresh.pj() / r.l2_energy.total().pj()
        });
        breakdown.row(vec![
            m.designs[d].label(),
            pct(leak),
            pct(dynamic),
            pct(refresh),
        ]);
    }

    // Energy-delay product, normalized per app then averaged — penalizes
    // designs that buy energy with execution time.
    let mut edp_cells = vec!["norm EDP (mean)".to_string()];
    for d in 0..m.designs.len() {
        let edp = m.mean_over_apps(d, |r, b| {
            (r.l2_energy_total().joules() * r.duration().secs())
                / (b.l2_energy_total().joules() * b.duration().secs())
        });
        edp_cells.push(format!("{edp:.3}"));
    }
    table.row(edp_cells);

    let static_saving = 1.0 - means[2];
    let dynamic_saving = 1.0 - means[3];
    let claims = vec![
        ClaimCheck {
            claim: "C7",
            target: "static multi-retention technique saves ~75% L2 energy (accept >= 65%)".into(),
            measured: pct(static_saving),
            pass: static_saving >= 0.65,
        },
        ClaimCheck {
            claim: "C8",
            target: "dynamic technique saves ~85% L2 energy (accept >= 75%)".into(),
            measured: pct(dynamic_saving),
            pass: dynamic_saving >= 0.75,
        },
        ClaimCheck {
            claim: "C6/C8",
            target: "dynamic saves more than static".into(),
            measured: format!("{} vs {}", pct(dynamic_saving), pct(static_saving)),
            pass: dynamic_saving > static_saving,
        },
    ];
    ExperimentResult {
        id: "T2",
        title: "Normalized L2 energy per design (baseline = 1.0)",
        table: format!("{}\n{}", table.render(), breakdown.render()),
        summary: format!(
            "The static multi-retention design saves {} of L2 energy and the dynamic \
             short-retention design {}. The breakdown shows why: the SRAM baseline is \
             leakage-dominated, and STT-RAM plus size reduction removes almost all of \
             it, at the cost of pricier writes (dynamic share grows).",
            pct(static_saving),
            pct(dynamic_saving)
        ),
        claims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::matrix::headline_designs;
    use crate::metrics::SimReport;
    use crate::workloads::run_app;
    use moca_trace::AppProfile;

    #[test]
    fn energy_table_shape_holds_on_small_runs() {
        // A reduced matrix (3 apps, short traces) — claims may be noisier
        // than the full run, so only check structure + ordering here.
        let designs = headline_designs();
        let rows: Vec<Vec<SimReport>> = AppProfile::suite()[..3]
            .iter()
            .map(|app| designs.iter().map(|d| run_app(app, *d, 400_000, 7)).collect())
            .collect();
        let m = DesignMatrix { designs, rows };
        let r = from_matrix(&m);
        assert!(r.table.contains("MEAN"));
        assert!(r.table.contains("leakage share"));
        // Both techniques must save a lot of energy even on short runs.
        let static_mean = m.mean_over_apps(2, |x, b| x.energy_ratio_vs(b));
        assert!(static_mean < 0.5, "static norm energy {static_mean}");
    }
}
