//! F5 — retention-time design space of the static STT-RAM partition.
//!
//! Reproduces claim C5's design-space exploration: sweeping the STT-RAM
//! retention class of both segments of the static partition (and both
//! expiry policies for volatile classes) trades write energy against
//! expiry/refresh overhead. Long retention wastes write energy; too-short
//! retention loses blocks before their reuse. The sweet spot sits at the
//! shortest class that still covers typical block lifetimes — per F4,
//! around one second for user and tens of milliseconds for kernel.

use moca_core::{L2Design, RefreshPolicy};
use moca_energy::RetentionClass;
use moca_trace::AppProfile;

use crate::experiments::{ClaimCheck, ExperimentResult};
use crate::fanout::FanOut;
use crate::parallel::{parallel_map, Jobs};
use crate::table::{f3, Table};
use crate::workloads::{Scale, EXPERIMENT_SEED};

/// Apps averaged in the sweep (kept small; the sweep is 5 classes × 2
/// policies × apps runs).
pub const SWEEP_APPS: [&str; 3] = ["browser", "video", "music"];

/// Runs the experiment, sharding the (retention, policy) × app grid over
/// `jobs` threads.
pub fn run(scale: Scale, jobs: Jobs) -> ExperimentResult {
    let refs = scale.sweep_refs();
    let apps: Vec<AppProfile> = SWEEP_APPS
        .iter()
        .map(|n| AppProfile::by_name(n).expect("known app"))
        .collect();

    let mut table = Table::new(vec![
        "retention (both segs)",
        "policy",
        "miss rate",
        "norm energy",
        "expired/1k L2 acc",
        "refresh/1k L2 acc",
    ]);

    // Enumerate the sweep grid first (table order below), then fan the
    // whole design family — the SRAM baseline plus every (retention,
    // policy) point — out over ONE shared trace stream per app. The
    // parallel axis is the app; each worker pays trace generation once
    // for its app instead of once per grid cell.
    let mut configs: Vec<(RetentionClass, RefreshPolicy)> = Vec::new();
    for rc in RetentionClass::SWEEP {
        for policy in [RefreshPolicy::InvalidateOnExpiry, RefreshPolicy::Refresh] {
            if !rc.is_volatile() && policy == RefreshPolicy::Refresh {
                continue; // refresh of a non-volatile class never fires
            }
            configs.push((rc, policy));
        }
    }
    let mut designs: Vec<L2Design> = vec![L2Design::baseline()];
    designs.extend(configs.iter().map(|&(rc, policy)| L2Design::StaticMultiRetention {
        user_ways: 6,
        kernel_ways: 4,
        user_retention: rc,
        kernel_retention: rc,
        refresh: policy,
    }));
    // per_app[i][0] is app i's baseline; [1..] follow `configs` order.
    let per_app: Vec<Vec<_>> = parallel_map(jobs, apps.clone(), |a| {
        FanOut::new(&a, EXPERIMENT_SEED).run(&designs, refs)
    });
    let baseline_energy: Vec<f64> = per_app
        .iter()
        .map(|r| r[0].l2_energy.total().joules())
        .collect();

    let mut norm_by_class: Vec<(RetentionClass, f64)> = Vec::new();
    for (ci, &(rc, policy)) in configs.iter().enumerate() {
        {
            let mut miss = 0.0;
            let mut norm = 0.0;
            let mut expired = 0.0;
            let mut refreshes = 0.0;
            for (i, reports) in per_app.iter().enumerate() {
                let r = &reports[ci + 1];
                miss += r.l2_miss_rate();
                norm += r.l2_energy.total().joules() / baseline_energy[i];
                let acc = r.l2_stats.accesses().max(1) as f64;
                expired += r.expiry.expired as f64 * 1000.0 / acc;
                refreshes += r.expiry.refreshes as f64 * 1000.0 / acc;
            }
            let n = apps.len() as f64;
            table.row(vec![
                rc.label(),
                policy.to_string(),
                f3(miss / n),
                f3(norm / n),
                format!("{:.2}", expired / n),
                format!("{:.2}", refreshes / n),
            ]);
            if policy == RefreshPolicy::InvalidateOnExpiry {
                norm_by_class.push((rc, norm / n));
            }
        }
    }

    // Shape claims: energy at 1s is below 10yr (cheaper writes win), and
    // the curve's minimum sits at a volatile class.
    let ten_years = norm_by_class
        .iter()
        .find(|(rc, _)| !rc.is_volatile())
        .map(|&(_, e)| e)
        .unwrap_or(f64::NAN);
    let one_second = norm_by_class
        .iter()
        .find(|(rc, _)| matches!(rc, RetentionClass::OneSecond))
        .map(|&(_, e)| e)
        .unwrap_or(f64::NAN);
    let (best_rc, best_e) = norm_by_class
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .copied()
        .expect("non-empty sweep");

    let claims = vec![
        ClaimCheck {
            claim: "C5",
            target: "1 s retention beats 10-year retention on energy".into(),
            measured: format!("norm E: 1s {one_second:.3} vs 10yr {ten_years:.3}"),
            pass: one_second < ten_years,
        },
        ClaimCheck {
            claim: "C5",
            target: "the energy minimum of the sweep is a volatile (relaxed) class".into(),
            measured: format!("best = {} at {:.3}", best_rc.label(), best_e),
            pass: best_rc.is_volatile(),
        },
    ];
    ExperimentResult {
        id: "F5",
        title: "Retention-time design space (static partition, both segments swept)",
        table: table.render(),
        summary: format!(
            "Relaxing retention cuts MTJ write energy sharply; expiry losses only bite \
             at the shortest classes. The minimum of the sweep ({}) confirms the \
             multi-retention choice: volatile cells with per-segment retention matched \
             to block lifetimes.",
            best_rc.label()
        ),
        claims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_volatile_optimum() {
        let r = run(Scale::Quick, Jobs::available());
        assert!(r.passed(), "claims failed:\n{}", r.render());
        assert!(r.table.contains("10yr"));
        assert!(r.table.contains("refresh"));
    }
}
