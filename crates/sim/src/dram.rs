//! DRAM backend models.
//!
//! The headline experiments use a flat-latency DRAM (every access costs
//! [`SystemConfig::dram_latency_cycles`]); this module adds an optional
//! LPDDR-style **row-buffer** model: each bank keeps its last-activated
//! row open, row hits are fast, row conflicts pay precharge + activate.
//! Streaming tails enjoy high row locality, pointer chases do not — so
//! the refined model slightly rewards the sequential traffic that mobile
//! workloads are rich in.
//!
//! [`SystemConfig::dram_latency_cycles`]: crate::config::SystemConfig::dram_latency_cycles

use moca_energy::Energy;

/// Which DRAM timing model the system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DramModel {
    /// Fixed latency and energy per access (the default; what the
    /// headline experiments use).
    #[default]
    Flat,
    /// Per-bank open-row tracking with distinct row-hit / row-miss /
    /// row-conflict timings.
    RowBuffer,
}

/// Timing/energy parameters of the row-buffer model (LPDDR2-era values
/// at a 1 GHz core clock).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowBufferParams {
    /// Number of banks.
    pub banks: u32,
    /// Row size in bytes (the interleaving granularity).
    pub row_bytes: u64,
    /// Latency of a row-buffer hit, in core cycles.
    pub hit_cycles: u64,
    /// Latency when the bank was idle (activate + access).
    pub empty_cycles: u64,
    /// Latency when another row was open (precharge + activate + access).
    pub conflict_cycles: u64,
    /// Energy of a row activation.
    pub activate_energy: Energy,
    /// Energy of transferring one line.
    pub transfer_energy: Energy,
}

impl Default for RowBufferParams {
    fn default() -> Self {
        Self {
            banks: 8,
            row_bytes: 2048,
            hit_cycles: 60,
            empty_cycles: 110,
            conflict_cycles: 160,
            activate_energy: Energy::from_nj(12.0),
            transfer_energy: Energy::from_nj(8.0),
        }
    }
}

impl RowBufferParams {
    fn validate(&self) {
        assert!(self.banks > 0, "at least one bank");
        assert!(
            self.row_bytes.is_power_of_two(),
            "row size must be a power of two"
        );
        assert!(self.conflict_cycles >= self.empty_cycles);
        assert!(self.empty_cycles >= self.hit_cycles);
    }
}

/// Outcome classification of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank had no open row.
    Empty,
    /// Another row was open and had to be closed first.
    Conflict,
}

/// A row-buffer DRAM: per-bank open-row state plus counters.
#[derive(Debug, Clone)]
pub struct RowBufferDram {
    params: RowBufferParams,
    /// Open row per bank (`None` = precharged/idle).
    open_rows: Vec<Option<u64>>,
    hits: u64,
    empties: u64,
    conflicts: u64,
    energy: Energy,
}

impl RowBufferDram {
    /// Creates the DRAM with all banks precharged.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (see
    /// [`RowBufferParams`] field docs).
    pub fn new(params: RowBufferParams) -> Self {
        params.validate();
        Self {
            open_rows: vec![None; params.banks as usize],
            params,
            hits: 0,
            empties: 0,
            conflicts: 0,
            energy: Energy::ZERO,
        }
    }

    /// The parameters in force.
    pub fn params(&self) -> &RowBufferParams {
        &self.params
    }

    fn locate(&self, line_addr: u64, line_bytes: u64) -> (usize, u64) {
        let byte_addr = line_addr * line_bytes;
        let row = byte_addr / self.params.row_bytes;
        let bank = (row % u64::from(self.params.banks)) as usize;
        (bank, row)
    }

    /// Performs one line access; returns `(outcome, latency_cycles)` and
    /// accrues energy.
    pub fn access(&mut self, line_addr: u64, line_bytes: u64) -> (RowOutcome, u64) {
        let (bank, row) = self.locate(line_addr, line_bytes);
        let (outcome, latency) = match self.open_rows[bank] {
            Some(open) if open == row => (RowOutcome::Hit, self.params.hit_cycles),
            Some(_) => (RowOutcome::Conflict, self.params.conflict_cycles),
            None => (RowOutcome::Empty, self.params.empty_cycles),
        };
        self.open_rows[bank] = Some(row);
        self.energy += self.params.transfer_energy;
        if outcome != RowOutcome::Hit {
            self.energy += self.params.activate_energy;
        }
        match outcome {
            RowOutcome::Hit => self.hits += 1,
            RowOutcome::Empty => self.empties += 1,
            RowOutcome::Conflict => self.conflicts += 1,
        }
        (outcome, latency)
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.hits + self.empties + self.conflicts
    }

    /// Row-buffer hit rate (`0.0` when idle).
    pub fn row_hit_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.hits as f64 / a as f64
        }
    }

    /// Accrued DRAM energy.
    pub fn energy(&self) -> Energy {
        self.energy
    }

    /// `(hits, empties, conflicts)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.empties, self.conflicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> RowBufferDram {
        RowBufferDram::new(RowBufferParams::default())
    }

    #[test]
    fn first_access_is_empty_then_hits() {
        let mut d = dram();
        let (o1, l1) = d.access(0, 64);
        assert_eq!(o1, RowOutcome::Empty);
        assert_eq!(l1, d.params().empty_cycles);
        // Same row (lines 0..32 share a 2 KiB row).
        let (o2, l2) = d.access(1, 64);
        assert_eq!(o2, RowOutcome::Hit);
        assert_eq!(l2, d.params().hit_cycles);
        assert!((d.row_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conflicting_rows_pay_precharge() {
        let mut d = dram();
        d.access(0, 64);
        // A row that maps to the same bank: row + banks (8 rows later).
        let conflict_line = (8 * 2048) / 64;
        let (o, l) = d.access(conflict_line, 64);
        assert_eq!(o, RowOutcome::Conflict);
        assert_eq!(l, d.params().conflict_cycles);
    }

    #[test]
    fn different_banks_do_not_conflict() {
        let mut d = dram();
        d.access(0, 64); // row 0 → bank 0
        let next_bank_line = 2048 / 64; // row 1 → bank 1
        let (o, _) = d.access(next_bank_line, 64);
        assert_eq!(o, RowOutcome::Empty);
    }

    #[test]
    fn sequential_stream_has_high_row_hit_rate() {
        let mut d = dram();
        for line in 0..4096u64 {
            d.access(line, 64);
        }
        // 32 lines per row → 31/32 hits.
        assert!(d.row_hit_rate() > 0.95, "hit rate {}", d.row_hit_rate());
    }

    #[test]
    fn random_stream_has_low_row_hit_rate() {
        let mut d = dram();
        let mut x = 12345u64;
        for _ in 0..4096 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            d.access(x % 1_000_000, 64);
        }
        assert!(d.row_hit_rate() < 0.2, "hit rate {}", d.row_hit_rate());
    }

    #[test]
    fn energy_charges_activates_only_on_misses() {
        let mut d = dram();
        d.access(0, 64); // empty: activate + transfer
        d.access(1, 64); // hit: transfer only
        let p = *d.params();
        let expected = p.activate_energy + p.transfer_energy * 2;
        assert!((d.energy().pj() - expected.pj()).abs() < 1e-9);
    }

    #[test]
    fn counters_add_up() {
        let mut d = dram();
        for line in [0u64, 1, 256, 0, 512] {
            d.access(line, 64);
        }
        let (h, e, c) = d.counters();
        assert_eq!(h + e + c, d.accesses());
        assert_eq!(d.accesses(), 5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_row_size_panics() {
        let p = RowBufferParams {
            row_bytes: 1000,
            ..RowBufferParams::default()
        };
        RowBufferDram::new(p);
    }

    #[test]
    fn default_model_is_flat() {
        assert_eq!(DramModel::default(), DramModel::Flat);
    }
}
