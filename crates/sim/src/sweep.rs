//! Parameter-sweep utilities and report export.
//!
//! The experiment modules cover the paper's figures; this module gives
//! downstream users the same machinery for *their own* studies: run a
//! family of design points over an app, collect [`SimReport`]s, and
//! export them as CSV or a comparison table.

use std::io::{self, Write};

use moca_core::L2Design;
use moca_trace::AppProfile;

use crate::metrics::SimReport;
use crate::parallel::{parallel_map_ref, Jobs};
use crate::table::Table;
use crate::workloads::run_app;

/// One point of a sweep: the parameter value and its simulation report.
#[derive(Debug, Clone)]
pub struct SweepPoint<P> {
    /// The swept parameter value.
    pub param: P,
    /// The resulting report.
    pub report: SimReport,
}

/// Runs `app` on the design produced for every parameter value.
///
/// # Examples
///
/// ```
/// use moca_sim::sweep::sweep;
/// use moca_core::L2Design;
/// use moca_trace::AppProfile;
///
/// // Sweep the shared-cache associativity.
/// let points = sweep(
///     &[4u32, 8, 16],
///     |&ways| L2Design::SharedSram { ways },
///     &AppProfile::music(),
///     30_000,
///     1,
/// );
/// assert_eq!(points.len(), 3);
/// // More ways → miss rate cannot get worse by much.
/// assert!(points[2].report.l2_miss_rate() <= points[0].report.l2_miss_rate() + 0.01);
/// ```
pub fn sweep<P, F>(
    params: &[P],
    mut to_design: F,
    app: &AppProfile,
    refs: usize,
    seed: u64,
) -> Vec<SweepPoint<P>>
where
    P: Clone,
    F: FnMut(&P) -> L2Design,
{
    params
        .iter()
        .map(|p| SweepPoint {
            param: p.clone(),
            report: run_app(app, to_design(p), refs, seed),
        })
        .collect()
}

/// [`sweep`] sharded over `jobs` threads.
///
/// Each design point is an independent simulation with its own seeded
/// trace generator, and results are merged in parameter order — so the
/// output (including its CSV rendering) is **byte-identical** to the
/// serial [`sweep`] for every job count.
///
/// # Examples
///
/// ```
/// use moca_sim::parallel::Jobs;
/// use moca_sim::sweep::{sweep, sweep_parallel};
/// use moca_core::L2Design;
/// use moca_trace::AppProfile;
///
/// let app = AppProfile::music();
/// let to_design = |&ways: &u32| L2Design::SharedSram { ways };
/// let serial = sweep(&[4u32, 8], to_design, &app, 20_000, 1);
/// let parallel = sweep_parallel(&[4u32, 8], to_design, &app, 20_000, 1, Jobs::new(2));
/// assert_eq!(serial.len(), parallel.len());
/// assert_eq!(serial[0].report.cycles, parallel[0].report.cycles);
/// ```
pub fn sweep_parallel<P, F>(
    params: &[P],
    to_design: F,
    app: &AppProfile,
    refs: usize,
    seed: u64,
    jobs: Jobs,
) -> Vec<SweepPoint<P>>
where
    P: Clone + Send + Sync,
    F: Fn(&P) -> L2Design + Sync,
{
    parallel_map_ref(jobs, params, |p| SweepPoint {
        param: p.clone(),
        report: run_app(app, to_design(p), refs, seed),
    })
}

/// The CSV header matching [`csv_row`].
pub const CSV_HEADER: &str = "app,design,refs,cycles,cpr,l2_accesses,l2_miss_rate,\
l2_kernel_share,l2_energy_nj,leakage_nj,dynamic_nj,refresh_nj,dram_energy_nj,\
dram_reads,dram_writes,expired,refreshes,mean_active_ways";

/// Renders one report as a CSV row (fields per [`CSV_HEADER`]).
pub fn csv_row(r: &SimReport) -> String {
    format!(
        "{},{},{},{},{:.4},{},{:.5},{:.5},{:.3},{:.3},{:.3},{:.3},{:.3},{},{},{},{},{:.2}",
        r.app,
        r.design,
        r.refs,
        r.cycles,
        r.cpr(),
        r.l2_stats.accesses(),
        r.l2_miss_rate(),
        r.l2_kernel_share(),
        r.l2_energy.total().nj(),
        r.l2_energy.leakage.nj(),
        r.l2_energy.dynamic().nj(),
        r.l2_energy.refresh.nj(),
        r.dram_energy.nj(),
        r.traffic.dram_reads,
        r.traffic.dram_writes,
        r.expiry.expired,
        r.expiry.refreshes,
        r.mean_active_ways,
    )
}

/// Writes reports as CSV (header + one row per report).
///
/// A mutable reference to any [`Write`] can be passed.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_csv<'a, W, I>(mut writer: W, reports: I) -> io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a SimReport>,
{
    writeln!(writer, "{CSV_HEADER}")?;
    for r in reports {
        writeln!(writer, "{}", csv_row(r))?;
    }
    Ok(())
}

/// Builds a side-by-side comparison table of reports, normalized to the
/// first one.
///
/// # Panics
///
/// Panics if `reports` is empty.
pub fn comparison_table(reports: &[SimReport]) -> Table {
    assert!(!reports.is_empty(), "nothing to compare");
    let base = &reports[0];
    let mut t = Table::new(vec![
        "design",
        "miss rate",
        "norm energy",
        "slowdown",
        "mean ways",
    ]);
    for r in reports {
        t.row(vec![
            r.design.clone(),
            format!("{:.3}", r.l2_miss_rate()),
            format!("{:.3}", r.energy_ratio_vs(base)),
            format!("{:.3}", r.slowdown_vs(base)),
            format!("{:.1}", r.mean_active_ways),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reports() -> Vec<SimReport> {
        let app = AppProfile::music();
        vec![
            run_app(&app, L2Design::baseline(), 30_000, 1),
            run_app(&app, L2Design::static_default(), 30_000, 1),
        ]
    }

    #[test]
    fn sweep_runs_every_point() {
        let app = AppProfile::game();
        let pts = sweep(
            &[2u32, 4],
            |&w| L2Design::SharedSram { ways: w },
            &app,
            20_000,
            3,
        );
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].param, 2);
        assert!(pts[0].report.l2_stats.accesses() > 0);
    }

    #[test]
    fn parallel_sweep_csv_is_byte_identical_to_serial() {
        let app = AppProfile::game();
        let to_design = |&w: &u32| L2Design::SharedSram { ways: w };
        let params = [2u32, 4, 8, 16];
        let serial = sweep(&params, to_design, &app, 20_000, 3);
        let mut serial_csv = Vec::new();
        write_csv(&mut serial_csv, serial.iter().map(|p| &p.report)).expect("write");
        for jobs in [1, 2, 8] {
            let par = sweep_parallel(&params, to_design, &app, 20_000, 3, Jobs::new(jobs));
            let mut par_csv = Vec::new();
            write_csv(&mut par_csv, par.iter().map(|p| &p.report)).expect("write");
            assert_eq!(serial_csv, par_csv, "jobs = {jobs}");
        }
    }

    #[test]
    fn csv_roundtrip_structure() {
        let rs = reports();
        let mut buf = Vec::new();
        write_csv(&mut buf, rs.iter()).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let cols = CSV_HEADER.split(',').count();
        for line in &lines {
            assert_eq!(line.split(',').count(), cols, "bad row: {line}");
        }
        assert!(lines[1].starts_with("music,"));
    }

    #[test]
    fn comparison_table_normalizes_to_first() {
        let rs = reports();
        let t = comparison_table(&rs);
        let rendered = t.render();
        // First data row is the baseline: norm energy 1.000, slowdown 1.000.
        let first = rendered.lines().nth(2).expect("row");
        assert!(first.contains("1.000"));
    }

    #[test]
    #[should_panic(expected = "nothing to compare")]
    fn empty_comparison_panics() {
        comparison_table(&[]);
    }
}
