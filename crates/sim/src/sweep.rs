//! Parameter-sweep utilities and report export.
//!
//! The experiment modules cover the paper's figures; this module gives
//! downstream users the same machinery for *their own* studies: run a
//! family of design points over an app, collect [`SimReport`]s, and
//! export them as CSV or a comparison table.
//!
//! Sweeps run on the shared-trace fan-out engine ([`crate::fanout`]):
//! the workload trace is generated once per `(app, seed)` and broadcast
//! to every design point, so an N-point sweep pays the trace-generation
//! cost once instead of N times.

use std::io::{self, Write};

use moca_core::L2Design;
use moca_trace::AppProfile;

use crate::error::SweepPointError;
use crate::fanout::FanOut;
use crate::metrics::SimReport;
use crate::parallel::Jobs;
use crate::table::Table;

/// One point of a sweep: the parameter value, its simulation report,
/// and the wall-clock time spent simulating it.
#[derive(Debug, Clone)]
pub struct SweepPoint<P> {
    /// The swept parameter value.
    pub param: P,
    /// The resulting report.
    pub report: SimReport,
    /// Wall-clock nanoseconds spent simulating this design point
    /// (trace generation is shared across the sweep and excluded).
    pub wall_ns: u64,
}

/// Runs `app` on the design produced for every parameter value.
///
/// The trace is generated once and broadcast to every design, but each
/// report is byte-identical to running that design alone via
/// [`crate::workloads::run_app`].
///
/// # Examples
///
/// ```
/// use moca_sim::sweep::sweep;
/// use moca_core::L2Design;
/// use moca_trace::AppProfile;
///
/// // Sweep the shared-cache associativity.
/// let points = sweep(
///     &[4u32, 8, 16],
///     |&ways| L2Design::SharedSram { ways },
///     &AppProfile::music(),
///     30_000,
///     1,
/// );
/// assert_eq!(points.len(), 3);
/// // More ways → miss rate cannot get worse by much.
/// assert!(points[2].report.l2_miss_rate() <= points[0].report.l2_miss_rate() + 0.01);
/// ```
pub fn sweep<P, F>(
    params: &[P],
    to_design: F,
    app: &AppProfile,
    refs: usize,
    seed: u64,
) -> Vec<SweepPoint<P>>
where
    P: Clone,
    F: FnMut(&P) -> L2Design,
{
    let designs: Vec<L2Design> = params.iter().map(to_design).collect();
    let timed = FanOut::new(app, seed).run_timed(&designs, refs);
    params
        .iter()
        .zip(timed)
        .map(|(p, (report, wall_ns))| SweepPoint {
            param: p.clone(),
            report,
            wall_ns,
        })
        .collect()
}

/// [`sweep`] with the design points sharded over `jobs` threads.
///
/// The fan-out engine partitions the designs into contiguous groups,
/// one shared trace stream per worker, and merges results in parameter
/// order — so the reports (and their CSV rendering minus the measured
/// `wall_ns` column) are **byte-identical** to the serial [`sweep`] for
/// every job count.
///
/// # Examples
///
/// ```
/// use moca_sim::parallel::Jobs;
/// use moca_sim::sweep::{sweep, sweep_parallel};
/// use moca_core::L2Design;
/// use moca_trace::AppProfile;
///
/// let app = AppProfile::music();
/// let to_design = |&ways: &u32| L2Design::SharedSram { ways };
/// let serial = sweep(&[4u32, 8], to_design, &app, 20_000, 1);
/// let parallel = sweep_parallel(&[4u32, 8], to_design, &app, 20_000, 1, Jobs::new(2));
/// assert_eq!(serial.len(), parallel.len());
/// assert_eq!(serial[0].report.cycles, parallel[0].report.cycles);
/// ```
pub fn sweep_parallel<P, F>(
    params: &[P],
    to_design: F,
    app: &AppProfile,
    refs: usize,
    seed: u64,
    jobs: Jobs,
) -> Vec<SweepPoint<P>>
where
    P: Clone + Send + Sync,
    F: Fn(&P) -> L2Design + Sync,
{
    let designs: Vec<L2Design> = params.iter().map(to_design).collect();
    let timed = FanOut::new(app, seed).run_timed_parallel(&designs, refs, jobs);
    params
        .iter()
        .zip(timed)
        .map(|(p, (report, wall_ns))| SweepPoint {
            param: p.clone(),
            report,
            wall_ns,
        })
        .collect()
}

/// [`sweep`] with per-point failure isolation: an invalid or panicking
/// design point yields `Err(SweepPointError)` in its slot while every
/// other point still completes.
///
/// Equivalent to [`sweep_parallel_isolated`] with [`Jobs::SERIAL`].
pub fn sweep_isolated<P, F>(
    params: &[P],
    to_design: F,
    app: &AppProfile,
    refs: usize,
    seed: u64,
) -> Vec<Result<SweepPoint<P>, SweepPointError>>
where
    P: Clone + Send + Sync,
    F: Fn(&P) -> L2Design + Sync,
{
    sweep_parallel_isolated(params, to_design, app, refs, seed, Jobs::SERIAL)
}

/// [`sweep_parallel`] with per-point failure isolation.
///
/// A design point that fails to build (e.g. zero ways) or panics
/// mid-simulation is reported as `Err(SweepPointError)`; all remaining
/// points run to completion. The surviving [`SweepPoint`]s *and* the
/// failed-point set (indices, labels, rendered causes) are byte-identical
/// for every `jobs` value — the determinism contract extends to
/// failures (`crates/sim/tests/fault_tolerance.rs`).
///
/// # Examples
///
/// ```
/// use moca_sim::parallel::Jobs;
/// use moca_sim::sweep::sweep_parallel_isolated;
/// use moca_core::L2Design;
/// use moca_trace::AppProfile;
///
/// // ways = 0 is rejected at build time; 4 and 8 still complete.
/// let points = sweep_parallel_isolated(
///     &[4u32, 0, 8],
///     |&ways| L2Design::SharedSram { ways },
///     &AppProfile::music(),
///     10_000,
///     1,
///     Jobs::new(2),
/// );
/// assert!(points[0].is_ok() && points[2].is_ok());
/// assert_eq!(points[1].as_ref().unwrap_err().index, 1);
/// ```
pub fn sweep_parallel_isolated<P, F>(
    params: &[P],
    to_design: F,
    app: &AppProfile,
    refs: usize,
    seed: u64,
    jobs: Jobs,
) -> Vec<Result<SweepPoint<P>, SweepPointError>>
where
    P: Clone + Send + Sync,
    F: Fn(&P) -> L2Design + Sync,
{
    let designs: Vec<L2Design> = params.iter().map(to_design).collect();
    let outcomes = FanOut::new(app, seed).run_timed_parallel_isolated(&designs, refs, jobs);
    params
        .iter()
        .zip(outcomes)
        .map(|(p, outcome)| {
            outcome.map(|(report, wall_ns)| SweepPoint {
                param: p.clone(),
                report,
                wall_ns,
            })
        })
        .collect()
}

/// The CSV header matching [`csv_row`].
pub const CSV_HEADER: &str = "app,design,refs,cycles,cpr,l2_accesses,l2_miss_rate,\
l2_kernel_share,l2_energy_nj,leakage_nj,dynamic_nj,refresh_nj,dram_energy_nj,\
dram_reads,dram_writes,expired,refreshes,mean_active_ways,wall_ns";

/// RFC-4180 quoting for one CSV string field: a field containing a
/// comma, double quote, or line break is wrapped in double quotes with
/// embedded quotes doubled; anything else passes through unchanged (so
/// the well-behaved labels every built-in app and design uses render
/// byte-identically to before).
fn csv_field(field: &str) -> std::borrow::Cow<'_, str> {
    if !field.contains([',', '"', '\n', '\r']) {
        return std::borrow::Cow::Borrowed(field);
    }
    let mut out = String::with_capacity(field.len() + 2);
    out.push('"');
    for c in field.chars() {
        if c == '"' {
            out.push('"');
        }
        out.push(c);
    }
    out.push('"');
    std::borrow::Cow::Owned(out)
}

/// Renders one report as a CSV row (fields per [`CSV_HEADER`]).
///
/// `wall_ns` is the measured simulation time of the point (use
/// [`SweepPoint::wall_ns`], or `0` when timing was not collected).
/// The `app` and `design` string fields are RFC-4180-quoted when they
/// contain CSV metacharacters; numeric fields are never quoted.
pub fn csv_row(r: &SimReport, wall_ns: u64) -> String {
    format!(
        "{},{},{},{},{:.4},{},{:.5},{:.5},{:.3},{:.3},{:.3},{:.3},{:.3},{},{},{},{},{:.2},{}",
        csv_field(&r.app),
        csv_field(&r.design),
        r.refs,
        r.cycles,
        r.cpr(),
        r.l2_stats.accesses(),
        r.l2_miss_rate(),
        r.l2_kernel_share(),
        r.l2_energy.total().nj(),
        r.l2_energy.leakage.nj(),
        r.l2_energy.dynamic().nj(),
        r.l2_energy.refresh.nj(),
        r.dram_energy.nj(),
        r.traffic.dram_reads,
        r.traffic.dram_writes,
        r.expiry.expired,
        r.expiry.refreshes,
        r.mean_active_ways,
        wall_ns,
    )
}

/// Writes `(report, wall_ns)` pairs as CSV (header + one row per pair).
///
/// A mutable reference to any [`Write`] can be passed. Sweep results
/// adapt via `points.iter().map(|p| (&p.report, p.wall_ns))`; pass `0`
/// as `wall_ns` for reports without timing.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_csv<'a, W, I>(mut writer: W, rows: I) -> io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = (&'a SimReport, u64)>,
{
    writeln!(writer, "{CSV_HEADER}")?;
    for (r, wall_ns) in rows {
        writeln!(writer, "{}", csv_row(r, wall_ns))?;
    }
    Ok(())
}

/// Builds a side-by-side comparison table of reports, normalized to the
/// first one.
///
/// # Panics
///
/// Panics if `reports` is empty.
pub fn comparison_table(reports: &[SimReport]) -> Table {
    assert!(!reports.is_empty(), "nothing to compare");
    let base = &reports[0];
    let mut t = Table::new(vec![
        "design",
        "miss rate",
        "norm energy",
        "slowdown",
        "mean ways",
    ]);
    for r in reports {
        t.row(vec![
            r.design.clone(),
            format!("{:.3}", r.l2_miss_rate()),
            format!("{:.3}", r.energy_ratio_vs(base)),
            format!("{:.3}", r.slowdown_vs(base)),
            format!("{:.1}", r.mean_active_ways),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::run_app;

    fn reports() -> Vec<SimReport> {
        let app = AppProfile::music();
        vec![
            run_app(&app, L2Design::baseline(), 30_000, 1),
            run_app(&app, L2Design::static_default(), 30_000, 1),
        ]
    }

    /// CSV with the measured `wall_ns` column blanked, for byte-identity
    /// comparisons across job counts.
    fn csv_sans_wall<P>(points: &[SweepPoint<P>]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_csv(&mut buf, points.iter().map(|p| (&p.report, 0))).expect("write");
        buf
    }

    #[test]
    fn sweep_runs_every_point() {
        let app = AppProfile::game();
        let pts = sweep(
            &[2u32, 4],
            |&w| L2Design::SharedSram { ways: w },
            &app,
            20_000,
            3,
        );
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].param, 2);
        assert!(pts[0].report.l2_stats.accesses() > 0);
        assert!(pts[0].wall_ns > 0, "sweep points carry simulation time");
    }

    #[test]
    fn sweep_matches_per_design_run_app() {
        let app = AppProfile::game();
        let params = [2u32, 8];
        let pts = sweep(
            &params,
            |&w| L2Design::SharedSram { ways: w },
            &app,
            20_000,
            3,
        );
        for (p, pt) in params.iter().zip(&pts) {
            let solo = run_app(&app, L2Design::SharedSram { ways: *p }, 20_000, 3);
            assert_eq!(format!("{:?}", pt.report), format!("{solo:?}"));
        }
    }

    #[test]
    fn parallel_sweep_csv_is_byte_identical_to_serial() {
        let app = AppProfile::game();
        let to_design = |&w: &u32| L2Design::SharedSram { ways: w };
        let params = [2u32, 4, 8, 16];
        let serial = sweep(&params, to_design, &app, 20_000, 3);
        let serial_csv = csv_sans_wall(&serial);
        for jobs in [1, 2, 8] {
            let par = sweep_parallel(&params, to_design, &app, 20_000, 3, Jobs::new(jobs));
            assert_eq!(serial_csv, csv_sans_wall(&par), "jobs = {jobs}");
        }
    }

    #[test]
    fn csv_roundtrip_structure() {
        let rs = reports();
        let mut buf = Vec::new();
        write_csv(&mut buf, rs.iter().map(|r| (r, 42))).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let cols = CSV_HEADER.split(',').count();
        for line in &lines {
            assert_eq!(line.split(',').count(), cols, "bad row: {line}");
        }
        assert!(lines[1].starts_with("music,"));
        assert!(lines[1].ends_with(",42"), "wall_ns is the final column");
        assert!(CSV_HEADER.ends_with(",wall_ns"));
    }

    /// RFC-4180 parser for one record (which may span what looks like
    /// multiple lines when a quoted field embeds a newline).
    fn parse_csv_record(record: &str) -> Vec<String> {
        let mut fields = vec![String::new()];
        let mut chars = record.chars().peekable();
        let mut in_quotes = false;
        while let Some(c) = chars.next() {
            let cur = fields.last_mut().expect("at least one field");
            if in_quotes {
                if c == '"' {
                    if chars.peek() == Some(&'"') {
                        cur.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                } else {
                    cur.push(c);
                }
            } else {
                match c {
                    '"' => in_quotes = true,
                    ',' => fields.push(String::new()),
                    c => cur.push(c),
                }
            }
        }
        fields
    }

    #[test]
    fn csv_field_quotes_only_when_needed() {
        assert_eq!(csv_field("music"), "music");
        assert_eq!(csv_field("shared-sram-16"), "shared-sram-16");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
        assert_eq!(csv_field("cr\rhere"), "\"cr\rhere\"");
    }

    #[test]
    fn csv_row_round_trips_a_hostile_label() {
        use crate::config::SystemConfig;
        use crate::system::System;
        use moca_trace::TraceGenerator;

        let hostile = "evil \"app\", with,commas\nand a newline";
        let mut sys = System::new(hostile, L2Design::baseline(), SystemConfig::default())
            .expect("valid design");
        sys.run(TraceGenerator::new(&AppProfile::music(), 1).take(5_000));
        let report = sys.finish();

        let row = csv_row(&report, 7);
        let fields = parse_csv_record(&row);
        assert_eq!(fields.len(), CSV_HEADER.split(',').count());
        assert_eq!(fields[0], hostile, "the label must survive a round trip");
        assert_eq!(fields.last().map(String::as_str), Some("7"));

        // Well-behaved labels render exactly as before (no quoting).
        let plain = csv_row(&reports()[0], 0);
        assert!(!plain.contains('"'), "plain labels must stay unquoted: {plain}");
    }

    #[test]
    fn comparison_table_normalizes_to_first() {
        let rs = reports();
        let t = comparison_table(&rs);
        let rendered = t.render();
        // First data row is the baseline: norm energy 1.000, slowdown 1.000.
        let first = rendered.lines().nth(2).expect("row");
        assert!(first.contains("1.000"));
    }

    #[test]
    #[should_panic(expected = "nothing to compare")]
    fn empty_comparison_panics() {
        comparison_table(&[]);
    }
}
