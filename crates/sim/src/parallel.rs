//! Deterministic multi-threaded execution of independent simulations.
//!
//! The experiment suite is dominated by embarrassingly parallel sweeps:
//! every design point / app pair is an independent trace-driven
//! simulation with its own seeded generator. This module shards such
//! work across OS threads (`std::thread` only — the workspace builds
//! offline with zero external dependencies) while keeping results
//! **bit-identical to the serial path for any thread count**:
//!
//! * each work item owns its inputs (in particular its RNG seed), so no
//!   simulation observes another's state;
//! * workers pull items from a shared queue (dynamic load balancing —
//!   sweep points vary widely in cost), tagging each result with its
//!   input index;
//! * results are merged back **in input order** before being returned.
//!
//! Because item execution is pure and the merge order is the input
//! order, `parallel_map(jobs, items, f)` returns exactly
//! `items.into_iter().map(f).collect()` for every `jobs` value — the
//! golden-figure tests double as determinism oracles
//! (`crates/sim/tests/determinism.rs`).

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::{Mutex, Once};
use std::time::Instant;

use crate::telemetry::{self, Event};

/// Worker-thread count for parallel experiment execution.
///
/// `Jobs::SERIAL` (one job) makes every `*_parallel` entry point run the
/// plain sequential loop on the calling thread; any other count spawns
/// that many workers. Output is identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jobs(NonZeroUsize);

impl Jobs {
    /// One job: run on the calling thread, no spawning.
    pub const SERIAL: Jobs = Jobs(NonZeroUsize::MIN);

    /// `n` worker threads (clamped up to at least 1).
    pub fn new(n: usize) -> Self {
        Jobs(NonZeroUsize::new(n.max(1)).expect("max(1) is non-zero"))
    }

    /// One job per available hardware thread (falls back to 1 when the
    /// parallelism cannot be queried).
    pub fn available() -> Self {
        Jobs(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// The job count.
    pub fn get(self) -> usize {
        self.0.get()
    }
}

impl Default for Jobs {
    /// Defaults to [`Jobs::available`].
    fn default() -> Self {
        Jobs::available()
    }
}

impl std::fmt::Display for Jobs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::str::FromStr for Jobs {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let n: usize = s
            .parse()
            .map_err(|_| format!("invalid job count: {s:?}"))?;
        if n == 0 {
            return Err("job count must be >= 1".into());
        }
        Ok(Jobs::new(n))
    }
}

/// Applies `f` to every item, sharding the work over `jobs` threads, and
/// returns the results **in input order**.
///
/// Semantically equivalent to `items.into_iter().map(f).collect()`; the
/// output is bit-identical for every `jobs` value because `f` runs on
/// owned, independent inputs and the merge is index-ordered. Workers
/// pull from a shared queue, so heterogeneous item costs balance
/// automatically.
///
/// A panic inside `f` is propagated to the caller after the remaining
/// workers drain (matching the serial path's fail-fast semantics as
/// closely as a multi-threaded run can).
///
/// # Examples
///
/// ```
/// use moca_sim::parallel::{parallel_map, Jobs};
///
/// let squares = parallel_map(Jobs::new(4), (0u64..100).collect(), |x| x * x);
/// assert_eq!(squares, (0u64..100).map(|x| x * x).collect::<Vec<_>>());
/// ```
pub fn parallel_map<T, R, F>(jobs: Jobs, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.get().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let queue = Mutex::new(items.into_iter().enumerate());
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            scope.spawn(move || {
                // Telemetry is enabled-checked once per worker: the
                // disabled path adds one load per spawned thread, and
                // the per-item timing below is skipped entirely.
                let tele = telemetry::enabled();
                if tele {
                    telemetry::record(Event::WorkerStart {
                        pool: "parallel_map",
                        worker: worker as u32,
                        jobs: workers as u32,
                    });
                }
                let mut items = 0u64;
                let mut busy_ns = 0u64;
                loop {
                    // Hold the lock only to take the next item, never while
                    // running `f`. A poisoned lock means a sibling worker
                    // panicked mid-`next()`; the queue state is still valid
                    // (enumerate() has no invariants to break), so keep
                    // draining — the panic is re-raised by the scope.
                    let next = match queue.lock() {
                        Ok(mut it) => it.next(),
                        Err(poisoned) => poisoned.into_inner().next(),
                    };
                    match next {
                        Some((idx, item)) => {
                            let start = tele.then(Instant::now);
                            let result = f(item);
                            if let Some(start) = start {
                                busy_ns += start.elapsed().as_nanos() as u64;
                                items += 1;
                            }
                            if tx.send((idx, result)).is_err() {
                                break; // receiver gone: caller is unwinding
                            }
                        }
                        None => break,
                    }
                }
                if tele {
                    telemetry::record(Event::WorkerStop {
                        pool: "parallel_map",
                        worker: worker as u32,
                        jobs: workers as u32,
                        items,
                        busy_ns,
                    });
                }
            });
        }
        drop(tx);
        // Merge in input order: slot each tagged result by its index.
        for (idx, result) in rx {
            out[idx] = Some(result);
        }
        // Worker panics propagate when the scope joins its threads here.
    });

    out.into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("worker dropped result for item {i}")))
        .collect()
}

thread_local! {
    /// Set while the current thread is inside [`catch_panic`]: the
    /// process panic hook stays quiet for these expected, contained
    /// panics instead of spraying a report per isolated work item.
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once per process) a panic hook that forwards to the
/// previous hook unless the panicking thread is inside [`catch_panic`].
fn install_quiet_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Renders a panic payload as a deterministic message.
///
/// `panic!`/`assert!` payloads are `&str` or `String`; anything else
/// (rare — `panic_any` with a custom type) maps to a fixed placeholder
/// so the rendering stays byte-stable across runs and thread counts.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f`, converting a panic into `Err(message)` instead of
/// unwinding further.
///
/// This is the isolation primitive behind every `*_isolated` runner:
/// the panic is contained on the current thread, its payload is
/// preserved as a deterministic string, and the process panic hook is
/// muted for the duration (a sweep with hundreds of injected faults
/// should not print hundreds of backtraces).
///
/// `AssertUnwindSafe` note: callers must not reuse state `f` mutated
/// before panicking — the isolated runners drop the failed item's
/// `System` (and discard its result slot) rather than touching it again.
///
/// # Examples
///
/// ```
/// use moca_sim::parallel::catch_panic;
///
/// assert_eq!(catch_panic(|| 21 * 2), Ok(42));
/// let err = catch_panic(|| -> u32 { panic!("boom {}", 7) }).unwrap_err();
/// assert_eq!(err, "boom 7");
/// ```
pub fn catch_panic<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_panic_hook();
    QUIET_PANICS.with(|q| q.set(true));
    let result = std::panic::catch_unwind(AssertUnwindSafe(f));
    QUIET_PANICS.with(|q| q.set(false));
    result.map_err(panic_message)
}

/// [`parallel_map`] with per-item panic isolation: a panic inside `f`
/// yields `Err(message)` for that item while every other item still
/// completes and the queue keeps draining.
///
/// The output is in input order and — because each item's outcome
/// depends only on the item — both the `Ok` results and the failed-item
/// *set* (indices and messages) are byte-identical for every `jobs`
/// value. This is the foundation of the fault-tolerance determinism
/// contract (`crates/sim/tests/fault_tolerance.rs`).
///
/// # Examples
///
/// ```
/// use moca_sim::parallel::{parallel_map_isolated, Jobs};
///
/// let out = parallel_map_isolated(Jobs::new(4), (0u64..8).collect(), |x| {
///     assert!(x != 5, "bad item");
///     x * x
/// });
/// assert_eq!(out[4], Ok(16));
/// assert_eq!(out[5], Err("bad item".to_string()));
/// assert_eq!(out.iter().filter(|r| r.is_err()).count(), 1);
/// ```
pub fn parallel_map_isolated<T, R, F>(
    jobs: Jobs,
    items: Vec<T>,
    f: F,
) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map(jobs, items, |item| catch_panic(|| f(item)))
}

/// [`parallel_map`] over borrowed items: applies `f(&items[i])` in
/// parallel and returns results in input order.
pub fn parallel_map_ref<'a, T, R, F>(jobs: Jobs, items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    parallel_map(jobs, (0..items.len()).collect(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_for_all_job_counts() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x.wrapping_mul(2654435761)).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = parallel_map(Jobs::new(jobs), items.clone(), |x| {
                x.wrapping_mul(2654435761)
            });
            assert_eq!(got, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn order_is_input_order_under_skewed_costs() {
        // Early items sleep longest: completion order is roughly the
        // reverse of input order, but the merged output must not be.
        let items: Vec<usize> = (0..16).collect();
        let got = parallel_map(Jobs::new(8), items.clone(), |i| {
            std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
            i * 10
        });
        assert_eq!(got, items.iter().map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u32> = parallel_map(Jobs::new(8), Vec::<u32>::new(), |x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let got = parallel_map(Jobs::new(32), vec![1, 2, 3], |x| x + 1);
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn ref_variant_borrows_items() {
        let items = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens = parallel_map_ref(Jobs::new(2), &items, |s| s.len());
        assert_eq!(lens, vec![1, 2, 3]);
        assert_eq!(items.len(), 3); // still owned by the caller
    }

    #[test]
    fn jobs_parses_and_rejects_zero() {
        assert_eq!("4".parse::<Jobs>().expect("valid").get(), 4);
        assert!("0".parse::<Jobs>().is_err());
        assert!("x".parse::<Jobs>().is_err());
        assert_eq!(Jobs::new(0).get(), 1);
        assert!(Jobs::available().get() >= 1);
    }

    #[test]
    fn catch_panic_preserves_string_payloads() {
        assert_eq!(catch_panic(|| 7u32), Ok(7));
        assert_eq!(catch_panic(|| -> u32 { panic!("static str") }), Err("static str".into()));
        let idx = 13;
        assert_eq!(
            catch_panic(|| -> u32 { panic!("item {idx} bad") }),
            Err("item 13 bad".into())
        );
        assert_eq!(
            catch_panic(|| -> u32 { std::panic::panic_any(42u64) }),
            Err("non-string panic payload".into())
        );
    }

    #[test]
    fn isolated_map_contains_panics_and_keeps_draining() {
        let out = parallel_map_isolated(Jobs::new(4), (0u32..64).collect(), |x| {
            assert!(x % 10 != 7, "multiple-of-ten-plus-seven: {x}");
            x + 1
        });
        assert_eq!(out.len(), 64);
        for (i, r) in out.iter().enumerate() {
            if i % 10 == 7 {
                assert_eq!(*r, Err(format!("multiple-of-ten-plus-seven: {i}")));
            } else {
                assert_eq!(*r, Ok(i as u32 + 1));
            }
        }
    }

    #[test]
    fn isolated_failed_set_is_identical_across_job_counts() {
        let run = |jobs: usize| {
            parallel_map_isolated(Jobs::new(jobs), (0u32..97).collect(), |x| {
                assert!(x % 13 != 4, "fault at {x}");
                x.wrapping_mul(2654435761)
            })
        };
        let reference = run(1);
        for jobs in [2, 3, 8] {
            assert_eq!(run(jobs), reference, "jobs = {jobs}");
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            parallel_map(Jobs::new(4), (0..32).collect::<Vec<u32>>(), |x| {
                assert!(x != 17, "boom");
                x
            })
        });
        assert!(result.is_err(), "panic in a worker must reach the caller");
    }
}
