//! Simulation result reporting.

use moca_cache::stats::CacheStats;
use moca_core::{AllocationSample, ExpiryStats, SegmentBehavior, TrafficCounters};
use moca_energy::{Energy, EnergyBreakdown, Time};
use moca_trace::Mode;

/// Everything measured by one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Design label (see [`moca_core::L2Design::label`]).
    pub design: String,
    /// Workload (app) name.
    pub app: String,
    /// References simulated.
    pub refs: u64,
    /// Core cycles elapsed.
    pub cycles: u64,
    /// Core clock in GHz (to convert cycles to seconds).
    pub clock_ghz: f64,
    /// Combined L1I + L1D statistics.
    pub l1_stats: CacheStats,
    /// L2 statistics.
    pub l2_stats: CacheStats,
    /// L2 energy breakdown.
    pub l2_energy: EnergyBreakdown,
    /// DRAM energy (reads + writes of lines).
    pub dram_energy: Energy,
    /// DRAM traffic.
    pub traffic: TrafficCounters,
    /// Retention-expiry statistics (zero for SRAM designs).
    pub expiry: ExpiryStats,
    /// Prefetch fills issued by the L2 (zero unless the next-line
    /// prefetcher is enabled).
    pub prefetches: u64,
    /// Powered L2 ways at the end of the run.
    pub final_active_ways: u32,
    /// Time-weighted average of powered L2 ways.
    pub mean_active_ways: f64,
    /// Allocation history (dynamic designs).
    pub timeline: Vec<AllocationSample>,
    /// Per-mode segment behaviour (populated when behaviour probing was
    /// enabled).
    pub behavior: [SegmentBehavior; 2],
}

impl SimReport {
    /// Wall-clock duration of the run.
    pub fn duration(&self) -> Time {
        Time::from_cycles(self.cycles, self.clock_ghz)
    }

    /// Cycles per reference.
    pub fn cpr(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.cycles as f64 / self.refs as f64
        }
    }

    /// References per cycle (the IPC analogue of a reference trace).
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.refs as f64 / self.cycles as f64
        }
    }

    /// L2 miss rate over all L2 accesses (prefetch fills included; they
    /// always count as misses).
    pub fn l2_miss_rate(&self) -> f64 {
        self.l2_stats.miss_rate()
    }

    /// L2 miss rate over *demand* accesses only (prefetch fills factored
    /// out) — the metric to compare prefetching configurations with.
    pub fn l2_demand_miss_rate(&self) -> f64 {
        let accesses = self.l2_stats.accesses().saturating_sub(self.prefetches);
        let misses = self.l2_stats.misses().saturating_sub(self.prefetches);
        if accesses == 0 {
            0.0
        } else {
            misses as f64 / accesses as f64
        }
    }

    /// Kernel share of L2 requests.
    pub fn l2_kernel_share(&self) -> f64 {
        self.l2_stats.kernel_share()
    }

    /// L2 energy total.
    pub fn l2_energy_total(&self) -> Energy {
        self.l2_energy.total()
    }

    /// Performance relative to a baseline run
    /// (`> 1.0` means this run is slower).
    pub fn slowdown_vs(&self, baseline: &SimReport) -> f64 {
        self.cpr() / baseline.cpr()
    }

    /// L2 energy relative to a baseline run.
    pub fn energy_ratio_vs(&self, baseline: &SimReport) -> f64 {
        self.l2_energy.normalized_to(&baseline.l2_energy)
    }

    /// Energy-delay product of the L2 (energy × run duration).
    pub fn l2_edp(&self) -> f64 {
        self.l2_energy_total().joules() * self.duration().secs()
    }

    /// Behaviour record for one mode.
    pub fn behavior(&self, mode: Mode) -> &SegmentBehavior {
        &self.behavior[mode.index()]
    }
}

/// Geometric mean of a sequence of positive ratios.
///
/// Returns `None` for an empty sequence or any non-positive value.
pub fn geometric_mean<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for v in values {
        if v <= 0.0 || !v.is_finite() {
            return None;
        }
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

/// Arithmetic mean; `None` when empty.
pub fn mean<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(cycles: u64, refs: u64, leak_nj: f64) -> SimReport {
        let mut e = EnergyBreakdown::new();
        e.leakage = Energy::from_nj(leak_nj);
        SimReport {
            design: "test".into(),
            app: "app".into(),
            refs,
            cycles,
            clock_ghz: 1.0,
            l1_stats: CacheStats::new(),
            l2_stats: CacheStats::new(),
            l2_energy: e,
            dram_energy: Energy::ZERO,
            traffic: TrafficCounters::default(),
            expiry: ExpiryStats::default(),
            prefetches: 0,
            final_active_ways: 16,
            mean_active_ways: 16.0,
            timeline: Vec::new(),
            behavior: [SegmentBehavior::new(), SegmentBehavior::new()],
        }
    }

    #[test]
    fn derived_metrics() {
        let r = dummy(3000, 1000, 100.0);
        assert!((r.cpr() - 3.0).abs() < 1e-12);
        assert!((r.throughput() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.duration().ns(), 3000.0);
    }

    #[test]
    fn comparisons_against_baseline() {
        let base = dummy(2000, 1000, 100.0);
        let slow = dummy(3000, 1000, 25.0);
        assert!((slow.slowdown_vs(&base) - 1.5).abs() < 1e-12);
        assert!((slow.energy_ratio_vs(&base) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn edp_positive() {
        let r = dummy(1000, 100, 100.0);
        assert!(r.l2_edp() > 0.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean([2.0, 8.0]), Some(4.0));
        assert_eq!(geometric_mean(std::iter::empty()), None);
        assert_eq!(geometric_mean([1.0, -1.0]), None);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean([1.0, 3.0]), Some(2.0));
        assert_eq!(mean(std::iter::empty()), None);
    }

    #[test]
    fn empty_run_rates_are_zero() {
        let r = dummy(0, 0, 0.0);
        assert_eq!(r.cpr(), 0.0);
        assert_eq!(r.throughput(), 0.0);
    }
}
