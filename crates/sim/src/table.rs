//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned ASCII table.
///
/// # Examples
///
/// ```
/// use moca_sim::table::Table;
///
/// let mut t = Table::new(vec!["app", "miss rate"]);
/// t.row(vec!["browser".to_string(), "0.31".to_string()]);
/// let s = t.render();
/// assert!(s.contains("browser"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a ratio as a percentage with one decimal (e.g. `0.753` →
/// `"75.3%"`).
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header then separator then two rows.
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "1" and "22" start at the same offset.
        let off1 = lines[2].find('1').expect("1");
        let off2 = lines[3].find('2').expect("22");
        assert_eq!(off1, off2);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.7534), "75.3%");
        assert_eq!(f3(1.23456), "1.235");
    }
}
