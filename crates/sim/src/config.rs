//! Full-system configuration (T1 of the reproduced evaluation).

use moca_cache::{CacheGeometry, GeometryError, ReplacementPolicy};
use moca_energy::Energy;

use crate::dram::DramModel;

/// Parameters of everything around the L2: core clock, L1 pair, DRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Base cycles charged per memory reference (covers issue plus the
    /// average non-memory instructions between references of an in-order
    /// mobile core).
    pub base_cycles_per_ref: f64,
    /// L1 instruction cache capacity in bytes.
    pub l1i_bytes: u64,
    /// L1 data cache capacity in bytes.
    pub l1d_bytes: u64,
    /// L1 associativity.
    pub l1_ways: u32,
    /// Line size across the hierarchy.
    pub line_bytes: u64,
    /// DRAM access latency in cycles.
    pub dram_latency_cycles: u64,
    /// DRAM energy per line read.
    pub dram_read_energy: Energy,
    /// DRAM energy per line write.
    pub dram_write_energy: Energy,
    /// DRAM timing model for demand fetches. [`DramModel::Flat`] (the
    /// default) charges `dram_latency_cycles` per access;
    /// [`DramModel::RowBuffer`] tracks per-bank open rows. Writebacks are
    /// always charged flat energy (they are off the critical path).
    pub dram_model: DramModel,
    /// Enable the L2 next-line prefetcher
    /// (see [`moca_core::L2BaseParams::next_line_prefetch`]).
    pub l2_next_line_prefetch: bool,
    /// Replacement policy of every L2 segment
    /// (see [`moca_core::L2BaseParams::policy`]). The L1 pair always uses
    /// LRU, matching the paper's platform.
    pub l2_policy: ReplacementPolicy,
}

impl Default for SystemConfig {
    /// The paper-era mobile platform: 1 GHz in-order core, 32 KiB 2-way
    /// L1s, 64 B lines, 120-cycle LPDDR access.
    fn default() -> Self {
        Self {
            clock_ghz: 1.0,
            base_cycles_per_ref: 1.5,
            l1i_bytes: 32 << 10,
            l1d_bytes: 32 << 10,
            l1_ways: 2,
            line_bytes: 64,
            dram_latency_cycles: 120,
            dram_read_energy: Energy::from_nj(20.0),
            dram_write_energy: Energy::from_nj(22.0),
            dram_model: DramModel::Flat,
            l2_next_line_prefetch: false,
            l2_policy: ReplacementPolicy::Lru,
        }
    }
}

impl SystemConfig {
    /// Geometry of the L1 instruction cache.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if the configured sizes are inconsistent.
    pub fn l1i_geometry(&self) -> Result<CacheGeometry, GeometryError> {
        CacheGeometry::new(self.l1i_bytes, self.l1_ways, self.line_bytes)
    }

    /// Geometry of the L1 data cache.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if the configured sizes are inconsistent.
    pub fn l1d_geometry(&self) -> Result<CacheGeometry, GeometryError> {
        CacheGeometry::new(self.l1d_bytes, self.l1_ways, self.line_bytes)
    }

    /// Renders the configuration table (T1).
    pub fn describe(&self) -> String {
        format!(
            "core: {} GHz in-order, {} base cycles/ref\n\
             L1I/L1D: {} KiB / {} KiB, {}-way, {} B lines\n\
             DRAM: {} cycles, {} per read, {} per write",
            self.clock_ghz,
            self.base_cycles_per_ref,
            self.l1i_bytes >> 10,
            self.l1d_bytes >> 10,
            self.l1_ways,
            self.line_bytes,
            self.dram_latency_cycles,
            self.dram_read_energy,
            self.dram_write_energy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometries_are_valid() {
        let cfg = SystemConfig::default();
        let gi = cfg.l1i_geometry().expect("l1i");
        let gd = cfg.l1d_geometry().expect("l1d");
        assert_eq!(gi.capacity_bytes(), 32 << 10);
        assert_eq!(gd.ways(), 2);
    }

    #[test]
    fn describe_mentions_key_parameters() {
        let d = SystemConfig::default().describe();
        assert!(d.contains("1 GHz"));
        assert!(d.contains("32 KiB"));
        assert!(d.contains("120 cycles"));
    }

    #[test]
    fn bad_geometry_is_reported() {
        let cfg = SystemConfig {
            l1i_bytes: 1000, // not divisible into 2-way 64B sets
            ..SystemConfig::default()
        };
        assert!(cfg.l1i_geometry().is_err());
    }
}
