//! Lock-step multi-design kernel: K designs advance through the same
//! trace reference together, sharing one L1 front end per lane group.
//!
//! The fan-out engine (see [`crate::fanout`]) already generates the
//! trace once per sweep, but it still *simulates* scalar: every design
//! re-filters every reference through its own L1 pair and retires it
//! through its own core loop, even though the L1 configuration is
//! identical across the sweep. This module flips the loop order and
//! removes that multiplier:
//!
//! * **Shared front end** ([`FrontEnd`]): the L1 filter decision is
//!   *time-independent* — replacement state ([`moca_cache`] LRU) never
//!   reads the access timestamp, so hit/miss, victim choice, and the
//!   demand/writeback requests produced for a reference are a pure
//!   function of the access sequence, not of any design's clock. One
//!   front end therefore filters each chunk once per lane group and
//!   every design lane replays the same [`FilteredChunk`].
//! * **Event replay** ([`LockStep`]): a lane only touches its L2 at the
//!   L2-visible events of the chunk. The (dominant) runs of pure L1
//!   hits between events are retired in O(1) by the closed-form
//!   [`crate::cpu::InOrderCore::retire_many`], at each lane's *own*
//!   local time — so per-design timestamps, stalls, leakage windows and
//!   expiry decisions are bit-identical to a scalar run.
//!
//! Lanes are laid out design-major: within a lane group the per-design
//! state (`System`s, wall clocks, failure slots) sits side-by-side in
//! flat arrays indexed by lane, and the inner loop iterates lanes for
//! one chunk before the front end advances — designs-within-a-lane-group
//! is the axis the work is batched over, extending the ways-within-a-set
//! SWAR batching the caches use internally.
//!
//! # Determinism
//!
//! Every report is **byte-identical** to a sequential
//! [`run_app`](crate::workloads::run_app) of the same design: the L1
//! counts are the front end's (identical by construction, adopted into
//! each lane before [`System::finish`]); the L2/DRAM interactions happen
//! at the same per-lane cycles with the same requests. The cross-engine
//! differential suites (`crates/sim/tests/lockstep_differential.rs`,
//! `lockstep_props.rs`) pin this against both the scalar oracle and the
//! retained broadcast engine ([`crate::fanout::FanOut::run_broadcast`]).

use std::time::Instant;

use moca_cache::{L1Pair, L2Request, ReplacementPolicy};
use moca_core::L2Design;
use moca_trace::AppProfile;

use crate::config::SystemConfig;
use crate::error::{PointCause, SweepPointError};
use crate::fanout::TraceStream;
use crate::metrics::SimReport;
use crate::parallel::catch_panic;
use crate::system::{BuildSystemError, System};
use crate::telemetry::{self, Event};

/// Default number of design lanes sharing one front-end filter pass.
///
/// Eight matches the widest sweeps in the experiment suite; pools larger
/// than the width run as consecutive lane groups, each with its own
/// front end over the (arena-memoized) stream.
pub const LANE_GROUP: usize = 8;

/// One L2-visible event of a filtered chunk: the demand miss (and the
/// dirty-victim writeback it may carry) plus the run of pure L1 hits
/// that preceded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneEvent {
    /// Pure-L1-hit references retired before this event's reference.
    pub gap: u32,
    /// The demand request of the L1 miss (every event is a miss).
    pub demand: L2Request,
    /// Writeback of a dirty L1 victim, if the miss evicted one.
    pub writeback: Option<L2Request>,
}

/// One chunk of the shared stream after L1 filtering: the L2-visible
/// events in order, plus the trailing run of hits.
#[derive(Debug, Default)]
pub struct FilteredChunk {
    refs: u32,
    tail: u32,
    events: Vec<LaneEvent>,
}

impl FilteredChunk {
    /// References this chunk represents (events + every gap + tail).
    pub fn refs(&self) -> usize {
        self.refs as usize
    }

    /// The L2-visible events, in reference order.
    pub fn events(&self) -> &[LaneEvent] {
        &self.events
    }

    /// Pure-L1-hit references after the last event.
    pub fn tail_gap(&self) -> usize {
        self.tail as usize
    }
}

/// The shared front end of one lane group: the `(app, seed)` trace
/// stream plus one live L1 pair, filtering each chunk once for all
/// lanes.
#[derive(Debug)]
pub struct FrontEnd<'a> {
    stream: TraceStream<'a>,
    l1: L1Pair,
    /// References filtered so far. Doubles as the timestamp handed to the
    /// L1 — any monotone stamp works, because L1 decisions and statistics
    /// are time-independent (timestamps land only in cold metadata that
    /// never reaches a report).
    filtered: u64,
}

impl<'a> FrontEnd<'a> {
    /// A front end over the `(app, seed)` stream with `cfg`'s L1 pair.
    ///
    /// # Errors
    ///
    /// Returns [`BuildSystemError`] if an L1 geometry is inconsistent
    /// (the same validation [`System::new`] applies).
    pub fn new(
        app: &'a AppProfile,
        seed: u64,
        cfg: &SystemConfig,
    ) -> Result<Self, BuildSystemError> {
        let l1 = L1Pair::new(
            cfg.l1i_geometry()?,
            cfg.l1d_geometry()?,
            ReplacementPolicy::Lru,
        );
        Ok(FrontEnd {
            stream: TraceStream::new(app, seed),
            l1,
            filtered: 0,
        })
    }

    /// The shared L1 pair (adopted by every lane before `finish`).
    pub fn l1(&self) -> &L1Pair {
        &self.l1
    }

    /// Pulls the next chunk of the stream, filters at most `limit` of
    /// its references through the shared L1 into `out`, and returns the
    /// number of references filtered.
    ///
    /// `out` is reused across calls (its event buffer keeps its
    /// allocation). The cut at `limit` is what keeps the front end's L1
    /// statistics exact for runs that end mid-chunk.
    pub fn fill_next(&mut self, limit: usize, out: &mut FilteredChunk) -> usize {
        let chunk = self.stream.next_chunk();
        let n = chunk.len().min(limit);
        out.events.clear();
        let mut gap = 0u32;
        for access in &chunk[..n] {
            let outcome = self.l1.filter(access, self.filtered);
            self.filtered += 1;
            match outcome.demand {
                Some(demand) => {
                    out.events.push(LaneEvent {
                        gap,
                        demand,
                        writeback: outcome.writeback,
                    });
                    gap = 0;
                }
                None => gap += 1,
            }
        }
        out.refs = n as u32;
        out.tail = gap;
        n
    }
}

/// Replays one filtered chunk into a design lane: O(1) retires over the
/// hit gaps, one L2 interaction per event, all at the lane's own clock.
fn replay(sys: &mut System, chunk: &FilteredChunk) {
    for ev in &chunk.events {
        sys.retire_hits(u64::from(ev.gap));
        sys.step_filtered(Some(&ev.demand), ev.writeback.as_ref());
    }
    sys.retire_hits(u64::from(chunk.tail));
    // Mirrors `System::run_batch`: one counter bump per lane per chunk,
    // so the drained telemetry totals match the scalar engines exactly.
    if telemetry::enabled() {
        telemetry::add("sim_batches", 1);
        telemetry::add("sim_refs", u64::from(chunk.refs));
    }
}

/// Per-lane execution state inside [`LockStep::run_timed_isolated_span`].
enum LaneSlot {
    /// Still simulating: the system plus its accumulated wall time.
    Live(Box<System>, u64),
    /// Failed at build time or mid-replay; the system was dropped.
    Failed(SweepPointError),
}

/// The lock-step runner: one `(app, seed)` stream, K design lanes per
/// front end.
///
/// Most callers reach this engine through the [`crate::fanout::FanOut`]
/// entry points (every sweep, sweep-shaped experiment, and `repro` run
/// routes here); the type is public for the differential suites and the
/// lane-group-width benchmarks.
///
/// # Examples
///
/// ```
/// use moca_core::L2Design;
/// use moca_sim::lockstep::LockStep;
/// use moca_trace::AppProfile;
///
/// let app = AppProfile::music();
/// let designs = [L2Design::baseline(), L2Design::static_default()];
/// let reports = LockStep::new(&app, 1).run(&designs, 30_000);
/// // Byte-identical to the scalar oracle:
/// let solo = moca_sim::run_app(&app, designs[1], 30_000, 1);
/// assert_eq!(format!("{:?}", reports[1]), format!("{solo:?}"));
/// ```
#[derive(Debug, Clone)]
pub struct LockStep<'a> {
    app: &'a AppProfile,
    seed: u64,
    cfg: SystemConfig,
    lane_group: usize,
    /// Absolute sweep indices forced to panic at the start of their
    /// replay (fault-injection hook for the isolation suites).
    injected_faults: Vec<usize>,
}

impl<'a> LockStep<'a> {
    /// A lock-step runner over the `(app, seed)` stream with the default
    /// [`SystemConfig`] and [`LANE_GROUP`] lanes per front end.
    pub fn new(app: &'a AppProfile, seed: u64) -> Self {
        LockStep {
            app,
            seed,
            cfg: SystemConfig::default(),
            lane_group: LANE_GROUP,
            injected_faults: Vec::new(),
        }
    }

    /// Replaces the system configuration used for every lane.
    pub fn with_config(mut self, cfg: SystemConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the number of lanes sharing one front end (minimum 1).
    ///
    /// Width 1 disables front-end sharing entirely — each design pays
    /// its own filter pass — which is the contrast the
    /// `lockstep/lane-group-width` benchmark measures.
    pub fn with_lane_group(mut self, width: usize) -> Self {
        self.lane_group = width.max(1);
        self
    }

    /// Injects deterministic mid-run faults: each listed absolute sweep
    /// index panics (`"injected fault at index {i}"`) at the start of its
    /// lane's replay. Only [`LockStep::run_timed_isolated_span`] survives
    /// an injected fault; the non-isolated paths propagate the panic.
    pub fn with_injected_faults(mut self, faults: &[usize]) -> Self {
        self.injected_faults = faults.to_vec();
        self
    }

    /// Runs `refs` references through one lane per design and returns
    /// the reports in design order.
    ///
    /// # Panics
    ///
    /// Panics if any design is invalid (callers construct designs from
    /// validated enums, matching [`crate::workloads::run_app`]).
    pub fn run(&self, designs: &[L2Design], refs: usize) -> Vec<SimReport> {
        self.run_timed_span(designs, refs, 0, designs.len())
            .into_iter()
            .map(|(report, _)| report)
            .collect()
    }

    /// [`LockStep::run`] returning `(report, wall_ns)` pairs over one
    /// contiguous slice of a larger sweep: `offset` is the slice's
    /// position in sweep order and `total` the full sweep size, so
    /// telemetry `point` events carry stable indices for any
    /// partitioning of the designs over workers or lane groups.
    pub fn run_timed_span(
        &self,
        designs: &[L2Design],
        refs: usize,
        offset: usize,
        total: usize,
    ) -> Vec<(SimReport, u64)> {
        let mut out = Vec::with_capacity(designs.len());
        for (g, lanes) in designs.chunks(self.lane_group).enumerate() {
            out.extend(self.run_group(lanes, refs, offset + g * self.lane_group, total));
        }
        out
    }

    /// One lane group: build the lanes, stream-filter-replay, finish.
    fn run_group(
        &self,
        lanes: &[L2Design],
        refs: usize,
        offset: usize,
        total: usize,
    ) -> Vec<(SimReport, u64)> {
        let mut systems: Vec<System> = lanes
            .iter()
            .map(|design| {
                System::new(self.app.name, *design, self.cfg).expect("fan-out design must be valid")
            })
            .collect();
        let mut walls = vec![0u64; systems.len()];
        // Shared front-end time for this group: generation (or arena
        // lookup) plus the single L1 filter pass. Attributed to every
        // lane of the group — it is wait time each of them experienced.
        let mut gen_ns = 0u64;
        // The lane builds above validated the L1 geometries already.
        let mut front =
            FrontEnd::new(self.app, self.seed, &self.cfg).expect("lane builds validated the config");
        let mut chunk = FilteredChunk::default();
        let mut left = refs;
        while left > 0 {
            let start = Instant::now();
            let n = front.fill_next(left, &mut chunk);
            gen_ns += start.elapsed().as_nanos() as u64;
            for (sys, wall) in systems.iter_mut().zip(&mut walls) {
                let start = Instant::now();
                replay(sys, &chunk);
                *wall += start.elapsed().as_nanos() as u64;
            }
            left -= n;
        }
        systems
            .into_iter()
            .zip(walls)
            .enumerate()
            .map(|(i, (mut sys, wall))| {
                sys.adopt_l1(front.l1());
                let start = Instant::now();
                let report = sys.finish();
                let energy_ns = start.elapsed().as_nanos() as u64;
                if telemetry::enabled() {
                    telemetry::record(Event::point(
                        &report.app,
                        &report.design,
                        offset + i,
                        total,
                        gen_ns,
                        wall,
                        energy_ns,
                    ));
                }
                (report, wall + energy_ns)
            })
            .collect()
    }

    /// [`LockStep::run_timed_span`] with per-lane failure isolation: a
    /// design that fails to build, or panics at any point of its replay,
    /// yields `Err(SweepPointError)` in its slot — carrying its
    /// **absolute** sweep index `offset + lane` — while every other lane
    /// of the group keeps replaying the shared front end's chunks.
    ///
    /// Failure values are deterministic (build errors are pure functions
    /// of the design; panics in a deterministic replay carry a
    /// deterministic payload), so the failed-point set is identical for
    /// any grouping of the designs over workers or lane groups.
    pub fn run_timed_isolated_span(
        &self,
        designs: &[L2Design],
        refs: usize,
        offset: usize,
    ) -> Vec<Result<(SimReport, u64), SweepPointError>> {
        let mut out = Vec::with_capacity(designs.len());
        for (g, lanes) in designs.chunks(self.lane_group).enumerate() {
            out.extend(self.run_group_isolated(lanes, refs, offset + g * self.lane_group));
        }
        out
    }

    /// One isolated lane group; `offset` is the absolute sweep index of
    /// the group's first lane.
    fn run_group_isolated(
        &self,
        lanes: &[L2Design],
        refs: usize,
        offset: usize,
    ) -> Vec<Result<(SimReport, u64), SweepPointError>> {
        let mut slots: Vec<LaneSlot> = lanes
            .iter()
            .enumerate()
            .map(|(lane, design)| {
                match catch_panic(|| System::new(self.app.name, *design, self.cfg)) {
                    Ok(Ok(sys)) => LaneSlot::Live(Box::new(sys), 0),
                    Ok(Err(e)) => LaneSlot::Failed(SweepPointError {
                        index: offset + lane,
                        label: design.label(),
                        cause: PointCause::Build(e),
                    }),
                    Err(msg) => LaneSlot::Failed(SweepPointError {
                        index: offset + lane,
                        label: design.label(),
                        cause: PointCause::Panic(msg),
                    }),
                }
            })
            .collect();

        let mut front = None;
        if slots.iter().any(|s| matches!(s, LaneSlot::Live(..))) {
            // At least one lane built, so the L1 geometries are valid.
            front = Some(
                FrontEnd::new(self.app, self.seed, &self.cfg)
                    .expect("a lane build validated the config"),
            );
            let front = front.as_mut().expect("just installed");
            let mut chunk = FilteredChunk::default();
            let mut first = true;
            let mut left = refs;
            while left > 0 {
                let n = front.fill_next(left, &mut chunk);
                for (lane, slot) in slots.iter_mut().enumerate() {
                    let failure = match slot {
                        LaneSlot::Live(sys, wall) => {
                            let index = offset + lane;
                            let trip = first && self.injected_faults.contains(&index);
                            let start = Instant::now();
                            let outcome = catch_panic(|| {
                                if trip {
                                    panic!("injected fault at index {index}");
                                }
                                replay(sys, &chunk);
                            });
                            *wall += start.elapsed().as_nanos() as u64;
                            outcome.err()
                        }
                        LaneSlot::Failed(_) => None,
                    };
                    if let Some(msg) = failure {
                        // The panicked lane's state is unspecified;
                        // replacing the slot drops it for good.
                        *slot = LaneSlot::Failed(SweepPointError {
                            index: offset + lane,
                            label: lanes[lane].label(),
                            cause: PointCause::Panic(msg),
                        });
                    }
                }
                first = false;
                left -= n;
            }
        }

        slots
            .into_iter()
            .enumerate()
            .map(|(lane, slot)| match slot {
                LaneSlot::Live(mut sys, wall) => {
                    if let Some(front) = &front {
                        sys.adopt_l1(front.l1());
                    }
                    let start = Instant::now();
                    match catch_panic(move || sys.finish()) {
                        Ok(report) => Ok((report, wall + start.elapsed().as_nanos() as u64)),
                        Err(msg) => Err(SweepPointError {
                            index: offset + lane,
                            label: lanes[lane].label(),
                            cause: PointCause::Panic(msg),
                        }),
                    }
                }
                LaneSlot::Failed(e) => Err(e),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::run_app;

    fn pool() -> Vec<L2Design> {
        vec![
            L2Design::baseline(),
            L2Design::static_default(),
            L2Design::dynamic_default(),
            L2Design::SharedSram { ways: 4 },
            L2Design::SharedSram { ways: 12 },
        ]
    }

    #[test]
    fn lockstep_matches_scalar_oracle() {
        let app = AppProfile::game();
        let designs = pool();
        let refs = 20_011; // not chunk-aligned
        let reports = LockStep::new(&app, 3).run(&designs, refs);
        for (design, got) in designs.iter().zip(&reports) {
            let want = run_app(&app, *design, refs, 3);
            assert_eq!(format!("{got:?}"), format!("{want:?}"));
        }
    }

    #[test]
    fn lane_group_width_does_not_change_reports() {
        let app = AppProfile::browser();
        let designs = pool();
        let reference = LockStep::new(&app, 7).run(&designs, 15_000);
        for width in [1usize, 2, 3, 8, 64] {
            let got = LockStep::new(&app, 7)
                .with_lane_group(width)
                .run(&designs, 15_000);
            assert_eq!(got.len(), reference.len());
            for (g, r) in got.iter().zip(&reference) {
                assert_eq!(format!("{g:?}"), format!("{r:?}"), "width={width}");
            }
        }
    }

    #[test]
    fn filtered_chunk_accounts_every_reference() {
        let app = AppProfile::music();
        let cfg = SystemConfig::default();
        let mut front = FrontEnd::new(&app, 1, &cfg).expect("valid");
        let mut chunk = FilteredChunk::default();
        let n = front.fill_next(5_000, &mut chunk);
        assert_eq!(n, 5_000);
        assert_eq!(chunk.refs(), 5_000);
        let events = chunk.events().len();
        let gaps: usize = chunk.events().iter().map(|e| e.gap as usize).sum();
        assert!(events > 0, "a cold L1 must miss");
        assert_eq!(events + gaps + chunk.tail_gap(), 5_000);
    }

    #[test]
    fn injected_fault_poisons_only_its_own_lane() {
        let app = AppProfile::video();
        let designs = pool();
        let outcomes = LockStep::new(&app, 5)
            .with_injected_faults(&[2])
            .run_timed_isolated_span(&designs, 12_000, 0);
        let clean = LockStep::new(&app, 5).run(&designs, 12_000);
        for (i, outcome) in outcomes.iter().enumerate() {
            if i == 2 {
                let e = outcome.as_ref().expect_err("injected fault must fail");
                assert_eq!(e.index, 2);
                assert!(e.to_string().contains("injected fault at index 2"), "{e}");
            } else {
                let (report, _) = outcome.as_ref().expect("other lanes survive");
                assert_eq!(format!("{report:?}"), format!("{:?}", clean[i]));
            }
        }
    }

    #[test]
    fn isolated_span_reports_absolute_indices() {
        let app = AppProfile::email();
        let designs = [L2Design::SharedSram { ways: 0 }, L2Design::baseline()];
        let outcomes = LockStep::new(&app, 1).run_timed_isolated_span(&designs, 3_000, 10);
        let e = outcomes[0].as_ref().expect_err("ways=0 is invalid");
        assert_eq!(e.index, 10);
        assert!(matches!(e.cause, PointCause::Build(_)));
        assert!(outcomes[1].is_ok());
    }
}
