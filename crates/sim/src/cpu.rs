//! In-order core timing model.
//!
//! Performance in the reproduced evaluation is driven by memory stalls:
//! every reference costs a base issue charge plus whatever the hierarchy
//! reports as demand latency. Fractional base charges are accumulated
//! exactly (no drift), so a 1.5 cycles/ref core advances 3 cycles every
//! two references.

/// Cycle-accurate (at reference granularity) in-order core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InOrderCore {
    base_cycles_per_ref: f64,
    /// Fixed-point accumulator of fractional base cycles (1/1024ths).
    frac_acc: u64,
    cycle: u64,
    refs: u64,
    stall_cycles: u64,
}

/// Fixed-point denominator for fractional cycle accumulation.
const FRAC_ONE: u64 = 1024;

impl InOrderCore {
    /// Creates a core charging `base_cycles_per_ref` per reference.
    ///
    /// # Panics
    ///
    /// Panics if `base_cycles_per_ref < 1.0` (a reference takes at least
    /// its issue cycle).
    pub fn new(base_cycles_per_ref: f64) -> Self {
        assert!(
            base_cycles_per_ref >= 1.0,
            "a reference costs at least one cycle"
        );
        Self {
            base_cycles_per_ref,
            frac_acc: 0,
            cycle: 0,
            refs: 0,
            stall_cycles: 0,
        }
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// References retired.
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// Cycles lost to memory stalls.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Cycles per reference so far (`0.0` before the first reference).
    pub fn cpr(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.cycle as f64 / self.refs as f64
        }
    }

    /// Advances time without retiring references (an idle period: screen
    /// off, waiting for I/O). Leakage keeps accruing during idle time,
    /// which is why idle-heavy usage amplifies the STT-RAM designs' win.
    pub fn idle(&mut self, cycles: u64) {
        self.cycle += cycles;
    }

    /// Retires one reference that stalled for `stall` additional cycles;
    /// returns the cycle at which the reference *issued* (the timestamp
    /// the caches should record).
    pub fn retire(&mut self, stall: u64) -> u64 {
        let issued_at = self.cycle;
        self.frac_acc += (self.base_cycles_per_ref * FRAC_ONE as f64) as u64;
        let whole = self.frac_acc / FRAC_ONE;
        self.frac_acc %= FRAC_ONE;
        self.cycle += whole + stall;
        self.stall_cycles += stall;
        self.refs += 1;
        issued_at
    }

    /// Retires `n` consecutive zero-stall references in one step.
    ///
    /// Exactly equivalent to `n` calls of `retire(0)`: with per-reference
    /// increment `inc = ⌊base · 1024⌋`, the accumulator invariant
    /// `acc₀ + k·inc = 1024·wholeₖ + accₖ` gives the cumulative whole
    /// cycles in closed form, so a run of pure-L1-hit references costs
    /// O(1) instead of O(n). This is the lock-step engine's fast path for
    /// the gaps between L2-visible events.
    pub fn retire_many(&mut self, n: u64) {
        let inc = (self.base_cycles_per_ref * FRAC_ONE as f64) as u64;
        self.frac_acc += inc * n;
        self.cycle += self.frac_acc / FRAC_ONE;
        self.frac_acc %= FRAC_ONE;
        self.refs += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_base_rate() {
        let mut c = InOrderCore::new(2.0);
        for _ in 0..10 {
            c.retire(0);
        }
        assert_eq!(c.cycle(), 20);
        assert_eq!(c.refs(), 10);
        assert_eq!(c.stall_cycles(), 0);
        assert!((c.cpr() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_base_rate_has_no_drift() {
        let mut c = InOrderCore::new(1.5);
        for _ in 0..1000 {
            c.retire(0);
        }
        assert_eq!(c.cycle(), 1500);
    }

    #[test]
    fn stalls_accumulate() {
        let mut c = InOrderCore::new(1.0);
        c.retire(0);
        c.retire(100);
        assert_eq!(c.cycle(), 102);
        assert_eq!(c.stall_cycles(), 100);
    }

    #[test]
    fn retire_returns_issue_time() {
        let mut c = InOrderCore::new(1.0);
        assert_eq!(c.retire(10), 0);
        assert_eq!(c.retire(0), 11);
    }

    #[test]
    fn cpr_empty_is_zero() {
        assert_eq!(InOrderCore::new(1.0).cpr(), 0.0);
    }

    #[test]
    fn idle_advances_time_without_refs() {
        let mut c = InOrderCore::new(1.0);
        c.retire(0);
        c.idle(1000);
        assert_eq!(c.cycle(), 1001);
        assert_eq!(c.refs(), 1);
        assert_eq!(c.stall_cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn sub_one_rate_panics() {
        InOrderCore::new(0.5);
    }

    #[test]
    fn retire_many_matches_individual_retires_exactly() {
        // Fractional rates with a non-trivial 1/1024 representation, runs
        // that straddle accumulator carries, and interleaving with
        // stalled single retires.
        for rate in [1.0, 1.5, 1.25, 1.7, 2.3] {
            let mut batched = InOrderCore::new(rate);
            let mut scalar = InOrderCore::new(rate);
            for (i, n) in [0u64, 1, 2, 3, 7, 100, 1023, 1024, 4097].iter().enumerate() {
                batched.retire_many(*n);
                for _ in 0..*n {
                    scalar.retire(0);
                }
                // Interleave a stalled reference to move both cores off
                // round accumulator states.
                let stall = (i as u64) * 3;
                batched.retire(stall);
                scalar.retire(stall);
                assert_eq!(batched, scalar, "rate={rate} step={i}");
            }
        }
    }
}
