//! # moca-sim — system model and experiment harness
//!
//! Assembles the full simulated platform (in-order core with idle-period
//! support, L1 pair, one of the paper's L2 designs, flat or row-buffer
//! DRAM) and hosts the experiment suite that regenerates every figure and
//! table of the reproduced evaluation (see `DESIGN.md` for the experiment
//! index and `EXPERIMENTS.md` for results), plus sweep/CSV utilities, a
//! deterministic multi-threaded sweep engine ([`parallel`]), a
//! shared-trace fan-out runner with a memoized chunk arena ([`fanout`])
//! whose entry points execute on the lock-step multi-design kernel
//! ([`lockstep`]), a file-backed trace replay layer over compiled
//! corpora ([`replay`]), a zero-dependency observability layer
//! ([`telemetry`]), and the `repro` / `tracegen` / `trace_corpus`
//! binaries.
//!
//! ```
//! use moca_core::L2Design;
//! use moca_sim::{System, SystemConfig};
//! use moca_trace::{AppProfile, TraceGenerator};
//!
//! let mut sys = System::new("quick", L2Design::baseline(), SystemConfig::default())?;
//! sys.run(TraceGenerator::new(&AppProfile::game(), 7).take(10_000));
//! let report = sys.finish();
//! assert!(report.l2_miss_rate() <= 1.0);
//! # Ok::<(), moca_sim::BuildSystemError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod config;
pub mod cpu;
pub mod dram;
pub mod error;
pub mod experiments;
pub mod fanout;
pub mod lockstep;
pub mod metrics;
pub mod parallel;
pub mod replay;
pub mod sweep;
pub mod system;
pub mod table;
pub mod telemetry;
pub mod workloads;

pub use checkpoint::{sweep_checkpointed, CheckpointedPoint, Journal};
pub use config::SystemConfig;
pub use cpu::InOrderCore;
pub use dram::{DramModel, RowBufferDram, RowBufferParams};
pub use error::{PointCause, SweepPointError};
pub use fanout::{fan_out, fan_out_parallel, ArenaStats, ChunkArena, FanOut, TraceStream};
pub use lockstep::{FilteredChunk, FrontEnd, LaneEvent, LockStep, LANE_GROUP};
pub use metrics::{geometric_mean, mean, SimReport};
pub use parallel::{catch_panic, parallel_map, parallel_map_isolated, parallel_map_ref, Jobs};
pub use replay::{FileTraceSource, TraceIoStats, TraceRegistry};
pub use sweep::{
    comparison_table, csv_row, sweep, sweep_isolated, sweep_parallel, sweep_parallel_isolated,
    write_csv, SweepPoint,
};
pub use system::{BuildSystemError, System};
pub use telemetry::{Event, JsonlRecorder, NullRecorder, Recorder};
pub use workloads::{
    run_app, run_app_with_behavior, run_suite, run_suite_parallel, Scale, EXPERIMENT_SEED,
};
