//! Standard workload execution helpers shared by all experiments.

use std::time::Instant;

use moca_core::L2Design;
use moca_trace::{AppProfile, TraceGenerator};

use crate::config::SystemConfig;
use crate::metrics::SimReport;
use crate::parallel::{parallel_map, Jobs};
use crate::system::System;
use crate::telemetry::{self, Event};

/// How long experiments run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Very short traces for determinism / smoke tests (~100 k
    /// references per app). Too short for the claim bands — use it when
    /// only structural properties (shape, determinism) are under test.
    Smoke,
    /// Short traces for CI / unit tests (~1 M references per app).
    Quick,
    /// The scale used for `EXPERIMENTS.md` (~12 M references per app).
    Full,
}

impl Scale {
    /// References simulated per app at this scale.
    pub fn refs(self) -> usize {
        match self {
            Scale::Smoke => 100_000,
            Scale::Quick => 1_000_000,
            Scale::Full => 12_000_000,
        }
    }

    /// A reduced reference count for quadratic experiments (sweeps).
    pub fn sweep_refs(self) -> usize {
        match self {
            Scale::Smoke => 40_000,
            Scale::Quick => 300_000,
            Scale::Full => 3_000_000,
        }
    }
}

/// The seed all experiments share: results in `EXPERIMENTS.md` are
/// reproducible because every generator derives from this value.
pub const EXPERIMENT_SEED: u64 = 0x5EED_2015;

/// Runs one app on one design.
///
/// This is the *sequential reference path*: it owns a private
/// [`TraceGenerator`] and never touches the shared chunk arena, which is
/// what makes it the oracle the fan-out equivalence tests compare
/// against. Multi-design studies should prefer [`crate::fanout::FanOut`]
/// (or [`crate::sweep::sweep`]), which produce byte-identical reports
/// while paying trace generation once per `(app, seed)`.
///
/// # Panics
///
/// Panics if `design` is invalid (experiments construct designs from
/// validated enums, so this indicates a bug, not bad user input).
pub fn run_app(app: &AppProfile, design: L2Design, refs: usize, seed: u64) -> SimReport {
    let sys = System::new(app.name, design, SystemConfig::default())
        .expect("experiment design must be valid");
    finish_run(sys, app, refs, seed)
}

/// Runs one app with segment-behaviour probing enabled.
///
/// # Panics
///
/// Panics if `design` is invalid.
pub fn run_app_with_behavior(
    app: &AppProfile,
    design: L2Design,
    refs: usize,
    seed: u64,
) -> SimReport {
    let sys = System::new(app.name, design, SystemConfig::default())
        .expect("experiment design must be valid")
        .with_behavior_probe();
    finish_run(sys, app, refs, seed)
}

/// Drives `sys` over the first `refs` references of `(app, seed)`.
///
/// With telemetry disabled this is exactly [`System::run_generated`];
/// with it enabled, the same chunked loop runs with per-stage timing
/// and emits one `point` event (`index` 0, `total` 1 — a standalone
/// run is a one-point sweep). Both paths feed identical batches to the
/// system, so the report stays byte-identical either way.
fn finish_run(mut sys: System, app: &AppProfile, refs: usize, seed: u64) -> SimReport {
    let mut gen = TraceGenerator::new(app, seed);
    if !telemetry::enabled() {
        sys.run_generated(&mut gen, refs);
        return sys.finish();
    }
    let mut chunk = Vec::with_capacity(TraceGenerator::DEFAULT_CHUNK.min(refs.max(1)));
    let mut gen_ns = 0u64;
    let mut sim_ns = 0u64;
    let mut left = refs;
    while left > 0 {
        let start = Instant::now();
        let n = gen.fill(&mut chunk).min(left);
        gen_ns += start.elapsed().as_nanos() as u64;
        let start = Instant::now();
        sys.run_batch(&chunk[..n]);
        sim_ns += start.elapsed().as_nanos() as u64;
        left -= n;
    }
    let start = Instant::now();
    let report = sys.finish();
    let energy_ns = start.elapsed().as_nanos() as u64;
    telemetry::record(Event::point(
        &report.app,
        &report.design,
        0,
        1,
        gen_ns,
        sim_ns,
        energy_ns,
    ));
    report
}

/// Runs the whole ten-app suite on one design, serially.
///
/// Equivalent to [`run_suite_parallel`] with [`Jobs::SERIAL`].
pub fn run_suite(design: L2Design, refs: usize, seed: u64) -> Vec<SimReport> {
    run_suite_parallel(design, refs, seed, Jobs::SERIAL)
}

/// Runs the whole ten-app suite on one design, sharding the per-app
/// simulations over `jobs` threads.
///
/// Reports come back in suite order and are bit-identical to
/// [`run_suite`] for every job count (each app's simulation owns its
/// seeded trace generator; see [`crate::parallel`]).
pub fn run_suite_parallel(design: L2Design, refs: usize, seed: u64, jobs: Jobs) -> Vec<SimReport> {
    parallel_map(jobs, AppProfile::suite(), |app| {
        run_app(&app, design, refs, seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Quick.refs() < Scale::Full.refs());
        assert!(Scale::Quick.sweep_refs() < Scale::Quick.refs());
    }

    #[test]
    fn run_app_is_deterministic() {
        let app = AppProfile::music();
        let a = run_app(&app, L2Design::baseline(), 50_000, 1);
        let b = run_app(&app, L2Design::baseline(), 50_000, 1);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.l2_stats, b.l2_stats);
    }

    #[test]
    fn run_suite_covers_all_apps() {
        let reports = run_suite(L2Design::baseline(), 20_000, 2);
        assert_eq!(reports.len(), 10);
        let mut names: Vec<&str> = reports.iter().map(|r| r.app.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn parallel_suite_matches_serial_suite() {
        let serial = run_suite(L2Design::baseline(), 20_000, 2);
        for jobs in [1, 2, 8] {
            let parallel = run_suite_parallel(L2Design::baseline(), 20_000, 2, Jobs::new(jobs));
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.app, p.app, "jobs = {jobs}");
                assert_eq!(s.cycles, p.cycles, "jobs = {jobs}");
                assert_eq!(s.l2_stats, p.l2_stats, "jobs = {jobs}");
            }
        }
    }
}
