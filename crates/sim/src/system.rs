//! The full system: core + L1 pair + L2 design + DRAM.

use moca_cache::stats::CacheStats;
use moca_cache::{GeometryError, L1Pair, L2Request};
use moca_core::{DesignError, L2BaseParams, L2Design, MobileL2};
use moca_energy::Energy;
use moca_trace::{MemoryAccess, Mode, TraceGenerator};

use crate::config::SystemConfig;
use crate::cpu::InOrderCore;
use crate::dram::{DramModel, RowBufferDram, RowBufferParams};
use crate::metrics::SimReport;

/// Errors from assembling a [`System`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildSystemError {
    /// The L2 design failed validation.
    Design(DesignError),
    /// An L1 geometry was inconsistent.
    Geometry(GeometryError),
}

impl std::fmt::Display for BuildSystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildSystemError::Design(e) => write!(f, "invalid L2 design: {e}"),
            BuildSystemError::Geometry(e) => write!(f, "invalid L1 geometry: {e}"),
        }
    }
}

impl std::error::Error for BuildSystemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildSystemError::Design(e) => Some(e),
            BuildSystemError::Geometry(e) => Some(e),
        }
    }
}

impl From<DesignError> for BuildSystemError {
    fn from(e: DesignError) -> Self {
        BuildSystemError::Design(e)
    }
}

impl From<GeometryError> for BuildSystemError {
    fn from(e: GeometryError) -> Self {
        BuildSystemError::Geometry(e)
    }
}

/// A trace-driven mobile system simulation.
///
/// # Examples
///
/// ```
/// use moca_core::L2Design;
/// use moca_sim::{System, SystemConfig};
/// use moca_trace::{AppProfile, TraceGenerator};
///
/// let mut sys = System::new("demo", L2Design::baseline(), SystemConfig::default())?;
/// let trace = TraceGenerator::new(&AppProfile::music(), 1).take(50_000);
/// sys.run(trace);
/// let report = sys.finish();
/// assert_eq!(report.refs, 50_000);
/// assert!(report.cycles > 0);
/// # Ok::<(), moca_sim::BuildSystemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct System {
    cfg: SystemConfig,
    core: InOrderCore,
    l1: L1Pair,
    l2: MobileL2,
    dram: Option<RowBufferDram>,
    behavior_probe: bool,
    app: String,
}

impl System {
    /// Assembles a system running `design` as the L2.
    ///
    /// # Errors
    ///
    /// Returns [`BuildSystemError`] if the design or L1 geometries are
    /// invalid.
    pub fn new(
        app: impl Into<String>,
        design: L2Design,
        cfg: SystemConfig,
    ) -> Result<Self, BuildSystemError> {
        let l1 = L1Pair::new(
            cfg.l1i_geometry()?,
            cfg.l1d_geometry()?,
            moca_cache::ReplacementPolicy::Lru,
        );
        let params = L2BaseParams {
            line_bytes: cfg.line_bytes,
            clock_ghz: cfg.clock_ghz,
            next_line_prefetch: cfg.l2_next_line_prefetch,
            policy: cfg.l2_policy,
            ..L2BaseParams::default()
        };
        let l2 = MobileL2::new(design, params)?;
        let dram = match cfg.dram_model {
            DramModel::Flat => None,
            DramModel::RowBuffer => Some(RowBufferDram::new(RowBufferParams::default())),
        };
        Ok(Self {
            cfg,
            core: InOrderCore::new(cfg.base_cycles_per_ref),
            l1,
            l2,
            dram,
            behavior_probe: false,
            app: app.into(),
        })
    }

    /// Enables segment behaviour probing (costs an extra L2 tag probe per
    /// request; used by the behaviour experiments).
    pub fn with_behavior_probe(mut self) -> Self {
        self.behavior_probe = true;
        self
    }

    /// The L2 under test.
    pub fn l2(&self) -> &MobileL2 {
        &self.l2
    }

    /// Cycles elapsed so far.
    pub fn cycles(&self) -> u64 {
        self.core.cycle()
    }

    /// Processes one reference.
    pub fn step(&mut self, access: &MemoryAccess) {
        let now = self.core.cycle();
        let outcome = self.l1.filter(access, now);
        let mut stall = 0u64;
        if let Some(demand) = outcome.demand {
            let resp = if self.behavior_probe {
                self.l2.request_with_behavior(&demand, now)
            } else {
                self.l2.request(&demand, now)
            };
            let dram_cycles = if !resp.dram_read {
                0
            } else {
                match self.dram.as_mut() {
                    None => self.cfg.dram_latency_cycles,
                    Some(dram) => dram.access(demand.line, self.cfg.line_bytes).1,
                }
            };
            stall = resp.latency_cycles + dram_cycles;
        }
        if let Some(wb) = outcome.writeback {
            // Writebacks are off the critical path: they cost energy and
            // may evict, but do not stall the core.
            if self.behavior_probe {
                self.l2.request_with_behavior(&wb, now);
            } else {
                self.l2.request(&wb, now);
            }
        }
        self.core.retire(stall);
    }

    /// Advances time by `cycles` without issuing references (an idle
    /// period). The L2 keeps leaking (and, for volatile STT segments,
    /// expiring/refreshing) during the gap.
    pub fn idle(&mut self, cycles: u64) {
        self.core.idle(cycles);
    }

    /// Retires `n` references known to be pure L1 hits (no L2 traffic),
    /// in O(1) via [`InOrderCore::retire_many`].
    ///
    /// Exactly equivalent to `n` [`System::step`] calls whose accesses
    /// all hit the L1: a hit touches neither the L2 nor the DRAM, and
    /// its zero-stall retire is what `retire_many` batches. The lock-step
    /// engine uses this for the gaps between L2-visible events; the L1
    /// state itself lives in the shared front end (see
    /// [`System::adopt_l1`]).
    pub(crate) fn retire_hits(&mut self, n: u64) {
        self.core.retire_many(n);
    }

    /// Processes one reference whose L1 outcome was already computed by a
    /// shared front end.
    ///
    /// This is [`System::step`] with the `l1.filter` call hoisted out:
    /// the demand/writeback pair is exactly what `filter` returned for
    /// this access, and the L1 decision is time-independent (replacement
    /// state never reads the timestamp), so issuing the requests at this
    /// lane's *own* `now` reproduces the scalar run bit for bit.
    pub(crate) fn step_filtered(
        &mut self,
        demand: Option<&L2Request>,
        writeback: Option<&L2Request>,
    ) {
        let now = self.core.cycle();
        let mut stall = 0u64;
        if let Some(demand) = demand {
            let resp = if self.behavior_probe {
                self.l2.request_with_behavior(demand, now)
            } else {
                self.l2.request(demand, now)
            };
            let dram_cycles = if !resp.dram_read {
                0
            } else {
                match self.dram.as_mut() {
                    None => self.cfg.dram_latency_cycles,
                    Some(dram) => dram.access(demand.line, self.cfg.line_bytes).1,
                }
            };
            stall = resp.latency_cycles + dram_cycles;
        }
        if let Some(wb) = writeback {
            if self.behavior_probe {
                self.l2.request_with_behavior(wb, now);
            } else {
                self.l2.request(wb, now);
            }
        }
        self.core.retire(stall);
    }

    /// Adopts the shared front end's L1 state so [`System::finish`] reports
    /// the same L1 statistics a scalar run would.
    ///
    /// The counts are identical by construction (the front end filtered
    /// exactly this system's reference stream); only the cold-metadata
    /// timestamps differ, and those never reach a [`SimReport`].
    pub(crate) fn adopt_l1(&mut self, l1: &L1Pair) {
        self.l1 = l1.clone();
    }

    /// Runs an entire trace (or any iterator of references).
    ///
    /// For references coming out of a [`TraceGenerator`], prefer
    /// [`System::run_generated`], which streams chunked batches through a
    /// reused buffer instead of pulling one access at a time.
    pub fn run<I>(&mut self, trace: I) -> u64
    where
        I: IntoIterator<Item = MemoryAccess>,
    {
        let mut n = 0u64;
        for a in trace {
            self.step(&a);
            n += 1;
        }
        n
    }

    /// Processes a contiguous batch of references.
    ///
    /// Semantically one [`System::step`] per access; this is the hot-path
    /// entry for callers that stage references in a reused buffer (see
    /// [`TraceGenerator::fill`]).
    pub fn run_batch(&mut self, batch: &[MemoryAccess]) -> u64 {
        for a in batch {
            self.step(a);
        }
        // One enabled-check per ~8192-access batch; the disabled path
        // costs a single predictable branch, no allocation.
        if crate::telemetry::enabled() {
            crate::telemetry::add("sim_batches", 1);
            crate::telemetry::add("sim_refs", batch.len() as u64);
        }
        batch.len() as u64
    }

    /// Runs exactly `refs` references drawn from `gen`, staged through an
    /// internal reused chunk buffer.
    ///
    /// Produces the same simulation state as `run(gen.take(refs))` — the
    /// first `refs` accesses of the stream are processed in order — but
    /// without per-access iterator overhead. The generator may be left
    /// advanced by up to one chunk beyond `refs`.
    pub fn run_generated(&mut self, gen: &mut TraceGenerator, refs: usize) -> u64 {
        let mut chunk = Vec::with_capacity(TraceGenerator::DEFAULT_CHUNK.min(refs.max(1)));
        let mut left = refs;
        while left > 0 {
            let n = gen.fill(&mut chunk).min(left);
            self.run_batch(&chunk[..n]);
            left -= n;
        }
        refs as u64
    }

    /// Finalizes accounting and produces the report.
    pub fn finish(mut self) -> SimReport {
        let end = self.core.cycle();
        self.l2.finalize(end);

        let mut l1_stats = CacheStats::new();
        l1_stats.merge(self.l1.icache().stats());
        l1_stats.merge(self.l1.dcache().stats());

        let traffic = self.l2.traffic();
        // Row-buffer DRAM accrues read energy internally; writebacks are
        // charged flat either way.
        let dram_energy = match &self.dram {
            None => self.cfg.dram_read_energy * traffic.dram_reads,
            Some(dram) => dram.energy(),
        } + self.cfg.dram_write_energy * traffic.dram_writes;

        let timeline = self.l2.timeline().to_vec();
        let mean_active_ways = if timeline.is_empty() {
            f64::from(self.l2.active_ways())
        } else {
            let mut weighted = 0.0f64;
            for (i, s) in timeline.iter().enumerate() {
                let until = timeline.get(i + 1).map_or(end, |n| n.cycle);
                let span = until.saturating_sub(s.cycle) as f64;
                weighted += span * f64::from(s.user_ways + s.kernel_ways);
            }
            if end == 0 {
                f64::from(self.l2.active_ways())
            } else {
                weighted / end as f64
            }
        };

        SimReport {
            design: self.l2.label(),
            app: self.app.clone(),
            refs: self.core.refs(),
            cycles: end,
            clock_ghz: self.cfg.clock_ghz,
            l1_stats,
            l2_stats: *self.l2.stats(),
            l2_energy: self.l2.energy(),
            dram_energy,
            traffic,
            expiry: self.l2.expiry_stats(),
            prefetches: self.l2.prefetches(),
            final_active_ways: self.l2.active_ways(),
            mean_active_ways,
            timeline,
            behavior: [
                self.l2.behavior(Mode::User).clone(),
                self.l2.behavior(Mode::Kernel).clone(),
            ],
        }
    }
}

/// The DRAM energy model separated for reuse in reports.
pub fn dram_energy(cfg: &SystemConfig, reads: u64, writes: u64) -> Energy {
    cfg.dram_read_energy * reads + cfg.dram_write_energy * writes
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_trace::{AppProfile, TraceGenerator};

    fn small_run(design: L2Design, refs: usize) -> SimReport {
        let mut sys = System::new("music", design, SystemConfig::default()).expect("valid");
        let trace = TraceGenerator::new(&AppProfile::music(), 9).take(refs);
        sys.run(trace);
        sys.finish()
    }

    #[test]
    fn baseline_run_produces_sane_report() {
        let r = small_run(L2Design::baseline(), 100_000);
        assert_eq!(r.refs, 100_000);
        assert!(r.cycles > r.refs, "base CPI is 1.5 plus stalls");
        assert!(r.l1_stats.accesses() == 100_000);
        assert!(r.l2_stats.accesses() > 0, "L1 misses must reach L2");
        assert!(r.l2_stats.accesses() < 100_000, "L1 must filter traffic");
        assert!(r.l2_energy.total().nj() > 0.0);
        assert!(r.dram_energy.nj() > 0.0);
        assert_eq!(r.final_active_ways, 16);
        assert!((r.mean_active_ways - 16.0).abs() < 1e-9);
    }

    #[test]
    fn misses_slow_the_core_down() {
        // A 1-way tiny partition thrashes; CPR must exceed baseline's.
        let base = small_run(L2Design::baseline(), 60_000);
        let tiny = small_run(
            L2Design::StaticSram {
                user_ways: 1,
                kernel_ways: 1,
            },
            60_000,
        );
        assert!(
            tiny.cpr() > base.cpr(),
            "thrashing L2 must cost cycles ({} vs {})",
            tiny.cpr(),
            base.cpr()
        );
        assert!(tiny.slowdown_vs(&base) > 1.0);
    }

    #[test]
    fn l2_request_timestamps_are_monotonic() {
        // Implicitly validated by MobileL2 (expiry math assumes it); here
        // we just make sure a long run completes without panicking.
        let r = small_run(L2Design::static_default(), 50_000);
        assert!(r.cycles > 0);
    }

    #[test]
    fn dynamic_design_reports_timeline() {
        let design = L2Design::DynamicStt {
            max_ways: 16,
            min_ways: 1,
            user_retention: moca_energy::RetentionClass::OneSecond,
            kernel_retention: moca_energy::RetentionClass::TenMillis,
            refresh: moca_core::RefreshPolicy::InvalidateOnExpiry,
            epoch_cycles: 50_000,
        };
        let r = small_run(design, 200_000);
        assert!(!r.timeline.is_empty());
        assert!(r.mean_active_ways > 0.0 && r.mean_active_ways <= 16.0);
    }

    #[test]
    fn behavior_probe_populates_reports() {
        let mut sys = System::new("email", L2Design::static_default(), SystemConfig::default())
            .expect("valid")
            .with_behavior_probe();
        let trace = TraceGenerator::new(&AppProfile::email(), 3).take(150_000);
        sys.run(trace);
        let r = sys.finish();
        assert!(r.behavior(Mode::User).reuse.total() > 0);
        assert!(r.behavior(Mode::Kernel).reuse.total() > 0);
    }

    #[test]
    fn run_generated_matches_iterator_run() {
        let app = AppProfile::music();
        // Deliberately not a multiple of the chunk size.
        let refs = 70_001usize;

        let mut by_iter =
            System::new("music", L2Design::baseline(), SystemConfig::default()).expect("valid");
        by_iter.run(TraceGenerator::new(&app, 9).take(refs));
        let a = by_iter.finish();

        let mut by_batch =
            System::new("music", L2Design::baseline(), SystemConfig::default()).expect("valid");
        let mut gen = TraceGenerator::new(&app, 9);
        assert_eq!(by_batch.run_generated(&mut gen, refs), refs as u64);
        let b = by_batch.finish();

        assert_eq!(a.refs, b.refs);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.l1_stats, b.l1_stats);
        assert_eq!(a.l2_stats, b.l2_stats);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    fn dram_energy_helper() {
        let cfg = SystemConfig::default();
        let e = dram_energy(&cfg, 2, 1);
        let expect = cfg.dram_read_energy * 2 + cfg.dram_write_energy;
        assert!((e.pj() - expect.pj()).abs() < 1e-9);
    }

    #[test]
    fn build_error_reports_bad_design() {
        let err = System::new(
            "x",
            L2Design::SharedSram { ways: 0 },
            SystemConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("invalid L2 design"));
    }
}

#[cfg(test)]
mod dram_model_tests {
    use super::*;
    use crate::dram::DramModel;
    use moca_core::L2Design;
    use moca_trace::{AppProfile, TraceGenerator};

    fn run(model: DramModel) -> SimReport {
        let cfg = SystemConfig {
            dram_model: model,
            ..SystemConfig::default()
        };
        let app = AppProfile::video();
        let mut sys = System::new(app.name, L2Design::baseline(), cfg).expect("valid");
        sys.run(TraceGenerator::new(&app, 4).take(150_000));
        sys.finish()
    }

    #[test]
    fn row_buffer_model_changes_timing_not_cache_behaviour() {
        let flat = run(DramModel::Flat);
        let row = run(DramModel::RowBuffer);
        // The cache-visible stream is identical.
        assert_eq!(flat.l2_stats, row.l2_stats);
        assert_eq!(flat.traffic, row.traffic);
        // Timing and DRAM energy differ.
        assert_ne!(flat.cycles, row.cycles);
        assert!(row.dram_energy.nj() > 0.0);
    }

    #[test]
    fn streaming_workload_benefits_from_row_buffer() {
        // video is stream-heavy: many row hits → faster than flat 120cy.
        let flat = run(DramModel::Flat);
        let row = run(DramModel::RowBuffer);
        assert!(
            row.cycles < flat.cycles,
            "row-buffer hits should beat the flat latency ({} vs {})",
            row.cycles,
            flat.cycles
        );
    }
}
