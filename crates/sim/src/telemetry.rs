//! Zero-dependency observability for the sweep engine.
//!
//! The engine runs for seconds (`repro --quick`) to minutes (a full
//! claims run) and, without this module, is a black box: the only
//! introspection is the one-line arena footer. Telemetry makes the hot
//! pipeline attributable — per sweep point, where did the time go
//! (trace generation vs cache simulation vs energy accounting)? how
//! busy were the workers? did the chunk arena help? — the same
//! per-phase profiling DVFS/reconfiguration studies rely on before
//! optimizing anything.
//!
//! # Model
//!
//! Producers emit [`Event`]s and bump named counters through a
//! [`Recorder`]. Two recorders exist:
//!
//! * [`NullRecorder`] — every call is a no-op and [`Recorder::is_enabled`]
//!   is `false`. Hot paths guard event *construction* behind
//!   [`enabled`] (a single relaxed atomic load), so the disabled
//!   pipeline stays branch-predictable and allocation-free. The
//!   `bench_guard` thresholds in CI prove the compiled-in-but-disabled
//!   cost is below measurement noise.
//! * [`JsonlRecorder`] — buffers events in memory and writes them as
//!   one self-describing JSON object per line (see the schema below).
//!
//! The process-global recorder (installed once by a binary via
//! [`install`]) is enum-dispatched between exactly those two states:
//! until `install` runs, [`enabled`] is `false` and every hook in the
//! engine reduces to one load-and-branch.
//!
//! # Event schema
//!
//! Every line is a flat JSON object with `"v":1` and a `"kind"`:
//!
//! | kind           | fields                                                       | deterministic? |
//! |----------------|--------------------------------------------------------------|----------------|
//! | `point`        | `scope app design index total trace_gen_ns sim_ns energy_ns` | yes            |
//! | `checkpoint`   | `scope event key` (`event` = `append` \| `replay`)           | yes            |
//! | `counter`      | `name value` (totals, emitted at drain time)                 | yes            |
//! | `worker_start` | `scope pool worker jobs`                                     | scheduling     |
//! | `worker_stop`  | `scope pool worker jobs items busy_ns`                       | scheduling     |
//! | `arena`        | `cached_chunks capacity_chunks hits misses rejected`         | scheduling     |
//! | `trace_io`     | `files chunks_decoded bytes_read decode_ns checksum_verifies decode_errors` | scheduling |
//!
//! # Determinism contract
//!
//! With timing fields (every key ending in `_ns`, see [`mask_timing`])
//! masked and scheduling-dependent kinds ([`is_scheduling_kind`])
//! filtered out, the drained stream is **byte-identical for every
//! `--jobs` value** — the same discipline the engine applies to report
//! output. Two mechanisms make that hold:
//!
//! * events carry stable identities (sweep-order point index, journal
//!   key), never worker or arrival order;
//! * [`JsonlRecorder::write_jsonl`] sorts the buffer by
//!   `(scope epoch, kind, masked rendering)` before writing, so the
//!   arrival interleaving of parallel workers cannot leak into the
//!   output.
//!
//! Scheduling-dependent kinds are emitted for humans and profilers,
//! not for diffing: the number of workers, the arena hit pattern, and
//! the grouping of designs over threads legitimately change with
//! `--jobs`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// One telemetry event, before scope-stamping and rendering.
///
/// Constructed by the engine's hooks (and, in tests, by hand); see the
/// [module docs](self) for the rendered schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// One sweep point's per-stage wall-time split.
    Point {
        /// Workload (app profile) name.
        app: String,
        /// Design label ([`moca_core::L2Design::label`]).
        design: String,
        /// Sweep-order index of the point (stable across job counts).
        index: u32,
        /// Number of points in the sweep this point belongs to.
        total: u32,
        /// Wall time spent generating (or fetching) the shared trace
        /// for this point's stream. Shared generation is attributed to
        /// every point of the group it was generated for — it is wait
        /// time each of those points experienced.
        trace_gen_ns: u64,
        /// Wall time spent inside [`crate::System::run_batch`].
        sim_ns: u64,
        /// Wall time spent in [`crate::System::finish`] (energy
        /// finalization and report assembly).
        energy_ns: u64,
    },
    /// A worker thread entered a parallel pool.
    WorkerStart {
        /// Pool label (currently always `parallel_map`).
        pool: &'static str,
        /// Worker index within the pool.
        worker: u32,
        /// Workers spawned by this pool.
        jobs: u32,
    },
    /// A worker thread left a parallel pool.
    WorkerStop {
        /// Pool label (currently always `parallel_map`).
        pool: &'static str,
        /// Worker index within the pool.
        worker: u32,
        /// Workers spawned by this pool.
        jobs: u32,
        /// Work items this worker executed.
        items: u64,
        /// Wall time this worker spent executing items (utilization =
        /// `busy_ns` / pool wall time).
        busy_ns: u64,
    },
    /// A snapshot of [`crate::ChunkArena`] counters.
    Arena {
        /// Chunks currently cached.
        cached_chunks: u64,
        /// Arena bound in chunks.
        capacity_chunks: u64,
        /// Lookups served from the cache.
        hits: u64,
        /// Lookups that required local generation.
        misses: u64,
        /// Generated chunks not cached because the arena was full.
        rejected: u64,
    },
    /// A snapshot of [`crate::TraceRegistry`] file-replay counters.
    ///
    /// Scheduling-dependent like `arena`: how many chunks are decoded
    /// from file (vs served from the warm arena) depends on which
    /// stream reaches each chunk first across worker threads.
    TraceIo {
        /// Compiled trace files registered.
        files: u64,
        /// Chunks decoded from files.
        chunks_decoded: u64,
        /// Bytes read from trace files.
        bytes_read: u64,
        /// Wall time spent reading + decoding.
        decode_ns: u64,
        /// Chunk checksums verified successfully.
        checksum_verifies: u64,
        /// Failed chunk decodes (fell back to generation).
        decode_errors: u64,
    },
    /// A checkpoint-journal append or replay.
    Checkpoint {
        /// `"append"` (freshly recorded) or `"replay"` (served from the
        /// journal without simulating).
        event: &'static str,
        /// The journal key (experiment or sweep-point identity).
        key: String,
    },
    /// A named counter total (synthesized at drain time from
    /// [`Recorder::add`] accumulations).
    Counter {
        /// Counter name.
        name: &'static str,
        /// Accumulated value.
        value: u64,
    },
}

impl Event {
    /// Shorthand constructor for [`Event::Point`].
    #[allow(clippy::too_many_arguments)]
    pub fn point(
        app: &str,
        design: &str,
        index: usize,
        total: usize,
        trace_gen_ns: u64,
        sim_ns: u64,
        energy_ns: u64,
    ) -> Self {
        Event::Point {
            app: app.to_string(),
            design: design.to_string(),
            index: index as u32,
            total: total as u32,
            trace_gen_ns,
            sim_ns,
            energy_ns,
        }
    }

    /// The event's `kind` string as rendered.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Point { .. } => "point",
            Event::WorkerStart { .. } => "worker_start",
            Event::WorkerStop { .. } => "worker_stop",
            Event::Arena { .. } => "arena",
            Event::TraceIo { .. } => "trace_io",
            Event::Checkpoint { .. } => "checkpoint",
            Event::Counter { .. } => "counter",
        }
    }

    /// Sort rank grouping kinds within one scope epoch (points first,
    /// then checkpoints, then scheduling events, counters last).
    fn kind_rank(&self) -> u8 {
        match self {
            Event::Point { .. } => 0,
            Event::Checkpoint { .. } => 1,
            Event::Arena { .. } => 2,
            Event::TraceIo { .. } => 3,
            Event::WorkerStart { .. } => 4,
            Event::WorkerStop { .. } => 5,
            Event::Counter { .. } => 6,
        }
    }

    /// Renders the event as one JSON line (no trailing newline).
    ///
    /// With `mask` set, every `_ns` field renders as `0` — the
    /// canonical form compared by the determinism suite.
    fn render(&self, scope: &str, mask: bool) -> String {
        let mut s = String::with_capacity(96);
        let ns = |v: u64| if mask { 0 } else { v };
        s.push_str("{\"v\":1,\"kind\":\"");
        s.push_str(self.kind());
        s.push('"');
        match self {
            Event::Point {
                app,
                design,
                index,
                total,
                trace_gen_ns,
                sim_ns,
                energy_ns,
            } => {
                push_str_field(&mut s, "scope", scope);
                push_str_field(&mut s, "app", app);
                push_str_field(&mut s, "design", design);
                push_num_field(&mut s, "index", u64::from(*index));
                push_num_field(&mut s, "total", u64::from(*total));
                push_num_field(&mut s, "trace_gen_ns", ns(*trace_gen_ns));
                push_num_field(&mut s, "sim_ns", ns(*sim_ns));
                push_num_field(&mut s, "energy_ns", ns(*energy_ns));
            }
            Event::WorkerStart { pool, worker, jobs } => {
                push_str_field(&mut s, "scope", scope);
                push_str_field(&mut s, "pool", pool);
                push_num_field(&mut s, "worker", u64::from(*worker));
                push_num_field(&mut s, "jobs", u64::from(*jobs));
            }
            Event::WorkerStop {
                pool,
                worker,
                jobs,
                items,
                busy_ns,
            } => {
                push_str_field(&mut s, "scope", scope);
                push_str_field(&mut s, "pool", pool);
                push_num_field(&mut s, "worker", u64::from(*worker));
                push_num_field(&mut s, "jobs", u64::from(*jobs));
                push_num_field(&mut s, "items", *items);
                push_num_field(&mut s, "busy_ns", ns(*busy_ns));
            }
            Event::Arena {
                cached_chunks,
                capacity_chunks,
                hits,
                misses,
                rejected,
            } => {
                push_num_field(&mut s, "cached_chunks", *cached_chunks);
                push_num_field(&mut s, "capacity_chunks", *capacity_chunks);
                push_num_field(&mut s, "hits", *hits);
                push_num_field(&mut s, "misses", *misses);
                push_num_field(&mut s, "rejected", *rejected);
            }
            Event::TraceIo {
                files,
                chunks_decoded,
                bytes_read,
                decode_ns,
                checksum_verifies,
                decode_errors,
            } => {
                push_num_field(&mut s, "files", *files);
                push_num_field(&mut s, "chunks_decoded", *chunks_decoded);
                push_num_field(&mut s, "bytes_read", *bytes_read);
                push_num_field(&mut s, "decode_ns", ns(*decode_ns));
                push_num_field(&mut s, "checksum_verifies", *checksum_verifies);
                push_num_field(&mut s, "decode_errors", *decode_errors);
            }
            Event::Checkpoint { event, key } => {
                push_str_field(&mut s, "scope", scope);
                push_str_field(&mut s, "event", event);
                push_str_field(&mut s, "key", key);
            }
            Event::Counter { name, value } => {
                push_str_field(&mut s, "name", name);
                push_num_field(&mut s, "value", *value);
            }
        }
        s.push('}');
        s
    }
}

fn push_str_field(s: &mut String, key: &str, value: &str) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":\"");
    json_escape_into(s, value);
    s.push('"');
}

fn push_num_field(s: &mut String, key: &str, value: u64) {
    let _ = write!(s, ",\"{key}\":{value}");
}

/// Appends `value` to `s` with JSON string escaping.
fn json_escape_into(s: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
}

/// `true` for event kinds whose presence or payload legitimately
/// depends on thread scheduling (`worker_start`, `worker_stop`,
/// `arena`, `trace_io`) — the determinism suite filters these before
/// comparing streams across job counts.
pub fn is_scheduling_kind(kind: &str) -> bool {
    matches!(kind, "worker_start" | "worker_stop" | "arena" | "trace_io")
}

/// A telemetry sink.
///
/// All methods take `&self`: recorders are shared across worker
/// threads. Implementations must be cheap enough to call from the
/// sweep hot path — and callers must still guard event construction
/// behind [`Recorder::is_enabled`] (or the global [`enabled`]) so the
/// disabled path allocates nothing.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// `false` when every call is a no-op (hot paths skip event
    /// construction entirely).
    fn is_enabled(&self) -> bool;
    /// Records one event.
    fn record(&self, event: Event);
    /// Adds `delta` to the named counter (totals are emitted as
    /// `counter` events at drain time).
    fn add(&self, counter: &'static str, delta: u64);
    /// Sets the current scope label (e.g. the running experiment id);
    /// subsequent events are stamped with it.
    fn set_scope(&self, scope: &str);
}

/// The no-op recorder: nothing is buffered, nothing is allocated.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn is_enabled(&self) -> bool {
        false
    }
    fn record(&self, _event: Event) {}
    fn add(&self, _counter: &'static str, _delta: u64) {}
    fn set_scope(&self, _scope: &str) {}
}

/// An event stamped with the scope that was current when it arrived.
#[derive(Debug, Clone)]
struct Stamped {
    /// Monotone per-recorder scope generation (bumped by
    /// [`Recorder::set_scope`]); major sort key, so events group by the
    /// serial phase that produced them regardless of worker arrival
    /// order.
    epoch: u32,
    scope: String,
    event: Event,
}

#[derive(Debug, Default)]
struct JsonlInner {
    epoch: u32,
    scope: String,
    events: Vec<Stamped>,
}

/// A buffered recorder that drains to JSON-lines.
///
/// Events accumulate in memory; [`JsonlRecorder::write_jsonl`] sorts
/// them into the canonical deterministic order and writes one JSON
/// object per line. Buffering (rather than streaming) is what lets the
/// drained stream be independent of worker arrival order.
///
/// # Examples
///
/// ```
/// use moca_sim::telemetry::{Event, JsonlRecorder, Recorder};
///
/// let rec = JsonlRecorder::new();
/// rec.set_scope("F3");
/// rec.record(Event::point("music", "shared-sram-16", 0, 2, 10, 20, 5));
/// rec.add("sim_refs", 8192);
///
/// let mut out = Vec::new();
/// rec.write_jsonl(&mut out).unwrap();
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.contains("\"kind\":\"point\""));
/// assert!(text.contains("\"kind\":\"counter\""));
/// ```
#[derive(Debug, Default)]
pub struct JsonlRecorder {
    inner: Mutex<JsonlInner>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
}

impl JsonlRecorder {
    /// An empty recorder with scope `""`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events buffered so far (counters not included).
    pub fn len(&self) -> usize {
        self.lock_inner().events.len()
    }

    /// `true` when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.lock_inner().events.is_empty()
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, JsonlInner> {
        // Buffer mutations are single push/assign operations that leave
        // the state consistent even if a panicking thread held the lock.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Writes the buffered stream as JSON lines in canonical order:
    /// sorted by `(scope epoch, kind, masked rendering)`, with counter
    /// totals appended last. The buffer is left intact (draining twice
    /// writes the same bytes).
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<usize> {
        let mut lines: Vec<(u32, u8, String, String)> = {
            let inner = self.lock_inner();
            inner
                .events
                .iter()
                .map(|st| {
                    (
                        st.epoch,
                        st.event.kind_rank(),
                        st.event.render(&st.scope, true),
                        st.event.render(&st.scope, false),
                    )
                })
                .collect()
        };
        {
            let counters = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
            for (name, value) in counters.iter() {
                let ev = Event::Counter { name, value: *value };
                lines.push((u32::MAX, ev.kind_rank(), ev.render("", true), ev.render("", false)));
            }
        }
        lines.sort_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
        let n = lines.len();
        for (_, _, _, rendered) in lines {
            writeln!(w, "{rendered}")?;
        }
        Ok(n)
    }
}

impl Recorder for JsonlRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        let mut inner = self.lock_inner();
        let epoch = inner.epoch;
        let scope = inner.scope.clone();
        inner.events.push(Stamped { epoch, scope, event });
    }

    fn add(&self, counter: &'static str, delta: u64) {
        let mut counters = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        *counters.entry(counter).or_insert(0) += delta;
    }

    fn set_scope(&self, scope: &str) {
        let mut inner = self.lock_inner();
        inner.epoch += 1;
        inner.scope.clear();
        inner.scope.push_str(scope);
    }
}

/// The process-global recorder: [`NullRecorder`] semantics until
/// [`install`] swaps in the [`JsonlRecorder`].
static GLOBAL: OnceLock<JsonlRecorder> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Installs (idempotently) the process-global [`JsonlRecorder`] and
/// returns it. Before the first call, every global hook is a no-op.
pub fn install() -> &'static JsonlRecorder {
    let rec = GLOBAL.get_or_init(JsonlRecorder::default);
    ENABLED.store(true, Ordering::Release);
    rec
}

/// The installed global recorder, if [`install`] ran.
pub fn global() -> Option<&'static JsonlRecorder> {
    if enabled() {
        GLOBAL.get()
    } else {
        None
    }
}

/// `true` once [`install`] ran. This is the only cost telemetry adds
/// to a disabled hot path: one relaxed atomic load and a
/// well-predicted branch, no allocation.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records `event` on the global recorder (no-op when disabled).
///
/// Callers on hot paths should guard event construction with
/// [`enabled`] so the disabled path never allocates the event.
#[inline]
pub fn record(event: Event) {
    if let Some(rec) = global() {
        rec.record(event);
    }
}

/// Adds to a named global counter (no-op when disabled).
#[inline]
pub fn add(counter: &'static str, delta: u64) {
    if let Some(rec) = global() {
        rec.add(counter, delta);
    }
}

/// Sets the global scope label (no-op when disabled).
pub fn set_scope(scope: &str) {
    if let Some(rec) = global() {
        rec.set_scope(scope);
    }
}

/// A parsed JSON scalar from a telemetry line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// A non-negative integer (the only numbers telemetry emits).
    Num(u64),
    /// A JSON boolean.
    Bool(bool),
}

/// Parses one telemetry line as a flat JSON object, preserving field
/// order.
///
/// This is deliberately a *validator*, not a general JSON parser: it
/// accepts exactly the subset the emitter produces (one flat object of
/// string / unsigned-integer / boolean fields) and rejects everything
/// else — which is what the CI gate wants from "every emitted line
/// parses".
///
/// # Errors
///
/// Returns a human-readable description of the first syntax violation.
///
/// # Examples
///
/// ```
/// use moca_sim::telemetry::{parse_line, JsonValue};
///
/// let fields = parse_line(r#"{"v":1,"kind":"counter","name":"sim_refs","value":42}"#).unwrap();
/// assert_eq!(fields[0], ("v".to_string(), JsonValue::Num(1)));
/// assert_eq!(fields[3], ("value".to_string(), JsonValue::Num(42)));
/// assert!(parse_line("not json").is_err());
/// ```
pub fn parse_line(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let fields = p.object()?;
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            ))
        }
    }

    fn object(&mut self) -> Result<Vec<(String, JsonValue)>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'0'..=b'9') => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
                text.parse::<u64>()
                    .map(JsonValue::Num)
                    .map_err(|e| format!("bad number at offset {start}: {e}"))
            }
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(JsonValue::Bool(false))
            }
            _ => Err(format!("expected a value at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 character (the input is a &str,
                    // so boundaries are valid).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

/// Re-renders `line` with every `_ns`-suffixed field zeroed — the
/// canonical form the determinism suite compares across job counts.
///
/// # Errors
///
/// Returns [`parse_line`]'s error for a malformed line.
///
/// # Examples
///
/// ```
/// let masked = moca_sim::telemetry::mask_timing(
///     r#"{"v":1,"kind":"counter","name":"x_ns","value":7,"busy_ns":912}"#,
/// ).unwrap();
/// assert_eq!(masked, r#"{"v":1,"kind":"counter","name":"x_ns","value":7,"busy_ns":0}"#);
/// ```
pub fn mask_timing(line: &str) -> Result<String, String> {
    let fields = parse_line(line)?;
    let mut out = String::with_capacity(line.len());
    out.push('{');
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape_into(&mut out, key);
        out.push_str("\":");
        match value {
            JsonValue::Num(n) => {
                let n = if key.ends_with("_ns") { 0 } else { *n };
                let _ = write!(out, "{n}");
            }
            JsonValue::Str(s) => {
                out.push('"');
                json_escape_into(&mut out, s);
                out.push('"');
            }
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
    out.push('}');
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drained(rec: &JsonlRecorder) -> Vec<String> {
        let mut buf = Vec::new();
        rec.write_jsonl(&mut buf).expect("write");
        String::from_utf8(buf)
            .expect("utf8")
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        let rec = NullRecorder;
        assert!(!rec.is_enabled());
        rec.record(Event::point("a", "d", 0, 1, 1, 2, 3));
        rec.add("x", 1);
        rec.set_scope("s");
    }

    #[test]
    fn every_rendered_line_parses_and_roundtrips() {
        let rec = JsonlRecorder::new();
        rec.set_scope("F3");
        rec.record(Event::point("music", "evil \"design\",\nwith\tjunk", 3, 8, 10, 20, 5));
        rec.record(Event::WorkerStart {
            pool: "parallel_map",
            worker: 0,
            jobs: 2,
        });
        rec.record(Event::WorkerStop {
            pool: "parallel_map",
            worker: 0,
            jobs: 2,
            items: 5,
            busy_ns: 1234,
        });
        rec.record(Event::Arena {
            cached_chunks: 3,
            capacity_chunks: 512,
            hits: 10,
            misses: 4,
            rejected: 0,
        });
        rec.record(Event::Checkpoint {
            event: "append",
            key: "exp:F3:Quick:000000005eed2015".to_string(),
        });
        rec.add("sim_refs", 8192);

        let lines = drained(&rec);
        assert_eq!(lines.len(), 6);
        for line in &lines {
            let fields = parse_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert_eq!(fields[0], ("v".to_string(), JsonValue::Num(1)));
            assert!(matches!(fields[1].1, JsonValue::Str(_)), "kind is a string");
        }
        // The hostile design label survives escape → parse byte-exactly.
        let point = lines.iter().find(|l| l.contains("\"kind\":\"point\"")).expect("point");
        let fields = parse_line(point).expect("parse");
        let design = fields
            .iter()
            .find(|(k, _)| k == "design")
            .map(|(_, v)| v.clone())
            .expect("design field");
        assert_eq!(
            design,
            JsonValue::Str("evil \"design\",\nwith\tjunk".to_string())
        );
    }

    #[test]
    fn drain_order_is_independent_of_arrival_order() {
        let make = |flip: bool| {
            let rec = JsonlRecorder::new();
            rec.set_scope("E1");
            let a = Event::point("music", "d1", 0, 2, 11, 22, 33);
            let b = Event::point("music", "d2", 1, 2, 44, 55, 66);
            if flip {
                rec.record(b.clone());
                rec.record(a.clone());
            } else {
                rec.record(a);
                rec.record(b);
            }
            rec.add("sim_batches", 7);
            drained(&rec)
        };
        let masked = |lines: Vec<String>| -> Vec<String> {
            lines.iter().map(|l| mask_timing(l).expect("mask")).collect()
        };
        assert_eq!(masked(make(false)), masked(make(true)));
    }

    #[test]
    fn scope_epochs_keep_serial_phases_in_emission_order() {
        let rec = JsonlRecorder::new();
        rec.set_scope("Z-late-alphabetically-first-serially");
        rec.record(Event::point("a", "d", 0, 1, 1, 1, 1));
        rec.set_scope("A-early-alphabetically-second-serially");
        rec.record(Event::point("a", "d", 0, 1, 1, 1, 1));
        let lines = drained(&rec);
        assert!(lines[0].contains("Z-late"), "first epoch first: {lines:?}");
        assert!(lines[1].contains("A-early"));
    }

    #[test]
    fn counters_accumulate_and_sort_last_by_name() {
        let rec = JsonlRecorder::new();
        rec.record(Event::point("a", "d", 0, 1, 1, 1, 1));
        rec.add("zeta", 1);
        rec.add("alpha", 2);
        rec.add("alpha", 3);
        let lines = drained(&rec);
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("\"name\":\"alpha\"") && lines[1].contains("\"value\":5"));
        assert!(lines[2].contains("\"name\":\"zeta\"") && lines[2].contains("\"value\":1"));
    }

    #[test]
    fn mask_timing_zeroes_only_ns_fields() {
        let rec = JsonlRecorder::new();
        rec.record(Event::point("music", "d", 2, 4, 111, 222, 333));
        let line = drained(&rec).remove(0);
        let masked = mask_timing(&line).expect("mask");
        assert!(masked.contains("\"trace_gen_ns\":0"));
        assert!(masked.contains("\"sim_ns\":0"));
        assert!(masked.contains("\"energy_ns\":0"));
        assert!(masked.contains("\"index\":2") && masked.contains("\"total\":4"));
        // Masking is idempotent.
        assert_eq!(mask_timing(&masked).expect("mask"), masked);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":1} trailing",
            "{\"a\":-1}",
            "{\"a\":1.5}",
            "{\"a\":[1]}",
            "{'a':1}",
            "{\"a\":\"unterminated}",
            "{\"a\":\"bad \\x escape\"}",
        ] {
            assert!(parse_line(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn scheduling_kind_classification_matches_schema() {
        for kind in ["worker_start", "worker_stop", "arena", "trace_io"] {
            assert!(is_scheduling_kind(kind));
        }
        for kind in ["point", "checkpoint", "counter"] {
            assert!(!is_scheduling_kind(kind));
        }
    }

    #[test]
    fn trace_io_renders_parses_and_masks_decode_ns() {
        let rec = JsonlRecorder::new();
        rec.record(Event::TraceIo {
            files: 4,
            chunks_decoded: 37,
            bytes_read: 123_456,
            decode_ns: 7_890,
            checksum_verifies: 37,
            decode_errors: 1,
        });
        let line = drained(&rec).remove(0);
        let fields = parse_line(&line).expect("trace_io line parses");
        assert_eq!(
            fields[1],
            ("kind".to_string(), JsonValue::Str("trace_io".to_string()))
        );
        assert!(line.contains("\"files\":4"));
        assert!(line.contains("\"chunks_decoded\":37"));
        assert!(line.contains("\"decode_ns\":7890"));
        let masked = mask_timing(&line).expect("mask");
        assert!(masked.contains("\"decode_ns\":0"));
        assert!(masked.contains("\"bytes_read\":123456"), "{masked}");
    }

    #[test]
    fn write_jsonl_is_repeatable() {
        let rec = JsonlRecorder::new();
        rec.record(Event::point("a", "d", 0, 1, 9, 9, 9));
        let first = drained(&rec);
        let second = drained(&rec);
        assert_eq!(first, second, "draining must not consume the buffer");
    }
}
