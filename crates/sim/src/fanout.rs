//! Shared-trace fan-out: evaluate many L2 designs against one trace
//! stream in a single pass.
//!
//! Every figure in the reproduced evaluation is a *sweep*: N cache
//! designs judged against the byte-identical workload trace. Running the
//! sweep as N independent [`run_app`](crate::workloads::run_app) calls
//! pays the trace-generation cost N times — and after the SoA cache
//! engine, generation is the dominant cost of a sweep point. This module
//! removes the multiplier twice over:
//!
//! * **Fan-out** ([`FanOut`]): one [`TraceGenerator`]-backed stream per
//!   `(app, seed)` fills each chunk once and *broadcasts* the chunk
//!   slice to N independent [`System`] instances (one per
//!   [`L2Design`]) before pulling the next chunk. Generation cost is
//!   amortized across every design in the call.
//! * **Chunk arena** ([`ChunkArena`]): generated chunks are memoized in
//!   a bounded, process-wide arena keyed by
//!   `(profile fingerprint, seed, chunk index)` (fixed-seed
//!   [`moca_trace::fxhash`] keys, [`AppProfile::fingerprint`] identity),
//!   so experiments that reuse the same `(app, seed)` later in the
//!   process skip regeneration entirely and share one immutable copy of
//!   each chunk across threads.
//!
//! # Determinism
//!
//! The trace stream an individual [`System`] observes is *exactly* the
//! stream `TraceGenerator::new(app, seed)` produces: chunks are cut at
//! fixed [`ARENA_CHUNK`] boundaries, arena hits return bytes previously
//! produced by such a generator, and misses are filled by a local
//! generator owned by the calling worker — so RNG draw order per design
//! is unchanged and every [`SimReport`] is **byte-identical** to a
//! sequential `run_app` for any job count and any arena state. The
//! fan-out equivalence suite in `crates/sim/tests/determinism.rs`
//! asserts this, and the sweep-shaped experiments double as oracles.

use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

use moca_core::L2Design;
use moca_trace::fxhash::FxHashMap;
use moca_trace::{AppProfile, MemoryAccess, TraceGenerator};

use crate::config::SystemConfig;
use crate::error::{PointCause, SweepPointError};
use crate::metrics::SimReport;
use crate::parallel::{catch_panic, parallel_map, Jobs};
use crate::system::System;

/// Length of every arena chunk in accesses.
///
/// Fixed (rather than caller-chosen) so chunk boundaries are identical
/// for every consumer of a stream — the memoization key includes the
/// chunk *index*, which is only meaningful at one chunk size.
pub const ARENA_CHUNK: usize = TraceGenerator::DEFAULT_CHUNK;

/// Default bound of the global arena, in cached chunks.
///
/// `512 × 8192` accesses ≈ 100 MB: enough to hold every stream the
/// quick-scale experiment suite touches, small enough to stay polite on
/// a CI container. Streams longer than the bound keep their cached
/// prefix; the tail is regenerated per consumer (see
/// [`TraceStream::next_chunk`]).
pub const ARENA_CAP_CHUNKS: usize = 512;

/// `(profile fingerprint, seed, chunk index)` — the identity of one
/// generated chunk.
type ChunkKey = (u64, u64, u32);

#[derive(Debug, Default)]
struct ArenaInner {
    chunks: FxHashMap<ChunkKey, Arc<[MemoryAccess]>>,
    hits: u64,
    misses: u64,
    rejected: u64,
}

/// Counters describing an arena's effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Chunks currently cached.
    pub cached_chunks: usize,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required local generation.
    pub misses: u64,
    /// Generated chunks not cached because the arena was full.
    pub rejected: u64,
}

impl ArenaStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded, thread-safe memo of generated trace chunks.
///
/// Most callers never touch an arena directly: [`TraceStream::new`] uses
/// the process-wide [`ChunkArena::global`]. Private arenas (mainly for
/// tests and benchmarks) come from [`ChunkArena::with_capacity`].
///
/// The bound is enforced as *insert-until-full*: once `cap_chunks`
/// chunks are cached nothing is evicted and further inserts are
/// rejected (counted in [`ArenaStats::rejected`]). Memoized content
/// never influences simulation output — a hit returns exactly the bytes
/// a miss would have generated — so the cache policy is purely a
/// space/time knob.
#[derive(Debug)]
pub struct ChunkArena {
    inner: Mutex<ArenaInner>,
    cap_chunks: usize,
}

impl ChunkArena {
    /// Creates a private arena bounded at `cap_chunks` cached chunks.
    pub fn with_capacity(cap_chunks: usize) -> Self {
        ChunkArena {
            inner: Mutex::new(ArenaInner::default()),
            cap_chunks,
        }
    }

    /// The process-wide arena every [`TraceStream`] shares by default.
    pub fn global() -> &'static ChunkArena {
        static GLOBAL: OnceLock<ChunkArena> = OnceLock::new();
        GLOBAL.get_or_init(|| ChunkArena::with_capacity(ARENA_CAP_CHUNKS))
    }

    /// The arena bound in chunks.
    pub fn capacity_chunks(&self) -> usize {
        self.cap_chunks
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ArenaInner> {
        // A poisoned lock means a panicking thread held it mid-update;
        // every critical section below leaves the map consistent, so
        // continuing is safe (mirrors `parallel::parallel_map`).
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn get(&self, key: ChunkKey) -> Option<Arc<[MemoryAccess]>> {
        let mut inner = self.lock();
        match inner.chunks.get(&key) {
            Some(chunk) => {
                let chunk = Arc::clone(chunk);
                inner.hits += 1;
                Some(chunk)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    fn insert(&self, key: ChunkKey, chunk: &Arc<[MemoryAccess]>) {
        let mut inner = self.lock();
        if inner.chunks.len() >= self.cap_chunks {
            inner.rejected += 1;
            return;
        }
        // A racing worker may have generated the same chunk; both copies
        // are byte-identical, so keeping the first is arbitrary but
        // consistent.
        inner.chunks.entry(key).or_insert_with(|| Arc::clone(chunk));
    }

    /// Deliberately poisons the arena's internal lock (fault injection).
    ///
    /// Spawns a short-lived thread that panics while holding the lock,
    /// leaving the `Mutex` poisoned — exactly the state a crashed worker
    /// leaves behind. Every accessor recovers via
    /// [`PoisonError::into_inner`] (the critical sections keep the map
    /// consistent), so streams, inserts, and [`ChunkArena::stats`] keep
    /// working afterwards; the fault-tolerance suite pins that recovery.
    pub fn poison(&self) {
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // catch_panic keeps the injected panic from reaching the
                // process hook; the guard still drops during unwinding,
                // which is what marks the mutex poisoned.
                let _ = catch_panic(|| {
                    let _guard = self.inner.lock();
                    panic!("injected arena poison");
                });
            });
        });
    }

    /// Current cache counters.
    pub fn stats(&self) -> ArenaStats {
        let inner = self.lock();
        ArenaStats {
            cached_chunks: inner.chunks.len(),
            hits: inner.hits,
            misses: inner.misses,
            rejected: inner.rejected,
        }
    }
}

/// A cursor over the `(app, seed)` trace stream, staged in
/// [`ARENA_CHUNK`]-sized immutable chunks backed by a [`ChunkArena`].
///
/// The stream is identical to `TraceGenerator::new(app, seed)`; the
/// difference is purely operational: chunks already memoized by any
/// earlier consumer in the process are returned without generation, and
/// a local generator (created lazily, only on the first miss) fills the
/// rest. Consumption is strictly forward from chunk 0 — exactly the
/// access pattern of a simulation run.
///
/// # Examples
///
/// ```
/// use moca_sim::fanout::TraceStream;
/// use moca_trace::{AppProfile, TraceGenerator};
///
/// let app = AppProfile::music();
/// let mut stream = TraceStream::new(&app, 7);
/// let chunk = stream.next_chunk();
/// let direct: Vec<_> = TraceGenerator::new(&app, 7).take(chunk.len()).collect();
/// assert_eq!(&chunk[..], &direct[..]);
/// ```
#[derive(Debug)]
pub struct TraceStream<'a> {
    profile: &'a AppProfile,
    seed: u64,
    fingerprint: u64,
    arena: &'a ChunkArena,
    /// Local generator; only built when a chunk misses the arena.
    gen: Option<TraceGenerator>,
    /// Chunks the local generator has produced (its stream position).
    generated: u32,
    /// Index of the next chunk to hand out.
    next: u32,
}

impl<'a> TraceStream<'a> {
    /// A stream over `(profile, seed)` backed by the global arena.
    pub fn new(profile: &'a AppProfile, seed: u64) -> Self {
        Self::with_arena(profile, seed, ChunkArena::global())
    }

    /// A stream backed by an explicit arena (tests, benchmarks).
    pub fn with_arena(profile: &'a AppProfile, seed: u64, arena: &'a ChunkArena) -> Self {
        TraceStream {
            profile,
            seed,
            fingerprint: profile.fingerprint(),
            arena,
            gen: None,
            generated: 0,
            next: 0,
        }
    }

    /// Index of the next chunk [`TraceStream::next_chunk`] will return.
    pub fn position(&self) -> u32 {
        self.next
    }

    /// Returns the next [`ARENA_CHUNK`]-long chunk of the stream.
    ///
    /// Arena hit: an `Arc` clone of the memoized chunk, no generation.
    /// Miss: the local generator catches up to the cursor (chunks it
    /// skipped over while hits were served count only generation time,
    /// never change content) and fills the chunk, which is offered to
    /// the arena for future consumers.
    pub fn next_chunk(&mut self) -> Arc<[MemoryAccess]> {
        let key = (self.fingerprint, self.seed, self.next);
        if let Some(chunk) = self.arena.get(key) {
            self.next += 1;
            return chunk;
        }
        let gen = self
            .gen
            .get_or_insert_with(|| TraceGenerator::new(self.profile, self.seed));
        let mut chunk: Vec<MemoryAccess> = Vec::with_capacity(ARENA_CHUNK);
        while self.generated < self.next {
            // Catch up over chunks that were served from the arena
            // before the local generator existed (or before the arena's
            // bound cut caching off): regenerate and discard to advance
            // the RNG to the cursor.
            gen.fill(&mut chunk);
            self.generated += 1;
        }
        gen.fill(&mut chunk);
        self.generated += 1;
        let chunk: Arc<[MemoryAccess]> = chunk.into();
        self.arena.insert(key, &chunk);
        self.next += 1;
        chunk
    }
}

/// The shared-trace fan-out runner: one `(app, seed)` stream broadcast
/// to any number of [`L2Design`]s.
///
/// # Examples
///
/// ```
/// use moca_core::L2Design;
/// use moca_sim::fanout::FanOut;
/// use moca_trace::AppProfile;
///
/// let app = AppProfile::music();
/// let designs = [L2Design::baseline(), L2Design::static_default()];
/// let reports = FanOut::new(&app, 1).run(&designs, 30_000);
/// assert_eq!(reports.len(), 2);
/// // Byte-identical to running each design on its own:
/// let solo = moca_sim::run_app(&app, designs[1], 30_000, 1);
/// assert_eq!(reports[1].cycles, solo.cycles);
/// ```
#[derive(Debug, Clone)]
pub struct FanOut<'a> {
    app: &'a AppProfile,
    seed: u64,
    cfg: SystemConfig,
}

impl<'a> FanOut<'a> {
    /// A fan-out over the `(app, seed)` stream with the default
    /// [`SystemConfig`].
    pub fn new(app: &'a AppProfile, seed: u64) -> Self {
        FanOut {
            app,
            seed,
            cfg: SystemConfig::default(),
        }
    }

    /// Replaces the system configuration used for every design.
    pub fn with_config(mut self, cfg: SystemConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Runs `refs` references of the shared stream through one
    /// [`System`] per design, single-threaded, and returns the reports
    /// in design order.
    ///
    /// # Panics
    ///
    /// Panics if any design is invalid (callers construct designs from
    /// validated enums, matching [`crate::workloads::run_app`]).
    pub fn run(&self, designs: &[L2Design], refs: usize) -> Vec<SimReport> {
        self.run_timed(designs, refs)
            .into_iter()
            .map(|(report, _)| report)
            .collect()
    }

    /// [`FanOut::run`] returning `(report, wall_ns)` pairs, where
    /// `wall_ns` is the wall-clock time spent simulating that design
    /// (shared trace-generation time excluded — it is no longer
    /// attributable to a single design).
    pub fn run_timed(&self, designs: &[L2Design], refs: usize) -> Vec<(SimReport, u64)> {
        let mut systems: Vec<System> = designs
            .iter()
            .map(|design| {
                System::new(self.app.name, *design, self.cfg).expect("fan-out design must be valid")
            })
            .collect();
        let mut walls = vec![0u64; systems.len()];
        if !systems.is_empty() {
            let mut stream = TraceStream::new(self.app, self.seed);
            let mut left = refs;
            while left > 0 {
                let chunk = stream.next_chunk();
                let n = chunk.len().min(left);
                for (sys, wall) in systems.iter_mut().zip(&mut walls) {
                    let start = Instant::now();
                    sys.run_batch(&chunk[..n]);
                    *wall += start.elapsed().as_nanos() as u64;
                }
                left -= n;
            }
        }
        systems
            .into_iter()
            .zip(walls)
            .map(|(sys, wall)| {
                let start = Instant::now();
                let report = sys.finish();
                (report, wall + start.elapsed().as_nanos() as u64)
            })
            .collect()
    }

    /// [`FanOut::run`] with the designs partitioned over `jobs` worker
    /// threads.
    ///
    /// Each worker owns its slice of the designs *and its own stream*
    /// (a fresh generator clone on arena misses), so RNG draw order per
    /// design is unchanged and the reports are byte-identical to
    /// [`FanOut::run`] — and to per-design `run_app` — for every job
    /// count.
    pub fn run_parallel(&self, designs: &[L2Design], refs: usize, jobs: Jobs) -> Vec<SimReport> {
        self.run_timed_parallel(designs, refs, jobs)
            .into_iter()
            .map(|(report, _)| report)
            .collect()
    }

    /// [`FanOut::run_timed`] with the designs partitioned over `jobs`
    /// worker threads.
    pub fn run_timed_parallel(
        &self,
        designs: &[L2Design],
        refs: usize,
        jobs: Jobs,
    ) -> Vec<(SimReport, u64)> {
        let workers = jobs.get().min(designs.len());
        if workers <= 1 {
            return self.run_timed(designs, refs);
        }
        // Contiguous groups, one per worker: each group shares one
        // stream, and the input-order merge of `parallel_map` restores
        // design order.
        let per_group = designs.len().div_ceil(workers);
        let groups: Vec<&[L2Design]> = designs.chunks(per_group).collect();
        parallel_map(jobs, groups, |group| self.run_timed(group, refs))
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Per-design execution state inside [`FanOut::run_timed_isolated`].
enum Slot {
    /// Still simulating: the system plus its accumulated wall time.
    Live(Box<System>, u64),
    /// Failed at build time or mid-run; the system (if any) was dropped.
    Failed(SweepPointError),
}

impl<'a> FanOut<'a> {
    /// [`FanOut::run_timed`] with per-design failure isolation: a design
    /// that fails to build, or panics at any point of its simulation,
    /// yields `Err(SweepPointError)` in its slot while every other
    /// design runs to completion on the shared stream.
    ///
    /// Failure values are deterministic (build errors are pure functions
    /// of the design; panics in a deterministic simulation carry a
    /// deterministic payload), so the failed-point set is identical for
    /// any grouping of the designs — the property
    /// [`FanOut::run_parallel_isolated`] relies on.
    pub fn run_timed_isolated(
        &self,
        designs: &[L2Design],
        refs: usize,
    ) -> Vec<Result<(SimReport, u64), SweepPointError>> {
        let mut slots: Vec<Slot> = designs
            .iter()
            .enumerate()
            .map(|(index, design)| {
                match catch_panic(|| System::new(self.app.name, *design, self.cfg)) {
                    Ok(Ok(sys)) => Slot::Live(Box::new(sys), 0),
                    Ok(Err(e)) => Slot::Failed(SweepPointError {
                        index,
                        label: design.label(),
                        cause: PointCause::Build(e),
                    }),
                    Err(msg) => Slot::Failed(SweepPointError {
                        index,
                        label: design.label(),
                        cause: PointCause::Panic(msg),
                    }),
                }
            })
            .collect();

        if slots.iter().any(|s| matches!(s, Slot::Live(..))) {
            let mut stream = TraceStream::new(self.app, self.seed);
            let mut left = refs;
            while left > 0 {
                let chunk = stream.next_chunk();
                let n = chunk.len().min(left);
                for (index, slot) in slots.iter_mut().enumerate() {
                    let failure = match slot {
                        Slot::Live(sys, wall) => {
                            let start = Instant::now();
                            let outcome = catch_panic(|| {
                                sys.run_batch(&chunk[..n]);
                            });
                            *wall += start.elapsed().as_nanos() as u64;
                            outcome.err()
                        }
                        Slot::Failed(_) => None,
                    };
                    if let Some(msg) = failure {
                        // The panicked system's state is unspecified;
                        // replacing the slot drops it for good.
                        *slot = Slot::Failed(SweepPointError {
                            index,
                            label: designs[index].label(),
                            cause: PointCause::Panic(msg),
                        });
                    }
                }
                left -= n;
            }
        }

        slots
            .into_iter()
            .enumerate()
            .map(|(index, slot)| match slot {
                Slot::Live(sys, wall) => {
                    let start = Instant::now();
                    match catch_panic(move || sys.finish()) {
                        Ok(report) => Ok((report, wall + start.elapsed().as_nanos() as u64)),
                        Err(msg) => Err(SweepPointError {
                            index,
                            label: designs[index].label(),
                            cause: PointCause::Panic(msg),
                        }),
                    }
                }
                Slot::Failed(e) => Err(e),
            })
            .collect()
    }

    /// [`FanOut::run_timed_isolated`] with the designs partitioned over
    /// `jobs` worker threads (contiguous groups, one shared stream per
    /// group, input-order merge).
    ///
    /// Both the successful reports *and* the failed-point set — indices,
    /// labels, and rendered causes — are byte-identical to the serial
    /// [`FanOut::run_timed_isolated`] for every job count.
    pub fn run_timed_parallel_isolated(
        &self,
        designs: &[L2Design],
        refs: usize,
        jobs: Jobs,
    ) -> Vec<Result<(SimReport, u64), SweepPointError>> {
        let workers = jobs.get().min(designs.len());
        if workers <= 1 {
            return self.run_timed_isolated(designs, refs);
        }
        let per_group = designs.len().div_ceil(workers);
        // Pair each group with its offset so per-group point indices can
        // be rebased to sweep order after the merge.
        let groups: Vec<(usize, &[L2Design])> = designs
            .chunks(per_group)
            .enumerate()
            .map(|(g, chunk)| (g * per_group, chunk))
            .collect();
        parallel_map(jobs, groups, |(offset, group)| {
            self.run_timed_isolated(group, refs)
                .into_iter()
                .map(|r| {
                    r.map_err(|mut e| {
                        e.index += offset;
                        e
                    })
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// [`FanOut::run`] with per-design failure isolation (reports only,
    /// `jobs` worker threads).
    pub fn run_parallel_isolated(
        &self,
        designs: &[L2Design],
        refs: usize,
        jobs: Jobs,
    ) -> Vec<Result<SimReport, SweepPointError>> {
        self.run_timed_parallel_isolated(designs, refs, jobs)
            .into_iter()
            .map(|r| r.map(|(report, _)| report))
            .collect()
    }
}

/// One-shot helper: [`FanOut::run`] with the default config.
pub fn fan_out(
    app: &AppProfile,
    designs: &[L2Design],
    refs: usize,
    seed: u64,
) -> Vec<SimReport> {
    FanOut::new(app, seed).run(designs, refs)
}

/// One-shot helper: [`FanOut::run_parallel`] with the default config.
pub fn fan_out_parallel(
    app: &AppProfile,
    designs: &[L2Design],
    refs: usize,
    seed: u64,
    jobs: Jobs,
) -> Vec<SimReport> {
    FanOut::new(app, seed).run_parallel(designs, refs, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_trace::TraceGenerator;

    fn reference_stream(app: &AppProfile, seed: u64, n: usize) -> Vec<MemoryAccess> {
        TraceGenerator::new(app, seed).take(n).collect()
    }

    #[test]
    fn stream_matches_generator_across_arena_states() {
        let app = AppProfile::browser();
        let arena = ChunkArena::with_capacity(64);
        let expected = reference_stream(&app, 5, 3 * ARENA_CHUNK);

        // Cold pass: all misses.
        let mut cold = TraceStream::with_arena(&app, 5, &arena);
        let mut got = Vec::new();
        for _ in 0..3 {
            got.extend_from_slice(&cold.next_chunk());
        }
        assert_eq!(got, expected);
        assert_eq!(arena.stats().misses, 3);

        // Warm pass: all hits, identical bytes.
        let mut warm = TraceStream::with_arena(&app, 5, &arena);
        let mut got = Vec::new();
        for _ in 0..3 {
            got.extend_from_slice(&warm.next_chunk());
        }
        assert_eq!(got, expected);
        assert_eq!(arena.stats().hits, 3);
    }

    #[test]
    fn stream_catches_up_after_partial_hits() {
        // Arena bounded at 1 chunk: the second pass hits chunk 0 then
        // must regenerate (catch up) for chunks 1 and 2.
        let app = AppProfile::email();
        let arena = ChunkArena::with_capacity(1);
        let expected = reference_stream(&app, 9, 3 * ARENA_CHUNK);

        let mut first = TraceStream::with_arena(&app, 9, &arena);
        for _ in 0..3 {
            first.next_chunk();
        }
        assert_eq!(arena.stats().cached_chunks, 1);
        assert_eq!(arena.stats().rejected, 2);

        let mut second = TraceStream::with_arena(&app, 9, &arena);
        let mut got = Vec::new();
        for _ in 0..3 {
            got.extend_from_slice(&second.next_chunk());
        }
        assert_eq!(got, expected, "catch-up after a partial hit must not skew the stream");
        assert_eq!(arena.stats().hits, 1);
    }

    #[test]
    fn arena_keys_separate_apps_and_seeds() {
        let arena = ChunkArena::with_capacity(16);
        let browser = AppProfile::browser();
        let email = AppProfile::email();
        let a = TraceStream::with_arena(&browser, 1, &arena).next_chunk();
        let b = TraceStream::with_arena(&email, 1, &arena).next_chunk();
        let c = TraceStream::with_arena(&browser, 2, &arena).next_chunk();
        assert_ne!(&a[..], &b[..]);
        assert_ne!(&a[..], &c[..]);
        assert_eq!(arena.stats().cached_chunks, 3);
        // Same stream again: a pure hit.
        let a2 = TraceStream::with_arena(&browser, 1, &arena).next_chunk();
        assert_eq!(&a[..], &a2[..]);
        assert!(arena.stats().hit_rate() > 0.0);
    }

    #[test]
    fn fan_out_matches_individual_runs() {
        let app = AppProfile::game();
        let designs = [
            L2Design::baseline(),
            L2Design::static_default(),
            L2Design::dynamic_default(),
        ];
        let refs = 2 * ARENA_CHUNK + 123; // deliberately not chunk-aligned
        let fanned = fan_out(&app, &designs, refs, 3);
        for (design, fanned) in designs.iter().zip(&fanned) {
            let solo = crate::workloads::run_app(&app, *design, refs, 3);
            assert_eq!(format!("{fanned:?}"), format!("{solo:?}"));
        }
    }

    #[test]
    fn parallel_fan_out_matches_serial_for_all_job_counts() {
        let app = AppProfile::video();
        let designs: Vec<L2Design> = (1..=5u32)
            .map(|ways| L2Design::SharedSram { ways: ways * 2 })
            .collect();
        let serial = fan_out(&app, &designs, 20_000, 11);
        for jobs in [1usize, 2, 3, 8] {
            let parallel = fan_out_parallel(&app, &designs, 20_000, 11, Jobs::new(jobs));
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(format!("{s:?}"), format!("{p:?}"), "jobs = {jobs}");
            }
        }
    }

    #[test]
    fn empty_designs_produce_no_reports_and_pull_no_chunks() {
        let app = AppProfile::music();
        let reports = fan_out(&app, &[], 50_000, 1);
        assert!(reports.is_empty());
    }

    #[test]
    fn timed_runs_attribute_wall_time_per_design() {
        let app = AppProfile::music();
        let designs = [L2Design::baseline(), L2Design::static_default()];
        let timed = FanOut::new(&app, 2).run_timed(&designs, 20_000);
        assert_eq!(timed.len(), 2);
        for (report, wall_ns) in &timed {
            assert_eq!(report.refs, 20_000);
            assert!(*wall_ns > 0, "simulation time must be accounted");
        }
    }

    #[test]
    fn global_arena_is_shared_and_bounded() {
        let arena = ChunkArena::global();
        assert_eq!(arena.capacity_chunks(), ARENA_CAP_CHUNKS);
        assert!(std::ptr::eq(arena, ChunkArena::global()));
    }
}
