//! File-backed trace replay: compiled-trace sources, the process-wide
//! source registry, and decode accounting.
//!
//! The chunked container in [`moca_trace::binfmt`] stores a workload's
//! reference stream pre-encoded at the arena's chunk granularity. This
//! module is the bridge into the sweep kernel: a [`FileTraceSource`]
//! wraps one validated file, and the [`TraceRegistry`] maps
//! `(profile fingerprint, seed)` identities to registered sources so
//! every [`TraceStream`](crate::fanout::TraceStream) in the process —
//! and therefore `FanOut`, `LockStep`, every sweep entry point, and the
//! checkpointed experiment driver — transparently replays from file
//! instead of generating, with byte-identical output.
//!
//! # Identity and fallback
//!
//! A registered source only ever serves the stream its header claims:
//! lookups key on the `(fingerprint, seed)` recorded at compile time,
//! and file-backed streams re-key the chunk arena (and checkpoint
//! journals) by [`TraceHeader::source_fingerprint`] so file-decoded
//! chunks can never alias generated ones. If a chunk fails to decode
//! mid-replay (truncation, bit rot), the stream silently falls back to
//! in-process generation — the output contract is owed to the caller —
//! and the failure is surfaced in [`TraceIoStats::decode_errors`].
//!
//! Decode work (chunks, bytes, nanoseconds, checksum verifies) is
//! accounted on the global registry and exported as the `trace_io`
//! telemetry event.

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use moca_trace::binfmt::{TraceHeader, TraceReader};
use moca_trace::fxhash::FxHashMap;
use moca_trace::io::ReadTraceError;

use crate::telemetry::Event;

/// One compiled trace file, opened, header-validated, and ready to
/// hand out cheap per-stream readers.
#[derive(Debug)]
pub struct FileTraceSource {
    path: PathBuf,
    header: TraceHeader,
    source_fingerprint: u64,
}

impl FileTraceSource {
    /// Opens `path` and validates its header and chunk directory
    /// (chunk payloads are verified lazily, per read).
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure or a malformed file.
    pub fn open(path: &Path) -> Result<Self, ReadTraceError> {
        let reader = TraceReader::open(path)?;
        let header = reader.header().clone();
        Ok(FileTraceSource {
            path: path.to_path_buf(),
            source_fingerprint: header.source_fingerprint(),
            header,
        })
    }

    /// The file this source reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The parsed file identity and chunk directory.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The generating profile's fingerprint (the registry lookup key,
    /// together with [`FileTraceSource::seed`]).
    pub fn fingerprint(&self) -> u64 {
        self.header.fingerprint
    }

    /// The generator seed the file was compiled from.
    pub fn seed(&self) -> u64 {
        self.header.seed
    }

    /// The arena/checkpoint keying fingerprint for streams replaying
    /// this file (see [`TraceHeader::source_fingerprint`]).
    pub fn source_fingerprint(&self) -> u64 {
        self.source_fingerprint
    }

    /// Chunks servable at arena granularity (a partial tail chunk is
    /// never served — generation covers anything past it).
    pub fn full_chunks(&self) -> u32 {
        self.header.full_chunks()
    }

    /// A fresh buffered reader over the file, reusing the validated
    /// header (no re-parse).
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError::Io`] when the file can no longer be
    /// opened.
    pub fn open_reader(&self) -> Result<TraceReader<BufReader<File>>, ReadTraceError> {
        let file = File::open(&self.path)?;
        Ok(TraceReader::from_parts(
            self.header.clone(),
            BufReader::new(file),
        ))
    }
}

/// Aggregate file-replay counters (see [`TraceRegistry::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceIoStats {
    /// Sources currently registered.
    pub files: u64,
    /// Chunks decoded from files.
    pub chunks_decoded: u64,
    /// Bytes read from trace files (payload + chunk checksums).
    pub bytes_read: u64,
    /// Wall time spent reading + decoding, in nanoseconds.
    pub decode_ns: u64,
    /// Chunk checksums verified successfully.
    pub checksum_verifies: u64,
    /// Chunk decodes that failed (stream fell back to generation).
    pub decode_errors: u64,
}

impl TraceIoStats {
    /// The counters as a `trace_io` telemetry event.
    pub fn to_event(self) -> Event {
        Event::TraceIo {
            files: self.files,
            chunks_decoded: self.chunks_decoded,
            bytes_read: self.bytes_read,
            decode_ns: self.decode_ns,
            checksum_verifies: self.checksum_verifies,
            decode_errors: self.decode_errors,
        }
    }
}

/// The process-wide map from `(profile fingerprint, seed)` to
/// registered [`FileTraceSource`]s, plus replay accounting.
///
/// `repro --trace` and `trace_corpus` register sources here; every
/// `TraceStream` consults [`TraceRegistry::global`] at construction.
/// An empty registry costs streams one mutex lookup at construction
/// time and nothing per chunk.
#[derive(Debug, Default)]
pub struct TraceRegistry {
    sources: Mutex<FxHashMap<(u64, u64), Arc<FileTraceSource>>>,
    chunks_decoded: AtomicU64,
    bytes_read: AtomicU64,
    decode_ns: AtomicU64,
    checksum_verifies: AtomicU64,
    decode_errors: AtomicU64,
}

impl TraceRegistry {
    /// The registry every default-constructed stream consults.
    pub fn global() -> &'static TraceRegistry {
        static GLOBAL: OnceLock<TraceRegistry> = OnceLock::new();
        GLOBAL.get_or_init(TraceRegistry::default)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FxHashMap<(u64, u64), Arc<FileTraceSource>>> {
        // Mirrors the chunk arena: critical sections leave the map
        // consistent, so a poisoned lock is safe to re-enter.
        self.sources.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers `source` under its header identity, replacing any
    /// earlier registration for the same `(fingerprint, seed)`.
    pub fn register(&self, source: FileTraceSource) -> Arc<FileTraceSource> {
        let source = Arc::new(source);
        self.lock()
            .insert((source.fingerprint(), source.seed()), Arc::clone(&source));
        source
    }

    /// The registered source for `(fingerprint, seed)`, if any.
    pub fn lookup(&self, fingerprint: u64, seed: u64) -> Option<Arc<FileTraceSource>> {
        self.lock().get(&(fingerprint, seed)).map(Arc::clone)
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records one successful chunk decode of `bytes` file bytes
    /// taking `ns` nanoseconds (checksum verified along the way).
    pub(crate) fn note_decode(&self, bytes: u64, ns: u64) {
        self.chunks_decoded.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.decode_ns.fetch_add(ns, Ordering::Relaxed);
        self.checksum_verifies.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one failed chunk decode (the stream fell back to
    /// generation).
    pub(crate) fn note_decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of the replay counters.
    pub fn stats(&self) -> TraceIoStats {
        TraceIoStats {
            files: self.len() as u64,
            chunks_decoded: self.chunks_decoded.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            decode_ns: self.decode_ns.load(Ordering::Relaxed),
            checksum_verifies: self.checksum_verifies.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moca_trace::binfmt::{self, CHUNK_REFS};
    use moca_trace::AppProfile;
    use std::fs;
    use std::io::BufWriter;

    fn compile_to_temp(app: &AppProfile, seed: u64, refs: usize, tag: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "moca-replay-test-{}-{tag}.mtrc",
            std::process::id()
        ));
        let file = File::create(&path).expect("create temp trace");
        binfmt::compile(BufWriter::new(file), app, seed, refs).expect("compile");
        path
    }

    #[test]
    fn source_reflects_header_identity() {
        let app = AppProfile::browser();
        let path = compile_to_temp(&app, 17, CHUNK_REFS + 1, "identity");
        let source = FileTraceSource::open(&path).expect("open");
        assert_eq!(source.fingerprint(), app.fingerprint());
        assert_eq!(source.seed(), 17);
        assert_eq!(source.full_chunks(), 2);
        assert_ne!(source.source_fingerprint(), app.fingerprint());
        fs::remove_file(path).ok();
    }

    #[test]
    fn registry_registers_and_looks_up_by_identity() {
        let app = AppProfile::email();
        let path = compile_to_temp(&app, 99, 10, "registry");
        let registry = TraceRegistry::default();
        assert!(registry.is_empty());
        assert!(registry.lookup(app.fingerprint(), 99).is_none());
        let source = registry.register(FileTraceSource::open(&path).expect("open"));
        assert_eq!(registry.len(), 1);
        let found = registry
            .lookup(app.fingerprint(), 99)
            .expect("registered source");
        assert!(Arc::ptr_eq(&source, &found));
        assert!(registry.lookup(app.fingerprint(), 100).is_none());
        fs::remove_file(path).ok();
    }

    #[test]
    fn stats_snapshot_counts_decodes_and_errors() {
        let registry = TraceRegistry::default();
        registry.note_decode(1000, 50);
        registry.note_decode(2000, 70);
        registry.note_decode_error();
        let stats = registry.stats();
        assert_eq!(stats.chunks_decoded, 2);
        assert_eq!(stats.bytes_read, 3000);
        assert_eq!(stats.decode_ns, 120);
        assert_eq!(stats.checksum_verifies, 2);
        assert_eq!(stats.decode_errors, 1);
    }
}
