//! `tracegen` — generate workload traces to files.
//!
//! Writes the deterministic memory-reference stream of one suite app (or
//! a mixed session) in the binary or text format of
//! [`moca_trace::io`], so traces can be archived, diffed, or fed to other
//! tools.
//!
//! ```text
//! tracegen <app|mixed> <refs> <out-file> [--text] [--seed N]
//! ```

use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use moca_trace::io::{write_binary, write_text};
use moca_trace::{AppProfile, MemoryAccess, PhasedWorkload, TraceGenerator};

fn usage() -> ExitCode {
    eprintln!("usage: tracegen <app|mixed> <refs> <out-file> [--text] [--seed N]");
    eprintln!("apps: {}", AppProfile::suite().iter().map(|p| p.name).collect::<Vec<_>>().join(", "));
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--seed" {
            skip_next = true; // the seed value is consumed below
        } else if a.starts_with("--") {
            if a != "--text" {
                eprintln!("unknown flag: {a}");
                return usage();
            }
        } else {
            positional.push(a);
        }
    }
    if positional.len() != 3 {
        return usage();
    }
    let text = args.iter().any(|a| a == "--text");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    let name = positional[0];
    let Ok(refs) = positional[1].parse::<usize>() else {
        return usage();
    };
    let path = positional[2];

    let trace: Box<dyn Iterator<Item = MemoryAccess>> = if name == "mixed" {
        let per_app = (refs / 10).max(1) as u64;
        Box::new(PhasedWorkload::mixed_session(per_app, seed).cycle().take(refs))
    } else {
        let Some(profile) = AppProfile::by_name(name) else {
            eprintln!("unknown app '{name}'");
            return usage();
        };
        Box::new(TraceGenerator::new(&profile, seed).take(refs))
    };

    let file = match File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut writer = BufWriter::new(file);
    let result = if text {
        write_text(&mut writer, trace)
    } else {
        write_binary(&mut writer, trace)
    };
    // Flush explicitly: BufWriter's Drop swallows flush errors, and a
    // full disk at the final flush must still fail the run.
    let result = result.and_then(|()| std::io::Write::flush(&mut writer));
    match result {
        Ok(()) => {
            eprintln!("wrote {refs} references of '{name}' (seed {seed}) to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("write failed: {e}");
            ExitCode::FAILURE
        }
    }
}
