//! `tracegen` — generate workload traces to files.
//!
//! Writes the deterministic memory-reference stream of one suite app (or
//! a mixed session) in the binary or text format of
//! [`moca_trace::io`], so traces can be archived, diffed, or fed to other
//! tools — or, with `--emit`, compiles it into the chunked, checksummed
//! replay container of [`moca_trace::binfmt`] that `repro --trace` and
//! the sweep engine replay at near-arena speed.
//!
//! ```text
//! tracegen <app|mixed> <refs> <out-file> [--text | --emit] [--seed N]
//! ```

use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use moca_trace::binfmt;
use moca_trace::io::{write_binary, write_text};
use moca_trace::{AppProfile, MemoryAccess, PhasedWorkload, TraceGenerator};

fn usage() -> ExitCode {
    eprintln!("usage: tracegen <app|mixed> <refs> <out-file> [--text | --emit] [--seed N]");
    eprintln!("  --text  line-oriented text format instead of the binary stream");
    eprintln!("  --emit  chunked replay container (apps only; refs round up to full chunks)");
    eprintln!("apps: {}", AppProfile::suite().iter().map(|p| p.name).collect::<Vec<_>>().join(", "));
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--seed" {
            skip_next = true; // the seed value is consumed below
        } else if a.starts_with("--") {
            if a != "--text" && a != "--emit" {
                eprintln!("unknown flag: {a}");
                return usage();
            }
        } else {
            positional.push(a);
        }
    }
    if positional.len() != 3 {
        return usage();
    }
    let text = args.iter().any(|a| a == "--text");
    let emit = args.iter().any(|a| a == "--emit");
    if text && emit {
        eprintln!("--text and --emit are mutually exclusive");
        return usage();
    }
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    let name = positional[0];
    let Ok(refs) = positional[1].parse::<usize>() else {
        return usage();
    };
    let path = positional[2];

    if emit {
        // The replay container records one (profile fingerprint, seed)
        // identity in its header; a mixed session has no single
        // generating profile to fingerprint, so it cannot be compiled.
        if name == "mixed" {
            eprintln!("--emit needs a named app: a mixed session has no single profile fingerprint");
            return usage();
        }
        let Some(profile) = AppProfile::by_name(name) else {
            eprintln!("unknown app '{name}'");
            return usage();
        };
        let file = match File::create(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // compile() flushes through TraceWriter::finish, so BufWriter's
        // error-swallowing Drop never sees unflushed bytes.
        return match binfmt::compile(BufWriter::new(file), &profile, seed, refs) {
            Ok(summary) => {
                eprintln!(
                    "compiled {} chunk(s), {} references of '{name}' (seed {seed}) to {path} \
                     ({} payload bytes)",
                    summary.chunks, summary.refs, summary.payload_bytes
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("compile failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let trace: Box<dyn Iterator<Item = MemoryAccess>> = if name == "mixed" {
        let per_app = (refs / 10).max(1) as u64;
        Box::new(PhasedWorkload::mixed_session(per_app, seed).cycle().take(refs))
    } else {
        let Some(profile) = AppProfile::by_name(name) else {
            eprintln!("unknown app '{name}'");
            return usage();
        };
        Box::new(TraceGenerator::new(&profile, seed).take(refs))
    };

    let file = match File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut writer = BufWriter::new(file);
    let result = if text {
        write_text(&mut writer, trace)
    } else {
        write_binary(&mut writer, trace)
    };
    // Flush explicitly: BufWriter's Drop swallows flush errors, and a
    // full disk at the final flush must still fail the run.
    let result = result.and_then(|()| std::io::Write::flush(&mut writer));
    match result {
        Ok(()) => {
            eprintln!("wrote {refs} references of '{name}' (seed {seed}) to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("write failed: {e}");
            ExitCode::FAILURE
        }
    }
}
