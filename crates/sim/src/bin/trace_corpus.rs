//! `trace_corpus` — manage compiled trace corpora.
//!
//! A corpus is a directory of `.mtrc` replay containers (see
//! [`moca_trace::binfmt`] and `DESIGN.md` § On-disk trace format), one
//! per `(app, seed)` identity, that `repro --trace DIR` and the sweep
//! engine replay instead of regenerating traces in-process.
//!
//! ```text
//! trace_corpus record <dir> [--apps a,b,... | --all] [--refs N] [--seed N]
//! trace_corpus validate <file|dir>
//! trace_corpus stat <file> [--line-bytes N]
//! ```
//!
//! * `record` compiles the named apps (default: the four sweep apps of
//!   the search experiments) at `--refs` references (default: 300000,
//!   the quick-scale sweep length) into `<dir>/<app>-<seed:016x>.mtrc`.
//! * `validate` re-reads every chunk of a file (or every file of a
//!   directory) and verifies its checksum; any corruption is reported
//!   with the failing chunk index and the exit code is non-zero.
//! * `stat` decodes a file and prints the same trace-level summary
//!   [`moca_trace::TraceStats`] computes for live generators: per-mode
//!   access mix, footprint, median reuse interval, and mode switches.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use moca_trace::binfmt::{self, TraceReader};
use moca_trace::{AccessKind, AppProfile, Mode, TraceStats};

/// The sweep apps of the search experiments (`F3`/static sweep): the
/// corpus `repro --quick F3 --trace DIR` replays from.
const DEFAULT_APPS: [&str; 4] = ["browser", "game", "video", "music"];

/// Default `record` trace length: the quick-scale sweep length.
const DEFAULT_REFS: usize = 300_000;

const USAGE: &str = "usage: trace_corpus <record|validate|stat> ...
  record <dir> [--apps a,b,...|--all] [--refs N] [--seed N]
                        compile app traces into <dir>/<app>-<seed>.mtrc
                        (default apps: browser,game,video,music;
                         default refs: 300000; default seed: 0x5eed2015)
  validate <file|dir>   re-read every chunk and verify its checksum
  stat <file> [--line-bytes N]
                        print the trace-level summary of a compiled file";

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_corpus: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Positionals and `--flag value` pairs split out of an argument list.
type ParsedFlags<'a> = (Vec<&'a str>, Vec<(&'static str, String)>);

/// Splits `args` into positionals and `--flag value` / `--flag=value`
/// pairs, rejecting unknown flags.
fn parse_flags<'a>(
    args: &'a [String],
    known: &[&'static str],
) -> Result<ParsedFlags<'a>, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if let Some(rest) = arg.strip_prefix("--") {
            let (name, inline) = match rest.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (rest, None),
            };
            let Some(&known_name) = known.iter().find(|k| **k == name) else {
                return Err(format!("unknown flag: --{name}"));
            };
            // `--all` is the only value-less flag in this tool.
            let value = if known_name == "all" {
                if inline.is_some() {
                    return Err("--all takes no value".into());
                }
                String::new()
            } else {
                match inline {
                    Some(v) => v,
                    None => {
                        i += 1;
                        args.get(i)
                            .cloned()
                            .ok_or_else(|| format!("--{name} requires a value"))?
                    }
                }
            };
            flags.push((known_name, value));
        } else {
            positional.push(arg);
        }
        i += 1;
    }
    Ok((positional, flags))
}

fn record(args: &[String]) -> ExitCode {
    let (positional, flags) = match parse_flags(args, &["apps", "all", "refs", "seed"]) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let [dir] = positional[..] else {
        return fail("record takes exactly one directory argument");
    };
    let mut apps: Vec<String> = DEFAULT_APPS.iter().map(|s| s.to_string()).collect();
    let mut refs = DEFAULT_REFS;
    let mut seed = moca_sim::EXPERIMENT_SEED;
    for (flag, value) in flags {
        match flag {
            "apps" => apps = value.split(',').map(|s| s.trim().to_string()).collect(),
            "all" => apps = AppProfile::suite().iter().map(|p| p.name.to_string()).collect(),
            "refs" => match value.parse() {
                Ok(n) if n > 0 => refs = n,
                _ => return fail(&format!("invalid --refs value {value:?}")),
            },
            "seed" => match parse_seed(&value) {
                Some(s) => seed = s,
                None => return fail(&format!("invalid --seed value {value:?}")),
            },
            _ => unreachable!("parse_flags only returns known flags"),
        }
    }
    let profiles: Vec<AppProfile> = {
        let mut v = Vec::with_capacity(apps.len());
        for name in &apps {
            match AppProfile::by_name(name) {
                Some(p) => v.push(p),
                None => return fail(&format!("unknown app '{name}'")),
            }
        }
        v
    };
    let dir = Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("trace_corpus: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for profile in &profiles {
        let path = dir.join(format!("{}-{seed:016x}.mtrc", profile.name));
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("trace_corpus: cannot create {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match binfmt::compile(std::io::BufWriter::new(file), profile, seed, refs) {
            Ok(summary) => println!(
                "recorded {}: {} chunk(s), {} refs, {} payload bytes",
                path.display(),
                summary.chunks,
                summary.refs,
                summary.payload_bytes
            ),
            Err(e) => {
                eprintln!("trace_corpus: compile of {} failed: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Accepts decimal or `0x`-prefixed hex seeds.
fn parse_seed(value: &str) -> Option<u64> {
    match value.strip_prefix("0x").or_else(|| value.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => value.parse().ok(),
    }
}

fn validate(args: &[String]) -> ExitCode {
    let (positional, _) = match parse_flags(args, &[]) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let [target] = positional[..] else {
        return fail("validate takes exactly one file or directory argument");
    };
    let target = Path::new(target);
    let mut files: Vec<PathBuf> = Vec::new();
    if target.is_dir() {
        let entries = match std::fs::read_dir(target) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("trace_corpus: cannot read {}: {e}", target.display());
                return ExitCode::FAILURE;
            }
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_file() {
                files.push(p);
            }
        }
        files.sort();
        if files.is_empty() {
            eprintln!("trace_corpus: {} contains no files", target.display());
            return ExitCode::FAILURE;
        }
    } else {
        files.push(target.to_path_buf());
    }
    let mut failures = 0usize;
    for file in &files {
        match TraceReader::open(file).and_then(|mut r| r.validate()) {
            Ok(summary) => println!(
                "OK   {}: {} chunk(s), {} refs, {} payload bytes",
                file.display(),
                summary.chunks,
                summary.refs,
                summary.payload_bytes
            ),
            Err(e) => {
                println!("FAIL {}: {e}", file.display());
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("trace_corpus: {failures} of {} file(s) failed validation", files.len());
        ExitCode::FAILURE
    }
}

fn stat(args: &[String]) -> ExitCode {
    let (positional, flags) = match parse_flags(args, &["line-bytes"]) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let [file] = positional[..] else {
        return fail("stat takes exactly one file argument");
    };
    let mut line_bytes = 64u64;
    for (flag, value) in flags {
        match flag {
            "line-bytes" => match value.parse() {
                Ok(n) if u64::is_power_of_two(n) => line_bytes = n,
                _ => return fail(&format!("invalid --line-bytes value {value:?} (need 2^k)")),
            },
            _ => unreachable!("parse_flags only returns known flags"),
        }
    }
    let mut reader = match TraceReader::open(Path::new(file)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace_corpus: cannot open {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let header = reader.header().clone();
    // The decoded file stream feeds the same collector live generators
    // do; `finish` surfaces any mid-stream decode error afterwards.
    let mut it = reader.accesses();
    let stats = TraceStats::collect(&mut it, line_bytes);
    if let Err(e) = it.finish() {
        eprintln!("trace_corpus: decode of {file} failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("{file}:");
    println!(
        "  header: fingerprint {:016x}, seed {:016x}, {} refs in {} chunk(s) of {}",
        header.fingerprint,
        header.seed,
        header.total_refs,
        header.chunk_count(),
        header.chunk_refs
    );
    for mode in [Mode::User, Mode::Kernel] {
        let m = stats.mode(mode);
        let label = match mode {
            Mode::User => "user  ",
            Mode::Kernel => "kernel",
        };
        println!(
            "  {label}: {} accesses (fetch {}, load {}, store {}), \
             footprint {} KiB, median reuse {}",
            m.accesses,
            m.by_kind[AccessKind::InstrFetch.index()],
            m.by_kind[AccessKind::Load.index()],
            m.by_kind[AccessKind::Store.index()],
            m.footprint_bytes(line_bytes) / 1024,
            match m.median_reuse_interval() {
                Some(v) => v.to_string(),
                None => "n/a".to_string(),
            }
        );
    }
    println!(
        "  mode switches: {}, kernel share: {:.1}%",
        stats.mode_switches,
        stats.kernel_share() * 100.0
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("validate") => validate(&args[1..]),
        Some("stat") => stat(&args[1..]),
        Some(other) => fail(&format!("unknown subcommand: {other}")),
        None => fail("missing subcommand"),
    }
}
