//! `repro` — regenerates every figure and table of the reproduced
//! evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--jobs N] [F1|F2|F3|F4|F5|T2|F6|F7|F8|A1..A7 ...]
//! ```
//!
//! With no experiment ids, runs the whole suite (this is how
//! `EXPERIMENTS.md` is produced). `--quick` uses short traces (CI scale);
//! the default is the full scale used in `EXPERIMENTS.md`. `--jobs N`
//! shards the independent simulations of each experiment over `N`
//! threads (default: all available cores); the output is bit-identical
//! for every `N`.

use std::process::ExitCode;
use std::time::Instant;

use moca_sim::experiments::{self, ExperimentResult};
use moca_sim::parallel::Jobs;
use moca_sim::workloads::Scale;
use moca_sim::SystemConfig;

fn print_header(scale: Scale, jobs: Jobs) {
    println!("# moca reproduction run");
    println!();
    println!(
        "scale: {:?} ({} refs/app; sweeps {} refs/app), seed {:#x}, jobs {}",
        scale,
        scale.refs(),
        scale.sweep_refs(),
        moca_sim::EXPERIMENT_SEED,
        jobs
    );
    println!();
    println!("## T1 — system configuration");
    println!();
    println!("{}", SystemConfig::default().describe());
    println!(
        "L2 baseline: 2 MiB, 16-way, 64 B lines, SRAM, LRU, write-back\n\
         static design: 6 user + 4 kernel ways, STT-RAM 1s (user) / 10ms (kernel)\n\
         dynamic design: 16 ways max, STT-RAM 100ms/10ms, 500k-cycle epochs"
    );
    println!();
}

/// Parses `--jobs N` / `--jobs=N` out of `args`. Returns an error string
/// for a missing or invalid value.
fn parse_jobs(args: &[String]) -> Result<Jobs, String> {
    let mut jobs = Jobs::available();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--jobs" {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--jobs requires a value".to_string())?;
            jobs = v
                .parse()
                .map_err(|e| format!("invalid --jobs value {v:?}: {e}"))?;
            i += 2;
            continue;
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = v
                .parse()
                .map_err(|e| format!("invalid --jobs value {v:?}: {e}"))?;
        }
        i += 1;
    }
    Ok(jobs)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = match parse_jobs(&args) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut skip_next = false;
    let ids: Vec<&String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--jobs" {
                skip_next = true;
            }
            !a.starts_with("--")
        })
        .collect();
    let scale = if quick { Scale::Quick } else { Scale::Full };

    print_header(scale, jobs);

    let start = Instant::now();
    let results: Vec<ExperimentResult> = if ids.is_empty() {
        experiments::all(scale, jobs)
    } else {
        let mut out = Vec::new();
        for id in &ids {
            match experiments::by_id(id, scale, jobs) {
                Some(r) => out.push(r),
                None => {
                    eprintln!("unknown experiment id: {id}");
                    return ExitCode::FAILURE;
                }
            }
        }
        out
    };

    let mut failed = 0usize;
    for r in &results {
        print!("{}", r.render());
        if !r.passed() {
            failed += 1;
        }
    }

    println!("---");
    let arena = moca_sim::ChunkArena::global().stats();
    println!(
        "{} experiments, {} failed claim set(s), wall time {:.1}s",
        results.len(),
        failed,
        start.elapsed().as_secs_f64()
    );
    println!(
        "trace arena: {} chunk(s) cached, {} hit(s) / {} miss(es) ({:.0}% hit rate), {} rejected",
        arena.cached_chunks,
        arena.hits,
        arena.misses,
        arena.hit_rate() * 100.0,
        arena.rejected
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
