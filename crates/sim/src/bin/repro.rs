//! `repro` — regenerates every figure and table of the reproduced
//! evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [F1|F2|F3|F4|F5|T2|F6|F7|F8|A1..A7 ...]
//! ```
//!
//! With no experiment ids, runs the whole suite (this is how
//! `EXPERIMENTS.md` is produced). `--quick` uses short traces (CI scale);
//! the default is the full scale used in `EXPERIMENTS.md`.

use std::process::ExitCode;
use std::time::Instant;

use moca_sim::experiments::{self, ExperimentResult};
use moca_sim::workloads::Scale;
use moca_sim::SystemConfig;

fn print_header(scale: Scale) {
    println!("# moca reproduction run");
    println!();
    println!(
        "scale: {:?} ({} refs/app; sweeps {} refs/app), seed {:#x}",
        scale,
        scale.refs(),
        scale.sweep_refs(),
        moca_sim::EXPERIMENT_SEED
    );
    println!();
    println!("## T1 — system configuration");
    println!();
    println!("{}", SystemConfig::default().describe());
    println!(
        "L2 baseline: 2 MiB, 16-way, 64 B lines, SRAM, LRU, write-back\n\
         static design: 6 user + 4 kernel ways, STT-RAM 1s (user) / 10ms (kernel)\n\
         dynamic design: 16 ways max, STT-RAM 100ms/10ms, 500k-cycle epochs"
    );
    println!();
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let scale = if quick { Scale::Quick } else { Scale::Full };

    print_header(scale);

    let start = Instant::now();
    let results: Vec<ExperimentResult> = if ids.is_empty() {
        experiments::all(scale)
    } else {
        let mut out = Vec::new();
        for id in &ids {
            match experiments::by_id(id, scale) {
                Some(r) => out.push(r),
                None => {
                    eprintln!("unknown experiment id: {id}");
                    return ExitCode::FAILURE;
                }
            }
        }
        out
    };

    let mut failed = 0usize;
    for r in &results {
        print!("{}", r.render());
        if !r.passed() {
            failed += 1;
        }
    }

    println!("---");
    println!(
        "{} experiments, {} failed claim set(s), wall time {:.1}s",
        results.len(),
        failed,
        start.elapsed().as_secs_f64()
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
