//! `repro` — regenerates every figure and table of the reproduced
//! evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--jobs N] [--checkpoint DIR | --resume DIR]
//!       [--trace PATH] [--telemetry PATH] [--progress]
//!       [F1|F2|F3|F4|F5|T2|F6|F7|F8|A1..A7 ...]
//! ```
//!
//! With no experiment ids, runs the whole suite (this is how
//! `EXPERIMENTS.md` is produced). `--quick` uses short traces (CI scale);
//! the default is the full scale used in `EXPERIMENTS.md`. `--jobs N`
//! shards the independent simulations of each experiment over `N`
//! threads (default: all available cores); the output is bit-identical
//! for every `N`.
//!
//! # Fault tolerance
//!
//! * Unknown `--flags` are rejected with a usage message (exit 2), not
//!   silently dropped.
//! * Each experiment runs panic-isolated: one failing experiment is
//!   reported and the rest still run (exit is non-zero).
//! * `--checkpoint DIR` journals every finished experiment to
//!   `DIR/journal.csv` as it completes; `--resume DIR` replays finished
//!   experiments byte-identically from the journal and only runs what is
//!   missing — a killed multi-minute run restarts in seconds.
//! * All report output is written through `io::Result`-checked writers:
//!   a full disk or closed pipe produces a real error message and a
//!   non-zero exit instead of a panic.
//!
//! # Trace replay
//!
//! * `--trace PATH` registers a compiled trace corpus (one `.mtrc` file
//!   or a directory of them, see `tracegen --emit` / `trace_corpus`)
//!   with the global [`moca_sim::replay::TraceRegistry`]. Sweeps whose
//!   (app, seed) identity matches a registered file decode their
//!   reference stream from disk instead of regenerating it; the report
//!   stays byte-identical either way.
//!
//! # Observability
//!
//! * `--telemetry PATH` installs the global [`telemetry`] recorder and
//!   drains the buffered JSONL event stream to `PATH` when the run
//!   finishes (see `DESIGN.md` § Telemetry & profiling for the schema;
//!   `telemetry_report` in `moca-bench` aggregates it).
//! * `--progress` prints one heartbeat line per experiment to stderr
//!   (`[progress] <id> (<i>/<N>) elapsed <s>`), so a multi-minute run
//!   is never silent. Heartbeats go to stderr on purpose: stdout stays
//!   byte-identical with and without the flag.

use std::io::{self, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use moca_sim::checkpoint::{experiment_key, Journal};
use moca_sim::experiments::{self, matrix, ExperimentResult};
use moca_sim::parallel::{catch_panic, Jobs};
use moca_sim::telemetry::{self, Event};
use moca_sim::workloads::Scale;
use moca_sim::{ChunkArena, FileTraceSource, SystemConfig, TraceRegistry};

/// Suite order of the experiment ids (the order of `experiments::all`).
const SUITE_IDS: [&str; 16] = [
    "F1", "F2", "F3", "F4", "F5", "T2", "F6", "F7", "F8", "A1", "A2", "A3", "A4", "A5", "A6",
    "A7",
];

const USAGE: &str = "usage: repro [--quick] [--jobs N] [--checkpoint DIR | --resume DIR]
             [--trace PATH] [--telemetry PATH] [--progress] [IDS...]
  --quick           CI scale (short traces) instead of full scale
  --jobs N          worker threads per experiment (default: all cores)
  --checkpoint DIR  journal finished experiments to DIR (created if needed)
  --resume DIR      replay finished experiments from DIR, run the rest
  --trace PATH      replay from a compiled trace corpus (.mtrc file or dir)
  --telemetry PATH  write the JSONL telemetry event stream to PATH
  --progress        print per-experiment heartbeat lines to stderr
  IDS               experiment ids (F1..F8, T2, A1..A7); default: all";

/// Parsed command line.
struct Options {
    scale: Scale,
    jobs: Jobs,
    /// Journal directory; `resume` controls whether it must pre-exist.
    checkpoint: Option<PathBuf>,
    resume: bool,
    /// Compiled trace corpus (`.mtrc` file or directory of them).
    trace: Option<PathBuf>,
    /// JSONL telemetry sink; `None` leaves the recorder uninstalled.
    telemetry: Option<PathBuf>,
    progress: bool,
    ids: Vec<String>,
}

/// Parses the command line, rejecting unknown flags and malformed
/// values with a message for stderr.
fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        scale: Scale::Full,
        jobs: Jobs::available(),
        checkpoint: None,
        resume: false,
        trace: None,
        telemetry: None,
        progress: false,
        ids: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        // `--flag value` and `--flag=value` are both accepted.
        let (flag, mut inline_value) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f, Some(v.to_string())),
            _ => (arg.as_str(), None),
        };
        let mut take_value = |name: &str| -> Result<String, String> {
            if let Some(v) = inline_value.take() {
                return Ok(v);
            }
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag {
            "--quick" => opts.scale = Scale::Quick,
            "--jobs" => {
                let v = take_value("--jobs")?;
                opts.jobs = v
                    .parse()
                    .map_err(|e| format!("invalid --jobs value {v:?}: {e}"))?;
            }
            "--checkpoint" => {
                opts.checkpoint = Some(PathBuf::from(take_value("--checkpoint")?));
                opts.resume = false;
            }
            "--resume" => {
                opts.checkpoint = Some(PathBuf::from(take_value("--resume")?));
                opts.resume = true;
            }
            "--trace" => {
                opts.trace = Some(PathBuf::from(take_value("--trace")?));
            }
            "--telemetry" => {
                opts.telemetry = Some(PathBuf::from(take_value("--telemetry")?));
            }
            "--progress" => opts.progress = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag: {other}\n{USAGE}"));
            }
            id => {
                let id = id.to_ascii_uppercase();
                if !SUITE_IDS.contains(&id.as_str()) {
                    return Err(format!("unknown experiment id: {id}\n{USAGE}"));
                }
                opts.ids.push(id);
            }
        }
        if matches!(flag, "--quick" | "--progress") && inline_value.is_some() {
            return Err(format!("{flag} takes no value\n{USAGE}"));
        }
        i += 1;
    }
    Ok(opts)
}

fn print_header<W: Write>(out: &mut W, scale: Scale, jobs: Jobs) -> io::Result<()> {
    writeln!(out, "# moca reproduction run")?;
    writeln!(out)?;
    writeln!(
        out,
        "scale: {:?} ({} refs/app; sweeps {} refs/app), seed {:#x}, jobs {}",
        scale,
        scale.refs(),
        scale.sweep_refs(),
        moca_sim::EXPERIMENT_SEED,
        jobs
    )?;
    writeln!(out)?;
    writeln!(out, "## T1 — system configuration")?;
    writeln!(out)?;
    writeln!(out, "{}", SystemConfig::default().describe())?;
    writeln!(
        out,
        "L2 baseline: 2 MiB, 16-way, 64 B lines, SRAM, LRU, write-back\n\
         static design: 6 user + 4 kernel ways, STT-RAM 1s (user) / 10ms (kernel)\n\
         dynamic design: 16 ways max, STT-RAM 100ms/10ms, 500k-cycle epochs"
    )?;
    writeln!(out)
}

/// Outcome of one experiment slot in the run.
enum Block {
    /// Run (or replayed) successfully; rendered block + claim pass flag.
    Done { rendered: String, passed: bool },
    /// The experiment panicked; it is reported but does not abort the run.
    Aborted { id: String, message: String },
}

/// Runs (or replays) one experiment, sharing the T2/F6 design matrix.
fn run_experiment(
    id: &str,
    scale: Scale,
    jobs: Jobs,
    matrix_cache: &mut Option<matrix::DesignMatrix>,
) -> Result<ExperimentResult, String> {
    catch_panic(|| match id {
        // T2 and F6 both consume the design matrix; compute it once.
        "T2" | "F6" => {
            let m = matrix_cache.get_or_insert_with(|| matrix::run_matrix(scale, jobs));
            if id == "T2" {
                experiments::energy_table::from_matrix(m)
            } else {
                experiments::performance::from_matrix(m)
            }
        }
        _ => experiments::by_id(id, scale, jobs).expect("id validated at parse time"),
    })
}

/// Registers a compiled trace corpus (one `.mtrc` file or a directory of
/// them, sorted by file name for deterministic registration order) with
/// the global [`TraceRegistry`]. Returns the number of files registered.
fn load_corpus(path: &std::path::Path) -> Result<usize, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    if path.is_dir() {
        let entries = std::fs::read_dir(path)
            .map_err(|e| format!("cannot read trace corpus dir {}: {e}", path.display()))?;
        for entry in entries {
            let entry =
                entry.map_err(|e| format!("cannot read trace corpus dir {}: {e}", path.display()))?;
            let p = entry.path();
            if p.is_file() {
                files.push(p);
            }
        }
        files.sort();
        if files.is_empty() {
            return Err(format!("trace corpus dir {} contains no files", path.display()));
        }
    } else {
        files.push(path.to_path_buf());
    }
    let registry = TraceRegistry::global();
    for file in &files {
        let source = FileTraceSource::open(file)
            .map_err(|e| format!("cannot load trace {}: {e}", file.display()))?;
        registry.register(source);
    }
    Ok(files.len())
}

fn run(opts: &Options) -> io::Result<ExitCode> {
    let stdout = io::stdout();
    let mut out = stdout.lock();

    let mut journal = match &opts.checkpoint {
        Some(dir) if opts.resume => Some(Journal::resume(dir)?),
        Some(dir) => Some(Journal::open(dir)?),
        None => None,
    };

    let corpus_files = match &opts.trace {
        Some(path) => match load_corpus(path) {
            Ok(n) => Some(n),
            Err(e) => {
                eprintln!("repro: {e}");
                return Ok(ExitCode::FAILURE);
            }
        },
        None => None,
    };

    if opts.telemetry.is_some() {
        telemetry::install();
    }

    print_header(&mut out, opts.scale, opts.jobs)?;

    let ids: Vec<&str> = if opts.ids.is_empty() {
        SUITE_IDS.to_vec()
    } else {
        opts.ids.iter().map(String::as_str).collect()
    };

    let start = Instant::now();
    let scale_tag = format!("{:?}", opts.scale);
    let mut matrix_cache: Option<matrix::DesignMatrix> = None;
    let mut blocks_failed = 0usize;
    let mut aborted = 0usize;
    let mut replayed = 0usize;
    let mut recorded = 0usize;

    for (idx, id) in ids.iter().enumerate() {
        if opts.progress {
            eprintln!(
                "[progress] {id} ({}/{}) elapsed {:.1}s",
                idx + 1,
                ids.len(),
                start.elapsed().as_secs_f64()
            );
        }
        telemetry::set_scope(id);
        let key = experiment_key(id, &scale_tag, moca_sim::EXPERIMENT_SEED);
        let block = match journal.as_ref().and_then(|j| j.get(&key)) {
            Some(rendered) => {
                replayed += 1;
                if let Some(j) = journal.as_ref() {
                    j.note_replay(&key);
                }
                Block::Done {
                    passed: !rendered.contains("[FAIL]"),
                    rendered: rendered.to_string(),
                }
            }
            None => match run_experiment(id, opts.scale, opts.jobs, &mut matrix_cache) {
                Ok(result) => {
                    let rendered = result.render();
                    if let Some(j) = journal.as_mut() {
                        j.record(&key, &rendered)?;
                        recorded += 1;
                    }
                    Block::Done {
                        passed: result.passed(),
                        rendered,
                    }
                }
                Err(message) => Block::Aborted {
                    id: (*id).to_string(),
                    message,
                },
            },
        };
        match block {
            Block::Done { rendered, passed } => {
                write!(out, "{rendered}")?;
                if !passed {
                    blocks_failed += 1;
                }
            }
            Block::Aborted { id, message } => {
                writeln!(out, "## {id} — ABORTED\n")?;
                writeln!(out, "experiment panicked: {message}")?;
                writeln!(out, "(remaining experiments continue; exit will be non-zero)\n")?;
                aborted += 1;
            }
        }
        // Keep completed blocks visible even if the process dies later.
        out.flush()?;
    }

    writeln!(out, "---")?;
    let arena = ChunkArena::global();
    let stats = arena.stats();
    writeln!(
        out,
        "{} experiments, {} failed claim set(s), {} aborted, wall time {:.1}s",
        ids.len(),
        blocks_failed,
        aborted,
        start.elapsed().as_secs_f64()
    )?;
    writeln!(
        out,
        "trace arena: {} chunk(s) cached, {} hit(s) / {} miss(es) ({:.0}% hit rate), {} rejected",
        stats.cached_chunks,
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.rejected
    )?;
    if let Some(warning) = stats.saturation_warning(arena.capacity_chunks()) {
        writeln!(out, "{warning}")?;
    }
    if let (Some(j), Some(dir)) = (&journal, &opts.checkpoint) {
        writeln!(
            out,
            "checkpoint: {replayed} replayed, {recorded} recorded, journal {} ({} entries)",
            dir.join(Journal::FILE_NAME).display(),
            j.len()
        )?;
    }
    if let Some(files) = corpus_files {
        let io = TraceRegistry::global().stats();
        writeln!(
            out,
            "trace corpus: {} file(s), {} chunk(s) decoded ({} KiB read), \
             {} checksum(s) verified, {} decode error(s)",
            files,
            io.chunks_decoded,
            io.bytes_read / 1024,
            io.checksum_verifies,
            io.decode_errors
        )?;
    }
    out.flush()?;

    if let Some(path) = &opts.telemetry {
        // End-of-run arena snapshot, then drain the buffered stream.
        telemetry::set_scope("suite");
        telemetry::record(Event::Arena {
            cached_chunks: stats.cached_chunks as u64,
            capacity_chunks: arena.capacity_chunks() as u64,
            hits: stats.hits,
            misses: stats.misses,
            rejected: stats.rejected,
        });
        if corpus_files.is_some() {
            telemetry::record(TraceRegistry::global().stats().to_event());
        }
        let rec = telemetry::global().expect("recorder installed above");
        let file = std::fs::File::create(path)?;
        let events = rec.write_jsonl(io::BufWriter::new(file))?;
        eprintln!("telemetry: {} event(s) written to {}", events, path.display());
    }
    Ok(if blocks_failed == 0 && aborted == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("repro: i/o error: {e}");
            ExitCode::FAILURE
        }
    }
}
