//! A fixed-seed, in-tree FxHash-style hasher.
//!
//! `std`'s default `HashMap` hasher (SipHash with per-process random
//! keys) is both slower than necessary for trusted integer keys and
//! randomly seeded, so iteration order varies across runs. Trace
//! analysis hashes millions of cache-line addresses it generated itself
//! — there is no untrusted input to defend against — so we use the
//! multiply-rotate scheme popularized by the `rustc` FxHash: one
//! rotate, one xor, and one multiply per 8 bytes, with no seed state at
//! all. Everything derived from these maps is identical from run to run.
//!
//! This is a hash for *dispersion*, not for security: do not use it on
//! attacker-controlled keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from the Firefox/rustc FxHash (64-bit golden-ratio
/// constant truncated to keep the low bits well mixed).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A streaming FxHash state.
///
/// One `rotate_left(5) ^ word` then `* SEED` per 8-byte word; shorter
/// tails are zero-extended into a single word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Builds [`FxHasher`]s; stateless, so every map hashes identically.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fixed-seed [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fixed-seed [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_one(0xDEAD_BEEFu64), hash_one(0xDEAD_BEEFu64));
        assert_eq!(hash_one("kernel"), hash_one("kernel"));
    }

    #[test]
    fn nearby_keys_disperse() {
        // Cache-line addresses differ only in low bits; the high bits of
        // the hash (which HashMap uses for bucket selection after
        // truncation) must still vary.
        let hashes: Vec<u64> = (0..64u64).map(|i| hash_one(i * 64)).collect();
        let mut unique = hashes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), hashes.len(), "collisions on line addresses");
    }

    #[test]
    fn byte_stream_matches_word_writes_for_aligned_input() {
        let mut a = FxHasher::default();
        a.write(&0x0123_4567_89AB_CDEFu64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0x0123_4567_89AB_CDEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_usable_with_default() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(1, 2);
        m.insert(65, 3);
        assert_eq!(m.get(&1), Some(&2));
        assert_eq!(m.get(&65), Some(&3));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }

    #[test]
    fn empty_input_hashes_to_zero_state() {
        assert_eq!(FxHasher::default().finish(), 0);
    }
}
