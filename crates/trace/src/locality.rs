//! Address-stream synthesis with controllable locality.
//!
//! Real application phases mix two access idioms:
//!
//! * **skewed reuse** — a hot subset of the working set is touched far more
//!   often than the cold bulk (modelled with a Zipf popularity law over a
//!   pseudo-random permutation of the region's lines, so hot lines spread
//!   across cache sets the way real allocations do), and
//! * **sequential bursts** — streaming runs through consecutive lines
//!   (array scans, instruction fall-through), modelled with geometric run
//!   lengths.
//!
//! A [`RegionStream`] blends the two according to its [`RegionSpec`].

use crate::rng::{Xoshiro256, Zipf};

/// A contiguous range of physical memory measured in cache lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: u64,
    lines: u64,
    line_bytes: u64,
}

impl Region {
    /// Creates a region of `lines` cache lines starting at byte `base`.
    ///
    /// # Panics
    ///
    /// Panics if `lines == 0`, if `line_bytes` is not a power of two, or if
    /// `base` is not line-aligned.
    pub fn new(base: u64, lines: u64, line_bytes: u64) -> Self {
        assert!(lines > 0, "region must contain at least one line");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert_eq!(base % line_bytes, 0, "region base must be line-aligned");
        Self {
            base,
            lines,
            line_bytes,
        }
    }

    /// First byte address of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size of the region in cache lines.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Cache-line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        self.lines * self.line_bytes
    }

    /// One-past-the-end byte address.
    pub fn end(&self) -> u64 {
        self.base + self.bytes()
    }

    /// Byte address of the line with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `line >= self.lines()`.
    pub fn line_addr(&self, line: u64) -> u64 {
        assert!(line < self.lines, "line {line} out of region");
        self.base + line * self.line_bytes
    }

    /// Returns `true` if `addr` falls inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Returns `true` if this region overlaps `other`.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.base < other.end() && other.base < self.end()
    }
}

/// Locality parameters for a [`RegionStream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionSpec {
    /// Number of cache lines in the region.
    pub lines: u64,
    /// Zipf skew of line popularity *within the hot core*. `0.0` is
    /// uniform; interactive-app heaps typically behave like `0.6..=1.3`.
    pub theta: f64,
    /// Probability that an access starts (or continues as part of) a
    /// sequential burst rather than a popularity-driven reuse.
    pub p_seq: f64,
    /// Mean length (in lines) of a sequential burst.
    pub seq_len_mean: f64,
    /// Size of the hot core in lines. Accesses outside the core land
    /// uniformly in the whole region (the cold, capacity-insensitive
    /// tail). Defaults to `lines` (pure Zipf).
    pub hot_lines: u64,
    /// Fraction of popularity-driven accesses served by the hot core.
    /// Defaults to `1.0`.
    pub hot_frac: f64,
    /// Probability of re-referencing one of the last few touched lines
    /// (short-term temporal locality; what makes L1 caches work).
    /// Defaults to `0.0`.
    pub p_recent: f64,
    /// Mean touches per line within a sequential burst (intra-line
    /// dwell; streaming code reads a 64 B line word by word).
    /// Defaults to `1.0`.
    pub seq_dwell: f64,
}

impl RegionSpec {
    /// Convenience constructor (pure Zipf popularity, no explicit core).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range (see field docs).
    pub fn new(lines: u64, theta: f64, p_seq: f64, seq_len_mean: f64) -> Self {
        let spec = Self {
            lines,
            theta,
            p_seq,
            seq_len_mean,
            hot_lines: lines,
            hot_frac: 1.0,
            p_recent: 0.0,
            seq_dwell: 1.0,
        };
        spec.validate();
        spec
    }

    /// Sets the short-term temporal locality knobs: `p_recent` is the
    /// probability of re-touching one of the last few lines, `seq_dwell`
    /// the mean touches per line during sequential bursts.
    ///
    /// # Panics
    ///
    /// Panics if `p_recent` is not a probability or `seq_dwell < 1.0`.
    pub fn with_temporal(mut self, p_recent: f64, seq_dwell: f64) -> Self {
        self.p_recent = p_recent;
        self.seq_dwell = seq_dwell;
        self.validate();
        self
    }

    /// Restricts the popularity mass to an explicit hot core: `hot_frac`
    /// of non-sequential accesses draw from the `hot_lines` most popular
    /// lines; the rest scatter uniformly over the region. This produces
    /// the working-set *knee* real workloads show in miss-rate-versus-
    /// capacity curves.
    ///
    /// # Panics
    ///
    /// Panics if `hot_lines` is zero or exceeds the region, or `hot_frac`
    /// is not a probability.
    pub fn with_hot(mut self, hot_lines: u64, hot_frac: f64) -> Self {
        self.hot_lines = hot_lines;
        self.hot_frac = hot_frac;
        self.validate();
        self
    }

    fn validate(&self) {
        assert!(self.lines > 0, "region spec needs at least one line");
        assert!(
            self.theta.is_finite() && self.theta >= 0.0,
            "theta must be finite and non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.p_seq),
            "p_seq must be a probability"
        );
        assert!(
            self.seq_len_mean >= 1.0,
            "sequential bursts are at least one line"
        );
        assert!(
            self.hot_lines > 0 && self.hot_lines <= self.lines,
            "hot core must be non-empty and within the region"
        );
        assert!(
            (0.0..=1.0).contains(&self.hot_frac),
            "hot_frac must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.p_recent),
            "p_recent must be a probability"
        );
        assert!(self.seq_dwell >= 1.0, "dwell is at least one touch");
    }
}

/// Maximum number of lines for which an explicit popularity permutation is
/// materialized. Above this the permutation is computed with a bijective
/// hash instead, keeping memory bounded for huge regions.
const PERM_MATERIALIZE_LIMIT: u64 = 1 << 20;

/// Maps Zipf ranks onto region line indices.
///
/// Hot ranks must not map to consecutive lines (that would collapse onto a
/// few cache sets); a permutation decorrelates popularity from address.
#[derive(Debug, Clone)]
enum RankMap {
    /// Explicit Fisher–Yates permutation (small regions).
    Table(Vec<u32>),
    /// Feistel-style bijective mix over `0..lines` (large regions).
    Hashed { lines: u64 },
}

impl RankMap {
    fn build(lines: u64, rng: &mut Xoshiro256) -> Self {
        if lines <= PERM_MATERIALIZE_LIMIT {
            let mut table: Vec<u32> = (0..lines as u32).collect();
            rng.shuffle(&mut table);
            RankMap::Table(table)
        } else {
            RankMap::Hashed { lines }
        }
    }

    fn map(&self, rank: u64) -> u64 {
        match self {
            RankMap::Table(t) => u64::from(t[rank as usize]),
            RankMap::Hashed { lines } => {
                // SplitMix-style mix, folded into range by re-hashing until
                // in-bounds would break bijectivity; instead use a simple
                // multiplicative permutation: (rank * odd) mod 2^k folded by
                // rejection onto [0, lines) via modulo. Modulo is not a
                // bijection when lines is not a power of two, but for huge
                // cold regions an occasional collision in the popularity
                // mapping is statistically irrelevant.
                let mixed = rank
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(31)
                    .wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
                mixed % lines
            }
        }
    }
}

/// A deterministic address stream over one region with the locality mix
/// described by a [`RegionSpec`].
///
/// # Examples
///
/// ```
/// use moca_trace::locality::{Region, RegionSpec, RegionStream};
/// use moca_trace::rng::Xoshiro256;
///
/// let region = Region::new(0x10_0000, 4096, 64);
/// let spec = RegionSpec::new(4096, 0.9, 0.2, 8.0);
/// let mut rng = Xoshiro256::seed_from_u64(1);
/// let mut stream = RegionStream::new(region, spec, &mut rng);
/// let addr = stream.next_addr(&mut rng);
/// assert!(region.contains(addr));
/// ```
#[derive(Debug, Clone)]
pub struct RegionStream {
    region: Region,
    spec: RegionSpec,
    zipf: Zipf,
    ranks: RankMap,
    /// Current line of an in-progress sequential burst.
    seq_line: u64,
    /// Remaining lines in the in-progress burst.
    seq_remaining: u64,
    /// Streaming cursor for cold-tail accesses.
    cold_cursor: u64,
    /// Ring of recently returned lines (MRU re-reference targets).
    recent: [u64; 4],
    /// Next slot of `recent` to overwrite.
    recent_next: usize,
}

impl RegionStream {
    /// Builds a stream. The permutation is drawn from `rng`, so streams
    /// built with the same seed are identical.
    ///
    /// # Panics
    ///
    /// Panics if `spec.lines` disagrees with `region.lines()` or the spec
    /// is invalid.
    pub fn new(region: Region, spec: RegionSpec, rng: &mut Xoshiro256) -> Self {
        spec.validate();
        assert_eq!(
            spec.lines,
            region.lines(),
            "spec and region disagree on line count"
        );
        // Zipf support spans the hot core, capped: popularity differences
        // beyond ~64Ki ranks are irrelevant and the CDF table would waste
        // memory.
        let support = spec.hot_lines.min(1 << 16) as usize;
        let mut perm_rng = rng.fork(0x5265_6769); // "Regi"
        Self {
            region,
            spec,
            zipf: Zipf::new(support, spec.theta),
            ranks: RankMap::build(region.lines(), &mut perm_rng),
            seq_line: 0,
            seq_remaining: 0,
            cold_cursor: 0,
            recent: [0; 4],
            recent_next: 0,
        }
    }

    /// The region this stream walks.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// Produces the next byte address (always line-aligned plus a small
    /// word offset, so consecutive samples may fall in the same line).
    pub fn next_addr(&mut self, rng: &mut Xoshiro256) -> u64 {
        let line = self.next_line(rng);
        // Touch a word within the line; 8-byte aligned.
        let words = self.region.line_bytes() / 8;
        let offset = if words > 1 { rng.below(words) * 8 } else { 0 };
        self.region.line_addr(line) + offset
    }

    /// Produces the next line index within the region.
    pub fn next_line(&mut self, rng: &mut Xoshiro256) -> u64 {
        if self.seq_remaining > 0 {
            // Intra-line dwell: linger on the current line so streaming
            // code enjoys L1 hits on the words of a fetched line.
            if self.spec.seq_dwell > 1.0 && !rng.chance(1.0 / self.spec.seq_dwell) {
                return self.seq_line;
            }
            self.seq_remaining -= 1;
            self.seq_line = (self.seq_line + 1) % self.region.lines();
            return self.seq_line;
        }
        // Short-term temporal locality: re-touch a recent line.
        if rng.chance(self.spec.p_recent) {
            let i = rng.below(self.recent.len() as u64) as usize;
            return self.recent[i];
        }
        let line = if rng.chance(self.spec.p_seq) && self.region.lines() > 1 {
            // Sequential bursts continue the cold stream (file reads,
            // frame buffers): they touch fresh lines and do not revisit
            // hot data, so they are insensitive to cache capacity.
            let start = self.next_cold_line(rng);
            let len = rng.geometric(1.0 / self.spec.seq_len_mean, self.region.lines());
            self.seq_line = start;
            self.seq_remaining = len.saturating_sub(1);
            start
        } else {
            self.popular_line(rng)
        };
        self.recent[self.recent_next] = line;
        self.recent_next = (self.recent_next + 1) % self.recent.len();
        line
    }

    /// Probability of the cold-tail cursor re-seeking to a random spot.
    const COLD_JUMP_P: f64 = 1.0 / 16.0;

    /// Advances the cold streaming cursor and returns its line.
    ///
    /// Cold-tail accesses *stream* through the region (file reads, buffer
    /// recycling): a cyclic cursor with occasional re-seeks. Streaming
    /// reuse distances equal the region size, so the tail is insensitive
    /// to any realistic cache capacity — the property that lets a shrunk
    /// partition match the big shared cache (claim C3).
    fn next_cold_line(&mut self, rng: &mut Xoshiro256) -> u64 {
        if rng.chance(Self::COLD_JUMP_P) {
            self.cold_cursor = rng.below(self.region.lines());
        } else {
            self.cold_cursor = (self.cold_cursor + 1) % self.region.lines();
        }
        self.cold_cursor
    }

    fn popular_line(&mut self, rng: &mut Xoshiro256) -> u64 {
        if !rng.chance(self.spec.hot_frac) {
            let line = self.next_cold_line(rng);
            return self.ranks.map(line);
        }
        let rank = self.zipf.sample(rng) as u64;
        // Ranks beyond the zipf support (huge hot cores) land uniformly in
        // the remainder of the core.
        let line = if rank as usize == self.zipf.len() - 1
            && self.spec.hot_lines > self.zipf.len() as u64
        {
            rng.range(self.zipf.len() as u64 - 1, self.spec.hot_lines)
        } else {
            rank
        };
        self.ranks.map(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn stream(lines: u64, theta: f64, p_seq: f64) -> (RegionStream, Xoshiro256) {
        let region = Region::new(0x4000_0000, lines, 64);
        let spec = RegionSpec::new(lines, theta, p_seq, 8.0);
        let mut rng = Xoshiro256::seed_from_u64(99);
        let s = RegionStream::new(region, spec, &mut rng);
        (s, rng)
    }

    #[test]
    fn region_geometry() {
        let r = Region::new(0x1000, 16, 64);
        assert_eq!(r.bytes(), 1024);
        assert_eq!(r.end(), 0x1400);
        assert!(r.contains(0x1000));
        assert!(r.contains(0x13ff));
        assert!(!r.contains(0x1400));
        assert_eq!(r.line_addr(1), 0x1040);
    }

    #[test]
    fn region_overlap() {
        let a = Region::new(0x1000, 16, 64);
        let b = Region::new(0x1200, 16, 64);
        let c = Region::new(0x2000, 16, 64);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    #[should_panic(expected = "line-aligned")]
    fn region_rejects_misaligned_base() {
        Region::new(0x1001, 16, 64);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn region_rejects_empty() {
        Region::new(0x1000, 0, 64);
    }

    #[test]
    fn addresses_stay_in_region() {
        let (mut s, mut rng) = stream(1024, 0.9, 0.3);
        for _ in 0..10_000 {
            let a = s.next_addr(&mut rng);
            assert!(s.region().contains(a), "address {a:#x} escaped region");
            assert_eq!(a % 8, 0, "addresses are word aligned");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut s1, mut r1) = stream(1024, 0.9, 0.3);
        let (mut s2, mut r2) = stream(1024, 0.9, 0.3);
        for _ in 0..1000 {
            assert_eq!(s1.next_addr(&mut r1), s2.next_addr(&mut r2));
        }
    }

    #[test]
    fn skew_creates_hot_lines() {
        let (mut s, mut rng) = stream(4096, 1.0, 0.0);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let n = 40_000;
        for _ in 0..n {
            *counts.entry(s.next_line(&mut rng)).or_default() += 1;
        }
        let mut freq: Vec<u64> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top16: u64 = freq.iter().take(16).sum();
        assert!(
            top16 as f64 > 0.25 * n as f64,
            "hot 16 lines should dominate a theta=1 stream (got {top16}/{n})"
        );
    }

    #[test]
    fn theta_zero_spreads_accesses() {
        let (mut s, mut rng) = stream(256, 0.0, 0.0);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..25_600 {
            *counts.entry(s.next_line(&mut rng)).or_default() += 1;
        }
        assert!(counts.len() > 250, "uniform stream should touch most lines");
    }

    #[test]
    fn sequential_bursts_produce_adjacent_lines() {
        let (mut s, mut rng) = stream(4096, 0.5, 1.0);
        let mut adjacent = 0u32;
        let mut prev = s.next_line(&mut rng);
        let n = 5000;
        for _ in 0..n {
            let cur = s.next_line(&mut rng);
            if cur == (prev + 1) % 4096 {
                adjacent += 1;
            }
            prev = cur;
        }
        assert!(
            adjacent as f64 > 0.6 * n as f64,
            "p_seq=1 stream should be mostly sequential ({adjacent}/{n})"
        );
    }

    #[test]
    fn single_line_region_works() {
        let (mut s, mut rng) = stream(1, 0.9, 0.5);
        for _ in 0..100 {
            assert_eq!(s.next_line(&mut rng), 0);
        }
    }

    #[test]
    fn huge_region_uses_hashed_map() {
        let lines = PERM_MATERIALIZE_LIMIT + 1;
        let region = Region::new(0x1_0000_0000, lines, 64);
        let spec = RegionSpec::new(lines, 0.8, 0.1, 4.0);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut s = RegionStream::new(region, spec, &mut rng);
        for _ in 0..1000 {
            let a = s.next_addr(&mut rng);
            assert!(region.contains(a));
        }
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn spec_region_mismatch_panics() {
        let region = Region::new(0, 64, 64);
        let spec = RegionSpec::new(128, 0.5, 0.1, 2.0);
        let mut rng = Xoshiro256::seed_from_u64(1);
        RegionStream::new(region, spec, &mut rng);
    }
}
