//! Pointer-chasing address streams.
//!
//! Linked-data-structure traversals (B-trees, dentry chains, object
//! graphs) produce *dependent* accesses: the next address is only known
//! after the current load returns. [`ChaseStream`] models this as a walk
//! along a pseudo-random Hamiltonian cycle over a region's lines — no
//! spatial locality, no prefetchable pattern, and a reuse distance equal
//! to the chain length.
//!
//! These streams are the worst case for any cache whose capacity is below
//! the chain footprint, and are useful for building adversarial custom
//! workloads on top of the suite in [`crate::apps`].
//!
//! # Examples
//!
//! ```
//! use moca_trace::chase::ChaseStream;
//! use moca_trace::locality::Region;
//! use moca_trace::rng::Xoshiro256;
//!
//! let region = Region::new(0x8000_0000, 1024, 64);
//! let mut rng = Xoshiro256::seed_from_u64(3);
//! let mut chase = ChaseStream::new(region, 256, &mut rng);
//! let a = chase.next_addr(&mut rng);
//! assert!(region.contains(a));
//! ```

use crate::locality::Region;
use crate::rng::Xoshiro256;

/// A dependent-chain walker over a subset of a region's lines.
#[derive(Debug, Clone)]
pub struct ChaseStream {
    region: Region,
    /// `next[i]` is the successor of chain node `i` (a permutation cycle).
    next: Vec<u32>,
    /// Line index of each chain node.
    lines: Vec<u32>,
    /// Current chain node.
    cursor: u32,
    /// Probability of restarting at the chain head (re-traversal from the
    /// root, as in repeated lookups).
    pub restart_p: f64,
}

impl ChaseStream {
    /// Builds a chain of `chain_len` nodes over distinct lines of
    /// `region`, linked in a single pseudo-random cycle.
    ///
    /// # Panics
    ///
    /// Panics if `chain_len` is zero or exceeds the region's line count.
    pub fn new(region: Region, chain_len: u64, rng: &mut Xoshiro256) -> Self {
        assert!(chain_len > 0, "chain must have at least one node");
        assert!(
            chain_len <= region.lines(),
            "chain of {chain_len} nodes cannot fit {} lines",
            region.lines()
        );
        assert!(
            region.lines() <= u64::from(u32::MAX),
            "chase regions are limited to 2^32 lines"
        );
        // Pick chain_len distinct lines via a partial Fisher–Yates.
        let mut pool: Vec<u32> = (0..region.lines() as u32).collect();
        let n = chain_len as usize;
        for i in 0..n {
            let j = i as u64 + rng.below(pool.len() as u64 - i as u64);
            pool.swap(i, j as usize);
        }
        let lines: Vec<u32> = pool[..n].to_vec();
        // A single cycle: node order is a second shuffle of 0..n.
        let mut order: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut order);
        let mut next = vec![0u32; n];
        for w in 0..n {
            next[order[w] as usize] = order[(w + 1) % n];
        }
        Self {
            region,
            next,
            lines,
            cursor: 0,
            restart_p: 0.0,
        }
    }

    /// Number of nodes in the chain.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` for a single-node chain.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The region walked.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// Footprint of the chain in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.lines.len() as u64 * self.region.line_bytes()
    }

    /// Advances the walk and returns the next line index (region-local).
    pub fn next_line(&mut self, rng: &mut Xoshiro256) -> u64 {
        if self.restart_p > 0.0 && rng.chance(self.restart_p) {
            self.cursor = 0;
        } else {
            self.cursor = self.next[self.cursor as usize];
        }
        u64::from(self.lines[self.cursor as usize])
    }

    /// Advances the walk and returns the next byte address.
    pub fn next_addr(&mut self, rng: &mut Xoshiro256) -> u64 {
        let line = self.next_line(rng);
        self.region.line_addr(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn mk(chain: u64) -> (ChaseStream, Xoshiro256) {
        let region = Region::new(0x9000_0000, 4096, 64);
        let mut rng = Xoshiro256::seed_from_u64(11);
        let s = ChaseStream::new(region, chain, &mut rng);
        (s, rng)
    }

    #[test]
    fn chain_visits_every_node_once_per_lap() {
        let (mut s, mut rng) = mk(512);
        let mut seen = HashSet::new();
        for _ in 0..512 {
            assert!(seen.insert(s.next_line(&mut rng)), "revisit within a lap");
        }
        // The next lap revisits exactly the same set.
        let mut second = HashSet::new();
        for _ in 0..512 {
            second.insert(s.next_line(&mut rng));
        }
        assert_eq!(seen, second);
    }

    #[test]
    fn chain_lines_are_distinct_and_in_region() {
        let (mut s, mut rng) = mk(1000);
        assert_eq!(s.len(), 1000);
        assert_eq!(s.footprint_bytes(), 1000 * 64);
        for _ in 0..2000 {
            let a = s.next_addr(&mut rng);
            assert!(s.region().contains(a));
        }
    }

    #[test]
    fn deterministic() {
        let run = || {
            let (mut s, mut rng) = mk(128);
            (0..400).map(|_| s.next_line(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn restart_shortens_effective_footprint() {
        let (mut s, mut rng) = mk(2048);
        s.restart_p = 0.05; // restart every ~20 steps
        let mut seen = HashSet::new();
        for _ in 0..4000 {
            seen.insert(s.next_line(&mut rng));
        }
        assert!(
            seen.len() < 1500,
            "frequent restarts should confine the walk, saw {} lines",
            seen.len()
        );
    }

    #[test]
    fn single_node_chain() {
        let (mut s, mut rng) = mk(1);
        assert!(!s.is_empty());
        let first = s.next_line(&mut rng);
        assert_eq!(s.next_line(&mut rng), first);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn oversized_chain_panics() {
        let region = Region::new(0, 16, 64);
        let mut rng = Xoshiro256::seed_from_u64(1);
        ChaseStream::new(region, 17, &mut rng);
    }
}
