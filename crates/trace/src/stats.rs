//! Trace-level statistics.
//!
//! [`TraceStats`] summarizes a reference stream without simulating any
//! cache: per-mode access mix, footprints, mode-switch behaviour, and a
//! log-bucketed reuse-interval histogram per mode. The latter is the
//! trace-level counterpart of the paper's segment-behaviour analysis
//! (claim C4): kernel lines are re-touched on very different time scales
//! than user lines.

use crate::access::{MemoryAccess, Mode};
use crate::fxhash::FxHashMap;

#[cfg(test)]
use crate::access::AccessKind;

/// Number of log2 buckets in reuse-interval histograms
/// (bucket `i` counts reuses with `2^i <= interval < 2^(i+1)`).
pub const REUSE_BUCKETS: usize = 32;

/// Per-mode counters within [`TraceStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModeStats {
    /// Total references.
    pub accesses: u64,
    /// References by kind, indexed by [`crate::AccessKind::index`].
    pub by_kind: [u64; 3],
    /// Distinct cache lines touched.
    pub unique_lines: u64,
    /// Log2-bucketed histogram of reuse intervals (accesses between
    /// consecutive touches of the same line).
    pub reuse_hist: [u64; REUSE_BUCKETS],
    /// Number of first-time (cold) line touches.
    pub cold_touches: u64,
}

impl ModeStats {
    /// Footprint in bytes for the given line size.
    pub fn footprint_bytes(&self, line_bytes: u64) -> u64 {
        self.unique_lines * line_bytes
    }

    /// Median reuse interval estimated from the histogram (returns the
    /// lower bound of the median bucket), or `None` when no reuses exist.
    pub fn median_reuse_interval(&self) -> Option<u64> {
        let total: u64 = self.reuse_hist.iter().sum();
        if total == 0 {
            return None;
        }
        let mut acc = 0u64;
        for (i, &c) in self.reuse_hist.iter().enumerate() {
            acc += c;
            if acc * 2 >= total {
                return Some(1u64 << i);
            }
        }
        None
    }
}

/// Summary statistics for a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Per-mode counters, indexed by [`Mode::index`].
    pub modes: [ModeStats; 2],
    /// Number of user↔kernel transitions observed.
    pub mode_switches: u64,
    /// Cache-line size the statistics were computed at.
    pub line_bytes: u64,
}

impl TraceStats {
    /// Computes statistics over `trace` at the given line granularity.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    ///
    /// # Examples
    ///
    /// ```
    /// use moca_trace::{AppProfile, TraceGenerator, TraceStats};
    ///
    /// let gen = TraceGenerator::new(&AppProfile::email(), 1);
    /// let stats = TraceStats::collect(gen.take(50_000), 64);
    /// assert!(stats.kernel_share() > 0.0);
    /// ```
    pub fn collect<I>(trace: I, line_bytes: u64) -> Self
    where
        I: IntoIterator<Item = MemoryAccess>,
    {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        let mut stats = TraceStats {
            line_bytes,
            ..TraceStats::default()
        };
        // line -> index of its last touch. Keys are self-generated line
        // addresses, so the fixed-seed FxHash map is safe and keeps the
        // collection pass cheap and run-to-run identical.
        let mut last_touch: FxHashMap<u64, u64> = FxHashMap::default();
        let mut prev_mode: Option<Mode> = None;
        for (index, a) in (0u64..).zip(trace) {
            let m = &mut stats.modes[a.mode.index()];
            m.accesses += 1;
            m.by_kind[a.kind.index()] += 1;
            let line = a.line(line_bytes);
            // Key includes the mode so user/kernel reuse profiles stay
            // independent even if address spaces ever overlapped.
            let key = line ^ ((a.mode.index() as u64) << 63);
            match last_touch.insert(key, index) {
                None => {
                    m.unique_lines += 1;
                    m.cold_touches += 1;
                }
                Some(prev) => {
                    let interval = (index - prev).max(1);
                    let bucket = (63 - interval.leading_zeros() as usize).min(REUSE_BUCKETS - 1);
                    m.reuse_hist[bucket] += 1;
                }
            }
            if let Some(p) = prev_mode {
                if p != a.mode {
                    stats.mode_switches += 1;
                }
            }
            prev_mode = Some(a.mode);
        }
        stats
    }

    /// Total references across both modes.
    pub fn total_accesses(&self) -> u64 {
        self.modes.iter().map(|m| m.accesses).sum()
    }

    /// Fraction of references executed in kernel mode.
    ///
    /// Returns `0.0` for an empty trace.
    pub fn kernel_share(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.modes[Mode::Kernel.index()].accesses as f64 / total as f64
        }
    }

    /// Per-mode statistics.
    pub fn mode(&self, mode: Mode) -> &ModeStats {
        &self.modes[mode.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppProfile;
    use crate::generator::TraceGenerator;

    fn mk(addr: u64, mode: Mode) -> MemoryAccess {
        MemoryAccess::new(addr, 0, AccessKind::Load, mode)
    }

    #[test]
    fn empty_trace() {
        let s = TraceStats::collect(std::iter::empty(), 64);
        assert_eq!(s.total_accesses(), 0);
        assert_eq!(s.kernel_share(), 0.0);
        assert_eq!(s.mode_switches, 0);
    }

    #[test]
    fn counts_modes_and_switches() {
        let trace = vec![
            mk(0, Mode::User),
            mk(64, Mode::User),
            mk(0xC000_0000, Mode::Kernel),
            mk(128, Mode::User),
        ];
        let s = TraceStats::collect(trace, 64);
        assert_eq!(s.mode(Mode::User).accesses, 3);
        assert_eq!(s.mode(Mode::Kernel).accesses, 1);
        assert_eq!(s.mode_switches, 2);
        assert!((s.kernel_share() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unique_lines_and_cold_touches() {
        let trace = vec![mk(0, Mode::User), mk(8, Mode::User), mk(64, Mode::User)];
        let s = TraceStats::collect(trace, 64);
        assert_eq!(s.mode(Mode::User).unique_lines, 2);
        assert_eq!(s.mode(Mode::User).cold_touches, 2);
        assert_eq!(s.mode(Mode::User).footprint_bytes(64), 128);
    }

    #[test]
    fn reuse_interval_buckets() {
        // Touch line 0, then 3 other lines, then line 0 again → interval 4.
        let trace = vec![
            mk(0, Mode::User),
            mk(64, Mode::User),
            mk(128, Mode::User),
            mk(192, Mode::User),
            mk(0, Mode::User),
        ];
        let s = TraceStats::collect(trace, 64);
        // interval 4 → bucket log2(4) = 2.
        assert_eq!(s.mode(Mode::User).reuse_hist[2], 1);
        assert_eq!(s.mode(Mode::User).median_reuse_interval(), Some(4));
    }

    #[test]
    fn median_none_without_reuse() {
        let trace = vec![mk(0, Mode::User), mk(64, Mode::User)];
        let s = TraceStats::collect(trace, 64);
        assert_eq!(s.mode(Mode::User).median_reuse_interval(), None);
    }

    #[test]
    fn by_kind_counts() {
        let trace = vec![
            MemoryAccess::new(0, 0, AccessKind::InstrFetch, Mode::User),
            MemoryAccess::new(0, 0, AccessKind::Store, Mode::User),
            MemoryAccess::new(0, 0, AccessKind::Load, Mode::User),
            MemoryAccess::new(0, 0, AccessKind::Store, Mode::User),
        ];
        let s = TraceStats::collect(trace, 64);
        let m = s.mode(Mode::User);
        assert_eq!(m.by_kind[AccessKind::InstrFetch.index()], 1);
        assert_eq!(m.by_kind[AccessKind::Load.index()], 1);
        assert_eq!(m.by_kind[AccessKind::Store.index()], 2);
    }

    #[test]
    fn generated_traces_have_mode_specific_reuse() {
        let gen = TraceGenerator::new(&AppProfile::browser(), 21);
        let s = TraceStats::collect(gen.take(300_000), 64);
        let user = s.mode(Mode::User);
        let kernel = s.mode(Mode::Kernel);
        assert!(user.accesses > 0 && kernel.accesses > 0);
        // Both modes show reuse (hist non-empty).
        assert!(user.reuse_hist.iter().sum::<u64>() > 0);
        assert!(kernel.reuse_hist.iter().sum::<u64>() > 0);
        // Kernel and user reuse-interval distributions must be measurably
        // different (claim C4 at trace level): kernel reuse is shaped by
        // burst-scale and cross-burst re-references, user reuse by loop
        // scales. Compare via total-variation distance of the normalized
        // histograms.
        let normalize = |m: &ModeStats| {
            let total: u64 = m.reuse_hist.iter().sum();
            m.reuse_hist
                .iter()
                .map(|&c| c as f64 / total as f64)
                .collect::<Vec<f64>>()
        };
        let (nu, nk) = (normalize(user), normalize(kernel));
        let tv: f64 = nu
            .iter()
            .zip(&nk)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0;
        assert!(
            tv > 0.05,
            "user and kernel reuse distributions should differ (TV = {tv:.3})"
        );
        assert!(user.median_reuse_interval().is_some());
        assert!(kernel.median_reuse_interval().is_some());
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn rejects_bad_line_size() {
        TraceStats::collect(std::iter::empty(), 48);
    }
}
