//! Operating-system kernel activity model.
//!
//! Interactive smartphone apps enter the kernel constantly — syscalls for
//! I/O and IPC (binder), page faults, the scheduler tick, device
//! interrupts. The paper's first observation (claim C1 in `DESIGN.md`) is
//! that this traffic makes up *over 40 % of all L2 accesses*. This module
//! reproduces the two properties that make that true:
//!
//! 1. the kernel's working set (handler code, scheduler structures, page
//!    cache, network buffers) is **shared across all invocations**, so
//!    kernel lines are re-referenced heavily at L2, and
//! 2. kernel data structures such as the page cache are **large and only
//!    weakly local**, so kernel accesses filter poorly through the L1s and
//!    collide with user blocks in a shared L2.
//!
//! The model is organized as a set of *services* ([`Service`]): each
//! invocation of a service emits a burst of memory references drawn from
//! the service's handler-text region plus weighted kernel data regions.

use crate::access::{AccessKind, MemoryAccess, Mode};
use crate::locality::{Region, RegionSpec, RegionStream};
use crate::rng::Xoshiro256;

/// Physical address-space layout of the modelled kernel.
///
/// All kernel structures live above [`layout::KERNEL_BASE`]; everything
/// below is user memory. The split lets analysis code classify an address
/// without carrying extra state.
pub mod layout {
    /// First byte of kernel physical memory in the model.
    pub const KERNEL_BASE: u64 = 0xC000_0000;
    /// Cache-line size used for region sizing throughout the model.
    pub const LINE: u64 = 64;

    /// Kernel text (handlers + core). 2 MiB.
    pub const TEXT_BASE: u64 = KERNEL_BASE;
    /// Lines of kernel text.
    pub const TEXT_LINES: u64 = (2 << 20) / LINE;

    /// Scheduler / task structures. 512 KiB.
    pub const SCHED_BASE: u64 = 0xC020_0000;
    /// Lines of scheduler data.
    pub const SCHED_LINES: u64 = (512 << 10) / LINE;

    /// VFS metadata (dentries, inodes, file tables). 8 MiB.
    pub const VFS_BASE: u64 = 0xC030_0000;
    /// Lines of VFS data.
    pub const VFS_LINES: u64 = (8 << 20) / LINE;

    /// Page cache. 32 MiB — a small hot core plus a large streaming tail
    /// that no realistic L2 can capture.
    pub const PAGE_CACHE_BASE: u64 = 0xC0B0_0000;
    /// Lines of page cache.
    pub const PAGE_CACHE_LINES: u64 = (32 << 20) / LINE;

    /// Network socket buffers. 8 MiB, streaming access.
    pub const NET_BASE: u64 = 0xC2B0_0000;
    /// Lines of network buffers.
    pub const NET_LINES: u64 = (8 << 20) / LINE;

    /// Binder IPC buffers. 8 MiB.
    pub const BINDER_BASE: u64 = 0xC330_0000;
    /// Lines of binder buffers.
    pub const BINDER_LINES: u64 = (8 << 20) / LINE;

    /// Memory-management structures (page tables, vm_area). 8 MiB.
    pub const MM_BASE: u64 = 0xC3B0_0000;
    /// Lines of MM data.
    pub const MM_LINES: u64 = (8 << 20) / LINE;

    /// Returns `true` if `addr` lies in kernel memory.
    pub fn is_kernel_addr(addr: u64) -> bool {
        addr >= KERNEL_BASE
    }
}

/// Kernel data regions a service may touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataRegion {
    /// Scheduler and task structures (hot, small).
    Sched,
    /// VFS metadata.
    Vfs,
    /// The page cache (large, weakly local).
    PageCache,
    /// Network socket buffers (streaming).
    Net,
    /// Binder IPC buffers.
    Binder,
    /// Memory-management structures.
    Mm,
}

impl DataRegion {
    /// All data regions in dense-index order.
    pub const ALL: [DataRegion; 6] = [
        DataRegion::Sched,
        DataRegion::Vfs,
        DataRegion::PageCache,
        DataRegion::Net,
        DataRegion::Binder,
        DataRegion::Mm,
    ];

    /// Dense index (matches position in [`DataRegion::ALL`]).
    pub fn index(self) -> usize {
        match self {
            DataRegion::Sched => 0,
            DataRegion::Vfs => 1,
            DataRegion::PageCache => 2,
            DataRegion::Net => 3,
            DataRegion::Binder => 4,
            DataRegion::Mm => 5,
        }
    }

    fn region(self) -> Region {
        use layout::*;
        match self {
            DataRegion::Sched => Region::new(SCHED_BASE, SCHED_LINES, LINE),
            DataRegion::Vfs => Region::new(VFS_BASE, VFS_LINES, LINE),
            DataRegion::PageCache => Region::new(PAGE_CACHE_BASE, PAGE_CACHE_LINES, LINE),
            DataRegion::Net => Region::new(NET_BASE, NET_LINES, LINE),
            DataRegion::Binder => Region::new(BINDER_BASE, BINDER_LINES, LINE),
            DataRegion::Mm => Region::new(MM_BASE, MM_LINES, LINE),
        }
    }

    fn spec(self) -> RegionSpec {
        use layout::*;
        match self {
            // Hot task structs: heavily skewed reuse.
            DataRegion::Sched => RegionSpec::new(SCHED_LINES, 1.0, 0.05, 4.0).with_hot(384, 0.95).with_temporal(0.50, 4.0),
            // Dentry/inode lookups: skewed but wider.
            DataRegion::Vfs => RegionSpec::new(VFS_LINES, 0.9, 0.05, 4.0).with_hot(640, 0.90).with_temporal(0.50, 4.0),
            // Page cache: big footprint, moderate skew, copy loops stream.
            DataRegion::PageCache => RegionSpec::new(PAGE_CACHE_LINES, 0.8, 0.45, 24.0).with_hot(1536, 0.80).with_temporal(0.45, 5.0),
            // Socket buffers: skewed towards live buffers, streaming runs.
            DataRegion::Net => RegionSpec::new(NET_LINES, 0.8, 0.6, 20.0).with_hot(512, 0.85).with_temporal(0.45, 5.0),
            // Binder transaction buffers: streaming copies over live set.
            DataRegion::Binder => RegionSpec::new(BINDER_LINES, 0.8, 0.5, 16.0).with_hot(512, 0.85).with_temporal(0.45, 5.0),
            // Page-table walks: moderately skewed.
            DataRegion::Mm => RegionSpec::new(MM_LINES, 0.8, 0.1, 4.0).with_hot(512, 0.90).with_temporal(0.50, 4.0),
        }
    }
}

/// A kernel service: a syscall family, fault handler, interrupt handler,
/// or the scheduler tick. One [`Service`] invocation produces one burst of
/// kernel-mode references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Service {
    /// `read(2)`-style file reads through the page cache.
    FileRead,
    /// `write(2)`-style file writes.
    FileWrite,
    /// `open`/`close`/`stat` metadata operations.
    VfsMeta,
    /// `mmap`/`brk` address-space operations.
    Mmap,
    /// Demand page fault handling.
    PageFault,
    /// `futex` wait/wake (lock contention).
    Futex,
    /// `poll`/`epoll` event multiplexing.
    Poll,
    /// `ioctl` to device drivers (GPU, camera, sensors).
    Ioctl,
    /// Android binder IPC transaction.
    Binder,
    /// Socket send path.
    NetSend,
    /// Socket receive path.
    NetRecv,
    /// Periodic scheduler tick + possible context switch.
    SchedTick,
    /// Touchscreen interrupt.
    IrqTouch,
    /// Network interrupt + softirq processing.
    IrqNet,
    /// Storage interrupt.
    IrqDisk,
}

impl Service {
    /// All services in dense-index order.
    pub const ALL: [Service; 15] = [
        Service::FileRead,
        Service::FileWrite,
        Service::VfsMeta,
        Service::Mmap,
        Service::PageFault,
        Service::Futex,
        Service::Poll,
        Service::Ioctl,
        Service::Binder,
        Service::NetSend,
        Service::NetRecv,
        Service::SchedTick,
        Service::IrqTouch,
        Service::IrqNet,
        Service::IrqDisk,
    ];

    /// Dense index (matches position in [`Service::ALL`]).
    pub fn index(self) -> usize {
        Service::ALL
            .iter()
            .position(|s| *s == self)
            .expect("service listed in ALL")
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Service::FileRead => "read",
            Service::FileWrite => "write",
            Service::VfsMeta => "vfs-meta",
            Service::Mmap => "mmap",
            Service::PageFault => "page-fault",
            Service::Futex => "futex",
            Service::Poll => "poll",
            Service::Ioctl => "ioctl",
            Service::Binder => "binder",
            Service::NetSend => "net-send",
            Service::NetRecv => "net-recv",
            Service::SchedTick => "sched-tick",
            Service::IrqTouch => "irq-touch",
            Service::IrqNet => "irq-net",
            Service::IrqDisk => "irq-disk",
        }
    }

    /// Burst profile of this service.
    pub fn spec(self) -> ServiceSpec {
        // data_weights order follows DataRegion::ALL:
        //                     [sched, vfs, pcache, net, binder, mm]
        match self {
            Service::FileRead => ServiceSpec::new(self, 900.0, 0.45, 0.25, [0.5, 1.5, 7.0, 0.0, 0.0, 0.5]),
            Service::FileWrite => ServiceSpec::new(self, 800.0, 0.45, 0.55, [0.5, 1.5, 6.5, 0.0, 0.0, 0.5]),
            Service::VfsMeta => ServiceSpec::new(self, 300.0, 0.55, 0.20, [0.5, 6.0, 1.0, 0.0, 0.0, 0.5]),
            Service::Mmap => ServiceSpec::new(self, 400.0, 0.50, 0.45, [0.5, 1.0, 0.5, 0.0, 0.0, 6.0]),
            Service::PageFault => ServiceSpec::new(self, 250.0, 0.50, 0.40, [0.5, 0.0, 2.0, 0.0, 0.0, 5.0]),
            Service::Futex => ServiceSpec::new(self, 120.0, 0.60, 0.30, [6.0, 0.0, 0.0, 0.0, 0.0, 1.0]),
            Service::Poll => ServiceSpec::new(self, 200.0, 0.60, 0.15, [3.0, 2.0, 0.0, 2.0, 0.0, 0.0]),
            Service::Ioctl => ServiceSpec::new(self, 500.0, 0.50, 0.40, [1.0, 1.0, 0.0, 0.0, 2.0, 1.0]),
            Service::Binder => ServiceSpec::new(self, 700.0, 0.45, 0.45, [1.5, 0.5, 0.0, 0.0, 6.0, 0.5]),
            Service::NetSend => ServiceSpec::new(self, 600.0, 0.45, 0.50, [0.5, 0.5, 0.0, 7.0, 0.0, 0.5]),
            Service::NetRecv => ServiceSpec::new(self, 650.0, 0.45, 0.35, [0.5, 0.5, 0.5, 7.0, 0.0, 0.5]),
            Service::SchedTick => ServiceSpec::new(self, 80.0, 0.55, 0.30, [8.0, 0.0, 0.0, 0.0, 0.0, 0.5]),
            Service::IrqTouch => ServiceSpec::new(self, 150.0, 0.55, 0.30, [3.0, 0.0, 0.0, 0.0, 1.0, 0.0]),
            Service::IrqNet => ServiceSpec::new(self, 400.0, 0.50, 0.40, [1.0, 0.0, 0.0, 6.0, 0.0, 0.0]),
            Service::IrqDisk => ServiceSpec::new(self, 300.0, 0.50, 0.35, [1.0, 1.0, 4.0, 0.0, 0.0, 0.5]),
        }
    }
}

impl std::fmt::Display for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Burst parameters for one [`Service`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceSpec {
    /// The service described.
    pub service: Service,
    /// Mean memory references per invocation (log-normal dispersion).
    pub mean_refs: f64,
    /// Fraction of references that are instruction fetches.
    pub ifetch_frac: f64,
    /// Fraction of *data* references that are stores.
    pub store_frac: f64,
    /// Relative weights over [`DataRegion::ALL`] for data references.
    pub data_weights: [f64; 6],
}

impl ServiceSpec {
    fn new(
        service: Service,
        mean_refs: f64,
        ifetch_frac: f64,
        store_frac: f64,
        data_weights: [f64; 6],
    ) -> Self {
        debug_assert!(mean_refs >= 1.0);
        debug_assert!((0.0..=1.0).contains(&ifetch_frac));
        debug_assert!((0.0..=1.0).contains(&store_frac));
        debug_assert!(data_weights.iter().sum::<f64>() > 0.0);
        Self {
            service,
            mean_refs,
            ifetch_frac,
            store_frac,
            data_weights,
        }
    }
}

/// Lines of handler text dedicated to each service.
const HANDLER_TEXT_LINES: u64 = 128;
/// Lines of shared entry/exit + core kernel text touched by every burst.
const CORE_TEXT_LINES: u64 = 256;
/// Fraction of ifetches that hit core text rather than the handler.
const CORE_TEXT_FRAC: f64 = 0.25;

/// The stateful kernel model: one per generated trace.
///
/// All services share the same region streams, which is what makes kernel
/// lines highly reused across invocations — the effect behind the paper's
/// kernel-segment retention analysis.
#[derive(Debug, Clone)]
pub struct KernelModel {
    handler_text: Vec<RegionStream>,
    core_text: RegionStream,
    data: Vec<RegionStream>,
    last_pc: u64,
}

impl KernelModel {
    /// Builds the model; all internal streams fork deterministically from
    /// `rng`.
    ///
    /// # Panics
    ///
    /// Panics only if the static layout in [`layout`] is inconsistent
    /// (checked by debug assertions and tests).
    pub fn new(rng: &mut Xoshiro256) -> Self {
        let line = layout::LINE;
        let mut handler_text = Vec::with_capacity(Service::ALL.len());
        for (i, _svc) in Service::ALL.iter().enumerate() {
            let base = layout::TEXT_BASE + (i as u64) * HANDLER_TEXT_LINES * line;
            let region = Region::new(base, HANDLER_TEXT_LINES, line);
            // Handler code: tight, hot loops.
            let spec = RegionSpec::new(HANDLER_TEXT_LINES, 1.2, 0.55, 6.0).with_temporal(0.55, 6.0);
            let mut stream_rng = rng.fork(0x1000 + i as u64);
            handler_text.push(RegionStream::new(region, spec, &mut stream_rng));
        }
        let core_base =
            layout::TEXT_BASE + (Service::ALL.len() as u64) * HANDLER_TEXT_LINES * line;
        debug_assert!(
            core_base + CORE_TEXT_LINES * line <= layout::TEXT_BASE + layout::TEXT_LINES * line,
            "kernel text regions exceed TEXT area"
        );
        let core_region = Region::new(core_base, CORE_TEXT_LINES, line);
        let mut core_rng = rng.fork(0x2000);
        let core_text = RegionStream::new(
            core_region,
            RegionSpec::new(CORE_TEXT_LINES, 1.1, 0.5, 5.0).with_temporal(0.55, 6.0),
            &mut core_rng,
        );
        let mut data = Vec::with_capacity(DataRegion::ALL.len());
        for (i, dr) in DataRegion::ALL.iter().enumerate() {
            let mut data_rng = rng.fork(0x3000 + i as u64);
            data.push(RegionStream::new(dr.region(), dr.spec(), &mut data_rng));
        }
        Self {
            handler_text,
            core_text,
            data,
            last_pc: core_region.base(),
        }
    }

    /// Emits one invocation burst for `service` into `out`.
    ///
    /// Returns the number of references emitted.
    pub fn emit_burst(
        &mut self,
        service: Service,
        rng: &mut Xoshiro256,
        out: &mut Vec<MemoryAccess>,
    ) -> usize {
        let spec = service.spec();
        // Log-normal burst length around the mean, clamped to a sane band.
        let sigma = 0.45f64;
        let mu = spec.mean_refs.ln() - sigma * sigma / 2.0;
        let len = rng
            .log_normal(mu, sigma)
            .round()
            .clamp(8.0, spec.mean_refs * 8.0) as usize;
        let before = out.len();
        for _ in 0..len {
            let access = if rng.chance(spec.ifetch_frac) {
                let addr = if rng.chance(CORE_TEXT_FRAC) {
                    self.core_text.next_addr(rng)
                } else {
                    self.handler_text[service.index()].next_addr(rng)
                };
                self.last_pc = addr;
                MemoryAccess::new(addr, addr, AccessKind::InstrFetch, Mode::Kernel)
            } else {
                let region = DataRegion::ALL[rng.weighted_index(&spec.data_weights)];
                let addr = self.data[region.index()].next_addr(rng);
                let kind = if rng.chance(spec.store_frac) {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                MemoryAccess::new(addr, self.last_pc, kind, Mode::Kernel)
            };
            out.push(access);
        }
        out.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_regions_are_disjoint() {
        let regions: Vec<Region> = DataRegion::ALL.iter().map(|d| d.region()).collect();
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
            }
            let text = Region::new(layout::TEXT_BASE, layout::TEXT_LINES, layout::LINE);
            assert!(!a.overlaps(&text), "{a:?} overlaps kernel text");
        }
    }

    #[test]
    fn all_kernel_addresses_classify_as_kernel() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut model = KernelModel::new(&mut rng);
        let mut out = Vec::new();
        for svc in Service::ALL {
            model.emit_burst(svc, &mut rng, &mut out);
        }
        assert!(!out.is_empty());
        for a in &out {
            assert_eq!(a.mode, Mode::Kernel);
            assert!(
                layout::is_kernel_addr(a.addr),
                "kernel burst produced user address {:#x}",
                a.addr
            );
        }
    }

    #[test]
    fn service_indices_match_all_order() {
        for (i, svc) in Service::ALL.iter().enumerate() {
            assert_eq!(svc.index(), i);
        }
        for (i, dr) in DataRegion::ALL.iter().enumerate() {
            assert_eq!(dr.index(), i);
        }
    }

    #[test]
    fn burst_length_tracks_mean() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut model = KernelModel::new(&mut rng);
        let mut out = Vec::new();
        let n = 400;
        let mut total = 0usize;
        for _ in 0..n {
            total += model.emit_burst(Service::FileRead, &mut rng, &mut out);
        }
        let mean = total as f64 / n as f64;
        let target = Service::FileRead.spec().mean_refs;
        assert!(
            (mean - target).abs() < target * 0.2,
            "mean burst {mean} should be near {target}"
        );
    }

    #[test]
    fn sched_tick_touches_sched_data() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut model = KernelModel::new(&mut rng);
        let mut out = Vec::new();
        for _ in 0..50 {
            model.emit_burst(Service::SchedTick, &mut rng, &mut out);
        }
        let sched = DataRegion::Sched.region();
        let hits = out.iter().filter(|a| sched.contains(a.addr)).count();
        assert!(hits > 0, "sched tick must touch scheduler data");
    }

    #[test]
    fn file_read_is_page_cache_heavy() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut model = KernelModel::new(&mut rng);
        let mut out = Vec::new();
        for _ in 0..50 {
            model.emit_burst(Service::FileRead, &mut rng, &mut out);
        }
        let pc = DataRegion::PageCache.region();
        let data_total = out.iter().filter(|a| !a.kind.is_ifetch()).count();
        let pc_hits = out.iter().filter(|a| pc.contains(a.addr)).count();
        assert!(
            pc_hits as f64 > 0.5 * data_total as f64,
            "file reads should be dominated by page-cache traffic"
        );
    }

    #[test]
    fn bursts_are_deterministic() {
        let run = || {
            let mut rng = Xoshiro256::seed_from_u64(77);
            let mut model = KernelModel::new(&mut rng);
            let mut out = Vec::new();
            model.emit_burst(Service::Binder, &mut rng, &mut out);
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn store_fraction_is_respected() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut model = KernelModel::new(&mut rng);
        let mut out = Vec::new();
        for _ in 0..200 {
            model.emit_burst(Service::FileWrite, &mut rng, &mut out);
        }
        let data: Vec<_> = out.iter().filter(|a| !a.kind.is_ifetch()).collect();
        let stores = data.iter().filter(|a| a.kind.is_write()).count();
        let frac = stores as f64 / data.len() as f64;
        let target = Service::FileWrite.spec().store_frac;
        assert!(
            (frac - target).abs() < 0.05,
            "store fraction {frac} should be near {target}"
        );
    }
}
