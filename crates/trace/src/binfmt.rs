//! Chunked binary trace container: compile a workload once, replay it
//! into every subsequent sweep at near-arena speed.
//!
//! The legacy stream format in [`crate::io`] is a flat record stream:
//! fine for archiving, useless for random access, and unprotected
//! against corruption. This module defines the on-disk format behind
//! `tracegen --emit`, `repro --trace`, and the `trace_corpus` tool:
//!
//! ```text
//! ┌──────────────────────── fixed header (52 bytes) ───────────────────────┐
//! │ magic "MOCATRC0" │ version u16 │ reserved u16 │ chunk_refs u32         │
//! │ fingerprint u64  │ seed u64    │ total_refs u64 │ chunk_count u32      │
//! │ fxhash of bytes 0..44  u64                                             │
//! ├──────────────────────────── payload ───────────────────────────────────┤
//! │ chunk 0: delta/varint records ..  │ fxhash u64 │                       │
//! │ chunk 1: ..                       │ fxhash u64 │ …                     │
//! ├─────────────────────────── directory ──────────────────────────────────┤
//! │ chunk_count × { payload bytes u32 │ refs u32 } │ fxhash u64            │
//! └────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! * **Chunked at the arena granularity.** Payload is cut at
//!   [`CHUNK_REFS`] = 8192 references — the same boundary as
//!   `moca_sim`'s chunk arena — so one decoded chunk drops straight
//!   into an arena slot: one buffered read + one decode pass per chunk,
//!   no per-reference allocation.
//! * **Per-chunk delta coding.** Each chunk restarts its address/PC
//!   predictors at zero, so chunks decode independently (random access
//!   through the directory). A record is two LEB128 varints: the
//!   zigzagged address delta widened to `u128` with the 3 tag bits
//!   (access kind + user/kernel mode) packed below it, then the
//!   zigzagged PC delta.
//! * **Checksummed everywhere.** Header, directory, and every chunk
//!   payload carry a fixed-seed [`crate::fxhash`] checksum; any flipped
//!   byte surfaces as a structured [`ReadTraceError`] naming the
//!   failing chunk — never a panic, never silent garbage.
//! * **Fingerprinted.** The header records the generating
//!   [`AppProfile::fingerprint`] and seed. Consumers key caches and
//!   checkpoint journals by [`TraceHeader::source_fingerprint`], which
//!   also folds in the format identity, so a file-backed stream can
//!   never alias an in-process generated one.
//!
//! The directory sits at the *end* of the file so
//! [`compile`]/[`TraceWriter`] stream chunks out without knowing their
//! sizes up front; [`TraceReader::new`] reads it back with two seeks.
//!
//! # Examples
//!
//! ```
//! use std::io::Cursor;
//! use moca_trace::binfmt::{self, TraceReader};
//! use moca_trace::{AppProfile, TraceGenerator};
//!
//! let app = AppProfile::music();
//! let mut file = Cursor::new(Vec::new());
//! let summary = binfmt::compile(&mut file, &app, 7, 10_000).unwrap();
//! assert_eq!(summary.chunks, 2); // 10_000 refs round up to 2×8192
//!
//! let mut reader = TraceReader::new(Cursor::new(file.into_inner())).unwrap();
//! let mut chunk = Vec::new();
//! reader.read_chunk(0, &mut chunk).unwrap();
//! let direct: Vec<_> = TraceGenerator::new(&app, 7).take(chunk.len()).collect();
//! assert_eq!(chunk, direct);
//! ```

use std::fs::File;
use std::hash::Hasher;
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::access::{AccessKind, MemoryAccess, Mode};
use crate::apps::AppProfile;
use crate::fxhash::FxHasher;
use crate::generator::TraceGenerator;
use crate::io::{tag, unzigzag, zigzag, ReadTraceError};

/// Magic bytes opening every chunked trace file.
pub const MAGIC: [u8; 8] = *b"MOCATRC0";

/// Version of the chunked container format.
pub const VERSION: u16 = 1;

/// References per chunk — fixed to the simulator arena's granularity
/// so decoded chunks are drop-in arena slots (the memoization key
/// includes the chunk *index*, which is only meaningful at one size).
pub const CHUNK_REFS: usize = TraceGenerator::DEFAULT_CHUNK;

/// Byte length of the fixed header.
pub const HEADER_LEN: usize = 52;

/// Byte offset of the header's trailing checksum (it covers `0..44`).
const HEADER_HASHED: usize = HEADER_LEN - 8;

fn fxhash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

// ---------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------

/// Appends `v` as an LEB128 varint.
fn push_varint(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint of at most `max_bits` payload bits from
/// `buf[*pos..]`, advancing `pos`. `None` on truncation or overflow.
fn read_varint(buf: &[u8], pos: &mut usize, max_bits: u32) -> Option<u128> {
    let mut v = 0u128;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= max_bits {
            return None;
        }
        v |= u128::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return if v >> max_bits == 0 { Some(v) } else { None };
        }
        shift += 7;
    }
}

/// Encodes one chunk of accesses into `out` (cleared first).
///
/// Address/PC predictors restart at zero so every chunk decodes on its
/// own; the 3 tag bits ride below the zigzagged address delta in one
/// widened varint (≤10 bytes for the 67-bit worst case).
fn encode_chunk(chunk: &[MemoryAccess], out: &mut Vec<u8>) {
    out.clear();
    let mut prev_addr = 0u64;
    let mut prev_pc = 0u64;
    for a in chunk {
        let addr_delta = zigzag(a.addr.wrapping_sub(prev_addr) as i64);
        let packed = (u128::from(addr_delta) << 3) | u128::from(tag(a.kind, a.mode));
        push_varint(out, packed);
        push_varint(out, u128::from(zigzag(a.pc.wrapping_sub(prev_pc) as i64)));
        prev_addr = a.addr;
        prev_pc = a.pc;
    }
}

fn untag3(bits: u8) -> Option<(AccessKind, Mode)> {
    let kind = match bits & 0x3 {
        0 => AccessKind::InstrFetch,
        1 => AccessKind::Load,
        2 => AccessKind::Store,
        _ => return None,
    };
    let mode = if bits & 0x4 == 0 { Mode::User } else { Mode::Kernel };
    Some((kind, mode))
}

/// Decodes a checksum-verified chunk payload into `out` (cleared
/// first). `refs` comes from the directory; `chunk` only labels errors.
fn decode_chunk(
    payload: &[u8],
    refs: usize,
    chunk: u32,
    out: &mut Vec<MemoryAccess>,
) -> Result<(), ReadTraceError> {
    let corrupt = |what| ReadTraceError::ChunkCorrupt { chunk, what };
    out.clear();
    out.reserve(refs);
    let mut pos = 0usize;
    let mut prev_addr = 0u64;
    let mut prev_pc = 0u64;
    for _ in 0..refs {
        // 64-bit zigzag delta + 3 tag bits = 67 payload bits.
        let packed = read_varint(payload, &mut pos, 67)
            .ok_or_else(|| corrupt("record address varint truncated or oversized"))?;
        let (kind, mode) =
            untag3((packed & 0x7) as u8).ok_or_else(|| corrupt("unknown access kind tag"))?;
        let addr = prev_addr.wrapping_add(unzigzag((packed >> 3) as u64) as u64);
        let pc_delta = read_varint(payload, &mut pos, 64)
            .ok_or_else(|| corrupt("record pc varint truncated or oversized"))?;
        let pc = prev_pc.wrapping_add(unzigzag(pc_delta as u64) as u64);
        prev_addr = addr;
        prev_pc = pc;
        out.push(MemoryAccess::new(addr, pc, kind, mode));
    }
    if pos != payload.len() {
        return Err(corrupt("trailing bytes after the last record"));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn render_header(fingerprint: u64, seed: u64, total_refs: u64, chunk_count: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..8].copy_from_slice(&MAGIC);
    h[8..10].copy_from_slice(&VERSION.to_le_bytes());
    // h[10..12] reserved, zero.
    h[12..16].copy_from_slice(&(CHUNK_REFS as u32).to_le_bytes());
    h[16..24].copy_from_slice(&fingerprint.to_le_bytes());
    h[24..32].copy_from_slice(&seed.to_le_bytes());
    h[32..40].copy_from_slice(&total_refs.to_le_bytes());
    h[40..44].copy_from_slice(&chunk_count.to_le_bytes());
    let sum = fxhash_bytes(&h[..HEADER_HASHED]);
    h[HEADER_HASHED..].copy_from_slice(&sum.to_le_bytes());
    h
}

/// Streams chunks into a chunked trace file.
///
/// `create` reserves the header slot, `write_chunk` appends encoded
/// chunks in order, and `finish` appends the directory and back-patches
/// the real header — so a trace of unknown length can be compiled in
/// one forward pass (plus one seek).
#[derive(Debug)]
pub struct TraceWriter<W: Write + Seek> {
    w: W,
    fingerprint: u64,
    seed: u64,
    total_refs: u64,
    payload_bytes: u64,
    /// `(payload bytes, refs)` per chunk, in file order.
    entries: Vec<(u32, u32)>,
    scratch: Vec<u8>,
    sealed: bool,
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Starts a trace file for the `(fingerprint, seed)` stream,
    /// writing the (zeroed, to-be-patched) header slot immediately.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn create(mut w: W, fingerprint: u64, seed: u64) -> io::Result<Self> {
        w.write_all(&[0u8; HEADER_LEN])?;
        Ok(TraceWriter {
            w,
            fingerprint,
            seed,
            total_refs: 0,
            payload_bytes: 0,
            entries: Vec::new(),
            scratch: Vec::new(),
            sealed: false,
        })
    }

    /// Encodes and appends one chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is empty, longer than [`CHUNK_REFS`], or
    /// follows a partial chunk — only the *final* chunk may hold fewer
    /// than [`CHUNK_REFS`] references. These are caller bugs, not data
    /// corruption.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_chunk(&mut self, chunk: &[MemoryAccess]) -> io::Result<()> {
        assert!(!chunk.is_empty(), "empty trace chunk");
        assert!(chunk.len() <= CHUNK_REFS, "chunk exceeds CHUNK_REFS");
        assert!(
            !self.sealed,
            "only the final chunk may hold fewer than CHUNK_REFS references"
        );
        self.sealed = chunk.len() < CHUNK_REFS;
        encode_chunk(chunk, &mut self.scratch);
        self.w.write_all(&self.scratch)?;
        self.w
            .write_all(&fxhash_bytes(&self.scratch).to_le_bytes())?;
        self.entries
            .push((self.scratch.len() as u32, chunk.len() as u32));
        self.total_refs += chunk.len() as u64;
        self.payload_bytes += self.scratch.len() as u64;
        Ok(())
    }

    /// Appends the chunk directory, back-patches the header, flushes,
    /// and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn finish(mut self) -> io::Result<W> {
        let mut dir = Vec::with_capacity(self.entries.len() * 8);
        for &(bytes, refs) in &self.entries {
            dir.extend_from_slice(&bytes.to_le_bytes());
            dir.extend_from_slice(&refs.to_le_bytes());
        }
        self.w.write_all(&dir)?;
        self.w.write_all(&fxhash_bytes(&dir).to_le_bytes())?;
        let header = render_header(
            self.fingerprint,
            self.seed,
            self.total_refs,
            self.entries.len() as u32,
        );
        self.w.seek(SeekFrom::Start(0))?;
        self.w.write_all(&header)?;
        self.w.flush()?;
        Ok(self.w)
    }

    /// References written so far.
    pub fn total_refs(&self) -> u64 {
        self.total_refs
    }

    /// Encoded payload bytes written so far (checksums excluded).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }
}

/// What [`compile`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileSummary {
    /// Chunks written.
    pub chunks: u32,
    /// Total references written (`min_refs` rounded up to full chunks).
    pub refs: u64,
    /// Encoded payload bytes (header, checksums, directory excluded).
    pub payload_bytes: u64,
}

/// Generates the `(profile, seed)` stream and compiles at least
/// `min_refs` references into `w` as a chunked trace file.
///
/// The count rounds *up* to whole [`CHUNK_REFS`]-sized chunks (at least
/// one): replay streams only memoize full chunks, so a partial tail
/// would be dead weight, and extra references beyond `min_refs` are
/// simply never requested by shorter runs.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn compile<W: Write + Seek>(
    w: W,
    profile: &AppProfile,
    seed: u64,
    min_refs: usize,
) -> io::Result<CompileSummary> {
    let chunks = min_refs.div_ceil(CHUNK_REFS).max(1);
    let mut writer = TraceWriter::create(w, profile.fingerprint(), seed)?;
    let mut gen = TraceGenerator::new(profile, seed);
    let mut buf: Vec<MemoryAccess> = Vec::with_capacity(CHUNK_REFS);
    for _ in 0..chunks {
        gen.fill(&mut buf);
        writer.write_chunk(&buf)?;
    }
    let summary = CompileSummary {
        chunks: chunks as u32,
        refs: writer.total_refs(),
        payload_bytes: writer.payload_bytes(),
    };
    writer.finish()?;
    Ok(summary)
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// One directory entry, resolved to an absolute file position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Absolute byte offset of the chunk's payload.
    pub offset: u64,
    /// Payload length in bytes (trailing checksum excluded).
    pub bytes: u32,
    /// References encoded in the chunk.
    pub refs: u32,
}

/// The parsed, validated identity of a chunked trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// [`AppProfile::fingerprint`] of the generating profile.
    pub fingerprint: u64,
    /// Generator seed the trace was compiled from.
    pub seed: u64,
    /// Total references stored.
    pub total_refs: u64,
    /// Chunk granularity (always [`CHUNK_REFS`] in version 1).
    pub chunk_refs: u32,
    /// Chunk directory with resolved offsets, in stream order.
    pub chunks: Vec<ChunkEntry>,
}

impl TraceHeader {
    /// Number of chunks in the file.
    pub fn chunk_count(&self) -> u32 {
        self.chunks.len() as u32
    }

    /// Chunks holding exactly [`CHUNK_REFS`] references — the prefix a
    /// replay stream may serve at arena granularity.
    pub fn full_chunks(&self) -> u32 {
        self.chunks
            .iter()
            .take_while(|e| e.refs == self.chunk_refs)
            .count() as u32
    }

    /// A stable fingerprint for *this trace as a replay source*.
    ///
    /// Distinct from the plain profile fingerprint: it folds in the
    /// container identity (magic, version, chunk granularity, length)
    /// so arena keys and checkpoint-journal keys for file-backed
    /// streams can never collide with in-process generated ones, and a
    /// re-recorded file of different length re-keys cleanly.
    pub fn source_fingerprint(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write(&MAGIC);
        h.write(&VERSION.to_le_bytes());
        h.write(&self.chunk_refs.to_le_bytes());
        h.write(&self.fingerprint.to_le_bytes());
        h.write(&self.seed.to_le_bytes());
        h.write(&self.total_refs.to_le_bytes());
        h.finish()
    }
}

/// What a full-file [`TraceReader::validate`] pass verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidateSummary {
    /// Chunks read and checksum-verified.
    pub chunks: u32,
    /// References decoded.
    pub refs: u64,
    /// Payload bytes read (checksums excluded).
    pub payload_bytes: u64,
}

/// Random-access reader over a chunked trace file.
///
/// Construction parses and validates the header and directory; each
/// [`TraceReader::read_chunk`] is then one seek, one buffered read, a
/// checksum verify, and a single decode pass into the caller's buffer.
#[derive(Debug)]
pub struct TraceReader<R: Read + Seek> {
    header: TraceHeader,
    src: R,
    scratch: Vec<u8>,
}

impl TraceReader<BufReader<File>> {
    /// Opens and validates the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure or a malformed
    /// header/directory.
    pub fn open(path: &Path) -> Result<Self, ReadTraceError> {
        TraceReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> TraceReader<R> {
    /// Parses and validates the header and chunk directory of `src`.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure, wrong magic/version,
    /// or an inconsistent header/directory. Chunk payloads are *not*
    /// touched here — use [`TraceReader::validate`] for a full audit.
    pub fn new(mut src: R) -> Result<Self, ReadTraceError> {
        let bad = ReadTraceError::HeaderCorrupt;
        let mut h = [0u8; HEADER_LEN];
        src.seek(SeekFrom::Start(0))?;
        read_exact_or(&mut src, &mut h, bad("file shorter than the fixed header"))?;
        if h[0..8] != MAGIC {
            let mut m = [0u8; 8];
            m.copy_from_slice(&h[0..8]);
            return Err(ReadTraceError::BadFileMagic(m));
        }
        let version = u16::from_le_bytes([h[8], h[9]]);
        if version != VERSION {
            return Err(ReadTraceError::BadFileVersion(version));
        }
        let sum = u64::from_le_bytes(h[HEADER_HASHED..].try_into().expect("8 bytes"));
        if sum != fxhash_bytes(&h[..HEADER_HASHED]) {
            return Err(bad("header checksum mismatch"));
        }
        if h[10] != 0 || h[11] != 0 {
            return Err(bad("reserved header bits set"));
        }
        let chunk_refs = u32::from_le_bytes(h[12..16].try_into().expect("4 bytes"));
        if chunk_refs as usize != CHUNK_REFS {
            return Err(bad("unsupported chunk granularity"));
        }
        let fingerprint = u64::from_le_bytes(h[16..24].try_into().expect("8 bytes"));
        let seed = u64::from_le_bytes(h[24..32].try_into().expect("8 bytes"));
        let total_refs = u64::from_le_bytes(h[32..40].try_into().expect("8 bytes"));
        let chunk_count = u32::from_le_bytes(h[40..44].try_into().expect("4 bytes"));

        // The directory closes the file: chunk_count × 8 bytes + hash.
        let dir_len = u64::from(chunk_count) * 8 + 8;
        let file_len = src.seek(SeekFrom::End(0))?;
        if file_len < HEADER_LEN as u64 + dir_len {
            return Err(bad("file shorter than its chunk directory"));
        }
        src.seek(SeekFrom::End(-(dir_len as i64)))?;
        let mut dir = vec![0u8; dir_len as usize];
        read_exact_or(&mut src, &mut dir, bad("file shorter than its chunk directory"))?;
        let (dir_body, dir_sum) = dir.split_at(dir.len() - 8);
        if u64::from_le_bytes(dir_sum.try_into().expect("8 bytes")) != fxhash_bytes(dir_body) {
            return Err(bad("chunk directory checksum mismatch"));
        }

        let mut chunks = Vec::with_capacity(chunk_count as usize);
        let mut offset = HEADER_LEN as u64;
        let mut refs_sum = 0u64;
        for (i, entry) in dir_body.chunks_exact(8).enumerate() {
            let bytes = u32::from_le_bytes(entry[0..4].try_into().expect("4 bytes"));
            let refs = u32::from_le_bytes(entry[4..8].try_into().expect("4 bytes"));
            if refs == 0 || refs > chunk_refs {
                return Err(bad("chunk reference count out of range"));
            }
            if refs < chunk_refs && i + 1 != chunk_count as usize {
                return Err(bad("non-final chunk is partial"));
            }
            if bytes == 0 {
                return Err(bad("empty chunk payload"));
            }
            chunks.push(ChunkEntry { offset, bytes, refs });
            offset = offset
                .checked_add(u64::from(bytes) + 8)
                .ok_or(ReadTraceError::HeaderCorrupt("chunk offsets overflow"))?;
            refs_sum += u64::from(refs);
        }
        if refs_sum != total_refs {
            return Err(bad("total reference count does not match the directory"));
        }
        Ok(TraceReader {
            header: TraceHeader {
                fingerprint,
                seed,
                total_refs,
                chunk_refs,
                chunks,
            },
            src,
            scratch: Vec::new(),
        })
    }

    /// Builds a reader from an already-parsed header (e.g. cached by a
    /// replay registry) over a fresh byte source of the same file —
    /// skipping the header/directory re-parse of [`TraceReader::new`].
    ///
    /// If the source has changed since the header was parsed (say the
    /// file was truncated underneath the cache), the per-chunk
    /// checksums and EOF checks in [`TraceReader::read_chunk`] still
    /// catch every divergence as a structured error.
    pub fn from_parts(header: TraceHeader, src: R) -> Self {
        TraceReader {
            header,
            src,
            scratch: Vec::new(),
        }
    }

    /// The file's parsed identity and chunk directory.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Reads, verifies, and decodes chunk `index` into `out` (cleared
    /// first), returning the bytes read from the file.
    ///
    /// # Errors
    ///
    /// [`ReadTraceError::ChunkTruncated`] when the file ends early,
    /// [`ReadTraceError::ChunkChecksum`] on a payload checksum
    /// mismatch, [`ReadTraceError::ChunkCorrupt`] when a verified
    /// payload decodes malformed, plus underlying I/O errors.
    pub fn read_chunk(
        &mut self,
        index: u32,
        out: &mut Vec<MemoryAccess>,
    ) -> Result<u64, ReadTraceError> {
        let entry =
            *self
                .header
                .chunks
                .get(index as usize)
                .ok_or(ReadTraceError::ChunkCorrupt {
                    chunk: index,
                    what: "chunk index out of range",
                })?;
        let slot = entry.bytes as usize + 8;
        self.scratch.resize(slot, 0);
        self.src.seek(SeekFrom::Start(entry.offset))?;
        read_exact_or(
            &mut self.src,
            &mut self.scratch,
            ReadTraceError::ChunkTruncated { chunk: index },
        )?;
        let (payload, sum) = self.scratch.split_at(entry.bytes as usize);
        if u64::from_le_bytes(sum.try_into().expect("8 bytes")) != fxhash_bytes(payload) {
            return Err(ReadTraceError::ChunkChecksum { chunk: index });
        }
        decode_chunk(payload, entry.refs as usize, index, out)?;
        Ok(slot as u64)
    }

    /// Reads and decodes every chunk, verifying all checksums.
    ///
    /// # Errors
    ///
    /// The first [`ReadTraceError`] encountered, naming the failing
    /// chunk.
    pub fn validate(&mut self) -> Result<ValidateSummary, ReadTraceError> {
        let mut buf = Vec::with_capacity(CHUNK_REFS);
        let mut refs = 0u64;
        let mut payload_bytes = 0u64;
        let count = self.header.chunk_count();
        for i in 0..count {
            let slot = self.read_chunk(i, &mut buf)?;
            refs += buf.len() as u64;
            payload_bytes += slot - 8;
        }
        Ok(ValidateSummary {
            chunks: count,
            refs,
            payload_bytes,
        })
    }

    /// A flat iterator over every stored reference, decoding chunk by
    /// chunk. Decode errors end the iteration early; call
    /// [`Accesses::finish`] afterwards to surface them — this shape
    /// lets `TraceStats::collect` (which takes any `IntoIterator`)
    /// consume a file directly.
    pub fn accesses(&mut self) -> Accesses<'_, R> {
        Accesses {
            reader: self,
            buf: Vec::new(),
            pos: 0,
            next_chunk: 0,
            error: None,
        }
    }
}

fn read_exact_or<R: Read>(
    src: &mut R,
    buf: &mut [u8],
    on_eof: ReadTraceError,
) -> Result<(), ReadTraceError> {
    src.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            on_eof
        } else {
            ReadTraceError::Io(e)
        }
    })
}

/// Iterator adapter over a [`TraceReader`]'s stored references.
#[derive(Debug)]
pub struct Accesses<'r, R: Read + Seek> {
    reader: &'r mut TraceReader<R>,
    buf: Vec<MemoryAccess>,
    pos: usize,
    next_chunk: u32,
    error: Option<ReadTraceError>,
}

impl<R: Read + Seek> Accesses<'_, R> {
    /// Surfaces the decode error (if any) that ended the iteration.
    ///
    /// # Errors
    ///
    /// The deferred [`ReadTraceError`], when one occurred.
    pub fn finish(self) -> Result<(), ReadTraceError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl<R: Read + Seek> Iterator for Accesses<'_, R> {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        loop {
            if self.pos < self.buf.len() {
                let a = self.buf[self.pos];
                self.pos += 1;
                return Some(a);
            }
            if self.error.is_some() || self.next_chunk >= self.reader.header.chunk_count() {
                return None;
            }
            let index = self.next_chunk;
            self.next_chunk += 1;
            self.pos = 0;
            if let Err(e) = self.reader.read_chunk(index, &mut self.buf) {
                self.buf.clear();
                self.error = Some(e);
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn compile_mem(app: &AppProfile, seed: u64, refs: usize) -> Vec<u8> {
        let mut cur = Cursor::new(Vec::new());
        compile(&mut cur, app, seed, refs).expect("compile");
        cur.into_inner()
    }

    #[test]
    fn roundtrip_matches_generator() {
        let app = AppProfile::browser();
        let bytes = compile_mem(&app, 42, 2 * CHUNK_REFS + 17);
        let mut reader = TraceReader::new(Cursor::new(&bytes)).expect("open");
        assert_eq!(reader.header().chunk_count(), 3);
        assert_eq!(reader.header().total_refs, 3 * CHUNK_REFS as u64);
        assert_eq!(reader.header().fingerprint, app.fingerprint());
        assert_eq!(reader.header().seed, 42);
        let mut got = Vec::new();
        let mut chunk = Vec::new();
        for i in 0..3 {
            reader.read_chunk(i, &mut chunk).expect("chunk");
            assert_eq!(chunk.len(), CHUNK_REFS);
            got.extend_from_slice(&chunk);
        }
        let want: Vec<_> = TraceGenerator::new(&app, 42).take(got.len()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn chunks_decode_independently() {
        // Reading chunk 2 without 0/1 must produce the same bytes the
        // sequential pass does — the per-chunk predictor reset.
        let app = AppProfile::game();
        let bytes = compile_mem(&app, 9, 3 * CHUNK_REFS);
        let want: Vec<_> = TraceGenerator::new(&app, 9)
            .take(3 * CHUNK_REFS)
            .collect();
        let mut reader = TraceReader::new(Cursor::new(&bytes)).expect("open");
        let mut chunk = Vec::new();
        reader.read_chunk(2, &mut chunk).expect("chunk 2");
        assert_eq!(&chunk[..], &want[2 * CHUNK_REFS..]);
    }

    #[test]
    fn validate_audits_every_chunk() {
        let app = AppProfile::music();
        let bytes = compile_mem(&app, 5, CHUNK_REFS + 1);
        let mut reader = TraceReader::new(Cursor::new(&bytes)).expect("open");
        let summary = reader.validate().expect("validate");
        assert_eq!(summary.chunks, 2);
        assert_eq!(summary.refs, 2 * CHUNK_REFS as u64);
        assert!(summary.payload_bytes > 0);
    }

    #[test]
    fn partial_final_chunk_is_representable() {
        // compile() always pads, but the container itself allows a
        // short tail (future external traces); full_chunks excludes it.
        let app = AppProfile::email();
        let trace: Vec<_> = TraceGenerator::new(&app, 3).take(CHUNK_REFS + 100).collect();
        let mut writer =
            TraceWriter::create(Cursor::new(Vec::new()), app.fingerprint(), 3).expect("create");
        writer.write_chunk(&trace[..CHUNK_REFS]).expect("full");
        writer.write_chunk(&trace[CHUNK_REFS..]).expect("tail");
        let bytes = writer.finish().expect("finish").into_inner();
        let mut reader = TraceReader::new(Cursor::new(&bytes)).expect("open");
        assert_eq!(reader.header().chunk_count(), 2);
        assert_eq!(reader.header().full_chunks(), 1);
        assert_eq!(reader.header().total_refs, CHUNK_REFS as u64 + 100);
        let mut chunk = Vec::new();
        reader.read_chunk(1, &mut chunk).expect("tail chunk");
        assert_eq!(&chunk[..], &trace[CHUNK_REFS..]);
    }

    #[test]
    fn source_fingerprint_differs_from_profile_fingerprint() {
        let app = AppProfile::browser();
        let bytes = compile_mem(&app, 1, 100);
        let reader = TraceReader::new(Cursor::new(&bytes)).expect("open");
        let h = reader.header();
        assert_ne!(h.source_fingerprint(), h.fingerprint);
        // And it is sensitive to length: a longer recording re-keys.
        let longer = compile_mem(&app, 1, 2 * CHUNK_REFS);
        let r2 = TraceReader::new(Cursor::new(&longer)).expect("open");
        assert_ne!(h.source_fingerprint(), r2.header().source_fingerprint());
    }

    #[test]
    fn accesses_iterator_streams_the_whole_file() {
        let app = AppProfile::video();
        let bytes = compile_mem(&app, 8, CHUNK_REFS + 5);
        let mut reader = TraceReader::new(Cursor::new(&bytes)).expect("open");
        let total = reader.header().total_refs as usize;
        let mut it = reader.accesses();
        let got: Vec<_> = it.by_ref().collect();
        it.finish().expect("no decode error");
        let want: Vec<_> = TraceGenerator::new(&app, 8).take(total).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn varint_rejects_oversized_encodings() {
        // 11 continuation bytes overflow the 67-bit budget.
        let buf = [0xffu8; 12];
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos, 67).is_none());
        // A valid maximal value round-trips.
        let mut enc = Vec::new();
        let max = (u128::from(u64::MAX) << 3) | 0x7;
        push_varint(&mut enc, max);
        let mut pos = 0;
        assert_eq!(read_varint(&enc, &mut pos, 67), Some(max));
        assert_eq!(pos, enc.len());
    }
}
