//! Interactive smartphone application profiles.
//!
//! The paper evaluates interactive apps (browser, email, maps, games,
//! media, …) running on Android. We model each app as a parameter set
//! describing its user-space memory behaviour plus its kernel-entry
//! pattern: how often it performs syscalls, which kernel
//! [`Service`]s it uses, and how much interrupt
//! traffic it attracts. The suite-average kernel share of L2 accesses is
//! calibrated to the paper's ">40 %" observation (verified by an
//! integration test in `moca-sim`).

use crate::kernel::Service;

/// User-space address layout: apps own everything below the kernel base.
pub mod layout {
    /// Base of the application code region.
    pub const CODE_BASE: u64 = 0x0040_0000;
    /// Base of the application heap region.
    pub const HEAP_BASE: u64 = 0x1000_0000;
    /// Base of the application stack region.
    pub const STACK_BASE: u64 = 0x7000_0000;
    /// Cache-line size used for region sizing.
    pub const LINE: u64 = 64;
}

/// Workload parameters of one interactive application.
///
/// Construct via the named constructors ([`AppProfile::browser`] etc.) or
/// [`AppProfile::by_name`]; tweak fields afterwards for what-if studies.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Short identifier (stable; used in reports and seeds).
    pub name: &'static str,
    /// Lines of application code.
    pub code_lines: u64,
    /// Zipf skew of code-line popularity.
    pub code_theta: f64,
    /// Lines of heap / data working set.
    pub heap_lines: u64,
    /// Zipf skew of heap-line popularity (within the hot core).
    pub heap_theta: f64,
    /// Size of the heap's hot core in lines (the working-set knee).
    pub heap_hot_lines: u64,
    /// Fraction of heap reuse served by the hot core.
    pub heap_hot_frac: f64,
    /// Probability of sequential heap bursts.
    pub heap_p_seq: f64,
    /// Mean heap sequential burst length in lines.
    pub heap_seq_len: f64,
    /// Lines of stack (always hot).
    pub stack_lines: u64,
    /// Fraction of user references that are instruction fetches.
    pub ifetch_frac: f64,
    /// Fraction of user data references that are stores.
    pub store_frac: f64,
    /// Of user data references, fraction going to the stack.
    pub stack_frac: f64,
    /// Mean user references executed between consecutive kernel entries.
    pub mean_user_run: f64,
    /// Relative weights of the kernel services this app invokes.
    pub syscall_mix: Vec<(Service, f64)>,
    /// Probability that a kernel entry is an interrupt rather than a
    /// syscall chosen from `syscall_mix`.
    pub irq_frac: f64,
    /// Relative weights of interrupt services.
    pub irq_mix: Vec<(Service, f64)>,
    /// User+kernel references between scheduler ticks (10 ms at ~1 GHz,
    /// scaled to reference counts).
    pub tick_period_refs: u64,
}

impl AppProfile {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if any field is out of range.
    pub fn validate(&self) {
        assert!(self.code_lines > 0 && self.heap_lines > 0 && self.stack_lines > 0);
        assert!(self.code_theta >= 0.0 && self.heap_theta >= 0.0);
        assert!(
            self.heap_hot_lines > 0 && self.heap_hot_lines <= self.heap_lines,
            "heap hot core must fit in the heap"
        );
        assert!((0.0..=1.0).contains(&self.heap_hot_frac));
        assert!((0.0..=1.0).contains(&self.heap_p_seq));
        assert!(self.heap_seq_len >= 1.0);
        assert!((0.0..=1.0).contains(&self.ifetch_frac));
        assert!((0.0..=1.0).contains(&self.store_frac));
        assert!((0.0..=1.0).contains(&self.stack_frac));
        assert!(self.mean_user_run >= 1.0);
        assert!(!self.syscall_mix.is_empty(), "app must invoke syscalls");
        assert!((0.0..=1.0).contains(&self.irq_frac));
        assert!(self.tick_period_refs > 0);
        if self.irq_frac > 0.0 {
            assert!(!self.irq_mix.is_empty(), "irq_frac > 0 requires irq_mix");
        }
    }

    /// The ten-app evaluation suite plus lookups by name.
    ///
    /// # Examples
    ///
    /// ```
    /// use moca_trace::AppProfile;
    /// assert_eq!(AppProfile::suite().len(), 10);
    /// ```
    pub fn suite() -> Vec<AppProfile> {
        vec![
            Self::browser(),
            Self::email(),
            Self::maps(),
            Self::game(),
            Self::video(),
            Self::music(),
            Self::social(),
            Self::office(),
            Self::pdf(),
            Self::camera(),
        ]
    }

    /// Looks an app profile up by its stable name.
    pub fn by_name(name: &str) -> Option<AppProfile> {
        Self::suite().into_iter().find(|p| p.name == name)
    }

    /// A stable 64-bit fingerprint over *every* profile parameter.
    ///
    /// Two profiles fingerprint equal exactly when every field (name,
    /// region geometry, locality knobs, service mixes) is bit-equal — so
    /// a profile tweaked for a what-if study gets a different fingerprint
    /// than the suite profile it started from. Together with a trace
    /// seed, the fingerprint identifies a generated reference stream;
    /// `moca-sim`'s shared-trace chunk arena uses it as a memoization
    /// key. Hashing is the fixed-seed [`crate::fxhash::FxHasher`], so the
    /// value is identical across runs and processes.
    ///
    /// # Examples
    ///
    /// ```
    /// use moca_trace::AppProfile;
    ///
    /// assert_eq!(AppProfile::music().fingerprint(), AppProfile::music().fingerprint());
    /// let mut tweaked = AppProfile::music();
    /// tweaked.heap_lines += 1;
    /// assert_ne!(AppProfile::music().fingerprint(), tweaked.fingerprint());
    /// ```
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = crate::fxhash::FxHasher::default();
        h.write_usize(self.name.len());
        h.write(self.name.as_bytes());
        for v in [
            self.code_lines,
            self.heap_lines,
            self.heap_hot_lines,
            self.stack_lines,
            self.tick_period_refs,
        ] {
            h.write_u64(v);
        }
        for v in [
            self.code_theta,
            self.heap_theta,
            self.heap_hot_frac,
            self.heap_p_seq,
            self.heap_seq_len,
            self.ifetch_frac,
            self.store_frac,
            self.stack_frac,
            self.mean_user_run,
            self.irq_frac,
        ] {
            h.write_u64(v.to_bits());
        }
        h.write_usize(self.syscall_mix.len());
        for (service, weight) in self.syscall_mix.iter().chain(&self.irq_mix) {
            h.write_u8(*service as u8);
            h.write_u64(weight.to_bits());
        }
        h.finish()
    }

    fn base(name: &'static str) -> AppProfile {
        AppProfile {
            name,
            code_lines: 2048,
            code_theta: 1.45,
            heap_lines: 196_608,
            heap_theta: 0.9,
            heap_hot_lines: 2304,
            heap_hot_frac: 0.88,
            heap_p_seq: 0.15,
            heap_seq_len: 8.0,
            stack_lines: 64,
            ifetch_frac: 0.50,
            store_frac: 0.30,
            stack_frac: 0.30,
            mean_user_run: 900.0,
            syscall_mix: vec![(Service::FileRead, 1.0)],
            irq_frac: 0.10,
            irq_mix: vec![(Service::IrqTouch, 1.0)],
            tick_period_refs: 120_000,
        }
    }

    /// Web browser: large code and heap, network + file heavy, busy UI.
    pub fn browser() -> AppProfile {
        AppProfile {
            code_lines: 4096,
            code_theta: 1.55,
            heap_lines: 327_680,
            heap_theta: 0.9,
            heap_hot_lines: 3584,
            heap_hot_frac: 0.86,
            heap_p_seq: 0.20,
            mean_user_run: 700.0,
            syscall_mix: vec![
                (Service::FileRead, 2.0),
                (Service::Mmap, 1.0),
                (Service::Poll, 2.5),
                (Service::NetRecv, 2.5),
                (Service::NetSend, 1.5),
                (Service::Binder, 1.5),
                (Service::Futex, 1.5),
                (Service::PageFault, 1.0),
            ],
            irq_frac: 0.18,
            irq_mix: vec![(Service::IrqTouch, 2.0), (Service::IrqNet, 3.0)],
            ..Self::base("browser")
        }
    }

    /// Email client: VFS + network metadata traffic.
    pub fn email() -> AppProfile {
        AppProfile {
            heap_lines: 163_840,
            heap_hot_lines: 2048,
            mean_user_run: 900.0,
            syscall_mix: vec![
                (Service::FileRead, 2.0),
                (Service::FileWrite, 1.0),
                (Service::VfsMeta, 2.5),
                (Service::NetRecv, 2.0),
                (Service::NetSend, 1.0),
                (Service::Poll, 1.5),
                (Service::Binder, 1.0),
            ],
            irq_frac: 0.12,
            irq_mix: vec![(Service::IrqTouch, 1.0), (Service::IrqNet, 2.0)],
            ..Self::base("email")
        }
    }

    /// Navigation/maps: large streaming heap (tiles), network + sensors.
    pub fn maps() -> AppProfile {
        AppProfile {
            heap_lines: 393_216,
            heap_theta: 0.85,
            heap_hot_lines: 4096,
            heap_hot_frac: 0.82,
            heap_p_seq: 0.35,
            heap_seq_len: 24.0,
            mean_user_run: 800.0,
            syscall_mix: vec![
                (Service::NetRecv, 3.0),
                (Service::FileRead, 1.5),
                (Service::Ioctl, 2.5),
                (Service::Binder, 1.5),
                (Service::Poll, 1.5),
                (Service::Mmap, 0.5),
            ],
            irq_frac: 0.15,
            irq_mix: vec![(Service::IrqNet, 2.0), (Service::IrqTouch, 1.0)],
            ..Self::base("maps")
        }
    }

    /// Casual game: hot code loop, GPU ioctls, futex-heavy engine threads.
    pub fn game() -> AppProfile {
        AppProfile {
            code_lines: 2048,
            code_theta: 1.55,
            heap_lines: 262_144,
            heap_theta: 1.0,
            heap_hot_lines: 3072,
            heap_hot_frac: 0.90,
            heap_p_seq: 0.25,
            mean_user_run: 1500.0,
            ifetch_frac: 0.52,
            syscall_mix: vec![
                (Service::Ioctl, 4.0),
                (Service::Futex, 2.5),
                (Service::Binder, 1.0),
                (Service::Poll, 1.0),
                (Service::FileRead, 0.5),
            ],
            irq_frac: 0.20,
            irq_mix: vec![(Service::IrqTouch, 3.0)],
            ..Self::base("game")
        }
    }

    /// Video playback: streaming reads and codec buffers.
    pub fn video() -> AppProfile {
        AppProfile {
            heap_lines: 262_144,
            heap_theta: 0.8,
            heap_hot_lines: 3072,
            heap_hot_frac: 0.80,
            heap_p_seq: 0.55,
            heap_seq_len: 32.0,
            mean_user_run: 1000.0,
            store_frac: 0.38,
            syscall_mix: vec![
                (Service::FileRead, 3.5),
                (Service::Ioctl, 3.0),
                (Service::Poll, 1.0),
                (Service::Binder, 0.8),
                (Service::Futex, 0.7),
            ],
            irq_frac: 0.12,
            irq_mix: vec![(Service::IrqDisk, 2.0), (Service::IrqTouch, 0.5)],
            ..Self::base("video")
        }
    }

    /// Music playback: small working set, frequent small reads.
    pub fn music() -> AppProfile {
        AppProfile {
            code_lines: 1024,
            heap_lines: 98_304,
            heap_theta: 1.0,
            heap_hot_lines: 1280,
            heap_hot_frac: 0.92,
            mean_user_run: 1200.0,
            syscall_mix: vec![
                (Service::FileRead, 3.0),
                (Service::Ioctl, 2.0),
                (Service::Poll, 1.0),
                (Service::Binder, 0.8),
            ],
            irq_frac: 0.10,
            irq_mix: vec![(Service::IrqDisk, 1.0), (Service::IrqTouch, 0.5)],
            ..Self::base("music")
        }
    }

    /// Social feed: mix of network, binder and UI activity.
    pub fn social() -> AppProfile {
        AppProfile {
            heap_lines: 229_376,
            heap_hot_lines: 2560,
            mean_user_run: 750.0,
            syscall_mix: vec![
                (Service::NetRecv, 2.5),
                (Service::NetSend, 1.2),
                (Service::Binder, 2.0),
                (Service::Poll, 1.8),
                (Service::FileRead, 1.2),
                (Service::Futex, 1.0),
                (Service::PageFault, 0.8),
            ],
            irq_frac: 0.16,
            irq_mix: vec![(Service::IrqNet, 2.0), (Service::IrqTouch, 2.0)],
            ..Self::base("social")
        }
    }

    /// Office suite: document parsing, VFS-heavy.
    pub fn office() -> AppProfile {
        AppProfile {
            code_lines: 3072,
            heap_lines: 196_608,
            heap_hot_lines: 2304,
            mean_user_run: 1000.0,
            syscall_mix: vec![
                (Service::FileRead, 2.5),
                (Service::FileWrite, 1.5),
                (Service::VfsMeta, 2.0),
                (Service::Mmap, 1.0),
                (Service::Binder, 0.8),
                (Service::PageFault, 1.0),
            ],
            irq_frac: 0.08,
            irq_mix: vec![(Service::IrqTouch, 1.0), (Service::IrqDisk, 1.0)],
            ..Self::base("office")
        }
    }

    /// PDF reader: page rendering loops over mmapped documents.
    pub fn pdf() -> AppProfile {
        AppProfile {
            heap_lines: 294_912,
            heap_theta: 0.9,
            heap_hot_lines: 3072,
            heap_hot_frac: 0.85,
            heap_p_seq: 0.30,
            heap_seq_len: 16.0,
            mean_user_run: 1300.0,
            syscall_mix: vec![
                (Service::FileRead, 2.0),
                (Service::Mmap, 1.5),
                (Service::PageFault, 2.5),
                (Service::VfsMeta, 0.8),
                (Service::Binder, 0.6),
            ],
            irq_frac: 0.10,
            irq_mix: vec![(Service::IrqTouch, 2.0)],
            ..Self::base("pdf")
        }
    }

    /// Camera: huge streaming buffers moved through driver ioctls.
    pub fn camera() -> AppProfile {
        AppProfile {
            heap_lines: 327_680,
            heap_theta: 0.75,
            heap_hot_lines: 3072,
            heap_hot_frac: 0.78,
            heap_p_seq: 0.6,
            heap_seq_len: 48.0,
            store_frac: 0.42,
            mean_user_run: 800.0,
            syscall_mix: vec![
                (Service::Ioctl, 4.5),
                (Service::Binder, 1.5),
                (Service::FileWrite, 1.5),
                (Service::Poll, 1.0),
                (Service::Futex, 0.8),
            ],
            irq_frac: 0.18,
            irq_mix: vec![(Service::IrqTouch, 1.0), (Service::IrqDisk, 1.5)],
            ..Self::base("camera")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_distinct_apps() {
        let suite = AppProfile::suite();
        assert_eq!(suite.len(), 10);
        let mut names: Vec<_> = suite.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "app names must be unique");
    }

    #[test]
    fn all_profiles_validate() {
        for p in AppProfile::suite() {
            p.validate();
        }
    }

    #[test]
    fn by_name_roundtrip() {
        for p in AppProfile::suite() {
            let found = AppProfile::by_name(p.name).expect("lookup");
            assert_eq!(found, p);
        }
        assert!(AppProfile::by_name("nonexistent").is_none());
    }

    #[test]
    fn profiles_have_distinct_personalities() {
        let video = AppProfile::video();
        let game = AppProfile::game();
        assert!(video.heap_p_seq > game.heap_p_seq, "video streams more");
        assert!(game.code_theta > video.code_theta, "game code is hotter");
    }

    #[test]
    fn user_regions_fit_below_kernel() {
        use crate::kernel::layout::KERNEL_BASE;
        for p in AppProfile::suite() {
            let heap_end = layout::HEAP_BASE + p.heap_lines * layout::LINE;
            let code_end = layout::CODE_BASE + p.code_lines * layout::LINE;
            let stack_end = layout::STACK_BASE + p.stack_lines * layout::LINE;
            assert!(heap_end < layout::STACK_BASE, "{}: heap runs into stack", p.name);
            assert!(code_end < layout::HEAP_BASE, "{}: code runs into heap", p.name);
            assert!(stack_end < KERNEL_BASE, "{}: stack runs into kernel", p.name);
        }
    }
}
