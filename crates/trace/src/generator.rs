//! The trace generator: interleaves user-mode execution with kernel
//! service bursts according to an [`AppProfile`].
//!
//! A generated trace is an infinite, deterministic stream of
//! [`MemoryAccess`] records. The structure mirrors how interactive apps
//! actually execute: runs of user-space references punctuated by syscall /
//! interrupt bursts, with a periodic scheduler tick.
//!
//! # Examples
//!
//! ```
//! use moca_trace::{AppProfile, TraceGenerator, Mode};
//!
//! let gen = TraceGenerator::new(&AppProfile::browser(), 42);
//! let trace: Vec<_> = gen.take(10_000).collect();
//! let kernel = trace.iter().filter(|a| a.mode == Mode::Kernel).count();
//! assert!(kernel > 0, "interactive apps enter the kernel constantly");
//! ```

use crate::access::{AccessKind, MemoryAccess, Mode};
use crate::apps::{layout, AppProfile};
use crate::kernel::{KernelModel, Service};
use crate::locality::{Region, RegionSpec, RegionStream};
use crate::rng::Xoshiro256;

/// Deterministic per-app seed mixing: the same `seed` drives different
/// streams for different app names.
fn mix_name(seed: u64, name: &str) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// An infinite, deterministic memory-reference stream for one app.
///
/// Implements [`Iterator`] with `Item = MemoryAccess`; use standard
/// adapters (`take`, `filter`, ...) to shape it.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: AppProfile,
    code: RegionStream,
    heap: RegionStream,
    stack: RegionStream,
    kernel: KernelModel,
    rng: Xoshiro256,
    /// Generated-ahead accesses; `buf[pos..]` is the unconsumed tail.
    /// A plain `Vec` plus cursor (rather than a `VecDeque`) keeps the
    /// storage contiguous so [`TraceGenerator::fill`] can memcpy it out.
    buf: Vec<MemoryAccess>,
    pos: usize,
    refs_until_tick: i64,
    last_pc: u64,
    syscall_services: Vec<Service>,
    syscall_weights: Vec<f64>,
    irq_services: Vec<Service>,
    irq_weights: Vec<f64>,
}

impl TraceGenerator {
    /// Builds a generator for `profile` with the given seed.
    ///
    /// The same `(profile, seed)` pair always yields the same stream.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`AppProfile::validate`].
    pub fn new(profile: &AppProfile, seed: u64) -> Self {
        profile.validate();
        let mut rng = Xoshiro256::seed_from_u64(mix_name(seed, profile.name));
        let line = layout::LINE;

        let code_region = Region::new(layout::CODE_BASE, profile.code_lines, line);
        let code_spec =
            RegionSpec::new(profile.code_lines, profile.code_theta, 0.5, 6.0).with_temporal(0.60, 6.0);
        let mut code_rng = rng.fork(1);
        let code = RegionStream::new(code_region, code_spec, &mut code_rng);

        let heap_region = Region::new(layout::HEAP_BASE, profile.heap_lines, line);
        let heap_spec = RegionSpec::new(
            profile.heap_lines,
            profile.heap_theta,
            profile.heap_p_seq,
            profile.heap_seq_len,
        )
        .with_hot(profile.heap_hot_lines, profile.heap_hot_frac)
        .with_temporal(0.60, 5.0);
        let mut heap_rng = rng.fork(2);
        let heap = RegionStream::new(heap_region, heap_spec, &mut heap_rng);

        let stack_region = Region::new(layout::STACK_BASE, profile.stack_lines, line);
        let stack_spec = RegionSpec::new(profile.stack_lines, 0.8, 0.3, 3.0).with_temporal(0.70, 4.0);
        let mut stack_rng = rng.fork(3);
        let stack = RegionStream::new(stack_region, stack_spec, &mut stack_rng);

        let mut kernel_rng = rng.fork(4);
        let kernel = KernelModel::new(&mut kernel_rng);

        let (syscall_services, syscall_weights) =
            profile.syscall_mix.iter().copied().unzip();
        let (irq_services, irq_weights) = profile.irq_mix.iter().copied().unzip();

        let tick = profile.tick_period_refs as i64;
        Self {
            profile: profile.clone(),
            code,
            heap,
            stack,
            kernel,
            rng,
            buf: Vec::with_capacity(Self::DEFAULT_CHUNK),
            pos: 0,
            refs_until_tick: tick,
            last_pc: layout::CODE_BASE,
            syscall_services,
            syscall_weights,
            irq_services,
            irq_weights,
        }
    }

    /// The profile this generator was built from.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    fn emit_user_run(&mut self) -> usize {
        // Log-normal run length: bursty inter-syscall behaviour.
        let mean = self.profile.mean_user_run;
        let sigma = 0.6f64;
        let mu = mean.ln() - sigma * sigma / 2.0;
        let len = self
            .rng
            .log_normal(mu, sigma)
            .round()
            .clamp(16.0, mean * 10.0) as usize;
        for _ in 0..len {
            let access = if self.rng.chance(self.profile.ifetch_frac) {
                let addr = self.code.next_addr(&mut self.rng);
                self.last_pc = addr;
                MemoryAccess::new(addr, addr, AccessKind::InstrFetch, Mode::User)
            } else {
                let addr = if self.rng.chance(self.profile.stack_frac) {
                    self.stack.next_addr(&mut self.rng)
                } else {
                    self.heap.next_addr(&mut self.rng)
                };
                let kind = if self.rng.chance(self.profile.store_frac) {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                MemoryAccess::new(addr, self.last_pc, kind, Mode::User)
            };
            self.buf.push(access);
        }
        len
    }

    fn pick_kernel_entry(&mut self) -> Service {
        if self.refs_until_tick <= 0 {
            self.refs_until_tick += self.profile.tick_period_refs as i64;
            return Service::SchedTick;
        }
        if !self.irq_services.is_empty() && self.rng.chance(self.profile.irq_frac) {
            let i = self.rng.weighted_index(&self.irq_weights);
            return self.irq_services[i];
        }
        let i = self.rng.weighted_index(&self.syscall_weights);
        self.syscall_services[i]
    }

    /// Regenerates the buffer: user run / kernel burst pairs written in
    /// place (no per-access queue shuffling, no temporaries) until at
    /// least [`Self::DEFAULT_CHUNK`] accesses are staged.
    ///
    /// Generating a full chunk per refill — rather than one run at a
    /// time — amortizes the refill bookkeeping over thousands of
    /// accesses, so the [`Iterator`] path and [`TraceGenerator::fill`]
    /// share one chunked buffer and one cost profile. Both paths consume
    /// the identical stream; only the generate-ahead distance differs
    /// from generating run-by-run.
    ///
    /// Must only be called once the previous buffer is fully consumed.
    fn refill(&mut self) {
        debug_assert!(self.pos >= self.buf.len(), "refill with unconsumed accesses");
        self.buf.clear();
        self.pos = 0;
        while self.buf.len() < Self::DEFAULT_CHUNK {
            let user = self.emit_user_run();
            let service = self.pick_kernel_entry();
            let kernel = self
                .kernel
                .emit_burst(service, &mut self.rng, &mut self.buf);
            self.refs_until_tick -= (user + kernel) as i64;
        }
    }

    /// Default number of accesses [`TraceGenerator::fill`] produces into
    /// a buffer with no reserved capacity.
    pub const DEFAULT_CHUNK: usize = 8192;

    /// Fills `out` (cleared first) with the next chunk of the stream and
    /// returns how many accesses were written.
    ///
    /// The chunk size is `out.capacity()`, or [`Self::DEFAULT_CHUNK`] if
    /// the buffer has no capacity yet — so callers allocate once and
    /// reuse the same buffer for every chunk. The stream is infinite, so
    /// the buffer is always filled to the chunk size. Chunks are copied
    /// out with `extend_from_slice` (a memcpy per generated run), not
    /// one `next()` call per access; interleaving `fill` with the
    /// [`Iterator`] interface is allowed and consumes the same stream.
    pub fn fill(&mut self, out: &mut Vec<MemoryAccess>) -> usize {
        out.clear();
        if out.capacity() == 0 {
            out.reserve(Self::DEFAULT_CHUNK);
        }
        let target = out.capacity();
        while out.len() < target {
            if self.pos >= self.buf.len() {
                self.refill();
            }
            let take = (self.buf.len() - self.pos).min(target - out.len());
            out.extend_from_slice(&self.buf[self.pos..self.pos + take]);
            self.pos += take;
        }
        out.len()
    }
}

impl Iterator for TraceGenerator {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        if self.pos >= self.buf.len() {
            self.refill();
        }
        let access = self.buf[self.pos];
        self.pos += 1;
        Some(access)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::layout::is_kernel_addr;

    fn sample(name: &str, n: usize, seed: u64) -> Vec<MemoryAccess> {
        let profile = AppProfile::by_name(name).expect("known app");
        TraceGenerator::new(&profile, seed).take(n).collect()
    }

    #[test]
    fn stream_is_deterministic() {
        assert_eq!(sample("browser", 5000, 7), sample("browser", 5000, 7));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(sample("browser", 5000, 7), sample("browser", 5000, 8));
    }

    #[test]
    fn different_apps_differ_with_same_seed() {
        assert_ne!(sample("browser", 5000, 7), sample("email", 5000, 7));
    }

    #[test]
    fn modes_match_address_spaces() {
        for a in sample("social", 20_000, 3) {
            match a.mode {
                Mode::Kernel => assert!(is_kernel_addr(a.addr)),
                Mode::User => assert!(!is_kernel_addr(a.addr)),
            }
        }
    }

    #[test]
    fn kernel_share_is_substantial_in_raw_trace() {
        // Raw (pre-L1) kernel share: should be meaningful but below the
        // post-L1 share (L1 filters user traffic harder; see moca-sim).
        for p in AppProfile::suite() {
            let trace: Vec<_> = TraceGenerator::new(&p, 11).take(200_000).collect();
            let kernel = trace.iter().filter(|a| a.mode == Mode::Kernel).count();
            let share = kernel as f64 / trace.len() as f64;
            assert!(
                (0.05..0.80).contains(&share),
                "{}: raw kernel share {share:.2} out of plausible band",
                p.name
            );
        }
    }

    #[test]
    fn trace_alternates_modes() {
        let trace = sample("email", 100_000, 5);
        let switches = trace
            .windows(2)
            .filter(|w| w[0].mode != w[1].mode)
            .count();
        assert!(
            switches > 20,
            "expected many user/kernel transitions, got {switches}"
        );
    }

    #[test]
    fn scheduler_tick_fires() {
        let p = AppProfile::music();
        let trace: Vec<_> = TraceGenerator::new(&p, 13)
            .take(p.tick_period_refs as usize * 4)
            .collect();
        use crate::kernel::layout::{SCHED_BASE, SCHED_LINES, LINE};
        let sched_hits = trace
            .iter()
            .filter(|a| a.addr >= SCHED_BASE && a.addr < SCHED_BASE + SCHED_LINES * LINE)
            .count();
        assert!(sched_hits > 0, "tick must touch scheduler data");
    }

    #[test]
    fn stores_present_in_both_modes() {
        let trace = sample("camera", 100_000, 17);
        for mode in Mode::ALL {
            let stores = trace
                .iter()
                .filter(|a| a.mode == mode && a.kind.is_write())
                .count();
            assert!(stores > 0, "{mode} should issue stores");
        }
    }

    #[test]
    fn fill_matches_iterator_stream() {
        let profile = AppProfile::by_name("browser").expect("known app");
        let expected = sample("browser", 50_000, 21);

        let mut gen = TraceGenerator::new(&profile, 21);
        let mut chunk = Vec::with_capacity(4096);
        let mut got = Vec::new();
        while got.len() < expected.len() {
            let n = gen.fill(&mut chunk);
            assert_eq!(n, chunk.len());
            assert_eq!(n, chunk.capacity(), "infinite stream fills to capacity");
            got.extend_from_slice(&chunk);
        }
        got.truncate(expected.len());
        assert_eq!(got, expected);
    }

    #[test]
    fn fill_defaults_chunk_size_for_empty_buffers() {
        let profile = AppProfile::by_name("email").expect("known app");
        let mut gen = TraceGenerator::new(&profile, 3);
        let mut chunk = Vec::new();
        assert_eq!(gen.fill(&mut chunk), TraceGenerator::DEFAULT_CHUNK);
    }

    #[test]
    fn fill_interleaves_with_iterator() {
        let profile = AppProfile::by_name("social").expect("known app");
        let expected = sample("social", 3000, 9);

        let mut gen = TraceGenerator::new(&profile, 9);
        let mut got = Vec::new();
        let mut chunk = Vec::with_capacity(1000);
        got.extend(gen.by_ref().take(500));
        gen.fill(&mut chunk);
        got.extend_from_slice(&chunk);
        got.extend(gen.by_ref().take(500));
        gen.fill(&mut chunk);
        got.extend_from_slice(&chunk);
        got.truncate(expected.len());
        assert_eq!(got, expected);
    }

    #[test]
    fn profile_accessor_returns_input() {
        let p = AppProfile::game();
        let gen = TraceGenerator::new(&p, 1);
        assert_eq!(gen.profile(), &p);
    }
}
