//! Trace serialization.
//!
//! Two interchange formats are provided:
//!
//! * a compact **binary** format (`MOCA` magic, version byte, LEB128
//!   varint-encoded records with address/PC delta compression), suitable
//!   for storing long traces, and
//! * a one-record-per-line **text** format for eyeballing and diffing.
//!
//! Both round-trip exactly; see the property tests at the bottom.

use std::io::{self, BufRead, Read, Write};

use crate::access::{AccessKind, MemoryAccess, Mode};

/// Binary format magic bytes.
pub const MAGIC: [u8; 4] = *b"MOCA";
/// Binary format version.
pub const VERSION: u8 = 1;

/// Errors produced when decoding a trace.
///
/// The first four variants belong to the legacy stream format of this
/// module; the `File*`/`Header*`/`Chunk*` variants are produced by the
/// chunked container in [`crate::binfmt`]. Chunk-level variants carry
/// the index of the failing chunk so a corrupt corpus file can be
/// reported (and repaired) precisely. All of them flow into the
/// workspace `MocaError::Trace` through its existing `From` impl.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `MOCA` magic.
    BadMagic([u8; 4]),
    /// Unsupported format version.
    BadVersion(u8),
    /// A record field had an invalid encoding.
    Corrupt(&'static str),
    /// A chunked trace file does not start with the `MOCATRC` magic.
    BadFileMagic([u8; 8]),
    /// Unsupported chunked trace file version.
    BadFileVersion(u16),
    /// The fixed header or chunk directory of a chunked trace file is
    /// inconsistent (truncated, checksum mismatch, impossible counts).
    HeaderCorrupt(&'static str),
    /// The file ended before chunk `chunk`'s payload (directory intact,
    /// payload truncated — e.g. a recording cut short after the fact).
    ChunkTruncated {
        /// Index of the chunk whose payload could not be read in full.
        chunk: u32,
    },
    /// Chunk `chunk`'s payload does not match its recorded checksum.
    ChunkChecksum {
        /// Index of the chunk whose checksum failed.
        chunk: u32,
    },
    /// Chunk `chunk`'s payload decoded to something structurally invalid
    /// even though its checksum matched (encoder bug or crafted file).
    ChunkCorrupt {
        /// Index of the malformed chunk.
        chunk: u32,
        /// What was wrong with it.
        what: &'static str,
    },
}

impl std::fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::BadMagic(m) => write!(f, "bad trace magic {m:?}"),
            ReadTraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            ReadTraceError::Corrupt(what) => write!(f, "corrupt trace record: {what}"),
            ReadTraceError::BadFileMagic(m) => write!(f, "bad trace file magic {m:?}"),
            ReadTraceError::BadFileVersion(v) => {
                write!(f, "unsupported trace file version {v}")
            }
            ReadTraceError::HeaderCorrupt(what) => {
                write!(f, "corrupt trace file header: {what}")
            }
            ReadTraceError::ChunkTruncated { chunk } => {
                write!(f, "trace file truncated reading chunk {chunk}")
            }
            ReadTraceError::ChunkChecksum { chunk } => {
                write!(f, "checksum mismatch in trace chunk {chunk}")
            }
            ReadTraceError::ChunkCorrupt { chunk, what } => {
                write!(f, "corrupt trace chunk {chunk}: {what}")
            }
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> Result<u64, ReadTraceError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(ReadTraceError::Corrupt("varint overflows u64"));
        }
        v |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// ZigZag encoding maps signed deltas onto small unsigned varints.
pub(crate) fn zigzag(v: i64) -> u64 {
    (v.wrapping_shl(1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

pub(crate) fn tag(kind: AccessKind, mode: Mode) -> u8 {
    (kind.index() as u8) | ((mode.index() as u8) << 2)
}

fn untag(byte: u8) -> Result<(AccessKind, Mode), ReadTraceError> {
    let kind = match byte & 0x3 {
        0 => AccessKind::InstrFetch,
        1 => AccessKind::Load,
        2 => AccessKind::Store,
        _ => return Err(ReadTraceError::Corrupt("unknown access kind")),
    };
    let mode = match (byte >> 2) & 0x1 {
        0 => Mode::User,
        _ => Mode::Kernel,
    };
    if byte & !0x7 != 0 {
        return Err(ReadTraceError::Corrupt("reserved tag bits set"));
    }
    Ok((kind, mode))
}

/// Writes a trace in the binary format.
///
/// A mutable reference to any [`Write`] can be passed (e.g. `&mut file`).
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Examples
///
/// ```
/// # fn main() -> std::io::Result<()> {
/// use moca_trace::{io::{write_binary, read_binary}, AccessKind, MemoryAccess, Mode};
///
/// let trace = vec![MemoryAccess::new(64, 4, AccessKind::Load, Mode::User)];
/// let mut buf = Vec::new();
/// write_binary(&mut buf, trace.iter().copied())?;
/// let back = read_binary(&mut buf.as_slice()).expect("roundtrip");
/// assert_eq!(back, trace);
/// # Ok(())
/// # }
/// ```
pub fn write_binary<W, I>(mut writer: W, trace: I) -> io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = MemoryAccess>,
{
    writer.write_all(&MAGIC)?;
    writer.write_all(&[VERSION])?;
    let mut prev_addr = 0u64;
    let mut prev_pc = 0u64;
    for a in trace {
        writer.write_all(&[tag(a.kind, a.mode)])?;
        // Wrapping deltas: correct for the full u64 address space, and
        // small (hence short varints) on locality-rich traces.
        write_varint(&mut writer, zigzag(a.addr.wrapping_sub(prev_addr) as i64))?;
        write_varint(&mut writer, zigzag(a.pc.wrapping_sub(prev_pc) as i64))?;
        prev_addr = a.addr;
        prev_pc = a.pc;
    }
    Ok(())
}

/// Reads a complete binary trace.
///
/// # Errors
///
/// Returns [`ReadTraceError`] on malformed input or I/O failure.
pub fn read_binary<R: Read>(mut reader: R) -> Result<Vec<MemoryAccess>, ReadTraceError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(ReadTraceError::BadMagic(magic));
    }
    let mut version = [0u8; 1];
    reader.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(ReadTraceError::BadVersion(version[0]));
    }
    let mut out = Vec::new();
    let mut prev_addr = 0u64;
    let mut prev_pc = 0u64;
    loop {
        let mut tag_byte = [0u8; 1];
        match reader.read_exact(&mut tag_byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let (kind, mode) = untag(tag_byte[0])?;
        let addr = prev_addr.wrapping_add(unzigzag(read_varint(&mut reader)?) as u64);
        let pc = prev_pc.wrapping_add(unzigzag(read_varint(&mut reader)?) as u64);
        prev_addr = addr;
        prev_pc = pc;
        out.push(MemoryAccess::new(addr, pc, kind, mode));
    }
    Ok(out)
}

/// Writes a trace in the line-oriented text format:
/// `<U|K> <I|L|S> <addr-hex> <pc-hex>`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_text<W, I>(mut writer: W, trace: I) -> io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = MemoryAccess>,
{
    for a in trace {
        let m = match a.mode {
            Mode::User => 'U',
            Mode::Kernel => 'K',
        };
        let k = match a.kind {
            AccessKind::InstrFetch => 'I',
            AccessKind::Load => 'L',
            AccessKind::Store => 'S',
        };
        writeln!(writer, "{m} {k} {:x} {:x}", a.addr, a.pc)?;
    }
    Ok(())
}

/// Reads the text format produced by [`write_text`].
///
/// Blank lines and lines starting with `#` are ignored.
///
/// # Errors
///
/// Returns [`ReadTraceError::Corrupt`] on malformed lines.
pub fn read_text<R: BufRead>(reader: R) -> Result<Vec<MemoryAccess>, ReadTraceError> {
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_ascii_whitespace();
        let mode = match parts.next() {
            Some("U") => Mode::User,
            Some("K") => Mode::Kernel,
            _ => return Err(ReadTraceError::Corrupt("bad mode field")),
        };
        let kind = match parts.next() {
            Some("I") => AccessKind::InstrFetch,
            Some("L") => AccessKind::Load,
            Some("S") => AccessKind::Store,
            _ => return Err(ReadTraceError::Corrupt("bad kind field")),
        };
        let addr = parts
            .next()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or(ReadTraceError::Corrupt("bad address field"))?;
        let pc = parts
            .next()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or(ReadTraceError::Corrupt("bad pc field"))?;
        if parts.next().is_some() {
            return Err(ReadTraceError::Corrupt("trailing fields"));
        }
        out.push(MemoryAccess::new(addr, pc, kind, mode));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppProfile;
    use crate::generator::TraceGenerator;

    fn sample_trace(n: usize) -> Vec<MemoryAccess> {
        TraceGenerator::new(&AppProfile::browser(), 3).take(n).collect()
    }

    #[test]
    fn binary_roundtrip() {
        let trace = sample_trace(10_000);
        let mut buf = Vec::new();
        write_binary(&mut buf, trace.iter().copied()).expect("write");
        let back = read_binary(buf.as_slice()).expect("read");
        assert_eq!(back, trace);
    }

    #[test]
    fn binary_is_compact() {
        let trace = sample_trace(10_000);
        let mut buf = Vec::new();
        write_binary(&mut buf, trace.iter().copied()).expect("write");
        // Naive encoding would be 17+ bytes/record; delta varints should
        // be well under that on locality-rich traces.
        let per_record = buf.len() as f64 / trace.len() as f64;
        assert!(per_record < 14.0, "encoding too large: {per_record} B/rec");
    }

    #[test]
    fn empty_trace_roundtrip() {
        let mut buf = Vec::new();
        write_binary(&mut buf, std::iter::empty()).expect("write");
        assert_eq!(buf.len(), 5);
        let back = read_binary(buf.as_slice()).expect("read");
        assert!(back.is_empty());
    }

    #[test]
    fn text_roundtrip() {
        let trace = sample_trace(2000);
        let mut buf = Vec::new();
        write_text(&mut buf, trace.iter().copied()).expect("write");
        let back = read_text(buf.as_slice()).expect("read");
        assert_eq!(back, trace);
    }

    #[test]
    fn text_ignores_comments_and_blanks() {
        let input = "# comment\n\nU L 40 8\n";
        let trace = read_text(input.as_bytes()).expect("read");
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].addr, 0x40);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_binary(&b"NOPE\x01"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic(_)));
    }

    #[test]
    fn bad_version_is_rejected() {
        let err = read_binary(&b"MOCA\xff"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadVersion(0xff)));
    }

    #[test]
    fn corrupt_text_is_rejected() {
        assert!(read_text(&b"X L 40 8\n"[..]).is_err());
        assert!(read_text(&b"U Q 40 8\n"[..]).is_err());
        assert!(read_text(&b"U L zz 8\n"[..]).is_err());
        assert!(read_text(&b"U L 40\n"[..]).is_err());
        assert!(read_text(&b"U L 40 8 9\n"[..]).is_err());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123_456_789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).expect("write");
            let back = read_varint(&mut buf.as_slice()).expect("read");
            assert_eq!(back, v);
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = ReadTraceError::Corrupt("bad mode field");
        assert!(e.to_string().contains("bad mode field"));
    }
}
