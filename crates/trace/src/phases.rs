//! Phased workloads: app switching and usage sessions.
//!
//! Real phone usage is not one app forever — users bounce between apps,
//! and each switch drags a new working set through the caches while the
//! kernel footprint persists. [`PhasedWorkload`] chains per-app
//! [`TraceGenerator`]s into one stream with deterministic switch points,
//! which is what gives the dynamic design (F7) real phase changes to
//! adapt to.
//!
//! # Examples
//!
//! ```
//! use moca_trace::phases::PhasedWorkload;
//! use moca_trace::{AppProfile, Mode};
//!
//! let w = PhasedWorkload::new(
//!     vec![(AppProfile::music(), 10_000), (AppProfile::game(), 10_000)],
//!     7,
//! );
//! let trace: Vec<_> = w.collect();
//! assert_eq!(trace.len(), 20_000);
//! assert!(trace.iter().any(|a| a.mode == Mode::Kernel));
//! ```

use crate::access::MemoryAccess;
use crate::apps::AppProfile;
use crate::generator::TraceGenerator;

/// A sequence of app phases, each running for a fixed reference count.
///
/// Implements [`Iterator`]; the stream ends after the last phase (wrap it
/// in [`PhasedWorkload::cycle`] for an endless session).
#[derive(Debug, Clone)]
pub struct PhasedWorkload {
    phases: Vec<(AppProfile, u64)>,
    seed: u64,
    current: Option<TraceGenerator>,
    phase_idx: usize,
    emitted_in_phase: u64,
    cycle: bool,
    lap: u64,
}

impl PhasedWorkload {
    /// Builds a workload from `(profile, refs)` phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has zero references.
    pub fn new(phases: Vec<(AppProfile, u64)>, seed: u64) -> Self {
        assert!(!phases.is_empty(), "a workload needs at least one phase");
        for (p, refs) in &phases {
            p.validate();
            assert!(*refs > 0, "phase '{}' has zero references", p.name);
        }
        Self {
            phases,
            seed,
            current: None,
            phase_idx: 0,
            emitted_in_phase: 0,
            cycle: false,
            lap: 0,
        }
    }

    /// A "mixed usage" session cycling through the whole ten-app suite,
    /// `refs_per_app` references each — the synthetic composite workload
    /// of the evaluation.
    pub fn mixed_session(refs_per_app: u64, seed: u64) -> Self {
        Self::new(
            AppProfile::suite()
                .into_iter()
                .map(|p| (p, refs_per_app))
                .collect(),
            seed,
        )
    }

    /// Makes the workload repeat forever (each lap re-seeds the apps so
    /// laps differ but the whole stream stays deterministic).
    pub fn cycle(mut self) -> Self {
        self.cycle = true;
        self
    }

    /// Total references of one lap.
    pub fn lap_refs(&self) -> u64 {
        self.phases.iter().map(|(_, r)| r).sum()
    }

    /// Name of the app currently (or next to be) emitted.
    pub fn current_app(&self) -> &str {
        self.phases[self.phase_idx.min(self.phases.len() - 1)].0.name
    }

    fn start_phase(&mut self) {
        let (profile, _) = &self.phases[self.phase_idx];
        // Each phase (and lap) gets an independent deterministic stream.
        let phase_seed = self
            .seed
            .wrapping_add((self.phase_idx as u64 + 1).wrapping_mul(0x9E37_79B9))
            .wrapping_add(self.lap.wrapping_mul(0x85EB_CA6B));
        self.current = Some(TraceGenerator::new(profile, phase_seed));
        self.emitted_in_phase = 0;
    }
}

impl Iterator for PhasedWorkload {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        loop {
            if self.phase_idx >= self.phases.len() {
                if !self.cycle {
                    return None;
                }
                self.phase_idx = 0;
                self.lap += 1;
                self.current = None;
            }
            if self.current.is_none() {
                self.start_phase();
            }
            let limit = self.phases[self.phase_idx].1;
            if self.emitted_in_phase >= limit {
                self.phase_idx += 1;
                self.current = None;
                continue;
            }
            self.emitted_in_phase += 1;
            // TraceGenerator is infinite, so next() is always Some.
            return self.current.as_mut().expect("phase started").next();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::layout;
    use crate::kernel::layout::is_kernel_addr;
    use crate::stats::TraceStats;

    #[test]
    fn phases_emit_exact_counts() {
        let w = PhasedWorkload::new(
            vec![(AppProfile::music(), 5000), (AppProfile::game(), 3000)],
            1,
        );
        assert_eq!(w.lap_refs(), 8000);
        assert_eq!(w.count(), 8000);
    }

    #[test]
    fn deterministic() {
        let mk = || {
            PhasedWorkload::new(
                vec![(AppProfile::music(), 4000), (AppProfile::email(), 4000)],
                9,
            )
            .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn phase_switch_changes_user_footprint() {
        // music's heap is smaller than maps'; after the switch, user
        // addresses beyond music's heap must appear.
        let music = AppProfile::music();
        let maps = AppProfile::maps();
        let music_heap_end = layout::HEAP_BASE + music.heap_lines * layout::LINE;
        let w = PhasedWorkload::new(vec![(music, 20_000), (maps, 20_000)], 3);
        let trace: Vec<_> = w.collect();
        let first_half_beyond = trace[..20_000]
            .iter()
            .filter(|a| !is_kernel_addr(a.addr))
            .filter(|a| a.addr >= music_heap_end && a.addr < layout::STACK_BASE)
            .count();
        let second_half_beyond = trace[20_000..]
            .iter()
            .filter(|a| !is_kernel_addr(a.addr))
            .filter(|a| a.addr >= music_heap_end && a.addr < layout::STACK_BASE)
            .count();
        assert_eq!(first_half_beyond, 0, "music stays within its heap");
        assert!(second_half_beyond > 0, "maps reaches beyond music's heap");
    }

    #[test]
    fn mixed_session_covers_suite() {
        let w = PhasedWorkload::mixed_session(1000, 5);
        assert_eq!(w.lap_refs(), 10_000);
        let stats = TraceStats::collect(w, 64);
        assert_eq!(stats.total_accesses(), 10_000);
        assert!(stats.kernel_share() > 0.05);
    }

    #[test]
    fn cycle_repeats_with_different_laps() {
        let base: Vec<_> = PhasedWorkload::new(vec![(AppProfile::music(), 2000)], 4)
            .cycle()
            .take(6000)
            .collect();
        assert_eq!(base.len(), 6000);
        // Laps are re-seeded, so lap 2 differs from lap 1.
        assert_ne!(&base[..2000], &base[2000..4000]);
    }

    #[test]
    fn current_app_tracks_phase() {
        let mut w = PhasedWorkload::new(
            vec![(AppProfile::music(), 10), (AppProfile::game(), 10)],
            2,
        );
        assert_eq!(w.current_app(), "music");
        for _ in 0..11 {
            w.next();
        }
        assert_eq!(w.current_app(), "game");
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_workload_panics() {
        PhasedWorkload::new(vec![], 1);
    }

    #[test]
    #[should_panic(expected = "zero references")]
    fn zero_refs_phase_panics() {
        PhasedWorkload::new(vec![(AppProfile::music(), 0)], 1);
    }
}
