//! # moca-trace — smartphone workload and memory-trace synthesis
//!
//! This crate is the workload substrate of the `moca` project, a
//! reproduction of *"Energy-efficient cache design in emerging mobile
//! platforms"* (DATE'15) / *"Exploring Energy-Efficient Cache Design in
//! Emerging Mobile Platforms"* (TODAES'17). It generates deterministic,
//! user/kernel-tagged memory reference traces that stand in for the
//! paper's gem5 full-system Android captures (see `DESIGN.md` for the
//! substitution argument).
//!
//! ## Quick start
//!
//! ```
//! use moca_trace::{AppProfile, TraceGenerator, TraceStats, Mode};
//!
//! // Build the browser workload and look at 100k references.
//! let gen = TraceGenerator::new(&AppProfile::browser(), 42);
//! let stats = TraceStats::collect(gen.take(100_000), 64);
//!
//! // Interactive apps spend a lot of time in the kernel.
//! assert!(stats.kernel_share() > 0.10);
//! assert!(stats.mode(Mode::Kernel).unique_lines > 0);
//! ```
//!
//! ## Module map
//!
//! * [`access`] — the [`MemoryAccess`] record, [`Mode`], [`AccessKind`].
//! * [`rng`] — in-tree deterministic PRNG (xoshiro256\*\*) + samplers.
//! * [`locality`] — region streams with Zipf reuse and sequential bursts.
//! * [`chase`] — dependent pointer-chasing walks ([`chase::ChaseStream`]).
//! * [`kernel`] — OS service model (syscalls, interrupts, scheduler).
//! * [`apps`] — the ten-app interactive smartphone suite.
//! * [`generator`] — [`TraceGenerator`], the top-level stream.
//! * [`phases`] — app-switching sessions ([`phases::PhasedWorkload`]).
//! * [`multiprog`] — time-sliced co-scheduling ([`multiprog::MultiProgrammed`]).
//! * [`io`] — binary and text trace serialization.
//! * [`binfmt`] — chunked, checksummed trace container (compile/replay).
//! * [`stats`] — [`TraceStats`] trace summaries.
//! * [`fxhash`] — fixed-seed hashing for deterministic analysis maps.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod access;
pub mod apps;
pub mod binfmt;
pub mod builder;
pub mod chase;
pub mod fxhash;
pub mod generator;
pub mod io;
pub mod kernel;
pub mod locality;
pub mod multiprog;
pub mod phases;
pub mod rng;
pub mod stats;

pub use access::{AccessKind, MemoryAccess, Mode};
pub use apps::AppProfile;
pub use builder::AppProfileBuilder;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use generator::TraceGenerator;
pub use multiprog::MultiProgrammed;
pub use phases::PhasedWorkload;
pub use kernel::Service;
pub use stats::TraceStats;
