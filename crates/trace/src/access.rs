//! The memory-access record that flows through every layer of the
//! simulator.
//!
//! A trace is conceptually a sequence of [`MemoryAccess`] values. Each
//! record carries the privilege [`Mode`] of the executing code — the single
//! bit of OS support the paper's cache designs require.

use std::fmt;

/// Privilege mode of the code performing an access.
///
/// The paper's key observation is that interactive smartphone workloads
/// spend a large fraction of their L2 traffic in [`Mode::Kernel`], and that
/// kernel and user blocks interfere destructively when they share cache
/// space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mode {
    /// Application (user-space) code.
    User,
    /// Operating-system kernel code: syscalls, interrupts, the scheduler.
    Kernel,
}

impl Mode {
    /// Both modes, in a stable order (handy for per-mode tables).
    pub const ALL: [Mode; 2] = [Mode::User, Mode::Kernel];

    /// The other privilege mode.
    ///
    /// # Examples
    ///
    /// ```
    /// use moca_trace::Mode;
    /// assert_eq!(Mode::User.other(), Mode::Kernel);
    /// ```
    pub fn other(self) -> Mode {
        match self {
            Mode::User => Mode::Kernel,
            Mode::Kernel => Mode::User,
        }
    }

    /// Stable dense index (`User == 0`, `Kernel == 1`) for array-backed
    /// per-mode statistics.
    pub fn index(self) -> usize {
        match self {
            Mode::User => 0,
            Mode::Kernel => 1,
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::User => f.write_str("user"),
            Mode::Kernel => f.write_str("kernel"),
        }
    }
}

/// What kind of memory operation an access is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch.
    InstrFetch,
    /// Data read.
    Load,
    /// Data write.
    Store,
}

impl AccessKind {
    /// All kinds, in a stable order.
    pub const ALL: [AccessKind; 3] = [AccessKind::InstrFetch, AccessKind::Load, AccessKind::Store];

    /// Returns `true` for operations that dirty a cache line.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }

    /// Returns `true` for instruction fetches.
    pub fn is_ifetch(self) -> bool {
        matches!(self, AccessKind::InstrFetch)
    }

    /// Stable dense index for array-backed per-kind statistics.
    pub fn index(self) -> usize {
        match self {
            AccessKind::InstrFetch => 0,
            AccessKind::Load => 1,
            AccessKind::Store => 2,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::InstrFetch => f.write_str("ifetch"),
            AccessKind::Load => f.write_str("load"),
            AccessKind::Store => f.write_str("store"),
        }
    }
}

/// One memory reference in a trace.
///
/// Addresses are byte addresses in a flat 64-bit physical space. The
/// workload generator lays kernel structures and user regions out in
/// disjoint ranges (see [`crate::kernel::layout`]), mirroring how physical
/// frames back the two address spaces on real systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryAccess {
    /// Byte address being referenced.
    pub addr: u64,
    /// Program counter of the referencing instruction (diagnostic only).
    pub pc: u64,
    /// Operation kind.
    pub kind: AccessKind,
    /// Privilege mode of the executing code.
    pub mode: Mode,
}

impl MemoryAccess {
    /// Creates a record.
    ///
    /// # Examples
    ///
    /// ```
    /// use moca_trace::{AccessKind, MemoryAccess, Mode};
    ///
    /// let a = MemoryAccess::new(0x8000, 0x400, AccessKind::Load, Mode::User);
    /// assert!(!a.kind.is_write());
    /// assert_eq!(a.line(64), 0x8000 / 64);
    /// ```
    pub fn new(addr: u64, pc: u64, kind: AccessKind, mode: Mode) -> Self {
        Self {
            addr,
            pc,
            kind,
            mode,
        }
    }

    /// The cache-line index of this access for the given line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero or not a power of two.
    pub fn line(&self, line_bytes: u64) -> u64 {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two, got {line_bytes}"
        );
        self.addr >> line_bytes.trailing_zeros()
    }
}

impl fmt::Display for MemoryAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} @ {:#012x} (pc {:#012x})",
            self.mode, self.kind, self.addr, self.pc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_other_roundtrips() {
        for m in Mode::ALL {
            assert_eq!(m.other().other(), m);
        }
    }

    #[test]
    fn mode_indices_are_dense() {
        assert_eq!(Mode::User.index(), 0);
        assert_eq!(Mode::Kernel.index(), 1);
    }

    #[test]
    fn kind_write_classification() {
        assert!(AccessKind::Store.is_write());
        assert!(!AccessKind::Load.is_write());
        assert!(!AccessKind::InstrFetch.is_write());
        assert!(AccessKind::InstrFetch.is_ifetch());
    }

    #[test]
    fn kind_indices_are_dense_and_unique() {
        let idx: Vec<usize> = AccessKind::ALL.iter().map(|k| k.index()).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn line_extraction() {
        let a = MemoryAccess::new(0x1234, 0, AccessKind::Load, Mode::User);
        assert_eq!(a.line(64), 0x1234 / 64);
        assert_eq!(a.line(1), 0x1234);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn line_rejects_non_power_of_two() {
        let a = MemoryAccess::new(0, 0, AccessKind::Load, Mode::User);
        a.line(48);
    }

    #[test]
    fn display_is_nonempty() {
        let a = MemoryAccess::new(0x40, 0x80, AccessKind::Store, Mode::Kernel);
        let s = a.to_string();
        assert!(s.contains("kernel"));
        assert!(s.contains("store"));
    }
}
