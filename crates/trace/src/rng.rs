//! Deterministic pseudo-random number generation for trace synthesis.
//!
//! The generator is implemented in-tree (SplitMix64 seeding feeding a
//! xoshiro256\*\* state) instead of depending on the `rand` crate so that a
//! given seed produces bit-identical traces across toolchains and dependency
//! upgrades. Reproducibility of the experiment suite in `EXPERIMENTS.md`
//! depends on this stability.
//!
//! # Examples
//!
//! ```
//! use moca_trace::rng::Xoshiro256;
//!
//! let mut a = Xoshiro256::seed_from_u64(42);
//! let mut b = Xoshiro256::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// SplitMix64 step: used to expand a single `u64` seed into a full
/// xoshiro256 state. This is the seeding procedure recommended by the
/// xoshiro authors (Blackman & Vigna).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256\*\* pseudo-random generator.
///
/// Fast, small-state generator with 256 bits of state and excellent
/// statistical quality; more than sufficient for workload synthesis.
/// All trace determinism in this crate flows through this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator by expanding `seed` with SplitMix64.
    ///
    /// Two generators built from the same seed produce identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // The all-zero state is invalid for xoshiro; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Derives an independent child generator.
    ///
    /// Used to give each sub-component of a workload (per region, per
    /// syscall model, ...) its own stream so that adding accesses in one
    /// component does not perturb another — a property several regression
    /// tests rely on.
    pub fn fork(&mut self, stream: u64) -> Self {
        let mixed = self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        Self::seed_from_u64(mixed)
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, n)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's nearly-divisionless bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Exponentially distributed sample with the given mean.
    ///
    /// Returns `0.0` for non-positive means.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inversion; guard the log argument away from zero.
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Geometrically distributed trial count with success probability `p`
    /// (support `1, 2, 3, ...`), capped at `cap`.
    pub fn geometric(&mut self, p: f64, cap: u64) -> u64 {
        if p >= 1.0 {
            return 1;
        }
        if p <= 0.0 {
            return cap.max(1);
        }
        let sample = (self.exponential(1.0) / -(1.0 - p).ln()).floor() as u64 + 1;
        sample.min(cap.max(1))
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid u1 == 0 which would produce -inf.
        let u1 = (self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normally distributed sample where the *underlying* normal has
    /// mean `mu` and standard deviation `sigma`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Samples an index according to the given non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index on empty weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index weights sum to zero");
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }
}

/// A Zipf(θ)-distributed sampler over ranks `0..n`.
///
/// Rank 0 is the most popular item. Uses an exact precomputed CDF with
/// binary search, which is plenty fast for the region sizes used in
/// workload models (up to a few hundred thousand lines) and — unlike
/// rejection methods — consumes exactly one `u64` of randomness per
/// sample, keeping streams stable when parameters change.
///
/// # Examples
///
/// ```
/// use moca_trace::rng::{Xoshiro256, Zipf};
///
/// let zipf = Zipf::new(1024, 0.8);
/// let mut rng = Xoshiro256::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1024);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` items with skew `theta >= 0`.
    ///
    /// `theta == 0` degenerates to the uniform distribution; larger values
    /// concentrate probability on low ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf over zero items");
        assert!(theta.is_finite() && theta >= 0.0, "invalid zipf theta");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 0..n {
            acc += 1.0 / ((rank as f64) + 1.0).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of items in the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the support is a single item.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256::seed_from_u64(123);
        let mut b = Xoshiro256::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn known_answer_stability() {
        // Pin the exact output so accidental algorithm changes (which would
        // silently change every generated trace) fail loudly.
        let mut rng = Xoshiro256::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = Xoshiro256::seed_from_u64(0);
        let got2: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(got, got2);
        // First value must be non-zero and reproducible within this build.
        assert_ne!(got[0], 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..2000 {
            let v = rng.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn below_one_is_zero() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(rng.below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        rng.below(0);
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.range(100, 108);
            assert!((100..108).contains(&v));
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_mean_close_to_p() {
        let mut rng = Xoshiro256::seed_from_u64(17);
        let hits = (0..20_000).filter(|_| rng.chance(0.3)).count();
        let mean = hits as f64 / 20_000.0;
        assert!((mean - 0.3).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Xoshiro256::seed_from_u64(23);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean was {mean}");
    }

    #[test]
    fn exponential_nonpositive_mean_is_zero() {
        let mut rng = Xoshiro256::seed_from_u64(23);
        assert_eq!(rng.exponential(0.0), 0.0);
        assert_eq!(rng.exponential(-1.0), 0.0);
    }

    #[test]
    fn geometric_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(31);
        for _ in 0..5000 {
            let v = rng.geometric(0.25, 100);
            assert!((1..=100).contains(&v));
        }
        assert_eq!(rng.geometric(1.0, 100), 1);
        assert_eq!(rng.geometric(0.0, 100), 100);
    }

    #[test]
    fn geometric_mean_close() {
        let mut rng = Xoshiro256::seed_from_u64(37);
        let n = 50_000u64;
        let sum: u64 = (0..n).map(|_| rng.geometric(0.2, 10_000)).sum();
        let mean = sum as f64 / n as f64;
        // E[X] = 1/p = 5.
        assert!((mean - 5.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256::seed_from_u64(41);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance was {var}");
    }

    #[test]
    fn log_normal_positive() {
        let mut rng = Xoshiro256::seed_from_u64(43);
        for _ in 0..1000 {
            assert!(rng.log_normal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(47);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Xoshiro256::seed_from_u64(53);
        let w = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio was {ratio}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Xoshiro256::seed_from_u64(59);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let zipf = Zipf::new(64, 1.0);
        let mut rng = Xoshiro256::seed_from_u64(61);
        let mut counts = vec![0usize; 64];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[63]);
        // All sampled ranks must be in range; counts length enforces that.
        let total: usize = counts.iter().sum();
        assert_eq!(total, 50_000);
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let zipf = Zipf::new(16, 0.0);
        let mut rng = Xoshiro256::seed_from_u64(67);
        let mut counts = vec![0usize; 16];
        for _ in 0..64_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let expected = 4000.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.15,
                "count {c} deviates from uniform"
            );
        }
    }

    #[test]
    fn zipf_len() {
        let zipf = Zipf::new(5, 0.5);
        assert_eq!(zipf.len(), 5);
        assert!(!zipf.is_empty());
    }
}
