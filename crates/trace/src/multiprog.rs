//! Multi-programmed workloads: several apps time-sliced on one core.
//!
//! Unlike [`PhasedWorkload`](crate::phases::PhasedWorkload) (one app at a
//! time, caches observe one footprint), a [`MultiProgrammed`] stream
//! interleaves apps at scheduler-quantum granularity, the way Android
//! really runs a foreground app plus background services:
//!
//! * each app's **user** addresses are relocated into a private window
//!   (distinct physical frames per process), so apps contend for cache
//!   space rather than aliasing;
//! * **kernel** addresses are left shared — the kernel is the same for
//!   everyone, which *raises* its reuse and its share of L2 traffic;
//! * every context switch runs a scheduler burst, as on real hardware.
//!
//! The net effect: multi-tasking amplifies exactly the phenomena the
//! paper builds on (kernel share, user/kernel interference).

use crate::access::MemoryAccess;
use crate::apps::AppProfile;
use crate::generator::TraceGenerator;
use crate::kernel::layout::KERNEL_BASE;

/// Size of each process's private user-address window.
///
/// Large enough to contain any profile's regions (code/heap/stack all lie
/// below [`KERNEL_BASE`] = 3 GiB).
pub const PROCESS_WINDOW: u64 = 0x1_0000_0000;

/// A time-sliced interleaving of several app traces.
#[derive(Debug, Clone)]
pub struct MultiProgrammed {
    generators: Vec<TraceGenerator>,
    quantum_refs: u64,
    current: usize,
    left_in_quantum: u64,
}

impl MultiProgrammed {
    /// Builds a round-robin schedule of `apps` with the given quantum (in
    /// references).
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty or `quantum_refs` is zero.
    pub fn new(apps: &[AppProfile], quantum_refs: u64, seed: u64) -> Self {
        assert!(!apps.is_empty(), "need at least one app");
        assert!(quantum_refs > 0, "quantum must be non-zero");
        let generators = apps
            .iter()
            .enumerate()
            .map(|(i, p)| TraceGenerator::new(p, seed.wrapping_add(i as u64 * 0x9E37_79B9)))
            .collect();
        Self {
            generators,
            quantum_refs,
            current: 0,
            left_in_quantum: quantum_refs,
        }
    }

    /// Number of co-scheduled apps.
    pub fn len(&self) -> usize {
        self.generators.len()
    }

    /// `true` when no apps are scheduled (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.generators.is_empty()
    }

    /// Index of the app currently running.
    pub fn running(&self) -> usize {
        self.current
    }

    /// Relocates a user address into process `i`'s window; kernel
    /// addresses are shared and pass through unchanged.
    fn relocate(addr: u64, i: usize) -> u64 {
        if addr >= KERNEL_BASE {
            addr
        } else {
            addr + PROCESS_WINDOW * (i as u64 + 1)
        }
    }
}

impl Iterator for MultiProgrammed {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        if self.left_in_quantum == 0 {
            self.current = (self.current + 1) % self.generators.len();
            self.left_in_quantum = self.quantum_refs;
            // A context switch is kernel work: the underlying generators
            // already emit scheduler-tick bursts on their own cadence, so
            // no extra injection is needed here; the switch boundary just
            // changes whose stream is live.
        }
        self.left_in_quantum -= 1;
        let i = self.current;
        let mut a = self.generators[i].next().expect("generators are infinite");
        a.addr = Self::relocate(a.addr, i);
        a.pc = Self::relocate(a.pc, i);
        Some(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Mode;
    use crate::kernel::layout::is_kernel_addr;
    use crate::stats::TraceStats;

    fn pair() -> Vec<AppProfile> {
        vec![AppProfile::music(), AppProfile::game()]
    }

    #[test]
    fn round_robin_quantum() {
        let mut mp = MultiProgrammed::new(&pair(), 100, 1);
        assert_eq!(mp.len(), 2);
        assert!(!mp.is_empty());
        for _ in 0..100 {
            mp.next();
        }
        assert_eq!(mp.running(), 0, "still in the first quantum");
        mp.next();
        assert_eq!(mp.running(), 1, "switched after the quantum");
    }

    #[test]
    fn user_windows_are_disjoint_kernel_is_shared() {
        let trace: Vec<_> = MultiProgrammed::new(&pair(), 500, 3).take(50_000).collect();
        let mut win1 = false;
        let mut win2 = false;
        let mut kernel = false;
        for a in &trace {
            match a.mode {
                Mode::Kernel => {
                    assert!(is_kernel_addr(a.addr), "kernel addresses pass through");
                    kernel = true;
                }
                Mode::User => {
                    assert!(!is_kernel_addr(a.addr) || a.addr >= PROCESS_WINDOW);
                    if (PROCESS_WINDOW..2 * PROCESS_WINDOW).contains(&a.addr) {
                        win1 = true;
                    }
                    if (2 * PROCESS_WINDOW..3 * PROCESS_WINDOW).contains(&a.addr) {
                        win2 = true;
                    }
                }
            }
        }
        assert!(win1 && win2, "both process windows must appear");
        assert!(kernel, "kernel activity must appear");
    }

    #[test]
    fn deterministic() {
        let run = || {
            MultiProgrammed::new(&pair(), 250, 9)
                .take(10_000)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn multitasking_kernel_share_is_the_mix_of_its_apps() {
        let solo_share = |p: &AppProfile| {
            TraceStats::collect(TraceGenerator::new(p, 5).take(100_000), 64).kernel_share()
        };
        let apps = pair();
        let mean_solo = (solo_share(&apps[0]) + solo_share(&apps[1])) / 2.0;
        let multi = TraceStats::collect(
            MultiProgrammed::new(&apps, 2000, 5).take(200_000),
            64,
        )
        .kernel_share();
        assert!(
            (multi - mean_solo).abs() < 0.06,
            "co-scheduled kernel share ({multi:.3}) should track the mean of the              solo shares ({mean_solo:.3})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one app")]
    fn empty_schedule_panics() {
        MultiProgrammed::new(&[], 100, 1);
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn zero_quantum_panics() {
        MultiProgrammed::new(&pair(), 0, 1);
    }
}
