//! Builder for custom application profiles.
//!
//! The ten built-in profiles cover the evaluation suite; this builder
//! lets downstream users assemble their own workloads without spelling
//! out every [`AppProfile`] field.
//!
//! # Examples
//!
//! ```
//! use moca_trace::builder::AppProfileBuilder;
//! use moca_trace::{Service, TraceGenerator};
//!
//! let profile = AppProfileBuilder::new("my-benchmark")
//!     .heap(32_768, 2_048, 0.9)
//!     .code(1_024, 1.3)
//!     .syscalls(vec![(Service::FileRead, 2.0), (Service::Futex, 1.0)])
//!     .kernel_entry_every(500.0)
//!     .build();
//! let trace: Vec<_> = TraceGenerator::new(&profile, 1).take(1000).collect();
//! assert_eq!(trace.len(), 1000);
//! ```

use crate::apps::AppProfile;
use crate::kernel::Service;

/// Builds an [`AppProfile`] from a baseline of sensible defaults.
#[derive(Debug, Clone)]
pub struct AppProfileBuilder {
    profile: AppProfile,
}

impl AppProfileBuilder {
    /// Starts from the default profile shape with the given name.
    ///
    /// The name must outlive the profile (use a string literal or leaked
    /// string); profiles carry `&'static str` names so they stay `Copy`-
    /// friendly in reports.
    pub fn new(name: &'static str) -> Self {
        let mut profile = AppProfile::by_name("music").expect("built-in profile exists");
        profile.name = name;
        Self { profile }
    }

    /// Sets the heap size (in lines), hot-core size, and hot-core Zipf
    /// skew.
    pub fn heap(mut self, lines: u64, hot_lines: u64, theta: f64) -> Self {
        self.profile.heap_lines = lines;
        self.profile.heap_hot_lines = hot_lines;
        self.profile.heap_theta = theta;
        self
    }

    /// Sets the fraction of heap reuse served by the hot core.
    pub fn heap_hot_frac(mut self, frac: f64) -> Self {
        self.profile.heap_hot_frac = frac;
        self
    }

    /// Sets the streaming behaviour of the heap: burst probability and
    /// mean burst length in lines.
    pub fn streaming(mut self, p_seq: f64, seq_len: f64) -> Self {
        self.profile.heap_p_seq = p_seq;
        self.profile.heap_seq_len = seq_len;
        self
    }

    /// Sets the code footprint (lines) and its Zipf skew.
    pub fn code(mut self, lines: u64, theta: f64) -> Self {
        self.profile.code_lines = lines;
        self.profile.code_theta = theta;
        self
    }

    /// Sets the store fraction of user data references.
    pub fn store_frac(mut self, frac: f64) -> Self {
        self.profile.store_frac = frac;
        self
    }

    /// Sets the kernel service mix (replaces the default).
    pub fn syscalls(mut self, mix: Vec<(Service, f64)>) -> Self {
        self.profile.syscall_mix = mix;
        self
    }

    /// Sets the interrupt rate and mix.
    pub fn interrupts(mut self, frac: f64, mix: Vec<(Service, f64)>) -> Self {
        self.profile.irq_frac = frac;
        self.profile.irq_mix = mix;
        self
    }

    /// Sets the mean user references between kernel entries (lower means
    /// a more kernel-heavy workload).
    pub fn kernel_entry_every(mut self, mean_refs: f64) -> Self {
        self.profile.mean_user_run = mean_refs;
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if the assembled profile fails [`AppProfile::validate`]
    /// (e.g. a hot core larger than the heap).
    pub fn build(self) -> AppProfile {
        self.profile.validate();
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::stats::TraceStats;

    #[test]
    fn builder_produces_valid_profiles() {
        let p = AppProfileBuilder::new("custom")
            .heap(65_536, 4_096, 1.0)
            .heap_hot_frac(0.9)
            .streaming(0.4, 16.0)
            .code(2_048, 1.2)
            .store_frac(0.35)
            .kernel_entry_every(600.0)
            .build();
        assert_eq!(p.name, "custom");
        assert_eq!(p.heap_lines, 65_536);
        p.validate();
    }

    #[test]
    fn kernel_heavy_builder_raises_kernel_share() {
        let light = AppProfileBuilder::new("light").kernel_entry_every(5_000.0).build();
        let heavy = AppProfileBuilder::new("heavy").kernel_entry_every(300.0).build();
        let share = |p: &AppProfile| {
            TraceStats::collect(TraceGenerator::new(p, 3).take(100_000), 64).kernel_share()
        };
        assert!(
            share(&heavy) > share(&light) + 0.1,
            "kernel entry rate must drive the kernel share"
        );
    }

    #[test]
    fn syscall_mix_replaces_default() {
        let p = AppProfileBuilder::new("io-bound")
            .syscalls(vec![(Service::FileRead, 1.0)])
            .build();
        assert_eq!(p.syscall_mix.len(), 1);
    }

    #[test]
    #[should_panic(expected = "hot core")]
    fn invalid_build_panics() {
        AppProfileBuilder::new("broken").heap(100, 200, 0.9).build();
    }
}
