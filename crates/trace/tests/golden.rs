//! Golden-hash regression fixtures for trace determinism.
//!
//! `EXPERIMENTS.md` numbers are only reproducible if the generator emits
//! *bit-identical* streams for a given `(profile, seed)`. These tests
//! hash a prefix of every suite app's stream; any accidental change to
//! the PRNG, the locality engine, the kernel model, or the profiles will
//! flip a hash and fail loudly.
//!
//! If a change is *intentional* (a recalibration), regenerate the table
//! with:
//!
//! ```text
//! cargo test -p moca-trace --test golden -- --nocapture print_golden_table
//! ```
//!
//! and paste the output over `GOLDEN`, noting the recalibration in
//! `CHANGELOG.md`.

use moca_trace::{AppProfile, TraceGenerator};

/// FNV-1a over the packed fields of each access.
fn trace_hash(app: &AppProfile, seed: u64, n: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for a in TraceGenerator::new(app, seed).take(n) {
        mix(a.addr);
        mix(a.pc);
        mix(a.kind.index() as u64 | ((a.mode.index() as u64) << 8));
    }
    h
}

const SEED: u64 = 0x5EED_2015;
const PREFIX: usize = 50_000;

/// `(app, hash)` pairs pinned at the calibration of 2026-07-07.
const GOLDEN: [(&str, u64); 10] = [
    ("browser", 0xefa3aa23b6d13829),
    ("email", 0xeca94991fed168ef),
    ("maps", 0xcf8fb0764f5aebee),
    ("game", 0xcb5e4329892dd25b),
    ("video", 0x5fd41be82f9b4c04),
    ("music", 0x3cb23e6fb39b1687),
    ("social", 0x3c8e1c0f26995da6),
    ("office", 0x17813a86bbc9023b),
    ("pdf", 0x48d35b62f193bab0),
    ("camera", 0x30a8f5703d3f3c3f),
];

#[test]
fn suite_traces_match_golden_hashes() {
    let mut failures = Vec::new();
    for (name, expected) in GOLDEN {
        let app = AppProfile::by_name(name).expect("known app");
        let got = trace_hash(&app, SEED, PREFIX);
        if got != expected {
            failures.push(format!("{name}: expected {expected:#018x}, got {got:#018x}"));
        }
    }
    assert!(
        failures.is_empty(),
        "trace streams changed — if intentional, regenerate GOLDEN:\n{}",
        failures.join("\n")
    );
}

/// Prints the current golden table (run with `--nocapture` and the test
/// name to regenerate after an intentional recalibration).
#[test]
fn print_golden_table() {
    for app in AppProfile::suite() {
        println!(
            "    (\"{}\", {:#018x}),",
            app.name,
            trace_hash(&app, SEED, PREFIX)
        );
    }
}
