//! Round-trip and corruption-robustness suite for the chunked replay
//! container (`moca_trace::binfmt`).
//!
//! * randomized `(app, seed, refs)` compile → decode ≡ generator output,
//!   ref for ref;
//! * codec edge cases driven through `TraceWriter` directly: maximal
//!   forward/backward address deltas, alternating extremes, every
//!   kind/mode tag combination;
//! * a corruption matrix — truncations, flipped bytes, bad versions,
//!   checksum mismatches, crafted undecodable payloads, and short
//!   writes — proving every failure surfaces as a structured
//!   [`ReadTraceError`] naming the failing chunk, never a panic.

use std::hash::Hasher;
use std::io::Cursor;

use moca_testkit::{check, Config, ShortSeekWriter};
use moca_trace::binfmt::{
    self, TraceReader, TraceWriter, CHUNK_REFS, HEADER_LEN, MAGIC, VERSION,
};
use moca_trace::io::ReadTraceError;
use moca_trace::{AccessKind, AppProfile, FxHasher, MemoryAccess, Mode, TraceGenerator};

fn fxhash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Compiles `(profile, seed, min_refs)` into an in-memory file.
fn compile_bytes(profile: &AppProfile, seed: u64, min_refs: usize) -> Vec<u8> {
    let cursor = Cursor::new(Vec::new());
    let cursor = {
        let mut w = cursor;
        binfmt::compile(&mut w, profile, seed, min_refs).expect("in-memory compile");
        w
    };
    cursor.into_inner()
}

/// Decodes every chunk of `bytes` into one flat access vector.
fn decode_all(bytes: &[u8]) -> Vec<MemoryAccess> {
    let mut reader = TraceReader::new(Cursor::new(bytes)).expect("parse header");
    let mut all = Vec::new();
    let mut buf = Vec::new();
    for i in 0..reader.header().chunk_count() {
        reader.read_chunk(i, &mut buf).expect("decode chunk");
        all.extend_from_slice(&buf);
    }
    all
}

#[test]
fn randomized_roundtrip_matches_generator() {
    let suite = AppProfile::suite();
    check(
        Config::cases(24).with_seed(0xB1F0_0001),
        |rng| {
            let app = rng.pick(&suite).clone();
            let seed = rng.next_u64();
            let refs = rng.range_usize(1, 3 * CHUNK_REFS);
            (app, seed, refs)
        },
        |(app, seed, refs)| {
            let bytes = compile_bytes(app, *seed, *refs);
            let decoded = decode_all(&bytes);
            if decoded.len() < *refs || !decoded.len().is_multiple_of(CHUNK_REFS) {
                return Err(format!(
                    "compile of {refs} refs produced {} (not full chunks)",
                    decoded.len()
                ));
            }
            let expected: Vec<MemoryAccess> =
                TraceGenerator::new(app, *seed).take(decoded.len()).collect();
            for (i, (d, e)) in decoded.iter().zip(&expected).enumerate() {
                if d != e {
                    return Err(format!("ref {i} diverged: decoded {d:?}, generated {e:?}"));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn codec_survives_extreme_deltas_and_every_tag() {
    let kinds = [AccessKind::InstrFetch, AccessKind::Load, AccessKind::Store];
    let modes = [Mode::User, Mode::Kernel];
    let mut chunk = Vec::new();
    // Every kind/mode tag combination.
    for (i, (&kind, &mode)) in kinds
        .iter()
        .flat_map(|k| modes.iter().map(move |m| (k, m)))
        .enumerate()
    {
        chunk.push(MemoryAccess::new(i as u64 * 64, i as u64 * 4, kind, mode));
    }
    // Maximal forward and backward jumps: 0 ↔ u64::MAX, alternating, for
    // both the address and pc predictors (deltas wrap through i64).
    for i in 0..16u64 {
        let (addr, pc) = if i % 2 == 0 { (u64::MAX, 0) } else { (0, u64::MAX) };
        chunk.push(MemoryAccess::new(addr, pc, AccessKind::Load, Mode::User));
    }
    // Largest magnitudes around the zigzag boundary.
    for addr in [i64::MAX as u64, i64::MAX as u64 + 1, u64::MAX, 0, 1] {
        chunk.push(MemoryAccess::new(addr, addr ^ 0xDEAD, AccessKind::Store, Mode::Kernel));
    }

    let mut w = TraceWriter::create(Cursor::new(Vec::new()), 0xF00D, 7).expect("create");
    w.write_chunk(&chunk).expect("write");
    let bytes = w.finish().expect("finish").into_inner();
    assert_eq!(decode_all(&bytes), chunk);
}

#[test]
fn partial_and_multi_chunk_writer_roundtrip() {
    let profile = AppProfile::browser();
    let refs: Vec<MemoryAccess> = TraceGenerator::new(&profile, 11)
        .take(CHUNK_REFS + CHUNK_REFS / 2)
        .collect();
    let mut w = TraceWriter::create(Cursor::new(Vec::new()), profile.fingerprint(), 11)
        .expect("create");
    w.write_chunk(&refs[..CHUNK_REFS]).expect("full chunk");
    w.write_chunk(&refs[CHUNK_REFS..]).expect("partial final chunk");
    let bytes = w.finish().expect("finish").into_inner();

    let mut reader = TraceReader::new(Cursor::new(&bytes[..])).expect("parse");
    assert_eq!(reader.header().total_refs, refs.len() as u64);
    assert_eq!(reader.header().chunk_count(), 2);
    assert_eq!(reader.header().full_chunks(), 1);
    let mut it = reader.accesses();
    let decoded: Vec<MemoryAccess> = it.by_ref().collect();
    it.finish().expect("clean stream");
    assert_eq!(decoded, refs);
}

// -----------------------------------------------------------------
// Corruption matrix
// -----------------------------------------------------------------

/// A small two-chunk file shared by the corruption tests.
fn sample_file() -> Vec<u8> {
    compile_bytes(&AppProfile::game(), 5, CHUNK_REFS + 1)
}

#[test]
fn bad_magic_is_structured() {
    let mut bytes = sample_file();
    bytes[0] = b'X';
    match TraceReader::new(Cursor::new(&bytes[..])) {
        Err(ReadTraceError::BadFileMagic(seen)) => assert_ne!(seen, MAGIC),
        other => panic!("expected BadFileMagic, got {other:?}"),
    }
}

#[test]
fn bad_version_is_structured() {
    let mut bytes = sample_file();
    // Bump the on-disk version and recompute the header checksum so the
    // version check (not the checksum check) rejects the file: a future
    // format revision looks exactly like this.
    bytes[8..10].copy_from_slice(&(VERSION + 1).to_le_bytes());
    let sum = fxhash_bytes(&bytes[..HEADER_LEN - 8]);
    bytes[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&sum.to_le_bytes());
    match TraceReader::new(Cursor::new(&bytes[..])) {
        Err(ReadTraceError::BadFileVersion(v)) => assert_eq!(v, VERSION + 1),
        other => panic!("expected BadFileVersion, got {other:?}"),
    }
}

#[test]
fn flipped_header_byte_fails_the_header_checksum() {
    let mut bytes = sample_file();
    bytes[24] ^= 0x40; // a seed byte
    match TraceReader::new(Cursor::new(&bytes[..])) {
        Err(ReadTraceError::HeaderCorrupt(what)) => {
            assert!(what.contains("checksum"), "unexpected cause: {what}");
        }
        other => panic!("expected HeaderCorrupt, got {other:?}"),
    }
}

#[test]
fn truncated_file_fails_at_open_with_a_structured_error() {
    let bytes = sample_file();
    // Shorter than the fixed header.
    match TraceReader::new(Cursor::new(&bytes[..HEADER_LEN / 2])) {
        Err(ReadTraceError::HeaderCorrupt(what)) => {
            assert!(what.contains("header"), "unexpected cause: {what}");
        }
        other => panic!("expected HeaderCorrupt, got {other:?}"),
    }
    // Header intact but the directory is gone.
    match TraceReader::new(Cursor::new(&bytes[..HEADER_LEN + 16])) {
        Err(ReadTraceError::HeaderCorrupt(what)) => {
            assert!(what.contains("directory"), "unexpected cause: {what}");
        }
        other => panic!("expected HeaderCorrupt, got {other:?}"),
    }
}

#[test]
fn truncation_under_a_cached_header_names_the_chunk() {
    let bytes = sample_file();
    let header = TraceReader::new(Cursor::new(&bytes[..]))
        .expect("parse")
        .header()
        .clone();
    // The registry caches headers; the file shrinks underneath it (the
    // second chunk's bytes vanish). The read must name chunk 1.
    let cut = header.chunks[1].offset as usize + 4;
    let mut reader = TraceReader::from_parts(header, Cursor::new(&bytes[..cut]));
    let mut buf = Vec::new();
    reader.read_chunk(0, &mut buf).expect("chunk 0 is intact");
    match reader.read_chunk(1, &mut buf) {
        Err(ReadTraceError::ChunkTruncated { chunk }) => assert_eq!(chunk, 1),
        other => panic!("expected ChunkTruncated, got {other:?}"),
    }
}

#[test]
fn flipped_payload_byte_names_the_chunk() {
    let mut bytes = sample_file();
    let header = TraceReader::new(Cursor::new(&bytes[..]))
        .expect("parse")
        .header()
        .clone();
    let victim = header.chunks[1].offset as usize + 3;
    bytes[victim] ^= 0x10;
    let mut reader = TraceReader::new(Cursor::new(&bytes[..])).expect("header still parses");
    let mut buf = Vec::new();
    reader.read_chunk(0, &mut buf).expect("chunk 0 is intact");
    match reader.read_chunk(1, &mut buf) {
        Err(ReadTraceError::ChunkChecksum { chunk }) => assert_eq!(chunk, 1),
        other => panic!("expected ChunkChecksum, got {other:?}"),
    }
    match reader.validate() {
        Err(ReadTraceError::ChunkChecksum { chunk }) => assert_eq!(chunk, 1),
        other => panic!("validate must surface the same error, got {other:?}"),
    }
}

/// Replaces chunk 0's payload with `payload` (same length required) and
/// recomputes its trailing checksum, simulating a corrupted-but-
/// checksum-consistent chunk (e.g. written by a buggy tool).
fn patch_chunk0(bytes: &mut [u8], payload: &[u8]) {
    let header = TraceReader::new(Cursor::new(&bytes[..]))
        .expect("parse")
        .header()
        .clone();
    let entry = header.chunks[0];
    assert!(payload.len() <= entry.bytes as usize, "patch longer than chunk");
    let start = entry.offset as usize;
    let end = start + entry.bytes as usize;
    bytes[start..start + payload.len()].copy_from_slice(payload);
    let sum = fxhash_bytes(&bytes[start..end]);
    bytes[end..end + 8].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn undecodable_payload_with_a_valid_checksum_is_chunk_corrupt() {
    let mut buf = Vec::new();

    // Reserved tag bits (kind = 3) in the first record.
    let mut bytes = sample_file();
    patch_chunk0(&mut bytes, &[0x03]);
    let mut reader = TraceReader::new(Cursor::new(&bytes[..])).expect("parse");
    match reader.read_chunk(0, &mut buf) {
        Err(ReadTraceError::ChunkCorrupt { chunk: 0, what }) => {
            assert!(what.contains("tag"), "unexpected cause: {what}");
        }
        other => panic!("expected ChunkCorrupt, got {other:?}"),
    }

    // An oversized varint (11 continuation bytes > 67 payload bits).
    let mut bytes = sample_file();
    patch_chunk0(&mut bytes, &[0xFF; 11]);
    let mut reader = TraceReader::new(Cursor::new(&bytes[..])).expect("parse");
    match reader.read_chunk(0, &mut buf) {
        Err(ReadTraceError::ChunkCorrupt { chunk: 0, what }) => {
            assert!(what.contains("varint"), "unexpected cause: {what}");
        }
        other => panic!("expected ChunkCorrupt, got {other:?}"),
    }
}

#[test]
fn corruption_errors_render_the_failing_chunk_index() {
    let e = ReadTraceError::ChunkChecksum { chunk: 17 };
    assert!(e.to_string().contains("17"));
    let e = ReadTraceError::ChunkTruncated { chunk: 3 };
    assert!(e.to_string().contains("3"));
    let e = ReadTraceError::ChunkCorrupt { chunk: 9, what: "x" };
    assert!(e.to_string().contains("9"));
}

#[test]
fn short_writes_surface_as_io_errors_not_panics() {
    let profile = AppProfile::video();
    let full = compile_bytes(&profile, 9, CHUNK_REFS);
    // Every prefix length that cuts the file short must produce a real
    // I/O error from compile (WriteZero via write_all), never a panic.
    for limit in [0, HEADER_LEN - 1, HEADER_LEN, full.len() / 2, full.len() - 1] {
        let err = binfmt::compile(ShortSeekWriter::new(limit), &profile, 9, CHUNK_REFS)
            .expect_err("short writer must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::WriteZero, "limit {limit}");
    }
    // At the exact full length the compile succeeds and round-trips.
    let mut w = ShortSeekWriter::new(full.len());
    binfmt::compile(&mut w, &profile, 9, CHUNK_REFS).expect("exact fit");
    assert_eq!(w.written(), &full[..]);
}

#[test]
fn stats_from_file_match_stats_from_generator() {
    let profile = AppProfile::music();
    let bytes = compile_bytes(&profile, 3, 2 * CHUNK_REFS);
    let mut reader = TraceReader::new(Cursor::new(&bytes[..])).expect("parse");
    let total = reader.header().total_refs as usize;

    let mut it = reader.accesses();
    let from_file = moca_trace::TraceStats::collect(&mut it, 64);
    it.finish().expect("clean stream");

    let from_gen =
        moca_trace::TraceStats::collect(TraceGenerator::new(&profile, 3).take(total), 64);
    assert_eq!(from_file, from_gen);
}
