//! Cross-engine differential harness: byte-level comparison of several
//! engines' outputs for one shared input.
//!
//! The workspace's strongest correctness tool is redundancy: the same
//! (app, design pool, seed) input can be replayed through the scalar
//! oracle, the chunk-broadcast engine, and the lock-step kernel, and
//! every [`Debug`]-rendered report must match **byte for byte**. This
//! module is the comparison layer those suites share: engines are
//! represented uniformly as an [`EngineRun`] (name + rendered outputs),
//! and a divergence is reported with the item index, the first differing
//! byte offset, and an aligned context window around it — enough to see
//! *which field* of a long report rendering went wrong without manual
//! diffing.
//!
//! ```
//! use moca_testkit::differential::{engines_agree, EngineRun};
//!
//! let reference = EngineRun::render("scalar", &[1 + 1, 2 + 2]);
//! let candidate = EngineRun::render("vectorized", &[2, 4]);
//! assert!(engines_agree("demo", &[reference, candidate]).is_ok());
//! ```

use std::fmt::Debug;

/// One engine's outputs for a shared input, rendered to comparable text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineRun {
    /// Engine name, used in divergence reports.
    pub engine: String,
    /// One rendered output per item, in item order.
    pub outputs: Vec<String>,
}

impl EngineRun {
    /// Wraps already-rendered outputs.
    pub fn new(engine: impl Into<String>, outputs: Vec<String>) -> Self {
        Self {
            engine: engine.into(),
            outputs,
        }
    }

    /// Renders each output through its [`Debug`] implementation.
    ///
    /// `Debug` (rather than a bespoke serialization) is deliberate: it is
    /// the same rendering the workspace's determinism suites compare, so
    /// "the harness agrees" and "the suites agree" mean the same bytes.
    pub fn render<O: Debug>(engine: impl Into<String>, outputs: &[O]) -> Self {
        Self::new(
            engine,
            outputs.iter().map(|o| format!("{o:?}")).collect(),
        )
    }
}

/// Byte offset of the first difference (the shorter length if one string
/// is a prefix of the other).
fn first_divergence(a: &str, b: &str) -> usize {
    a.bytes()
        .zip(b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()))
}

/// A readable window of up to `2 * RADIUS` bytes around `at`, with the
/// cut edges marked. Splits on byte boundaries only — renderings under
/// comparison are ASCII `Debug` output.
fn context_window(s: &str, at: usize) -> String {
    const RADIUS: usize = 48;
    let start = at.saturating_sub(RADIUS);
    let end = (at + RADIUS).min(s.len());
    let head = if start > 0 { "…" } else { "" };
    let tail = if end < s.len() { "…" } else { "" };
    format!("{head}{}{tail}", &s[start..end])
}

/// Compares `candidate` against `reference` item by item.
///
/// # Errors
///
/// Returns a multi-line divergence report naming both engines, the item
/// index, the first differing byte offset, and aligned context windows.
/// A length mismatch (different item counts) is reported before any
/// content comparison.
pub fn diff_runs(reference: &EngineRun, candidate: &EngineRun) -> Result<(), String> {
    if reference.outputs.len() != candidate.outputs.len() {
        return Err(format!(
            "engine {:?} produced {} output(s), reference {:?} produced {}",
            candidate.engine,
            candidate.outputs.len(),
            reference.engine,
            reference.outputs.len(),
        ));
    }
    for (i, (want, got)) in reference.outputs.iter().zip(&candidate.outputs).enumerate() {
        if want != got {
            let at = first_divergence(want, got);
            return Err(format!(
                "engine {:?} diverges from {:?} at item {i}, byte {at}:\n  {}: {}\n  {}: {}",
                candidate.engine,
                reference.engine,
                reference.engine,
                context_window(want, at),
                candidate.engine,
                context_window(got, at),
            ));
        }
    }
    Ok(())
}

/// Checks that every run agrees byte-for-byte with the first (the
/// reference engine).
///
/// # Errors
///
/// Returns the first divergence report, prefixed with `context` (the
/// shared input's identity — app, seed, job count…), so the error is
/// usable directly from a property closure.
pub fn engines_agree(context: &str, runs: &[EngineRun]) -> Result<(), String> {
    let Some((reference, candidates)) = runs.split_first() else {
        return Ok(());
    };
    for candidate in candidates {
        diff_runs(reference, candidate).map_err(|e| format!("[{context}] {e}"))?;
    }
    Ok(())
}

/// Panicking form of [`engines_agree`] for use directly in `#[test]`
/// bodies.
///
/// # Panics
///
/// Panics with the divergence report when any engine disagrees with the
/// reference.
pub fn assert_engines_agree(context: &str, runs: &[EngineRun]) {
    if let Err(report) = engines_agree(context, runs) {
        panic!("cross-engine differential failure\n{report}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreeing_engines_pass() {
        let runs = [
            EngineRun::render("a", &[(1, "x"), (2, "y")]),
            EngineRun::render("b", &[(1, "x"), (2, "y")]),
            EngineRun::render("c", &[(1, "x"), (2, "y")]),
        ];
        assert_engines_agree("ctx", &runs);
    }

    #[test]
    fn divergence_names_item_byte_and_engines() {
        let reference = EngineRun::new("ref", vec!["aaaa".into(), "bbbb".into()]);
        let candidate = EngineRun::new("cand", vec!["aaaa".into(), "bbXb".into()]);
        let err = engines_agree("seed=7", &[reference, candidate]).unwrap_err();
        assert!(err.contains("seed=7"), "{err}");
        assert!(err.contains("item 1, byte 2"), "{err}");
        assert!(err.contains("\"cand\"") && err.contains("\"ref\""), "{err}");
    }

    #[test]
    fn length_mismatch_is_reported_first() {
        let reference = EngineRun::new("ref", vec!["a".into()]);
        let candidate = EngineRun::new("cand", vec![]);
        let err = diff_runs(&reference, &candidate).unwrap_err();
        assert!(err.contains("0 output(s)"), "{err}");
    }

    #[test]
    fn long_renderings_get_context_windows() {
        let long = "x".repeat(500);
        let mut other = long.clone();
        other.replace_range(250..251, "Y");
        let reference = EngineRun::new("ref", vec![long]);
        let candidate = EngineRun::new("cand", vec![other]);
        let err = diff_runs(&reference, &candidate).unwrap_err();
        assert!(err.contains("byte 250"), "{err}");
        // The windows are elided on both sides, not the full 500 bytes.
        assert!(err.contains('…'), "{err}");
        assert!(err.len() < 600, "report stays compact: {} bytes", err.len());
    }

    #[test]
    fn prefix_divergence_points_at_the_shorter_length() {
        assert_eq!(first_divergence("abc", "abcdef"), 3);
        assert_eq!(first_divergence("same", "same"), 4);
    }

    #[test]
    fn empty_run_set_is_vacuously_ok() {
        assert!(engines_agree("ctx", &[]).is_ok());
    }
}
