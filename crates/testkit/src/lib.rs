//! # moca-testkit — a dependency-free property-testing harness
//!
//! A miniature stand-in for `proptest`, built so the workspace's
//! property suites run with **zero registry dependencies** (the build
//! environment is offline; see `DESIGN.md`, "offline build policy").
//!
//! The model is deliberately simple:
//!
//! * every test case is generated from a seeded [`TestRng`] (xorshift64*),
//!   so a failing case is reproducible from the printed seed;
//! * the case count is configurable per check and can be scaled globally
//!   with the `MOCA_TESTKIT_CASES` environment variable;
//! * on failure the harness optionally *shrinks* the input through a
//!   caller-provided candidate function and reports the smallest input
//!   that still fails;
//! * redundant implementations of the same computation can be
//!   cross-checked byte-for-byte through the [`differential`] harness
//!   (used by the sweep engines' scalar ≡ broadcast ≡ lock-step suites).
//!
//! ```
//! use moca_testkit::{check, Config, require};
//!
//! check(Config::cases(64), |rng| rng.range_u64(0, 1000), |&n| {
//!     require!(n < 1000, "generated value out of range: {n}");
//!     Ok(())
//! });
//! ```

use std::fmt::Debug;

pub mod differential;

pub use differential::{assert_engines_agree, diff_runs, engines_agree, EngineRun};

/// A xorshift64* pseudo-random generator for test-case synthesis.
///
/// Small, fast, and fully deterministic from its seed. Not suitable for
/// cryptography; entirely suitable for generating test inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed (a zero seed is remapped; the
    /// xorshift state must be non-zero).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) has no valid output");
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform value in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniformly random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.range_usize(0, items.len())]
    }

    /// Generates a vector whose length is uniform in `[min_len, max_len)`
    /// with elements drawn from `gen`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut gen: impl FnMut(&mut TestRng) -> T,
    ) -> Vec<T> {
        let len = self.range_usize(min_len, max_len);
        (0..len).map(|_| gen(self)).collect()
    }
}

/// Configuration of one property check.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases.
    pub cases: usize,
    /// Base seed; case `i` derives its generator from `seed` and `i`.
    pub seed: u64,
    /// Maximum number of accepted shrink steps before reporting.
    pub max_shrink_steps: usize,
}

impl Config {
    /// `cases` generated cases with the default seed.
    ///
    /// The environment variable `MOCA_TESTKIT_CASES`, when set, overrides
    /// the case count globally (useful for longer soak runs).
    pub fn cases(cases: usize) -> Self {
        let cases = std::env::var("MOCA_TESTKIT_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cases);
        Self {
            cases,
            seed: 0x_7E57_C0DE_2015_0001,
            max_shrink_steps: 256,
        }
    }

    /// Same configuration with a different base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Derives the per-case generator: mixes the base seed with the case
/// index through a splitmix-style finalizer so consecutive cases are
/// decorrelated.
fn case_rng(seed: u64, case: usize) -> TestRng {
    let mut z = seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    TestRng::new(z ^ (z >> 31))
}

/// Runs `prop` against `cfg.cases` inputs drawn from `gen`, without
/// shrinking.
///
/// # Panics
///
/// Panics (failing the enclosing test) on the first input for which
/// `prop` returns `Err`, reporting the case index, the reproduction
/// seed, and the failing input's `Debug` rendering.
pub fn check<T, G, P>(cfg: Config, gen: G, prop: P)
where
    T: Debug,
    G: Fn(&mut TestRng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    check_shrink(cfg, gen, |_| Vec::new(), prop);
}

/// Runs `prop` against generated inputs and, on failure, greedily
/// shrinks through `shrink` candidates while the property keeps failing.
///
/// `shrink(&input)` returns candidate *smaller* inputs to try, in
/// preference order. Shrinking stops when no candidate fails or the step
/// budget is exhausted.
///
/// # Panics
///
/// Panics with a report of the (shrunk) failing input when the property
/// does not hold.
pub fn check_shrink<T, G, S, P>(cfg: Config, gen: G, shrink: S, prop: P)
where
    T: Debug,
    G: Fn(&mut TestRng) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        let mut rng = case_rng(cfg.seed, case);
        let input = gen(&mut rng);
        if let Err(first_msg) = prop(&input) {
            let (min_input, min_msg, steps) =
                shrink_failure(input, first_msg, &shrink, &prop, cfg.max_shrink_steps);
            panic!(
                "property failed at case {case}/{} (seed {:#x})\n\
                 error: {min_msg}\n\
                 input ({steps} shrink steps): {min_input:?}",
                cfg.cases, cfg.seed
            );
        }
    }
}

/// Greedy shrink loop: repeatedly replace the failing input with the
/// first shrink candidate that still fails.
fn shrink_failure<T, S, P>(
    mut input: T,
    mut msg: String,
    shrink: &S,
    prop: &P,
    budget: usize,
) -> (T, String, usize)
where
    T: Debug,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let mut steps = 0;
    'outer: while steps < budget {
        for candidate in shrink(&input) {
            if let Err(e) = prop(&candidate) {
                input = candidate;
                msg = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (input, msg, steps)
}

/// Shrink candidates for a vector input: drop the second half, the first
/// half, and (for short vectors) each single element.
///
/// Useful as the `shrink` argument of [`check_shrink`] when the input is
/// an operation sequence.
pub fn shrink_vec<T: Clone>(v: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    if v.len() > 1 {
        out.push(v[..v.len() / 2].to_vec());
        out.push(v[v.len() / 2..].to_vec());
    }
    if v.len() > 1 && v.len() <= 32 {
        for i in 0..v.len() {
            let mut c = v.to_vec();
            c.remove(i);
            out.push(c);
        }
    }
    out
}

/// Fails the enclosing property (returns `Err` from the property
/// closure) when the condition is false.
///
/// Inside a [`check`]/[`check_shrink`] property closure this plays the
/// role of `prop_assert!`.
#[macro_export]
macro_rules! require {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("requirement failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !($cond) {
            return Err(format!("requirement failed: {}: {}", stringify!($cond), format!($($arg)+)));
        }
    };
}

/// Property-level equality assertion (`prop_assert_eq!` analogue).
#[macro_export]
macro_rules! require_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err(format!(
                "requirement failed: {} == {} (left: {lhs:?}, right: {rhs:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($arg:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err(format!(
                "requirement failed: {} == {} (left: {lhs:?}, right: {rhs:?}): {}",
                stringify!($a),
                stringify!($b),
                format!($($arg)+)
            ));
        }
    }};
}

/// Property-level inequality assertion (`prop_assert_ne!` analogue).
#[macro_export]
macro_rules! require_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err(format!(
                "requirement failed: {} != {} (both: {lhs:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

/// A deterministic fault-injection plan for tolerance tests.
///
/// Decides, purely from `(seed, index)`, whether the work item at a
/// given index should fault. Because the decision is **stateless** —
/// no RNG stream is consumed — the same plan yields the same fault set
/// no matter how items are sharded across worker threads or in what
/// order they execute, which is exactly the property a deterministic
/// panic-isolation contract needs to be testable under `--jobs N`.
///
/// ```
/// use moca_testkit::FaultPlan;
///
/// let plan = FaultPlan::new(42).with_rate(1, 4); // ~25% of indices
/// let a: Vec<usize> = plan.faulty_indices(100);
/// let b: Vec<usize> = plan.faulty_indices(100);
/// assert_eq!(a, b); // fully deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Fault when `mix(seed, index) % denom < num`.
    num: u64,
    denom: u64,
}

impl FaultPlan {
    /// A plan that faults roughly 1 in 8 indices (adjust with
    /// [`FaultPlan::with_rate`]).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            num: 1,
            denom: 8,
        }
    }

    /// Sets the fault rate to `num / denom` (e.g. `with_rate(1, 3)`
    /// faults about a third of all indices).
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero or `num > denom`.
    pub fn with_rate(mut self, num: u64, denom: u64) -> Self {
        assert!(denom > 0 && num <= denom, "rate {num}/{denom} is not a probability");
        self.num = num;
        self.denom = denom;
        self
    }

    /// Whether the item at `index` should fault — a pure function of
    /// `(seed, index)`, independent of evaluation order.
    pub fn should_fault(&self, index: usize) -> bool {
        // splitmix64-style finalizer over seed ^ index.
        let mut z = self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % self.denom < self.num
    }

    /// The indices in `[0, n)` that fault under this plan.
    pub fn faulty_indices(&self, n: usize) -> Vec<usize> {
        (0..n).filter(|&i| self.should_fault(i)).collect()
    }

    /// Panics with a deterministic, index-tagged message when `index`
    /// is in the plan's fault set; otherwise does nothing.
    ///
    /// The message depends only on the index, so a fault-isolation
    /// layer that captures panic payloads can be checked for exact,
    /// reproducible error text.
    pub fn trip(&self, index: usize) {
        if self.should_fault(index) {
            panic!("injected fault at index {index}");
        }
    }
}

/// An [`io::Write`] sink that accepts only `limit` bytes, then reports
/// end-of-space by returning `Ok(0)` — which `write_all` (and thus
/// `write!`/`writeln!`) converts into [`WriteZero`].
///
/// Simulates a full disk or a closed pipe for exercising I/O error
/// paths without touching the filesystem.
///
/// [`WriteZero`]: std::io::ErrorKind::WriteZero
///
/// ```
/// use std::io::Write;
///
/// let mut w = moca_testkit::ShortWriter::new(4);
/// let err = w.write_all(b"too long for four bytes").unwrap_err();
/// assert_eq!(err.kind(), std::io::ErrorKind::WriteZero);
/// assert_eq!(w.written(), b"too ");
/// ```
#[derive(Debug, Default)]
pub struct ShortWriter {
    remaining: usize,
    accepted: Vec<u8>,
}

impl ShortWriter {
    /// A writer with capacity for exactly `limit` bytes.
    pub fn new(limit: usize) -> Self {
        Self {
            remaining: limit,
            accepted: Vec::with_capacity(limit),
        }
    }

    /// The bytes accepted before the writer ran out of space.
    pub fn written(&self) -> &[u8] {
        &self.accepted
    }
}

impl std::io::Write for ShortWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.remaining);
        self.accepted.extend_from_slice(&buf[..n]);
        self.remaining -= n;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A *seekable* sink that runs out of space after `limit` bytes —
/// [`ShortWriter`]'s sibling for writers that back-patch (headers,
/// trailing directories) and therefore need `Write + Seek`.
///
/// Seeks always succeed; any write that would push the end of the
/// buffer past `limit` is truncated at the limit (then `Ok(0)`, which
/// `write_all` turns into `WriteZero`). Deterministic: the failure
/// point depends only on `limit` and the byte stream.
///
/// # Examples
///
/// ```
/// use std::io::Write;
///
/// let mut w = moca_testkit::ShortSeekWriter::new(4);
/// let err = w.write_all(b"too long for four bytes").unwrap_err();
/// assert_eq!(err.kind(), std::io::ErrorKind::WriteZero);
/// assert_eq!(w.written(), b"too ");
/// ```
#[derive(Debug, Default)]
pub struct ShortSeekWriter {
    limit: u64,
    cursor: std::io::Cursor<Vec<u8>>,
}

impl ShortSeekWriter {
    /// A seekable writer with capacity for exactly `limit` bytes.
    pub fn new(limit: usize) -> Self {
        Self {
            limit: limit as u64,
            cursor: std::io::Cursor::new(Vec::new()),
        }
    }

    /// The bytes accepted before the writer ran out of space.
    pub fn written(&self) -> &[u8] {
        self.cursor.get_ref()
    }
}

impl std::io::Write for ShortSeekWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let pos = self.cursor.position();
        let room = self.limit.saturating_sub(pos).min(buf.len() as u64) as usize;
        self.cursor.write(&buf[..room])
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.cursor.flush()
    }
}

impl std::io::Seek for ShortSeekWriter {
    fn seek(&mut self, pos: std::io::SeekFrom) -> std::io::Result<u64> {
        self.cursor.seek(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.f64_unit();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_length_respects_range() {
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let v = rng.vec(2, 10, |r| r.next_u64());
            assert!(v.len() >= 2 && v.len() < 10);
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let counted = std::cell::Cell::new(0usize);
        check(Config::cases(25), |rng| rng.next_u64(), |_| {
            counted.set(counted.get() + 1);
            Ok(())
        });
        assert_eq!(counted.get(), 25);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_report() {
        check(Config::cases(50), |rng| rng.range_u64(0, 100), |&n| {
            require!(n < 101, "unreachable");
            if n >= 10 {
                return Err("too big".into());
            }
            Ok(())
        });
    }

    #[test]
    fn shrinking_minimizes_vec_input() {
        // Property fails whenever the vec contains a value >= 1000; the
        // shrunk counterexample must be a single-element vector.
        let gen = |rng: &mut TestRng| rng.vec(1, 40, |r| r.range_u64(0, 2000));
        let prop = |v: &Vec<u64>| {
            if v.iter().any(|&x| x >= 1000) {
                Err("contains big".into())
            } else {
                Ok(())
            }
        };
        // Find a failing input first so the test is deterministic.
        let mut failing = None;
        for case in 0..200 {
            let v = gen(&mut case_rng(1, case));
            if prop(&v).is_err() {
                failing = Some(v);
                break;
            }
        }
        let failing = failing.expect("a failing input exists");
        let (min, _msg, _steps) =
            shrink_failure(failing, "seed".into(), &|v: &Vec<u64>| shrink_vec(v), &prop, 256);
        assert_eq!(min.len(), 1, "shrunk to a single offending element: {min:?}");
        assert!(min[0] >= 1000);
    }

    #[test]
    fn case_count_env_override_parses() {
        // Do not mutate the environment (tests run in parallel); just
        // exercise the default path.
        let cfg = Config::cases(12);
        assert!(cfg.cases >= 1);
    }

    #[test]
    fn fault_plan_is_order_independent() {
        let plan = FaultPlan::new(0xF00D).with_rate(1, 3);
        let forward: Vec<bool> = (0..200).map(|i| plan.should_fault(i)).collect();
        let mut backward: Vec<bool> = (0..200).rev().map(|i| plan.should_fault(i)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
        assert_eq!(plan.faulty_indices(200), plan.faulty_indices(200));
    }

    #[test]
    fn fault_plan_rate_is_roughly_respected() {
        let hits = FaultPlan::new(7).with_rate(1, 4).faulty_indices(4000).len();
        // 1/4 of 4000 = 1000; allow generous slack, determinism is the point.
        assert!((700..1300).contains(&hits), "unexpected fault count {hits}");
        assert!(FaultPlan::new(7).with_rate(0, 1).faulty_indices(100).is_empty());
        assert_eq!(FaultPlan::new(7).with_rate(1, 1).faulty_indices(100).len(), 100);
    }

    #[test]
    #[should_panic(expected = "injected fault at index")]
    fn trip_panics_on_planned_index() {
        let plan = FaultPlan::new(3).with_rate(1, 1);
        plan.trip(5);
    }

    #[test]
    fn short_writer_truncates_then_reports_write_zero() {
        use std::io::Write;
        let mut w = ShortWriter::new(10);
        w.write_all(b"0123456789").expect("fits exactly");
        let err = w.write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WriteZero);
        assert_eq!(w.written(), b"0123456789");
        w.flush().expect("flush is infallible");
    }

    #[test]
    fn require_macros_produce_errors() {
        let f = |x: u64| -> Result<(), String> {
            require!(x != 1);
            require_eq!(x % 2, 0, "x = {x}");
            require_ne!(x, 6);
            Ok(())
        };
        assert!(f(0).is_ok());
        assert!(f(1).unwrap_err().contains("requirement failed"));
        assert!(f(3).unwrap_err().contains("left"));
        assert!(f(6).unwrap_err().contains("!="));
    }
}
